//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this vendored shim
//! provides exactly the subset of proptest's API the workspace uses:
//! the `proptest!` macro, `ProptestConfig::with_cases`, integer-range /
//! `any::<bool>()` / `any::<sample::Index>()` / tuple / `collection::vec` /
//! simple-regex string strategies, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: cases are driven by a counter-based SplitMix64
//!   seeded from the test's module path and case number, so every run
//!   explores the same inputs (reproducible CI, no flakes).
//! * **No shrinking**: a failing case panics with its case number; re-run
//!   the test to replay it (the same inputs regenerate).
//! * **No persistence files** (`proptest-regressions/` is never written).

pub mod rng {
    //! Counter-based SplitMix64 — the same generator family the TPC-H
    //! generator uses for chunk-deterministic data.

    /// Deterministic stream generator.
    #[derive(Debug, Clone)]
    pub struct Rng(u64);

    impl Rng {
        /// A stream for one named test case.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Rng(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)`; `span` must be nonzero.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            self.next_u64() % span
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges and tuples.

    use crate::rng::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut Rng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn sample(&self, rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident / $v:ident),*) => {
            impl<$($s: Strategy),*> Strategy for ($($s,)*) {
                type Value = ($($s::Value,)*);
                fn sample(&self, rng: &mut Rng) -> Self::Value {
                    let ($($v,)*) = self;
                    ($($v.sample(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A / a, B / b);
    tuple_strategy!(A / a, B / b, C / c);
    tuple_strategy!(A / a, B / b, C / c, D / d);

    /// `&str` patterns act as string strategies, as in real proptest. Only
    /// the `[x-y]{m,n}` shape (one character-class, one counted repetition,
    /// e.g. `"[a-z]{0,6}"`) is supported — the only shape this workspace
    /// uses. Anything else panics loudly.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut Rng) -> String {
            let (lo_ch, hi_ch, min_len, max_len) = parse_class_repeat(self)
                .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
            let len = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    let span = hi_ch as u64 - lo_ch as u64 + 1;
                    (lo_ch as u8 + rng.below(span) as u8) as char
                })
                .collect()
        }
    }

    /// Parses `[x-y]{m,n}` into (x, y, m, n).
    fn parse_class_repeat(pat: &str) -> Option<(char, char, usize, usize)> {
        let b = pat.as_bytes();
        if b.len() < 5 || b[0] != b'[' || b[2] != b'-' || b[4] != b']' {
            return None;
        }
        let (lo, hi) = (b[1] as char, b[3] as char);
        if !(lo.is_ascii() && hi.is_ascii() && lo <= hi) {
            return None;
        }
        let rest = &pat[5..];
        if rest.is_empty() {
            return Some((lo, hi, 1, 1));
        }
        let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = match inner.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let k = inner.trim().parse().ok()?;
                (k, k)
            }
        };
        (m <= n).then_some((lo, hi, m, n))
    }
}

pub mod sample {
    //! Index sampling (`any::<prop::sample::Index>()`).

    use crate::rng::Rng;
    use crate::strategy::Strategy;

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy producing [`Index`] values.
    #[derive(Debug, Clone, Copy)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn sample(&self, rng: &mut Rng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use crate::rng::Rng;
    use crate::strategy::Strategy;

    /// Length bounds for [`vec`] (half-open or inclusive usize ranges).
    pub trait SizeRange {
        /// Inclusive (min, max) lengths.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// A vector strategy: length drawn from `size`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the types the workspace samples.

    use crate::sample::{Index, IndexStrategy};
    use crate::strategy::{BoolStrategy, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary {
        /// That strategy's type.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> IndexStrategy {
            IndexStrategy
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod test_runner {
    //! Runner configuration (`ProptestConfig::with_cases`).

    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Case count.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` once per case with freshly sampled
/// arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng = $crate::rng::Rng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! `use proptest::prelude::*;` — mirrors real proptest's prelude.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` module path (`prop::collection::vec`, `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_case_same_values() {
        let mut a = crate::rng::Rng::for_case("t", 3);
        let mut b = crate::rng::Rng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -50i64..50, y in 0u8..=6) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(y <= 6);
        }

        #[test]
        fn vec_and_string_shapes(v in prop::collection::vec("[a-z]{0,6}", 0..20),
                                 ix in any::<prop::sample::Index>(),
                                 flag in any::<bool>()) {
            prop_assert!(v.len() < 20);
            for s in &v {
                prop_assert!(s.len() <= 6);
                prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
            prop_assert!(ix.index(7) < 7);
            let _ = flag;
        }

        #[test]
        fn tuples_sample_both(pair in (0i64..5, -100i64..100)) {
            prop_assert!((0..5).contains(&pair.0));
            prop_assert!((-100..100).contains(&pair.1));
        }
    }
}
