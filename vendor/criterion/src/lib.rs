//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this vendored shim
//! provides the subset of criterion's API the workspace's benches use
//! (`criterion_group!` / `criterion_main!` / `Criterion::benchmark_group` /
//! `Bencher::iter` / `iter_batched`). It really runs and times the
//! closures with `std::time::Instant` and prints a mean per iteration —
//! no statistics, no HTML reports, no warm-up model.

use std::time::Instant;

/// Re-export for benches importing `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Times closures for one benchmark id.
pub struct Bencher {
    samples: usize,
    /// (id, mean ns/iter) recorded by the last routine.
    last_ns: f64,
}

impl Bencher {
    /// Times `f`, reporting mean nanoseconds per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to fault in lazily-built state.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }

    /// Times `routine` over fresh `setup()` inputs, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total_ns = 0.0;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total_ns += start.elapsed().as_nanos() as f64;
        }
        self.last_ns = total_ns / self.samples as f64;
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets iterations per benchmark (criterion's sample count analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, last_ns: 0.0 };
        f(&mut b);
        println!("{}/{:<40} {:>14.0} ns/iter", self.name, id, b.last_ns);
        self
    }

    /// Ends the group (nothing to flush in the shim).
    pub fn finish(self) {}
}

/// Entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 10 }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
