//! A fault drill against the WIMPI cluster: kill nodes mid-study, inject
//! transient OOMs and stragglers, and print the recovery timeline — which
//! partitions were reassigned where, what the retries and regeneration cost
//! in simulated seconds, and what a degraded answer covers when recovery is
//! exhausted.
//!
//! ```text
//! cargo run --release --example fault_drill [sf] [nodes]
//! ```

use wimpi::cluster::distribute::Strategy;
use wimpi::cluster::faults::{FaultKind, FaultPlan, RecoveryPolicy};
use wimpi::cluster::{ClusterConfig, WimpiCluster};
use wimpi::queries::{query, CHOKEPOINT_QUERIES};

fn main() {
    let mut args = std::env::args().skip(1);
    let sf: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    assert!(nodes >= 3, "the drill kills two nodes; give it at least 3");

    println!("building a {nodes}-node WIMPI cluster holding TPC-H SF {sf} …\n");
    let mut cluster = WimpiCluster::build(ClusterConfig::new(nodes, sf)).expect("cluster builds");

    // Phase 1 — the study starts healthy, then nodes die under it.
    println!("=== phase 1: permanent failures mid-study ===");
    println!("query  answer     total       recovery   reassignments");
    for (i, &q) in CHOKEPOINT_QUERIES.iter().enumerate() {
        // The drill: one node dies a third of the way in, another two
        // thirds of the way in.
        if i == CHOKEPOINT_QUERIES.len() / 3 {
            cluster.kill_node(nodes as usize - 1).expect("in range");
            println!("  ** node {} died **", nodes - 1);
        }
        if i == 2 * CHOKEPOINT_QUERIES.len() / 3 {
            cluster.kill_node(nodes as usize - 2).expect("in range");
            println!("  ** node {} died **", nodes - 2);
        }
        let run = cluster
            .run(&query(q), Strategy::PartialAggPushdown)
            .unwrap_or_else(|e| panic!("Q{q} failed: {e}"));
        let moves: Vec<String> = run
            .recovery
            .reassignments
            .iter()
            .map(|r| format!("p{}→n{}", r.partition, r.to))
            .collect();
        println!(
            "Q{q:<5} {:>4} rows {:>9.4}s {:>9.4}s   {}",
            run.result.num_rows(),
            run.total_seconds(),
            run.recovery.recovery_seconds,
            if moves.is_empty() { "-".to_string() } else { moves.join(" ") },
        );
    }
    for node in 0..nodes as usize {
        cluster.restore_node(node).expect("in range");
    }

    // Phase 2 — transient faults and stragglers on a healthy cluster.
    println!("\n=== phase 2: transient OOMs and stragglers (Q6) ===");
    let drills = [
        (
            "2 transient OOMs on node 1",
            FaultPlan::none().with(1, FaultKind::TransientOom { failures: 2 }),
        ),
        (
            "node 2 running 20x slow",
            FaultPlan::none().with(2, FaultKind::SlowNode { multiplier: 20.0 }),
        ),
        (
            "node 0 NIC at 1/8 speed",
            FaultPlan::none().with(0, FaultKind::DegradedNic { multiplier: 8.0 }),
        ),
        ("seeded chaos (seed 7)", FaultPlan::random(7, nodes)),
    ];
    let healthy = cluster.run(&query(6), Strategy::PartialAggPushdown).expect("runs");
    println!("{:<28} {:>9.4}s  (fault-free baseline)", "healthy", healthy.total_seconds());
    for (label, plan) in &drills {
        let run = cluster
            .run_with_faults(&query(6), Strategy::PartialAggPushdown, plan)
            .expect("recovers");
        println!(
            "{label:<28} {:>9.4}s  retries={} speculated={} moved={}",
            run.total_seconds(),
            run.recovery.retries,
            run.recovery.speculated,
            run.recovery.reassignments.len(),
        );
    }

    // Phase 3 — degraded mode: with each survivor capped at absorbing one
    // extra partition, losing most of the cluster exhausts recovery and the
    // degraded policy answers with whatever coverage remains.
    println!("\n=== phase 3: degraded mode ===");
    let mut policy = RecoveryPolicy::degraded();
    policy.reassign_cap = 1;
    cluster.set_recovery_policy(policy);
    for node in 1..nodes as usize {
        cluster.kill_node(node).expect("in range");
    }
    let run = cluster.run(&query(6), Strategy::PartialAggPushdown).expect("degrades");
    println!("{} of {nodes} nodes dead, the survivor capped at 1 reassignment:", nodes - 1);
    println!(
        "  answer covers {:.1}% of lineitem (degraded={}, {} partition recovered, \
         {} dropped)",
        run.recovery.coverage * 100.0,
        run.recovery.degraded,
        run.recovery.reassignments.len(),
        nodes as usize - 1 - run.recovery.reassignments.len(),
    );
}
