//! Interactive SQL shell over a generated TPC-H catalog.
//!
//! ```text
//! cargo run --release --example sql_shell [sf]
//! ```
//!
//! Type SQL (single line, `;` optional). Prefix a statement with
//! `EXPLAIN ANALYZE` to get the operator-level trace tree (rows, wall time,
//! and work-profile bytes per operator, including the measured reservation
//! peak). Meta-commands: `\tables`, `\schema <table>`, `\hw` (toggle
//! per-machine predictions), `\metrics` (service counters), `\q`.
//!
//! Resource governance: `SET memory_budget = 64M` caps each query's operator
//! scratch (`0` or `unlimited` lifts the cap; the `WIMPI_MEM_BUDGET`
//! environment variable seeds the initial value; fractional units like
//! `1.5GiB` or `0.5MB` work), and `SET timeout_ms = 500` gives every query a
//! cooperative deadline (`0` disables it).
//!
//! Concurrency: `SET concurrency = N` routes statements through an
//! `engine::service::Service` with `N` workers whose node-wide budget is the
//! session's memory budget — admission control, grant arbitration, and the
//! one full-budget retry all engage, and `\metrics` shows the counters.
//! `SET concurrency = 0` (the default) returns to direct in-process
//! execution.
//!
//! Integrity: `SET verify_checksums = on` seals an integrity manifest over
//! every table (first time only) and verifies each scan against it — a
//! corrupt chunk fails the query with a typed violation instead of silently
//! skewing the answer. `\metrics` includes the `integrity_*` counters in
//! both direct and service mode.
//!
//! Execution: `SET executor = fused | materialize` switches between the
//! materializing operator-at-a-time interpreter and the fused
//! morsel-at-a-time bytecode executor (DESIGN.md §13); results are
//! bit-identical, the work profile is not. `EXPLAIN ANALYZE` names the
//! active executor and shows the fused pipeline as a single `fused` span.
//!
//! Out-of-core: `SET spill = on` attaches a simulated bounded microSD
//! spill disk (DESIGN.md §16) to every direct statement's governor context:
//! joins, aggregates, and sorts that cannot fit the memory budget even
//! after Grace partitioning stage partitions on the disk instead of
//! failing, bit-exactly. `\metrics` surfaces the session's cumulative
//! `spill_*` ledger. Spill applies to direct execution (`concurrency = 0`).
//!
//! Pruning: `SET prune_scans = on` seals zone maps over every table (first
//! time only, mirroring `verify_checksums`) and lets selective scans skip
//! morsels the summaries prove irrelevant — answers stay bit-identical,
//! only bytes and time change (DESIGN.md §14).
//!
//! Caching: direct (serviceless) statements go through the coordinator's
//! governor-reserved [`ResultCache`] (DESIGN.md §15); repeated statements
//! answer from cache, `SET` knobs that reseal the catalog invalidate it,
//! and `\metrics` shows the `coord_result_cache_*` counters.

use std::io::{BufRead, Write};
use std::sync::Arc;

use wimpi::cluster::coordinator::ResultCache;
use wimpi::engine::governor::UNLIMITED;
use wimpi::engine::{
    governor, EngineConfig, Executor, QueryContext, QuerySpec, Service, ServiceConfig,
};
use wimpi::hwsim::{all_profiles, predict_all_cores};
use wimpi::sql::{execute_sql_with, strip_explain_analyze};
use wimpi::storage::spill::{SpillConfig, SpillDisk};
use wimpi::storage::Catalog;
use wimpi::tpch::Generator;

/// Parses `SET <knob> = <value>` (case-insensitive `SET`, optional `;`).
fn parse_set(line: &str) -> Option<(String, String)> {
    let trimmed = line.trim().trim_end_matches(';').trim_end();
    let (head, rest) = trimmed.split_once(char::is_whitespace)?;
    if !head.eq_ignore_ascii_case("set") {
        return None;
    }
    let (knob, value) = rest.split_once('=')?;
    Some((knob.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Builds the per-query governor context from the session knobs (direct
/// execution path — with a service, the service builds the context).
fn make_ctx(
    mem_budget: Option<u64>,
    timeout_ms: Option<u64>,
    spill: Option<&Arc<SpillDisk>>,
) -> QueryContext {
    let mut ctx = match mem_budget {
        Some(b) => QueryContext::with_budget(b),
        None => QueryContext::new(),
    };
    if let Some(ms) = timeout_ms {
        ctx = ctx.with_timeout(std::time::Duration::from_millis(ms));
    }
    if let Some(disk) = spill {
        ctx = ctx.with_spill(Arc::clone(disk));
    }
    ctx
}

/// A fresh service sized to the session knobs (`None` when concurrency is
/// off). Rebuilt whenever `concurrency` or `memory_budget` changes.
fn make_service(concurrency: usize, mem_budget: Option<u64>) -> Option<Service> {
    (concurrency > 0)
        .then(|| Service::new(ServiceConfig::new(mem_budget.unwrap_or(UNLIMITED), concurrency)))
}

/// The spec for one shell statement submitted to the service.
fn make_spec(sql: &str, timeout_ms: Option<u64>) -> QuerySpec {
    let mut spec = QuerySpec::new(sql);
    if let Some(ms) = timeout_ms {
        spec = spec.with_timeout(std::time::Duration::from_millis(ms));
    }
    spec
}

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    eprintln!("generating TPC-H SF {sf} …");
    let mut catalog: Arc<Catalog> =
        Arc::new(Generator::new(sf).generate_catalog().expect("generation succeeds"));
    eprintln!("ready. \\tables lists tables, \\q quits.\n");
    let stdin = std::io::stdin();
    let mut show_hw = false;
    let mut mem_budget: Option<u64> = governor::budget_from_env();
    let mut timeout_ms: Option<u64> = None;
    let mut concurrency: usize = 0;
    let mut service: Option<Service> = None;
    let mut verify = false;
    let mut prune = false;
    let mut spill: Option<Arc<SpillDisk>> = None;
    let mut executor = Executor::default();
    // Integrity + cache counters for direct (serviceless) execution; with a
    // service, its own registry carries the service-side counters.
    let shell_metrics = wimpi::obs::Registry::new();
    // Governor-reserved result cache for direct statements, keyed by the
    // statement text. Knobs never change answers (executor and pruning are
    // bit-exact by contract), but resealing the catalog swaps table handles
    // — those knobs invalidate below.
    let result_cache = ResultCache::new(16 << 20);
    let all_tables =
        |catalog: &Catalog| -> Vec<String> { catalog.names().map(String::from).collect() };
    print!("wimpi> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        match line {
            "" => {}
            "\\q" | "exit" | "quit" => break,
            "\\hw" => {
                show_hw = !show_hw;
                println!("hardware predictions {}", if show_hw { "on" } else { "off" });
            }
            "\\metrics" => {
                if let Some(svc) = &service {
                    print!("{}", svc.metrics().render());
                }
                let rendered = shell_metrics.render();
                if rendered.is_empty() && service.is_none() {
                    println!(
                        "no counters yet (SET concurrency = N starts a service; \
                         SET verify_checksums = on counts integrity checks; \
                         SET spill = on fills the spill_* ledger; \
                         repeated statements fill the coord_result_cache_* counters)"
                    );
                } else {
                    print!("{rendered}");
                }
            }
            "\\tables" => {
                for name in catalog.names() {
                    let t = catalog.table(name).expect("registered");
                    println!("{name:10} {:>9} rows", t.num_rows());
                }
            }
            cmd if cmd.starts_with("\\schema") => {
                let table = cmd.trim_start_matches("\\schema").trim();
                match catalog.table(table) {
                    Ok(t) => println!("{}", t.schema()),
                    Err(e) => println!("error: {e}"),
                }
            }
            cmd if parse_set(cmd).is_some() => {
                let (knob, value) = parse_set(cmd).expect("guard matched");
                match knob.as_str() {
                    "memory_budget" => {
                        if value == "0" || value.eq_ignore_ascii_case("unlimited") {
                            mem_budget = None;
                            println!("memory budget unlimited");
                        } else {
                            match governor::parse_budget(&value) {
                                Ok(b) => {
                                    mem_budget = Some(b);
                                    println!("memory budget {b} bytes");
                                }
                                Err(e) => println!("error: {e}"),
                            }
                        }
                        if service.is_some() {
                            service = make_service(concurrency, mem_budget);
                            println!("(service restarted with the new node budget)");
                        }
                    }
                    "timeout_ms" => match value.parse::<u64>() {
                        Ok(0) => {
                            timeout_ms = None;
                            println!("timeout disabled");
                        }
                        Ok(ms) => {
                            timeout_ms = Some(ms);
                            println!("timeout {ms} ms");
                        }
                        Err(_) => println!("error: timeout_ms wants an integer, got {value:?}"),
                    },
                    "concurrency" => match value.parse::<usize>() {
                        Ok(0) => {
                            concurrency = 0;
                            service = None;
                            println!("concurrency off (direct execution)");
                        }
                        Ok(n) => {
                            concurrency = n;
                            service = make_service(n, mem_budget);
                            println!(
                                "service: {n} worker(s), node budget {}",
                                match mem_budget {
                                    Some(b) => format!("{b} bytes"),
                                    None => "unlimited".to_string(),
                                }
                            );
                        }
                        Err(_) => println!("error: concurrency wants an integer, got {value:?}"),
                    },
                    "executor" => match value.to_ascii_lowercase().as_str() {
                        "fused" => {
                            executor = Executor::Fused;
                            println!("executor fused (morsel-at-a-time bytecode pipeline)");
                        }
                        "materialize" | "materializing" => {
                            executor = Executor::Materialize;
                            println!("executor materialize (operator-at-a-time)");
                        }
                        _ => println!("error: executor wants fused|materialize, got {value:?}"),
                    },
                    "verify_checksums" => match value.to_ascii_lowercase().as_str() {
                        "on" | "true" | "1" => {
                            // Seal manifests lazily on first use; sealing is
                            // idempotent, so re-enabling is free. Sealing
                            // swaps table handles, so cached results built
                            // on the old handles are invalidated.
                            Arc::make_mut(&mut catalog).seal_integrity();
                            result_cache.invalidate_tables(&all_tables(&catalog), &shell_metrics);
                            verify = true;
                            println!("scan-time checksum verification on");
                        }
                        "off" | "false" | "0" => {
                            verify = false;
                            println!("scan-time checksum verification off");
                        }
                        _ => println!("error: verify_checksums wants on|off, got {value:?}"),
                    },
                    "prune_scans" => match value.to_ascii_lowercase().as_str() {
                        "on" | "true" | "1" => {
                            // Mirror verify_checksums: seal zone maps lazily
                            // on first use (idempotent — tables that already
                            // carry zones keep them), invalidate cached
                            // results built on the pre-seal handles.
                            Arc::make_mut(&mut catalog).seal_zone_maps();
                            result_cache.invalidate_tables(&all_tables(&catalog), &shell_metrics);
                            prune = true;
                            println!("zone-map scan pruning on");
                        }
                        "off" | "false" | "0" => {
                            prune = false;
                            println!("zone-map scan pruning off");
                        }
                        _ => println!("error: prune_scans wants on|off, got {value:?}"),
                    },
                    "spill" => match value.to_ascii_lowercase().as_str() {
                        "on" | "true" | "1" => {
                            // One disk per session: its counters accumulate
                            // across statements, which is what \metrics
                            // reports. Capacity mirrors a 256 MiB card slice.
                            spill = Some(Arc::new(SpillDisk::new(SpillConfig::with_capacity(
                                256 << 20,
                            ))));
                            if service.is_some() {
                                println!(
                                    "note: spill applies to direct execution; \
                                     SET concurrency = 0 to engage it"
                                );
                            }
                            println!("out-of-core spill on (256 MiB simulated spill disk)");
                        }
                        "off" | "false" | "0" => {
                            spill = None;
                            println!("out-of-core spill off");
                        }
                        _ => println!("error: spill wants on|off, got {value:?}"),
                    },
                    other => {
                        println!(
                            "error: unknown knob {other:?} \
                             (memory_budget, timeout_ms, concurrency, verify_checksums, \
                             executor, prune_scans, spill)"
                        )
                    }
                }
            }
            sql if strip_explain_analyze(sql).is_some() => {
                let inner = strip_explain_analyze(sql).expect("guard matched");
                let inner = inner.trim_end_matches(';').trim_end();
                let ctx = make_ctx(mem_budget, timeout_ms, spill.as_ref());
                let cfg = EngineConfig::serial()
                    .with_verify_checksums(verify)
                    .with_executor(executor)
                    .with_prune_scans(prune);
                match wimpi::sql::explain_analyze_with(inner, &catalog, &cfg, &ctx) {
                    Ok((rel, work, span)) => {
                        print!("{}", span.render());
                        println!(
                            "(executor: {}; {} rows; {:.1} MB streamed, {} ops, peak {} B)",
                            executor.label(),
                            rel.num_rows(),
                            work.seq_bytes() as f64 / 1e6,
                            work.cpu_ops,
                            work.peak_bytes
                        );
                        if ctx.fallbacks() > 0 {
                            println!(
                                "(degraded: {} operator(s) fell back to Grace partitioning, \
                                 up to {} partitions)",
                                ctx.fallbacks(),
                                ctx.max_fallback_parts()
                            );
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            sql => {
                let started = std::time::Instant::now();
                let outcome = match &service {
                    // Through the service: admission, grant arbitration, and
                    // the one full-budget retry all apply. The closure reads
                    // fallback telemetry before the context is torn down.
                    Some(svc) => {
                        let owned = sql.to_string();
                        let cat = Arc::clone(&catalog);
                        let cfg = EngineConfig::serial()
                            .with_verify_checksums(verify)
                            .with_executor(executor)
                            .with_prune_scans(prune);
                        svc.run_blocking(make_spec(sql, timeout_ms), move |ctx| {
                            execute_sql_with(&owned, &cat, &cfg, ctx)
                                .map(|(rel, work)| (rel, work, ctx.fallbacks()))
                                .map_err(|e| e.into_engine())
                        })
                        .map_err(|e| e.to_string())
                    }
                    None => {
                        let key = sql.trim_end_matches(';').trim_end().to_string();
                        match result_cache.get(&key, &shell_metrics) {
                            Some(rel) => Ok((rel, wimpi::engine::WorkProfile::default(), 0)),
                            None => {
                                let ctx = make_ctx(mem_budget, timeout_ms, spill.as_ref());
                                let cfg = EngineConfig::serial()
                                    .with_verify_checksums(verify)
                                    .with_executor(executor)
                                    .with_prune_scans(prune);
                                let out = execute_sql_with(sql, &catalog, &cfg, &ctx)
                                    .map(|(rel, work)| (rel, work, ctx.fallbacks()))
                                    .map_err(|e| e.to_string());
                                let checks = ctx.integrity_checks();
                                if checks > 0 {
                                    shell_metrics.inc("integrity_checks_total", checks);
                                }
                                if matches!(&out, Err(e) if e.contains("integrity violation")) {
                                    shell_metrics.inc("integrity_failures_total", 1);
                                }
                                if let Ok((rel, _, _)) = &out {
                                    result_cache.insert(
                                        &key,
                                        rel,
                                        &all_tables(&catalog),
                                        &shell_metrics,
                                    );
                                }
                                out
                            }
                        }
                    }
                };
                match outcome {
                    Ok((rel, work, fallbacks)) => {
                        println!("{}", rel.to_text(20));
                        println!(
                            "({} rows in {:.3}s host; {:.1} MB streamed, peak {} B)",
                            rel.num_rows(),
                            started.elapsed().as_secs_f64(),
                            work.seq_bytes() as f64 / 1e6,
                            work.peak_bytes
                        );
                        if fallbacks > 0 {
                            println!(
                                "(degraded: {fallbacks} operator(s) fell back to \
                                 Grace partitioning)"
                            );
                        }
                        if work.spilled_bytes > 0 {
                            shell_metrics.inc("spill_spilled_bytes_total", work.spilled_bytes);
                            shell_metrics.inc("spill_read_retries_total", work.spill_read_retries);
                            shell_metrics.inc(
                                "spill_corruptions_detected_total",
                                work.spill_corruptions_detected,
                            );
                            println!(
                                "(spilled {:.1} MB to the spill disk; {} read retries, \
                                 {} corruptions detected)",
                                work.spilled_bytes as f64 / 1e6,
                                work.spill_read_retries,
                                work.spill_corruptions_detected
                            );
                        }
                        if show_hw {
                            for hw in all_profiles() {
                                let p = predict_all_cores(&hw, &work);
                                println!("  {:12} {:>9.4}s", hw.name, p.total_s());
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        print!("wimpi> ");
        std::io::stdout().flush().ok();
    }
    println!();
}
