//! Interactive SQL shell over a generated TPC-H catalog.
//!
//! ```text
//! cargo run --release --example sql_shell [sf]
//! ```
//!
//! Type SQL (single line, `;` optional). Prefix a statement with
//! `EXPLAIN ANALYZE` to get the operator-level trace tree (rows, wall time,
//! and work-profile bytes per operator). Meta-commands: `\tables`,
//! `\schema <table>`, `\hw` (toggle per-machine predictions), `\q`.

use std::io::{BufRead, Write};

use wimpi::hwsim::{all_profiles, predict_all_cores};
use wimpi::sql::{execute_sql, explain_analyze, strip_explain_analyze};
use wimpi::tpch::Generator;

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    eprintln!("generating TPC-H SF {sf} …");
    let catalog = Generator::new(sf).generate_catalog().expect("generation succeeds");
    eprintln!("ready. \\tables lists tables, \\q quits.\n");
    let stdin = std::io::stdin();
    let mut show_hw = false;
    print!("wimpi> ");
    std::io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        match line {
            "" => {}
            "\\q" | "exit" | "quit" => break,
            "\\hw" => {
                show_hw = !show_hw;
                println!("hardware predictions {}", if show_hw { "on" } else { "off" });
            }
            "\\tables" => {
                for name in catalog.names() {
                    let t = catalog.table(name).expect("registered");
                    println!("{name:10} {:>9} rows", t.num_rows());
                }
            }
            cmd if cmd.starts_with("\\schema") => {
                let table = cmd.trim_start_matches("\\schema").trim();
                match catalog.table(table) {
                    Ok(t) => println!("{}", t.schema()),
                    Err(e) => println!("error: {e}"),
                }
            }
            sql if strip_explain_analyze(sql).is_some() => {
                let inner = strip_explain_analyze(sql).expect("guard matched");
                let inner = inner.trim_end_matches(';').trim_end();
                match explain_analyze(inner, &catalog) {
                    Ok((rel, work, span)) => {
                        print!("{}", span.render());
                        println!(
                            "({} rows; {:.1} MB streamed, {} ops)",
                            rel.num_rows(),
                            work.seq_bytes() as f64 / 1e6,
                            work.cpu_ops
                        );
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            sql => {
                let started = std::time::Instant::now();
                match execute_sql(sql, &catalog) {
                    Ok((rel, work)) => {
                        println!("{}", rel.to_text(20));
                        println!(
                            "({} rows in {:.3}s host; {:.1} MB streamed)",
                            rel.num_rows(),
                            started.elapsed().as_secs_f64(),
                            work.seq_bytes() as f64 / 1e6
                        );
                        if show_hw {
                            for hw in all_profiles() {
                                let p = predict_all_cores(&hw, &work);
                                println!("  {:12} {:>9.4}s", hw.name, p.total_s());
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
        print!("wimpi> ");
        std::io::stdout().flush().ok();
    }
    println!();
}
