//! A tour of the concurrent query service: many governed TPC-H queries
//! against one node-wide memory budget, with admission control, grant
//! arbitration, the one full-budget retry, load shedding, cancellation, and
//! a metrics printout at the end.
//!
//! ```text
//! cargo run --release --example service_demo [sf] [workers] [budget]
//! ```
//!
//! e.g. `cargo run --release --example service_demo 0.05 4 8M`.

use std::sync::Arc;

use wimpi::engine::governor::{parse_budget, UNLIMITED};
use wimpi::engine::{EngineConfig, QuerySpec, Service, ServiceConfig};
use wimpi::queries::{query, run_governed, CHOKEPOINT_QUERIES};
use wimpi::tpch::Generator;

fn main() {
    let mut args = std::env::args().skip(1);
    let sf: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let node_budget = match args.next() {
        Some(s) => parse_budget(&s).unwrap_or_else(|e| panic!("bad budget argument: {e}")),
        None => 8 << 20,
    };

    println!("generating TPC-H SF {sf} …");
    let catalog = Arc::new(Generator::new(sf).generate_catalog().expect("generation succeeds"));
    println!(
        "service: {workers} worker(s), node budget {} bytes{}\n",
        node_budget,
        if node_budget == UNLIMITED { " (unlimited)" } else { "" }
    );
    let svc = Service::new(ServiceConfig {
        node_budget,
        workers,
        queue_depth: 32,
        small_cutoff: 256 << 10,
        ..ServiceConfig::default()
    });

    // Act 1 — a burst of choke-point queries with deliberately tight
    // declared estimates: some admit small, some engage Grace degradation,
    // and anything that still exhausts gets the one full-budget retry.
    println!("=== burst: 2×{} choke-point queries ===", CHOKEPOINT_QUERIES.len());
    let mut tickets = Vec::new();
    for round in 0..2 {
        for &qn in CHOKEPOINT_QUERIES.iter() {
            let cat = Arc::clone(&catalog);
            let spec = QuerySpec::new(format!("q{qn}r{round}")).with_estimate(64 << 10);
            match svc.submit(spec, move |ctx| {
                run_governed(&query(qn), &cat, &EngineConfig::serial(), ctx)
                    .map(|(rel, _)| (rel.num_rows(), ctx.fallbacks()))
            }) {
                Ok(t) => tickets.push((qn, round, t)),
                Err(e) => println!("Q{qn} (round {round}): shed — {e}"),
            }
        }
    }
    for (qn, round, t) in tickets {
        match t.wait() {
            Ok((rows, fallbacks)) => println!(
                "Q{qn:<2} round {round}: {rows:>4} rows{}",
                if fallbacks > 0 {
                    format!("  ({fallbacks} Grace fallback(s))")
                } else {
                    String::new()
                }
            ),
            Err(e) => println!("Q{qn:<2} round {round}: {e}"),
        }
    }

    // Act 2 — cancellation: a query cancelled while queued never consumes
    // budget; a hopeless reservation surfaces a typed exhaustion.
    println!("\n=== cancellation and exhaustion ===");
    let cat = Arc::clone(&catalog);
    let doomed = svc
        .submit(QuerySpec::new("doomed").with_estimate(1 << 20), move |ctx| {
            run_governed(&query(5), &cat, &EngineConfig::serial(), ctx)
                .map(|(rel, _)| rel.num_rows())
        })
        .expect("admits or queues");
    doomed.cancel();
    match doomed.wait() {
        Err(e) => println!("cancelled submission: {e}"),
        Ok(_) => println!("cancelled submission raced admission and finished (still exactly once)"),
    }
    if node_budget != UNLIMITED {
        let ask = node_budget.saturating_mul(2).max(1 << 30);
        let hopeless = svc
            .run_blocking(QuerySpec::new("hopeless").with_estimate(1 << 10), move |ctx| {
                ctx.reserve(ask, "monster build").map(|_| 0u64)
            });
        match hopeless {
            Err(e) => println!("hopeless reservation: {e}"),
            Ok(_) => println!("hopeless reservation unexpectedly fit"),
        }
    }

    // Drain and show the ledger.
    svc.shutdown();
    println!("\n=== service metrics ===");
    print!("{}", svc.metrics().render());
    println!(
        "\nnode high-water {} / budget {} — {}",
        svc.node_high_water(),
        node_budget,
        if svc.node_high_water() <= node_budget {
            "never oversubscribed"
        } else {
            "OVERSUBSCRIBED (bug!)"
        }
    );
}
