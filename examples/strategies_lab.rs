//! Execution-strategies lab: run the three paradigms of the paper's §II-D3
//! on this host, verify they agree, and price them on op-e5 / op-gold /
//! Pi 3B+ (Figure 4 in miniature).
//!
//! ```text
//! cargo run --release --example strategies_lab [sf]
//! ```

use wimpi::hwsim::{predict_single_core, profile};
use wimpi::strategies::{run, Paradigm, STRATEGY_QUERIES};
use wimpi::tpch::Generator;

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let cat = Generator::new(sf).generate_catalog().expect("generates");
    let machines: Vec<_> =
        ["op-e5", "op-gold", "pi3b+"].iter().map(|n| profile(n).expect("profile")).collect();

    println!("SF {sf}, single-threaded. host = measured here; others = modelled.\n");
    println!("query  paradigm       host(s)   op-e5(s)  op-gold(s)  pi3b+(s)");
    for &q in &STRATEGY_QUERIES {
        let mut digests = Vec::new();
        for paradigm in Paradigm::ALL {
            let r = run(q, paradigm, &cat);
            digests.push(r.digest);
            let scaled = r.work.scale(1.0 / sf); // model at SF 1
            print!("Q{q:<5} {:<13} {:>8.4}", paradigm.label(), r.host_seconds);
            for hw in &machines {
                print!("  {:>8.4}", predict_single_core(hw, &scaled).total_s());
            }
            println!();
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "paradigms disagree on Q{q}: {digests:?}"
        );
        println!();
    }
    println!("all paradigms produced identical digests ✓");
}
