//! Run the paper's §II-C microbenchmarks natively on this machine and show
//! the hardware models' Figure 2 predictions next to them.
//!
//! ```text
//! cargo run --release --example microbench_host
//! ```

use wimpi::hwsim::micro;
use wimpi::microbench::{dhrystone, membw, network::NetModel, primes, whetstone};

fn main() {
    println!("running the four kernels on this host (single-threaded) …\n");
    let whet = whetstone::run(50);
    println!("Whetstone : {:>10.0} MWIPS   ({:.2} s)", whet.mwips, whet.elapsed_s);
    let dhry = dhrystone::run(5_000_000);
    println!("Dhrystone : {:>10.0} DMIPS   ({:.2} s)", dhry.dmips, dhry.elapsed_s);
    let prime = primes::run(10_000);
    println!(
        "sysbench  : {:>10.4} s       ({} primes below {})",
        prime.elapsed_s, prime.primes_found, prime.max
    );
    let bw = membw::read_bandwidth(256 << 20, 3);
    println!("membw     : {:>10.2} GB/s    ({} MiB buffer)\n", bw.read_gbs, bw.buffer_bytes >> 20);

    println!("model predictions (Figure 2), 1-core → all-cores:");
    for name in ["op-e5", "op-gold", "m5.metal", "c6g.metal", "pi3b+"] {
        let hw = wimpi::hwsim::profile(name).expect("profile exists");
        let s = micro::scores(&hw);
        println!(
            "{name:>10}: whet {:>6.0}→{:>7.0}  dhry {:>6.0}→{:>7.0}  prime {:>6.2}s→{:>5.2}s  bw {:>5.1}→{:>6.1} GB/s",
            s.whetstone.0, s.whetstone.1, s.dhrystone.0, s.dhrystone.1,
            s.prime_s.0, s.prime_s.1, s.membw_gbs.0, s.membw_gbs.1,
        );
    }

    let net = NetModel::wimpi_node();
    let (_, mbps) = net.iperf(10.0);
    println!("\nWIMPI node link (modelled iperf): {mbps:.0} Mbps — paper measured ≈220 Mbps");
}
