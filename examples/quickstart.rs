//! Quickstart: generate a small TPC-H database, build a query with the plan
//! API, run it, and inspect the work profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wimpi::engine::expr::{col, date, dec2};
use wimpi::engine::plan::{AggExpr, PlanBuilder};
use wimpi::engine::{execute_query, optimizer};
use wimpi::tpch::Generator;

fn main() {
    // 1. Generate TPC-H at scale factor 0.01 (≈ 60k lineitem rows).
    let catalog = Generator::new(0.01).generate_catalog().expect("generation succeeds");
    println!("tables: {}", catalog.names().collect::<Vec<_>>().join(", "));
    println!("lineitem rows: {}\n", catalog.table("lineitem").expect("registered").num_rows());

    // 2. Build TPC-H Q6 with the fluent plan API.
    let plan = PlanBuilder::scan("lineitem")
        .filter(
            col("l_shipdate")
                .gte(date("1994-01-01"))
                .and(col("l_shipdate").lt(date("1995-01-01")))
                .and(col("l_discount").between(
                    wimpi::storage::Value::Dec(
                        wimpi::storage::Decimal64::from_str_scale("0.05", 2).expect("const"),
                    ),
                    wimpi::storage::Value::Dec(
                        wimpi::storage::Decimal64::from_str_scale("0.07", 2).expect("const"),
                    ),
                ))
                .and(col("l_quantity").lt(dec2("24"))),
        )
        .aggregate(
            vec![],
            vec![AggExpr::sum(col("l_extendedprice").mul(col("l_discount")), "revenue")],
        )
        .build();

    // 3. Show what the optimizer does to it.
    let optimized = optimizer::optimize(plan.clone(), &catalog).expect("optimizes");
    println!("optimized plan:\n{}", optimized.explain());

    // 4. Execute, getting both the answer and the measured work.
    let (result, work) = execute_query(&plan, &catalog).expect("executes");
    println!("result:\n{}", result.to_text(5));
    println!(
        "work: {} cpu ops, {:.1} MB streamed, {} random accesses",
        work.cpu_ops,
        work.seq_bytes() as f64 / 1e6,
        work.rand_accesses
    );

    // 5. Price the same work on two of the paper's machines.
    for name in ["op-e5", "pi3b+"] {
        let hw = wimpi::hwsim::profile(name).expect("profile exists");
        let p = wimpi::hwsim::predict_all_cores(&hw, &work);
        println!(
            "predicted on {name:8}: {:.4} s ({})",
            p.total_s(),
            if p.memory_bound() { "memory-bound" } else { "compute-bound" }
        );
    }
}
