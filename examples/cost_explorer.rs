//! Cost explorer: sweep WIMPI cluster sizes for one query and find the
//! MSRP, hourly, and energy break-even points against the on-premises
//! servers — the analysis behind Figures 5–7.
//!
//! ```text
//! cargo run --release --example cost_explorer [query] [sf]
//! ```

use wimpi::analysis;
use wimpi::cluster::distribute::Strategy;
use wimpi::cluster::{ClusterConfig, WimpiCluster};
use wimpi::queries::query;

fn main() {
    let mut args = std::env::args().skip(1);
    let q: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let sf: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let sizes = [2u32, 4, 8, 12, 16, 20, 24];

    // Reference machine: op-e5, modelled on the same measured workload.
    let e5 = wimpi::hwsim::profile("op-e5").expect("profile exists");
    let full = wimpi::tpch::Generator::new(sf).generate_catalog().expect("generates");
    let (_, work) = wimpi::queries::run(&query(q), &full).expect("runs");
    let e5_time = wimpi::hwsim::predict_all_cores(&e5, &work).total_s();
    let e5_msrp = analysis::msrp(&e5).expect("on-prem msrp");
    let e5_tdp = e5.tdp_watts.expect("tdp");
    println!("Q{q} at SF {sf}: op-e5 predicted {e5_time:.4} s (MSRP ${e5_msrp}, {e5_tdp} W)\n");

    println!("nodes   wimpi-time   msrp-improvement   energy-improvement");
    let mut msrp_imps = Vec::new();
    for &n in &sizes {
        let cluster = WimpiCluster::build(ClusterConfig::new(n, sf)).expect("cluster builds");
        let run = cluster.run(&query(q), Strategy::PartialAggPushdown).expect("runs");
        let t = run.total_seconds();
        let msrp_imp = analysis::improvement(t, analysis::wimpi_msrp(n), e5_time, e5_msrp);
        let energy_imp = analysis::improvement(t, analysis::wimpi_power_w(n), e5_time, e5_tdp);
        msrp_imps.push(msrp_imp);
        println!("{n:>5}   {t:>9.4} s {msrp_imp:>17.2}x {energy_imp:>19.2}x");
    }
    match analysis::break_even_nodes(&sizes, &msrp_imps) {
        Some(n) => println!("\nMSRP break-even (≥1×) first reached at {n} nodes"),
        None => println!("\nthe server wins on MSRP at every tested size (the paper's Q13 case)"),
    }
}
