//! The WIMPI cluster end to end: partition TPC-H across simulated Raspberry
//! Pi nodes, run the choke-point queries with partial-aggregate pushdown,
//! and print the timing breakdown (slowest node / network / merge) — the
//! paper's §II-D2 experiment in miniature.
//!
//! ```text
//! cargo run --release --example wimpi_cluster [sf] [nodes]
//! ```

use wimpi::cluster::distribute::Strategy;
use wimpi::cluster::{ClusterConfig, WimpiCluster};
use wimpi::queries::{query, CHOKEPOINT_QUERIES};

fn main() {
    let mut args = std::env::args().skip(1);
    let sf: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    println!("building a {nodes}-node WIMPI cluster holding TPC-H SF {sf} …");
    let cluster = WimpiCluster::build(ClusterConfig::new(nodes, sf)).expect("cluster builds");
    let per_node = cluster.node_catalog(0).table("lineitem").expect("partition").num_rows();
    println!("≈ {per_node} lineitem rows per node\n");

    println!("query  nodes  slowest-node   network     merge     total   shipped");
    for &q in &CHOKEPOINT_QUERIES {
        let run = cluster
            .run(&query(q), Strategy::PartialAggPushdown)
            .unwrap_or_else(|e| panic!("Q{q} failed: {e}"));
        let slowest = run.node_seconds.iter().cloned().fold(0.0, f64::max);
        println!(
            "Q{q:<5} {:>5}  {slowest:>10.4}s {:>9.4}s {:>8.4}s {:>8.4}s {:>8} B",
            run.nodes_used,
            run.network_seconds,
            run.merge_seconds,
            run.total_seconds(),
            run.bytes_shipped,
        );
    }

    // The paper's §III-C3 anecdote: what happens when rows, not partial
    // aggregates, are shipped to the driver.
    println!("\nQ1 shipping strategies (the MonetDB distributed-mode anecdote):");
    for (label, strategy) in [
        ("partial-aggregate pushdown", Strategy::PartialAggPushdown),
        ("ship rows to driver", Strategy::ShipRows),
    ] {
        let run = cluster.run(&query(1), strategy).expect("runs");
        println!(
            "  {label:28} {:>10} B shipped, {:.4} s total",
            run.bytes_shipped,
            run.total_seconds()
        );
    }
}
