//! # wimpi
//!
//! Umbrella crate for the WIMPI reproduction of "The Case for In-Memory OLAP
//! on 'Wimpy' Nodes" (ICDE 2021). Re-exports every sub-crate so examples and
//! integration tests can use a single dependency.

pub use wimpi_analysis as analysis;
pub use wimpi_cluster as cluster;
pub use wimpi_core as core;
pub use wimpi_engine as engine;
pub use wimpi_hwsim as hwsim;
pub use wimpi_microbench as microbench;
pub use wimpi_obs as obs;
pub use wimpi_queries as queries;
pub use wimpi_sql as sql;
pub use wimpi_storage as storage;
pub use wimpi_strategies as strategies;
pub use wimpi_tpch as tpch;
