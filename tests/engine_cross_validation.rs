//! Cross-validation between the two independent implementations of the
//! choke-point queries: the engine (plan-built, optimized, interpreted) and
//! the hand-coded strategies. Agreement between them is strong evidence that
//! both compute the specification's answer.

use wimpi::queries::{query, run};
use wimpi::storage::Catalog;
use wimpi::strategies::{run as run_strategy, Paradigm};
use wimpi::tpch::Generator;

const SF: f64 = 0.01;

fn catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

#[test]
fn q1_engine_matches_strategies() {
    let cat = catalog();
    let (rel, _) = run(&query(1), &cat).expect("engine runs");
    // Recompute the strategy digest from the engine's own output: the group
    // checksum folds counts and sums identically.
    let strategy = run_strategy(1, Paradigm::DataCentric, &cat);
    assert_eq!(strategy.digest.rows as usize, rel.num_rows(), "group count");
    // Engine group totals must reconcile with the digest's total row count:
    let engine_rows: i64 =
        rel.column("count_order").expect("col").as_i64().expect("i64").iter().sum();
    // Recompute selected-row count directly from base data.
    let li = cat.table("lineitem").expect("lineitem");
    let ship = li.column_by_name("l_shipdate").expect("col");
    let ship = ship.as_date().expect("date");
    let cutoff = wimpi::storage::Date32::from_ymd(1998, 9, 2).0;
    let selected = ship.iter().filter(|&&d| d <= cutoff).count() as i64;
    assert_eq!(engine_rows, selected);
}

#[test]
fn q6_revenue_identical_across_implementations() {
    let cat = catalog();
    let (rel, _) = run(&query(6), &cat).expect("engine runs");
    let (m, s) = rel.column("revenue").expect("col").as_decimal().expect("dec");
    assert_eq!(s, 4, "ext(2) × disc(2) sums at scale 4");
    let engine_revenue = m[0] as i128;
    // All three paradigms agree with each other (asserted inside the
    // strategies crate) — here we close the loop against the engine.
    let dc = run_strategy(6, Paradigm::DataCentric, &cat);
    let hy = run_strategy(6, Paradigm::Hybrid, &cat);
    assert_eq!(dc.digest, hy.digest);
    // digest = revenue + selected_count; recover the count from base data.
    let li = cat.table("lineitem").expect("lineitem");
    let ship = li.column_by_name("l_shipdate").expect("col");
    let ship = ship.as_date().expect("date");
    let disc = li.column_by_name("l_discount").expect("col");
    let (disc, _) = disc.as_decimal().expect("dec");
    let qty = li.column_by_name("l_quantity").expect("col");
    let (qty, _) = qty.as_decimal().expect("dec");
    let lo = wimpi::storage::Date32::from_ymd(1994, 1, 1).0;
    let hi = wimpi::storage::Date32::from_ymd(1995, 1, 1).0;
    let selected = (0..ship.len())
        .filter(|&i| ship[i] >= lo && ship[i] < hi && (5..=7).contains(&disc[i]) && qty[i] < 2400)
        .count() as i128;
    assert_eq!(dc.digest.checksum - selected, engine_revenue);
}

#[test]
fn q4_counts_match() {
    let cat = catalog();
    let (rel, _) = run(&query(4), &cat).expect("engine runs");
    let engine_total: i64 =
        rel.column("order_count").expect("col").as_i64().expect("i64").iter().sum();
    let s = run_strategy(4, Paradigm::AccessAware, &cat);
    // digest checksum = Σ (rank+1) × count over 5 priorities; the plain sum
    // is recoverable only if we recompute — instead check group count and
    // that the digest is consistent across paradigms and engine row count.
    assert_eq!(s.digest.rows as usize, rel.num_rows());
    assert!(engine_total > 0);
}

#[test]
fn q13_histogram_matches() {
    let cat = catalog();
    let (rel, _) = run(&query(13), &cat).expect("engine runs");
    let s = run_strategy(13, Paradigm::Hybrid, &cat);
    assert_eq!(s.digest.rows as usize, rel.num_rows(), "distinct c_count buckets");
    // Engine: Σ custdist == customers; strategy digest covers the same rows.
    let total: i64 = rel.column("custdist").expect("col").as_i64().expect("i64").iter().sum();
    assert_eq!(total as usize, cat.table("customer").expect("customer").num_rows());
}

#[test]
fn optimizer_never_changes_answers() {
    // Run every single-plan query optimized and unoptimized.
    let cat = catalog();
    for n in [1usize, 3, 4, 5, 6, 12, 13, 14, 18, 19] {
        let qp = query(n);
        let plan = match &qp {
            wimpi::queries::QueryPlan::Single(p) => p.clone(),
            _ => continue,
        };
        let (opt, _) = wimpi::engine::execute_query(&plan, &cat).expect("optimized runs");
        let (raw, _) = wimpi::engine::exec::execute(&plan, &cat).expect("raw runs");
        assert_eq!(opt.num_rows(), raw.num_rows(), "Q{n} row count");
        for name in opt.names() {
            let a = opt.column(name).expect("col");
            let b = raw.column(name).expect("col");
            assert_eq!(a.as_ref(), b.as_ref(), "Q{n} column {name}");
        }
    }
}
