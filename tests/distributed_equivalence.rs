//! The cluster's core correctness invariant (DESIGN.md §7): for every
//! choke-point query and any cluster size or shipping strategy, the
//! distributed result equals the single-node result.

use proptest::prelude::*;
use wimpi::cluster::distribute::Strategy;
use wimpi::cluster::{ClusterConfig, WimpiCluster};
use wimpi::queries::{query, run, CHOKEPOINT_QUERIES};
use wimpi::storage::Catalog;
use wimpi::tpch::Generator;

const SF: f64 = 0.008;

fn reference_catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

/// Compares two relations cell by cell with a small float tolerance (avg is
/// exact-decimal single-node but sum/count-composed when distributed).
fn assert_equivalent(q: usize, a: &wimpi::engine::Relation, b: &wimpi::engine::Relation) {
    assert_eq!(a.num_rows(), b.num_rows(), "Q{q} row count");
    assert_eq!(a.num_columns(), b.num_columns(), "Q{q} column count");
    let names: Vec<&str> = a.names().collect();
    for row in 0..a.num_rows() {
        for name in &names {
            let va = a.value(row, name).expect("cell");
            let vb = b.value(row, name).expect("cell");
            match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => {
                    let tol = 1e-9 * x.abs().max(1.0);
                    assert!(
                        (x - y).abs() <= tol,
                        "Q{q} row {row} col {name}: {x} vs {y}"
                    );
                }
                _ => assert_eq!(
                    va, vb,
                    "Q{q} row {row} col {name} mismatch"
                ),
            }
        }
    }
}

#[test]
fn every_chokepoint_query_distributes_correctly() {
    let reference = reference_catalog();
    let cluster = WimpiCluster::build(ClusterConfig::new(5, SF)).expect("cluster builds");
    for &q in &CHOKEPOINT_QUERIES {
        let (expected, _) = run(&query(q), &reference).expect("single-node runs");
        let dist = cluster
            .run(&query(q), Strategy::PartialAggPushdown)
            .unwrap_or_else(|e| panic!("Q{q} distributed failed: {e}"));
        assert_equivalent(q, &dist.result, &expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any cluster size and either shipping strategy produce the
    /// single-node answer.
    #[test]
    fn distribution_is_size_and_strategy_invariant(
        nodes in 1u32..9,
        strategy_ship in any::<bool>(),
        qi in 0usize..CHOKEPOINT_QUERIES.len(),
    ) {
        let q = CHOKEPOINT_QUERIES[qi];
        let strategy = if strategy_ship { Strategy::ShipRows } else { Strategy::PartialAggPushdown };
        let reference = reference_catalog();
        let (expected, _) = run(&query(q), &reference).expect("single-node runs");
        let cluster = WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("builds");
        let dist = cluster.run(&query(q), strategy).expect("distributed runs");
        assert_equivalent(q, &dist.result, &expected);
    }
}

#[test]
fn scalar_results_survive_distribution_exactly() {
    // Q6's single decimal output must be bit-exact, not just within
    // tolerance: sums of mantissas are associative.
    let reference = reference_catalog();
    let (expected, _) = run(&query(6), &reference).expect("runs");
    let (m_ref, s_ref) = expected.column("revenue").expect("col").as_decimal().expect("dec");
    for nodes in [2u32, 3, 7] {
        let cluster = WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("builds");
        let dist = cluster.run(&query(6), Strategy::PartialAggPushdown).expect("runs");
        let col = dist.result.column("revenue").expect("col");
        let (m, s) = col.as_decimal().expect("dec");
        assert_eq!((m, s), (m_ref, s_ref), "{nodes} nodes");
    }
}

#[test]
fn timing_metadata_is_consistent() {
    let cluster = WimpiCluster::build(ClusterConfig::new(3, SF)).expect("builds");
    let dist = cluster
        .run(&query(1), Strategy::PartialAggPushdown)
        .expect("runs");
    assert_eq!(dist.node_seconds.len(), 3);
    assert_eq!(dist.node_profiles.len(), 3);
    assert!(dist.node_seconds.iter().all(|&t| t > 0.0));
    assert!(dist.total_seconds() >= dist.node_seconds.iter().cloned().fold(0.0, f64::max));
    assert!(dist.bytes_shipped > 0);
    // Q1's partials are four groups per node — tiny.
    assert!(dist.bytes_shipped < 100_000, "partials stay small: {}", dist.bytes_shipped);
}
