//! The cluster's core correctness invariant (DESIGN.md §7): for every
//! choke-point query and any cluster size or shipping strategy, the
//! distributed result equals the single-node result.

use proptest::prelude::*;
use wimpi::cluster::distribute::Strategy;
use wimpi::cluster::faults::{FaultKind, FaultPlan};
use wimpi::cluster::{ClusterConfig, WimpiCluster};
use wimpi::queries::{query, run, CHOKEPOINT_QUERIES};
use wimpi::storage::Catalog;
use wimpi::tpch::Generator;

const SF: f64 = 0.008;

fn reference_catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

/// Compares two relations cell by cell with a small float tolerance (avg is
/// exact-decimal single-node but sum/count-composed when distributed).
fn assert_equivalent(q: usize, a: &wimpi::engine::Relation, b: &wimpi::engine::Relation) {
    assert_eq!(a.num_rows(), b.num_rows(), "Q{q} row count");
    assert_eq!(a.num_columns(), b.num_columns(), "Q{q} column count");
    let names: Vec<&str> = a.names().collect();
    for row in 0..a.num_rows() {
        for name in &names {
            let va = a.value(row, name).expect("cell");
            let vb = b.value(row, name).expect("cell");
            match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => {
                    let tol = 1e-9 * x.abs().max(1.0);
                    assert!((x - y).abs() <= tol, "Q{q} row {row} col {name}: {x} vs {y}");
                }
                _ => assert_eq!(va, vb, "Q{q} row {row} col {name} mismatch"),
            }
        }
    }
}

#[test]
fn every_chokepoint_query_distributes_correctly() {
    let reference = reference_catalog();
    let cluster = WimpiCluster::build(ClusterConfig::new(5, SF)).expect("cluster builds");
    for &q in &CHOKEPOINT_QUERIES {
        let (expected, _) = run(&query(q), &reference).expect("single-node runs");
        let dist = cluster
            .run(&query(q), Strategy::PartialAggPushdown)
            .unwrap_or_else(|e| panic!("Q{q} distributed failed: {e}"));
        assert_equivalent(q, &dist.result, &expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any cluster size and either shipping strategy produce the
    /// single-node answer.
    #[test]
    fn distribution_is_size_and_strategy_invariant(
        nodes in 1u32..9,
        strategy_ship in any::<bool>(),
        qi in 0usize..CHOKEPOINT_QUERIES.len(),
    ) {
        let q = CHOKEPOINT_QUERIES[qi];
        let strategy = if strategy_ship { Strategy::ShipRows } else { Strategy::PartialAggPushdown };
        let reference = reference_catalog();
        let (expected, _) = run(&query(q), &reference).expect("single-node runs");
        let cluster = WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("builds");
        let dist = cluster.run(&query(q), strategy).expect("distributed runs");
        assert_equivalent(q, &dist.result, &expected);
    }
}

#[test]
fn scalar_results_survive_distribution_exactly() {
    // Q6's single decimal output must be bit-exact, not just within
    // tolerance: sums of mantissas are associative.
    let reference = reference_catalog();
    let (expected, _) = run(&query(6), &reference).expect("runs");
    let (m_ref, s_ref) = expected.column("revenue").expect("col").as_decimal().expect("dec");
    for nodes in [2u32, 3, 7] {
        let cluster = WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("builds");
        let dist = cluster.run(&query(6), Strategy::PartialAggPushdown).expect("runs");
        let col = dist.result.column("revenue").expect("col");
        let (m, s) = col.as_decimal().expect("dec");
        assert_eq!((m, s), (m_ref, s_ref), "{nodes} nodes");
    }
}

#[test]
fn single_node_failure_recovers_at_every_paper_scale() {
    // The tentpole acceptance invariant: at N ∈ {4, 8, 24}, any single
    // permanent node failure leaves every choke-point query answering
    // exactly what the fault-free cluster answers, with the recovery work
    // priced in simulated time.
    for nodes in [4u32, 8, 24] {
        let cluster = WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("builds");
        // Crashing node 0 exercises both recovery paths: lineitem queries
        // reassign its partition, and single-node Q13 re-routes off the
        // default executor. The chaos property below sweeps other victims.
        let victim = 0;
        let plan = FaultPlan::crash(victim);
        for &q in &CHOKEPOINT_QUERIES {
            let healthy = cluster
                .run(&query(q), Strategy::PartialAggPushdown)
                .unwrap_or_else(|e| panic!("Q{q}@{nodes} healthy failed: {e}"));
            let faulted = cluster
                .run_with_faults(&query(q), Strategy::PartialAggPushdown, &plan)
                .unwrap_or_else(|e| panic!("Q{q}@{nodes} faulted failed: {e}"));
            assert_equivalent(q, &faulted.result, &healthy.result);
            assert!(
                faulted.recovery.recovery_seconds > 0.0,
                "Q{q}@{nodes}: recovery must cost simulated time"
            );
            assert!(!faulted.recovery.degraded, "Q{q}@{nodes}: full answer expected");
            if q != 13 {
                // Q13 never touches lineitem; everything else reassigns
                // the victim's partition and pays for it end-to-end.
                assert_eq!(
                    faulted.recovery.reassignments.len(),
                    1,
                    "Q{q}@{nodes}: exactly one partition moves"
                );
                assert_eq!(faulted.recovery.reassignments[0].partition, victim);
                assert!(
                    faulted.total_seconds() > healthy.total_seconds(),
                    "Q{q}@{nodes}: recovery is not free"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chaos property: any seeded fault plan (crashes, transient OOMs,
    /// stragglers, degraded NICs on up to three distinct nodes) recovers to
    /// the fault-free answer for every choke-point query.
    #[test]
    fn recovered_results_equal_fault_free_under_random_faults(
        seed in 0u64..1000,
        nodes in 2u32..7,
        qi in 0usize..CHOKEPOINT_QUERIES.len(),
    ) {
        let q = CHOKEPOINT_QUERIES[qi];
        let plan = FaultPlan::random(seed, nodes);
        let cluster = WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("builds");
        let healthy = cluster
            .run(&query(q), Strategy::PartialAggPushdown)
            .expect("fault-free runs");
        let faulted = cluster
            .run_with_faults(&query(q), Strategy::PartialAggPushdown, &plan)
            .unwrap_or_else(|e| panic!("Q{q} under {plan:?} failed: {e}"));
        assert_equivalent(q, &faulted.result, &healthy.result);
        prop_assert!(!faulted.recovery.degraded);
        prop_assert!((faulted.recovery.coverage - 1.0).abs() < 1e-12);
        prop_assert!(
            faulted.total_seconds() >= healthy.total_seconds() - 1e-9,
            "faults cannot make the cluster faster: {} vs {}",
            faulted.total_seconds(),
            healthy.total_seconds()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Silent-corruption chaos: a seeded bit-flip on any node is always
    /// detected, deterministically repaired, and the repaired answer equals
    /// the fault-free answer bit-exactly (same Relation, not just within
    /// tolerance — repair re-executes on clean data).
    #[test]
    fn seeded_bit_flips_repair_to_the_exact_fault_free_answer(
        seed in 0u64..500,
        nodes in 2u32..6,
        qi in 0usize..CHOKEPOINT_QUERIES.len(),
    ) {
        let q = CHOKEPOINT_QUERIES[qi];
        let mut rng = seed;
        let mut draw = |m: u64| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng >> 33) % m
        };
        // Q13 never touches lineitem and runs on the default executor
        // (node 0); a flip planted elsewhere would never fire.
        let victim = if q == 13 { 0 } else { draw(nodes as u64) as usize };
        let chunks = draw(3) as u32 + 1;
        let bits = draw(4) as u32 + 1;
        let plan = FaultPlan::none()
            .with(victim, FaultKind::BitFlip { chunks, bits_per_chunk: bits });
        let cluster = WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("builds");
        let healthy = cluster
            .run(&query(q), Strategy::PartialAggPushdown)
            .expect("fault-free runs");
        let faulted = cluster
            .run_with_faults(&query(q), Strategy::PartialAggPushdown, &plan)
            .unwrap_or_else(|e| panic!("Q{q} under {plan:?} failed: {e}"));
        // Bit-exact, not tolerance-based: the repair path re-executes on
        // pristine columns, so even floats must match exactly.
        prop_assert_eq!(&faulted.result, &healthy.result);
        prop_assert!(faulted.recovery.integrity_detected >= 1, "corruption must be detected");
        prop_assert_eq!(
            faulted.recovery.integrity_repaired,
            faulted.recovery.integrity_detected,
            "every detected violation is repaired"
        );
        prop_assert!(!faulted.recovery.degraded);
        prop_assert!((faulted.recovery.coverage - 1.0).abs() < 1e-12);
        prop_assert!(
            faulted.total_seconds() > healthy.total_seconds(),
            "verification + repair cannot be free"
        );
    }
}

#[test]
fn verified_scans_stay_bit_identical_across_thread_counts() {
    // Scan-time verification must not perturb morsel-level determinism: with
    // checksums on, results and work profiles are bit-identical at 1, 2, and
    // 4 threads, and a corrupt chunk is detected at every thread count.
    use wimpi::engine::EngineConfig;
    use wimpi::queries::run_with;
    use wimpi::storage::integrity::flip_bits;
    let mut catalog = reference_catalog();
    catalog.seal_integrity();
    let baseline: Vec<_> = CHOKEPOINT_QUERIES
        .iter()
        .map(|&q| {
            let cfg = EngineConfig::serial().with_verify_checksums(true);
            run_with(&query(q), &catalog, &cfg)
                .unwrap_or_else(|e| panic!("Q{q} serial verified failed: {e}"))
        })
        .collect();
    for threads in [2usize, 4] {
        for (i, &q) in CHOKEPOINT_QUERIES.iter().enumerate() {
            let cfg = EngineConfig::with_threads(threads).with_verify_checksums(true);
            let (rel, work) = run_with(&query(q), &catalog, &cfg)
                .unwrap_or_else(|e| panic!("Q{q}@{threads}t verified failed: {e}"));
            assert_eq!(rel, baseline[i].0, "Q{q}@{threads} threads: result drifted");
            assert_eq!(work, baseline[i].1, "Q{q}@{threads} threads: work profile drifted");
        }
    }
    // One flipped bit in lineitem's quantity column fails Q6 at every
    // thread count with the same typed violation.
    let clean = catalog.table("lineitem").expect("registered");
    let qty = clean.schema().index_of("l_quantity").expect("column exists");
    let rows = clean.num_rows();
    let dirty_col = flip_bits(clean.column(qty).as_ref(), 0..rows.min(2048), 1, 0xC0FFEE);
    let dirty = (**clean).clone().with_replaced_column(qty, dirty_col).expect("replace");
    let mut corrupted = catalog.clone();
    corrupted.register("lineitem", dirty);
    for threads in [1usize, 2, 4] {
        let cfg = EngineConfig::with_threads(threads).with_verify_checksums(true);
        let err = run_with(&query(6), &corrupted, &cfg).expect_err("corruption must be detected");
        match err {
            wimpi::engine::EngineError::Integrity { table, column, .. } => {
                assert_eq!((table.as_str(), column.as_str()), ("lineitem", "l_quantity"));
            }
            other => panic!("expected integrity violation at {threads} threads, got {other}"),
        }
    }
}

#[test]
fn timing_metadata_is_consistent() {
    let cluster = WimpiCluster::build(ClusterConfig::new(3, SF)).expect("builds");
    let dist = cluster.run(&query(1), Strategy::PartialAggPushdown).expect("runs");
    assert_eq!(dist.node_seconds.len(), 3);
    assert_eq!(dist.node_profiles.len(), 3);
    assert!(dist.node_seconds.iter().all(|&t| t > 0.0));
    assert!(dist.total_seconds() >= dist.node_seconds.iter().cloned().fold(0.0, f64::max));
    assert!(dist.bytes_shipped > 0);
    // Q1's partials are four groups per node — tiny.
    assert!(dist.bytes_shipped < 100_000, "partials stay small: {}", dist.bytes_shipped);
}
