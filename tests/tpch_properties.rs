//! Property-based tests for the TPC-H generator: spec invariants must hold
//! for arbitrary scale factors and chunkings.

use proptest::prelude::*;
use std::collections::HashSet;
use wimpi::tpch::gen::{chunk_range, order_key_for_index, suppliers_of_part};
use wimpi::tpch::Generator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Chunk ranges partition [0, total) exactly, for any chunking.
    #[test]
    fn chunks_partition_exactly(total in 0u64..5_000_000, nchunks in 1u64..64) {
        let mut cursor = 0;
        for c in 0..nchunks {
            let (lo, hi) = chunk_range(total, c, nchunks);
            prop_assert_eq!(lo, cursor);
            prop_assert!(hi >= lo);
            cursor = hi;
        }
        prop_assert_eq!(cursor, total);
    }

    /// Order keys are strictly increasing in the row index and use exactly
    /// 8 of every 32 key values (spec §4.2.3 sparseness).
    #[test]
    fn order_keys_sparse_and_monotone(idx in 0u64..10_000_000) {
        let k = order_key_for_index(idx);
        let next = order_key_for_index(idx + 1);
        prop_assert!(next > k);
        // Key offsets within a 32-block are 1..=8.
        prop_assert!((1..=8).contains(&((k - 1) % 32 + 1)));
    }

    /// The four suppliers of any part are distinct and in range, for any
    /// plausible supplier count.
    #[test]
    fn part_suppliers_distinct(partkey in 1i64..1_000_000, suppliers in 4i64..50_000) {
        let s = suppliers_of_part(partkey, suppliers);
        let set: HashSet<i64> = s.iter().copied().collect();
        prop_assert_eq!(set.len(), 4, "suppliers {:?}", s);
        prop_assert!(s.iter().all(|&x| (1..=suppliers).contains(&x)));
    }
}

proptest! {
    // Generation is expensive: few cases, tiny SFs.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Foreign keys hold at any tiny scale factor: every lineitem references
    /// an existing order, part, and (part, supplier) pair.
    #[test]
    fn referential_integrity(sf_millis in 1u64..6) {
        let sf = sf_millis as f64 / 1000.0;
        let g = Generator::new(sf);
        let cat = g.generate_catalog().expect("generates");
        let orders = cat.table("orders").expect("orders");
        let okeys: HashSet<i64> = orders
            .column_by_name("o_orderkey").expect("col")
            .as_i64().expect("i64").iter().copied().collect();
        let ps = cat.table("partsupp").expect("partsupp");
        let ps_pairs: HashSet<(i64, i64)> = {
            let p = ps.column_by_name("ps_partkey").expect("col");
            let p = p.as_i64().expect("i64");
            let s = ps.column_by_name("ps_suppkey").expect("col");
            let s = s.as_i64().expect("i64");
            p.iter().copied().zip(s.iter().copied()).collect()
        };
        let li = cat.table("lineitem").expect("lineitem");
        let lo = li.column_by_name("l_orderkey").expect("col");
        let lo = lo.as_i64().expect("i64");
        let lp = li.column_by_name("l_partkey").expect("col");
        let lp = lp.as_i64().expect("i64");
        let ls = li.column_by_name("l_suppkey").expect("col");
        let ls = ls.as_i64().expect("i64");
        for i in 0..li.num_rows() {
            prop_assert!(okeys.contains(&lo[i]), "dangling orderkey {}", lo[i]);
            prop_assert!(
                ps_pairs.contains(&(lp[i], ls[i])),
                "lineitem ({}, {}) not stocked per partsupp",
                lp[i], ls[i]
            );
        }
        // Every order has at least one lineitem (1–7 per spec).
        let li_orders: HashSet<i64> = lo.iter().copied().collect();
        prop_assert_eq!(li_orders.len(), orders.num_rows());
    }

    /// Generation is deterministic: same SF → identical bytes.
    #[test]
    fn generation_deterministic(sf_millis in 1u64..4) {
        let sf = sf_millis as f64 / 1000.0;
        let a = Generator::new(sf).generate_catalog().expect("generates");
        let b = Generator::new(sf).generate_catalog().expect("generates");
        for name in ["lineitem", "orders", "customer"] {
            let ta = a.table(name).expect("table");
            let tb = b.table(name).expect("table");
            prop_assert_eq!(ta.num_rows(), tb.num_rows());
            for col in 0..ta.num_columns() {
                prop_assert_eq!(
                    ta.column(col).as_ref(), tb.column(col).as_ref(),
                    "{} column {} differs", name, col
                );
            }
        }
    }
}

#[test]
fn decimal_domains_follow_spec() {
    let cat = Generator::new(0.005).generate_catalog().expect("generates");
    let li = cat.table("lineitem").expect("lineitem");
    let (qty, s) = {
        let c = li.column_by_name("l_quantity").expect("col");
        let (m, s) = c.as_decimal().expect("dec");
        (m.to_vec(), s)
    };
    assert_eq!(s, 2);
    assert!(qty.iter().all(|&q| (100..=5000).contains(&q)), "quantity in [1, 50]");
    let disc = li.column_by_name("l_discount").expect("col");
    let (disc, _) = disc.as_decimal().expect("dec");
    assert!(disc.iter().all(|&d| (0..=10).contains(&d)), "discount in [0.00, 0.10]");
    let tax = li.column_by_name("l_tax").expect("col");
    let (tax, _) = tax.as_decimal().expect("dec");
    assert!(tax.iter().all(|&t| (0..=8).contains(&t)), "tax in [0.00, 0.08]");
}

#[test]
fn date_windows_follow_spec() {
    let cat = Generator::new(0.005).generate_catalog().expect("generates");
    let orders = cat.table("orders").expect("orders");
    let od = orders.column_by_name("o_orderdate").expect("col");
    let od = od.as_date().expect("date");
    let lo = wimpi::storage::Date32::from_ymd(1992, 1, 1).0;
    let hi = wimpi::storage::Date32::from_ymd(1998, 8, 2).0;
    assert!(od.iter().all(|&d| (lo..=hi).contains(&d)));
}
