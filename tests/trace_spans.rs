//! Operator-trace invariants: a trace is an *audit* of the work profile,
//! not a parallel bookkeeping system that can drift from it.
//!
//! Three properties, checked end to end through the public surfaces:
//!
//! 1. The root span's inclusive counters equal the query's [`WorkProfile`]
//!    exactly (tracing observes execution; it never re-derives costs).
//! 2. The span tree's *structure* — operators, rows, counters, morsel
//!    children — is identical at every thread count; only wall times and
//!    worker ids may differ (see `Span::structure_eq`).
//! 3. The emitted JSON round-trips through `wimpi-core`'s independent
//!    hand-rolled checker, including the Σ self == root-total invariant.

use wimpi::core::{validate_trace_document, validate_trace_json};
use wimpi::engine::EngineConfig;
use wimpi::queries::{query, run_traced, run_with};
use wimpi::sql::{explain_analyze, strip_explain_analyze};
use wimpi::storage::Catalog;
use wimpi::tpch::Generator;

const SF: f64 = 0.01;

/// Q1 (agg-heavy), Q6 (filter-heavy), Q9 (join-heavy), Q15 (two-phase
/// scalar subquery — the synthetic `query[two-phase]` root).
const TRACED: [usize; 4] = [1, 6, 9, 15];

fn catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

#[test]
fn root_span_counters_equal_work_profile() {
    let cat = catalog();
    for qn in TRACED {
        let (_, prof, span) = run_traced(&query(qn), &cat, &EngineConfig::serial())
            .unwrap_or_else(|e| panic!("Q{qn} traces: {e}"));
        assert_eq!(
            span.counters,
            prof.counter_pairs(),
            "Q{qn}: root span counters must be the work profile, verbatim"
        );
        assert_eq!(span.rows_out, prof.rows_out, "Q{qn}: root rows_out");
        assert!(span.len() > 1, "Q{qn}: trace must have operator children");
    }
}

#[test]
fn tracing_never_changes_results_or_profiles() {
    let cat = catalog();
    for qn in TRACED {
        let cfg = EngineConfig::with_threads(2);
        let (rel0, prof0) = run_with(&query(qn), &cat, &cfg).expect("untraced run");
        let (rel, prof, _) = run_traced(&query(qn), &cat, &cfg).expect("traced run");
        assert_eq!(rel, rel0, "Q{qn}: tracing changed the result");
        assert_eq!(prof, prof0, "Q{qn}: tracing changed the work profile");
    }
}

#[test]
fn trace_structure_is_thread_count_invariant() {
    let cat = catalog();
    for qn in TRACED {
        let spans: Vec<_> = [1, 2, 4]
            .iter()
            .map(|&t| {
                let cfg = EngineConfig::with_threads(t);
                run_traced(&query(qn), &cat, &cfg).expect("traced run").2
            })
            .collect();
        for (i, s) in spans.iter().enumerate().skip(1) {
            assert!(
                s.structure_eq(&spans[0]),
                "Q{qn}: trace structure diverged between 1 thread and {} threads:\n{}\nvs\n{}",
                [1, 2, 4][i],
                spans[0].render(),
                s.render()
            );
        }
    }
}

#[test]
fn emitted_json_passes_the_independent_checker() {
    let cat = catalog();
    for qn in TRACED {
        let (_, _, span) =
            run_traced(&query(qn), &cat, &EngineConfig::with_threads(4)).expect("traced run");
        let stats = validate_trace_json(&span.to_json())
            .unwrap_or_else(|e| panic!("Q{qn} trace rejected: {e}"));
        assert_eq!(stats.spans, span.len(), "Q{qn}: checker span count");
    }
    let doc = wimpi_bench::trace_document(SF, &[1, 6], &cat, &EngineConfig::serial());
    let per_query = validate_trace_document(&doc).expect("document validates");
    assert_eq!(per_query.len(), 2);
    assert_eq!(per_query[0].0, 1);
    assert_eq!(per_query[1].0, 6);
}

#[test]
fn pruned_counters_reconcile_through_the_trace_checker() {
    // Zone-map pruning surfaces `pruned_morsels`/`pruned_bytes` through the
    // generic counter pairs; the root span must still equal the profile
    // verbatim and the emitted JSON must satisfy the independent checker's
    // Σ self == root-total invariant — with skips actually firing.
    // Re-seal on a fine grid: SF 0.01 lineitem fits one default-grid chunk.
    let mut cat = wimpi::tpch::clustered_catalog(SF).expect("clustered catalog generates");
    let names: Vec<String> = cat.names().map(String::from).collect();
    for name in names {
        let fine = cat.table(&name).unwrap().as_ref().clone().with_zone_maps_at(1024);
        cat.register(&name, fine);
    }
    for qn in [6, 14] {
        let cfg = EngineConfig::with_threads(2).with_morsel_rows(4096).with_prune_scans(true);
        let (rel, prof, span) = run_traced(&query(qn), &cat, &cfg)
            .unwrap_or_else(|e| panic!("Q{qn} traces pruned: {e}"));
        let (rel0, _) = run_with(&query(qn), &cat, &cfg.with_prune_scans(false)).expect("baseline");
        assert_eq!(rel, rel0, "Q{qn}: pruning changed the traced result");
        assert_eq!(span.counters, prof.counter_pairs(), "Q{qn}: root counters == profile");
        validate_trace_json(&span.to_json()).unwrap_or_else(|e| panic!("Q{qn} rejected: {e}"));
    }
    // Non-vacuous: the clustered fine-morsel Q6 really skipped work.
    let cfg = EngineConfig::with_threads(2).with_morsel_rows(4096).with_prune_scans(true);
    let (_, prof, _) = run_traced(&query(6), &cat, &cfg).expect("traced run");
    assert!(prof.pruned_morsels > 0, "Q6 must skip morsels on the clustered catalog");
}

#[test]
fn explain_analyze_traces_sql() {
    let cat = catalog();
    let sql = "EXPLAIN ANALYZE SELECT l_returnflag, count(*) AS n \
               FROM lineitem GROUP BY l_returnflag";
    let inner = strip_explain_analyze(sql).expect("prefix recognized");
    let (rel, prof, span) = explain_analyze(inner, &cat).expect("explain analyze runs");
    assert_eq!(rel.num_rows() as u64, prof.rows_out);
    assert_eq!(span.counters, prof.counter_pairs());
    let text = span.render();
    assert!(text.contains("aggregate"), "span tree names the aggregate:\n{text}");
    assert!(text.contains("scan[lineitem]"), "span tree names the scan:\n{text}");
}
