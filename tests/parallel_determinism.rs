//! Parallel determinism suite: the morsel-driven engine must produce
//! bit-identical results and work profiles at any thread count.
//!
//! Morsel boundaries depend only on the row count and the configured morsel
//! size — never on the thread count — and per-morsel partials merge in
//! morsel order, so every float reduction tree, group order, and join chain
//! is the serial one (DESIGN.md §execution). The full 22-query sweep runs
//! in release CI (`cargo test --workspace --release`); debug runs keep the
//! Q1/Q6 smoke.

use wimpi::engine::{execute_query_with, EngineConfig, PlanBuilder, QueryContext, SortKey};
use wimpi::queries::{query, run_governed, run_with};
use wimpi::storage::{Catalog, Value};
use wimpi::tpch::Generator;

const SF: f64 = 0.01;

fn catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

/// Serial vs 2- and 4-thread runs, at the default morsel size and at a tiny
/// one that forces many morsels per kernel even at SF 0.01.
fn assert_bit_exact(qn: usize, cat: &Catalog) {
    let q = query(qn);
    for morsel_rows in [wimpi::engine::exec::parallel::DEFAULT_MORSEL_ROWS, 4096] {
        let serial_cfg = EngineConfig::serial().with_morsel_rows(morsel_rows);
        let (rel0, prof0) = run_with(&q, cat, &serial_cfg).expect("serial run");
        for threads in [2, 4] {
            let cfg = EngineConfig::with_threads(threads).with_morsel_rows(morsel_rows);
            let (rel, prof) = run_with(&q, cat, &cfg).expect("parallel run");
            assert_eq!(
                rel, rel0,
                "Q{qn}: result diverged at {threads} threads, morsel {morsel_rows}"
            );
            assert_eq!(
                prof, prof0,
                "Q{qn}: work profile diverged at {threads} threads, morsel {morsel_rows}"
            );
        }
    }
}

#[test]
fn q1_q6_parallel_bit_exact_smoke() {
    let cat = catalog();
    assert_bit_exact(1, &cat);
    assert_bit_exact(6, &cat);
}

/// Regression for the sort key-representation sweep: a multi-key sort that
/// mixes dictionary-ranked string keys with a *descending* decimal key must
/// order correctly and stay bit-exact across thread counts. Exercises the
/// Rank (u32) and I64 (negated for DESC) key representations together.
#[test]
fn multi_key_string_and_decimal_desc_sort() {
    let cat = catalog();
    let plan = PlanBuilder::scan("lineitem")
        .sort(vec![
            SortKey::asc("l_returnflag"),
            SortKey::asc("l_linestatus"),
            SortKey::desc("l_extendedprice"),
        ])
        .build();
    let (rel0, prof0) = execute_query_with(&plan, &cat, &EngineConfig::serial()).expect("serial");
    for threads in [2, 4] {
        let cfg = EngineConfig::with_threads(threads);
        let (rel, prof) = execute_query_with(&plan, &cat, &cfg).expect("parallel run");
        assert_eq!(rel, rel0, "sort result diverged at {threads} threads");
        assert_eq!(prof, prof0, "sort work profile diverged at {threads} threads");
    }
    // Independently verify the ordering: (flag asc, status asc, price desc).
    let key = |row: usize| -> (String, String, f64) {
        let s = |name: &str| match rel0.value(row, name).expect("column present") {
            Value::Str(s) => s,
            v => panic!("expected string, got {v:?}"),
        };
        let price = match rel0.value(row, "l_extendedprice").expect("column present") {
            Value::Dec(d) => d.to_f64(),
            v => panic!("expected decimal, got {v:?}"),
        };
        (s("l_returnflag"), s("l_linestatus"), -price)
    };
    let mut prev = key(0);
    for row in 1..rel0.num_rows() {
        let cur = key(row);
        assert!(prev <= cur, "rows {row} out of order: {prev:?} then {cur:?}");
        prev = cur;
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full 22-query sweep; run with --release")]
fn all_22_queries_parallel_bit_exact() {
    let cat = catalog();
    for qn in 1..=22 {
        assert_bit_exact(qn, &cat);
    }
}

/// The determinism guarantee survives memory governance: a budget tight
/// enough to force Grace-partitioned builds (64 KB at SF 0.01) must yield
/// the same relation and work profile at every thread count, because
/// reservation decisions are taken once on the coordinator — never raced by
/// workers.
#[test]
fn budget_constrained_runs_stay_parallel_bit_exact() {
    let cat = catalog();
    for qn in [1usize, 3, 6, 13] {
        let q = query(qn);
        let serial_ctx = QueryContext::with_budget(64 << 10);
        let (rel0, prof0) = run_governed(&q, &cat, &EngineConfig::serial(), &serial_ctx)
            .expect("budgeted serial run");
        for threads in [2, 4] {
            let ctx = QueryContext::with_budget(64 << 10);
            let cfg = EngineConfig::with_threads(threads);
            let (rel, prof) = run_governed(&q, &cat, &cfg, &ctx).expect("budgeted parallel run");
            assert_eq!(rel, rel0, "Q{qn}: budgeted result diverged at {threads} threads");
            assert_eq!(prof, prof0, "Q{qn}: budgeted profile diverged at {threads} threads");
        }
    }
}
