//! Parallel determinism suite: the morsel-driven engine must produce
//! bit-identical results and work profiles at any thread count.
//!
//! Morsel boundaries depend only on the row count and the configured morsel
//! size — never on the thread count — and per-morsel partials merge in
//! morsel order, so every float reduction tree, group order, and join chain
//! is the serial one (DESIGN.md §execution). The full 22-query sweep runs
//! in release CI (`cargo test --workspace --release`); debug runs keep the
//! Q1/Q6 smoke.

use wimpi::engine::{
    execute_query_with, EngineConfig, Executor, PlanBuilder, QueryContext, SortKey,
};
use wimpi::queries::{query, run_governed, run_with};
use wimpi::storage::{Catalog, Value};
use wimpi::tpch::Generator;

const SF: f64 = 0.01;

fn catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

/// Serial vs 2- and 4-thread runs, at the default morsel size and at a tiny
/// one that forces many morsels per kernel even at SF 0.01.
fn assert_bit_exact(qn: usize, cat: &Catalog) {
    let q = query(qn);
    for morsel_rows in [wimpi::engine::exec::parallel::DEFAULT_MORSEL_ROWS, 4096] {
        let serial_cfg = EngineConfig::serial().with_morsel_rows(morsel_rows);
        let (rel0, prof0) = run_with(&q, cat, &serial_cfg).expect("serial run");
        for threads in [2, 4] {
            let cfg = EngineConfig::with_threads(threads).with_morsel_rows(morsel_rows);
            let (rel, prof) = run_with(&q, cat, &cfg).expect("parallel run");
            assert_eq!(
                rel, rel0,
                "Q{qn}: result diverged at {threads} threads, morsel {morsel_rows}"
            );
            assert_eq!(
                prof, prof0,
                "Q{qn}: work profile diverged at {threads} threads, morsel {morsel_rows}"
            );
        }
    }
}

#[test]
fn q1_q6_parallel_bit_exact_smoke() {
    let cat = catalog();
    assert_bit_exact(1, &cat);
    assert_bit_exact(6, &cat);
}

/// Regression for the sort key-representation sweep: a multi-key sort that
/// mixes dictionary-ranked string keys with a *descending* decimal key must
/// order correctly and stay bit-exact across thread counts. Exercises the
/// Rank (u32) and I64 (negated for DESC) key representations together.
#[test]
fn multi_key_string_and_decimal_desc_sort() {
    let cat = catalog();
    let plan = PlanBuilder::scan("lineitem")
        .sort(vec![
            SortKey::asc("l_returnflag"),
            SortKey::asc("l_linestatus"),
            SortKey::desc("l_extendedprice"),
        ])
        .build();
    let (rel0, prof0) = execute_query_with(&plan, &cat, &EngineConfig::serial()).expect("serial");
    for threads in [2, 4] {
        let cfg = EngineConfig::with_threads(threads);
        let (rel, prof) = execute_query_with(&plan, &cat, &cfg).expect("parallel run");
        assert_eq!(rel, rel0, "sort result diverged at {threads} threads");
        assert_eq!(prof, prof0, "sort work profile diverged at {threads} threads");
    }
    // Independently verify the ordering: (flag asc, status asc, price desc).
    let key = |row: usize| -> (String, String, f64) {
        let s = |name: &str| match rel0.value(row, name).expect("column present") {
            Value::Str(s) => s,
            v => panic!("expected string, got {v:?}"),
        };
        let price = match rel0.value(row, "l_extendedprice").expect("column present") {
            Value::Dec(d) => d.to_f64(),
            v => panic!("expected decimal, got {v:?}"),
        };
        (s("l_returnflag"), s("l_linestatus"), -price)
    };
    let mut prev = key(0);
    for row in 1..rel0.num_rows() {
        let cur = key(row);
        assert!(prev <= cur, "rows {row} out of order: {prev:?} then {cur:?}");
        prev = cur;
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full 22-query sweep; run with --release")]
fn all_22_queries_parallel_bit_exact() {
    let cat = catalog();
    for qn in 1..=22 {
        assert_bit_exact(qn, &cat);
    }
}

// ---------------------------------------------------------------------------
// Fused executor (DESIGN.md §13): same guarantees, second execution engine.
// ---------------------------------------------------------------------------

/// Fused runs (threads 1/2/4 × two morsel sizes) must reproduce the serial
/// materializing result bit-exactly, and the fused work profile itself must
/// be invariant to thread count and morsel size.
fn assert_fused_bit_exact(qn: usize, cat: &Catalog) {
    let q = query(qn);
    let (mat_rel, _) = run_with(&q, cat, &EngineConfig::serial()).expect("materializing run");
    let mut prof0 = None;
    for morsel_rows in [wimpi::engine::exec::parallel::DEFAULT_MORSEL_ROWS, 4096] {
        for threads in [1, 2, 4] {
            let cfg = EngineConfig::with_threads(threads)
                .with_morsel_rows(morsel_rows)
                .with_executor(Executor::Fused);
            let (rel, prof) = run_with(&q, cat, &cfg).expect("fused run");
            assert_eq!(
                rel, mat_rel,
                "Q{qn}: fused diverged from materializing at {threads} threads, morsel {morsel_rows}"
            );
            let baseline = *prof0.get_or_insert(prof);
            assert_eq!(
                prof, baseline,
                "Q{qn}: fused profile varied at {threads} threads, morsel {morsel_rows}"
            );
        }
    }
}

#[test]
fn fused_choke_points_bit_exact_smoke() {
    let cat = catalog();
    for qn in [1, 6, 19] {
        assert_fused_bit_exact(qn, &cat);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full 22-query sweep; run with --release")]
fn all_22_queries_fused_bit_exact() {
    let cat = catalog();
    for qn in 1..=22 {
        assert_fused_bit_exact(qn, &cat);
    }
}

/// The headline of the fused executor: scan→filter→eval→aggregate pipelines
/// stop materializing intermediates, so the profile's `seq_write_bytes` —
/// the term the paper's bandwidth model charges for — collapses.
#[test]
fn fused_collapses_materialized_write_traffic() {
    let cat = catalog();
    for qn in [1, 6, 19] {
        let q = query(qn);
        let (_, mat) = run_with(&q, &cat, &EngineConfig::serial()).expect("materializing run");
        let fused_cfg = EngineConfig::serial().with_executor(Executor::Fused);
        let (_, fused) = run_with(&q, &cat, &fused_cfg).expect("fused run");
        assert!(
            fused.seq_write_bytes < mat.seq_write_bytes,
            "Q{qn}: fused wrote {} bytes, materializing {}",
            fused.seq_write_bytes,
            mat.seq_write_bytes
        );
    }
}

/// Budgeted fused runs: bit-exact against the budgeted serial materializing
/// baseline at every thread count and morsel size, whether the fused path
/// ran natively or fell back under the budget.
#[test]
fn fused_budgeted_runs_stay_bit_exact() {
    let cat = catalog();
    for qn in [1usize, 6] {
        let q = query(qn);
        let serial_ctx = QueryContext::with_budget(64 << 10);
        let (rel0, _) = run_governed(&q, &cat, &EngineConfig::serial(), &serial_ctx)
            .expect("budgeted materializing run");
        let mut prof0 = None;
        for morsel_rows in [wimpi::engine::exec::parallel::DEFAULT_MORSEL_ROWS, 4096] {
            for threads in [1, 2, 4] {
                let ctx = QueryContext::with_budget(64 << 10);
                let cfg = EngineConfig::with_threads(threads)
                    .with_morsel_rows(morsel_rows)
                    .with_executor(Executor::Fused);
                let (rel, prof) = run_governed(&q, &cat, &cfg, &ctx).expect("budgeted fused run");
                assert_eq!(rel, rel0, "Q{qn}: budgeted fused diverged at {threads} threads");
                let baseline = *prof0.get_or_insert(prof);
                assert_eq!(prof, baseline, "Q{qn}: budgeted fused profile varied");
            }
        }
    }
}

/// When the merged group table exceeds the budget, the fused executor falls
/// back to the materializing operators — which Grace-partition — and must
/// reproduce their results *and* work profile exactly.
#[test]
fn fused_budget_fallback_matches_materializing() {
    use wimpi::engine::{col, execute_query_governed, AggExpr, PlanBuilder};
    use wimpi::storage::{Column, DataType, Field, Schema, Table};

    let n = 50_000i64;
    let keys: Vec<i64> = (0..n).collect();
    let vals: Vec<i64> = (0..n).map(|i| i * 3 % 101).collect();
    let mut cat = Catalog::new();
    let table = Table::new(
        Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Int64)]),
        vec![Column::Int64(keys), Column::Int64(vals)],
    )
    .expect("table builds");
    cat.register("t", table);
    let plan = PlanBuilder::scan("t")
        .aggregate(vec![(col("k"), "k")], vec![AggExpr::sum(col("v"), "s")])
        .build();
    // 50k distinct 64-byte group slots blow a 64 KB budget; both executors
    // must degrade identically (fused falls back, materializing Graces).
    let mat_ctx = QueryContext::with_budget(64 << 10);
    let (rel0, prof0) = execute_query_governed(&plan, &cat, &EngineConfig::serial(), &mat_ctx)
        .expect("budgeted materializing run");
    for threads in [1, 2, 4] {
        let ctx = QueryContext::with_budget(64 << 10);
        let cfg = EngineConfig::with_threads(threads).with_executor(Executor::Fused);
        let (rel, prof) =
            execute_query_governed(&plan, &cat, &cfg, &ctx).expect("budgeted fused run");
        assert_eq!(rel, rel0, "fallback result diverged at {threads} threads");
        assert_eq!(prof, prof0, "fallback profile diverged at {threads} threads");
    }
}

/// Aggregates the bytecode pipeline cannot express (min/max) fall back to
/// the materializing operators transparently: identical results and charges.
#[test]
fn fused_unsupported_aggregates_fall_back_transparently() {
    use wimpi::engine::plan::{AggExpr, AggFunc};
    use wimpi::engine::{col, execute_query_with, lit, PlanBuilder};

    let cat = catalog();
    let plan = PlanBuilder::scan("lineitem")
        .filter(col("l_quantity").lt(lit(25i64)))
        .aggregate(
            vec![(col("l_returnflag"), "f")],
            vec![AggExpr {
                func: AggFunc::Max,
                expr: Some(col("l_extendedprice")),
                name: "m".into(),
            }],
        )
        .build();
    let (rel0, prof0) =
        execute_query_with(&plan, &cat, &EngineConfig::serial()).expect("materializing run");
    for threads in [1, 2, 4] {
        let cfg = EngineConfig::with_threads(threads).with_executor(Executor::Fused);
        let (rel, prof) = execute_query_with(&plan, &cat, &cfg).expect("fused run");
        assert_eq!(rel, rel0, "fallback result diverged at {threads} threads");
        assert_eq!(prof, prof0, "fallback profile diverged at {threads} threads");
    }
}

mod bytecode_vs_evaluator {
    //! Property test: on random expressions the bytecode VM must agree
    //! bit-for-bit with the recursive evaluator wherever it compiles.
    //! Expressions are grown from a drawn opcode stream (the vendored
    //! proptest shim has no recursive strategies), covering arithmetic over
    //! mixed int/decimal/float columns, mixed-scale decimal rescales
    //! (literal scales 0–4 against scale-1/2 columns), comparisons, logical
    //! combinations, LIKE / IN / BETWEEN / CASE / EXTRACT(YEAR), and scalar
    //! folding.

    use proptest::prelude::*;
    use std::sync::Arc;
    use wimpi::engine::eval::Evaluator;
    use wimpi::engine::exec::bytecode::Program;
    use wimpi::engine::{col, lit, Expr, Relation, WorkProfile};
    use wimpi::storage::{Column, Decimal64, DictColumn, Value};

    /// A small relation exercising every column type the VM handles.
    fn test_relation() -> Relation {
        let n = 257usize; // deliberately not a power of two
        let i64s: Vec<i64> = (0..n).map(|i| (i as i64 * 7 % 50) - 25).collect();
        let i32s: Vec<i32> = (0..n).map(|i| (i as i32 * 13 % 40) - 20).collect();
        let dec2: Vec<i64> = (0..n).map(|i| (i as i64 * 31 % 2000) - 1000).collect();
        let dec1: Vec<i64> = (0..n).map(|i| (i as i64 * 17 % 500) - 250).collect();
        let f64s: Vec<f64> = (0..n).map(|i| (i as f64 - 128.0) / 3.0).collect();
        let dates: Vec<i32> = (0..n).map(|i| 9000 + (i as i32 * 37 % 2000)).collect();
        let bools: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let modes = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"];
        let strs: DictColumn = (0..n).map(|i| modes[i * 11 % modes.len()]).collect();
        Relation::new(vec![
            ("i".to_string(), Arc::new(Column::Int64(i64s))),
            ("j".to_string(), Arc::new(Column::Int32(i32s))),
            ("d".to_string(), Arc::new(Column::Decimal(dec2, 2))),
            ("e".to_string(), Arc::new(Column::Decimal(dec1, 1))),
            ("f".to_string(), Arc::new(Column::Float64(f64s))),
            ("t".to_string(), Arc::new(Column::Date(dates))),
            ("b".to_string(), Arc::new(Column::Bool(bools))),
            ("s".to_string(), Arc::new(Column::Str(strs))),
        ])
        .expect("relation builds")
    }

    /// Bit-exact column equality: floats compare by IEEE bits, so a shared
    /// NaN (e.g. from `i / i` at `i = 0`) counts as agreement — `PartialEq`
    /// would report bit-identical NaN columns as different.
    fn bit_eq(a: &Column, b: &Column) -> bool {
        match (a, b) {
            (Column::Float64(x), Column::Float64(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
            }
            _ => a == b,
        }
    }

    /// Deterministic expression growth from a drawn opcode stream.
    struct Gen<'a> {
        stream: &'a [u32],
        pos: std::cell::Cell<usize>,
    }

    impl<'a> Gen<'a> {
        fn next(&self) -> u32 {
            let p = self.pos.get();
            self.pos.set(p + 1);
            self.stream[p % self.stream.len()].wrapping_add((p / self.stream.len()) as u32)
        }

        fn num_leaf(&self) -> Expr {
            match self.next() % 10 {
                0 => col("i"),
                1 => col("j"),
                2 => col("d"),
                3 => col("e"),
                4 => col("f"),
                5 => col("t"),
                6 => lit((self.next() % 100) as i64 - 50),
                7 => lit(Value::Dec(Decimal64::new((self.next() % 2000) as i64 - 1000, 2))),
                8 => lit((self.next() % 100) as f64 / 4.0 - 12.5),
                // Decimal literals at scales 0–4: combined with the scale-1
                // and scale-2 columns these force both widening and
                // narrowing rescales, pinning the VM to the evaluator's
                // rounding convention on every mixed-scale path.
                9 => lit(Value::Dec(Decimal64::new(
                    (self.next() % 4000) as i64 - 2000,
                    (self.next() % 5) as u8,
                ))),
                _ => unreachable!(),
            }
        }

        fn num(&self, depth: u32) -> Expr {
            if depth == 0 {
                return self.num_leaf();
            }
            match self.next() % 8 {
                0..=2 => self.num_leaf(),
                3 => self.num(depth - 1).add(self.num(depth - 1)),
                4 => self.num(depth - 1).sub(self.num(depth - 1)),
                5 => self.num(depth - 1).mul(self.num(depth - 1)),
                6 => self.num(depth - 1).div(self.num(depth - 1)),
                7 => self.boolean(depth - 1).case(self.num(depth - 1), self.num(depth - 1)),
                _ => unreachable!(),
            }
        }

        fn cmp(&self, a: Expr, b: Expr) -> Expr {
            match self.next() % 6 {
                0 => a.eq(b),
                1 => a.neq(b),
                2 => a.lt(b),
                3 => a.lte(b),
                4 => a.gt(b),
                5 => a.gte(b),
                _ => unreachable!(),
            }
        }

        fn boolean(&self, depth: u32) -> Expr {
            if depth == 0 {
                return self.cmp(self.num_leaf(), self.num_leaf());
            }
            match self.next() % 12 {
                0..=3 => self.cmp(self.num(depth - 1), self.num(depth - 1)),
                4 => self.boolean(depth - 1).and(self.boolean(depth - 1)),
                5 => self.boolean(depth - 1).or(self.boolean(depth - 1)),
                6 => self.boolean(depth - 1).negate(),
                7 => col("b"),
                8 => {
                    let pats = ["%AI%", "R_IL", "SHIP", "%K", "M%"];
                    col("s").like(pats[self.next() as usize % pats.len()])
                }
                9 => col("s")
                    .in_list(vec![Value::Str("AIR".to_string()), Value::Str("SHIP".to_string())]),
                10 => {
                    let lo = (self.next() % 40) as i64 - 20;
                    col("i").between(lo, lo + (self.next() % 20) as i64)
                }
                11 => self.cmp(col("t").year(), lit(1994i64 + (self.next() % 6) as i64)),
                _ => unreachable!(),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn bytecode_matches_recursive_evaluator(
            stream in prop::collection::vec(0u32..u32::MAX, 8..40),
            as_bool in any::<bool>(),
            depth in 1u32..4,
        ) {
            let rel = test_relation();
            let g = Gen { stream: &stream, pos: std::cell::Cell::new(0) };
            let expr = if as_bool { g.boolean(depth) } else { g.num(depth) };
            let Some(prog) = Program::compile(&expr, &rel) else {
                return; // fused execution would fall back; nothing to compare
            };
            let mut prof = WorkProfile::new();
            let evaluated = Evaluator::new(&rel, &mut prof)
                .eval(&expr)
                .expect("the compiler only accepts expressions the evaluator accepts");
            if let Some(vm) = prog.eval_full(rel.num_rows()) {
                prop_assert!(bit_eq(&vm, &evaluated), "VM diverged on {expr:?}");
            }
        }
    }
}

/// The determinism guarantee survives the out-of-core rung (DESIGN.md §16):
/// a budget ladder descending past the Grace cliff with a spill disk
/// attached must yield bit-identical relations *and* work profiles — spill
/// ledger included — at threads 1/2/4 × two morsel sizes. Spill partition
/// layout depends only on (plan, budget, fan-out), never on scheduling, so
/// `spilled_bytes` is part of the deterministic contract, not a statistic.
#[test]
fn spill_budget_ladder_stays_parallel_bit_exact() {
    use std::sync::Arc;
    use wimpi::storage::spill::{SpillConfig, SpillDisk};

    let cat = catalog();
    // Budgets bracketing the cliff at SF 0.01: 16 MB runs in memory, 2 KB
    // pushes Q3's join build past Grace onto the disk, 64 B spills the
    // aggregate/sort rungs of Q5/Q14 too.
    for qn in [3usize, 5, 14] {
        let q = query(qn);
        for budget in [16u64 << 20, 2 << 10, 64] {
            let fresh_disk = || Arc::new(SpillDisk::new(SpillConfig::with_capacity(256 << 20)));
            let serial_disk = fresh_disk();
            let serial_ctx = QueryContext::with_budget(budget).with_spill(Arc::clone(&serial_disk));
            let serial = run_governed(&q, &cat, &EngineConfig::serial(), &serial_ctx);
            match serial {
                Ok((rel0, prof0)) => {
                    for morsel_rows in [wimpi::engine::exec::parallel::DEFAULT_MORSEL_ROWS, 4096] {
                        for threads in [1, 2, 4] {
                            let disk = fresh_disk();
                            let ctx =
                                QueryContext::with_budget(budget).with_spill(Arc::clone(&disk));
                            let cfg =
                                EngineConfig::with_threads(threads).with_morsel_rows(morsel_rows);
                            let (rel, prof) =
                                run_governed(&q, &cat, &cfg, &ctx).expect("spill run");
                            assert_eq!(
                                rel, rel0,
                                "Q{qn} budget {budget}: result diverged at {threads} \
                                 threads, morsel {morsel_rows}"
                            );
                            assert_eq!(
                                prof, prof0,
                                "Q{qn} budget {budget}: profile (incl. spill ledger) \
                                 diverged at {threads} threads, morsel {morsel_rows}"
                            );
                            assert_eq!(
                                disk.used(),
                                0,
                                "Q{qn} budget {budget}: spill capacity leaked"
                            );
                        }
                    }
                    if budget == 64 {
                        assert!(
                            prof0.spilled_bytes > 0,
                            "Q{qn}: a 64-byte budget must actually exercise the spill rung"
                        );
                    }
                }
                Err(e) => {
                    // Exhaustion must be just as deterministic as success.
                    for threads in [2, 4] {
                        let ctx = QueryContext::with_budget(budget).with_spill(fresh_disk());
                        let err =
                            run_governed(&q, &cat, &EngineConfig::with_threads(threads), &ctx)
                                .expect_err("serial exhausted; parallel must too");
                        assert_eq!(
                            err.to_string(),
                            e.to_string(),
                            "Q{qn} budget {budget}: error diverged at {threads} threads"
                        );
                    }
                }
            }
        }
    }
}

/// The determinism guarantee survives memory governance: a budget tight
/// enough to force Grace-partitioned builds (64 KB at SF 0.01) must yield
/// the same relation and work profile at every thread count, because
/// reservation decisions are taken once on the coordinator — never raced by
/// workers.
#[test]
fn budget_constrained_runs_stay_parallel_bit_exact() {
    let cat = catalog();
    for qn in [1usize, 3, 6, 13] {
        let q = query(qn);
        let serial_ctx = QueryContext::with_budget(64 << 10);
        let (rel0, prof0) = run_governed(&q, &cat, &EngineConfig::serial(), &serial_ctx)
            .expect("budgeted serial run");
        for threads in [2, 4] {
            let ctx = QueryContext::with_budget(64 << 10);
            let cfg = EngineConfig::with_threads(threads);
            let (rel, prof) = run_governed(&q, &cat, &cfg, &ctx).expect("budgeted parallel run");
            assert_eq!(rel, rel0, "Q{qn}: budgeted result diverged at {threads} threads");
            assert_eq!(prof, prof0, "Q{qn}: budgeted profile diverged at {threads} threads");
        }
    }
}
