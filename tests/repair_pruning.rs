//! Repair × pruning interaction (DESIGN.md §12 + §14): a BitFlip repair
//! swaps column bytes through `Table::with_replaced_column`, which keeps the
//! integrity manifest (the stale manifest *detects* the swap) but drops the
//! zone maps (a stale summary over swapped bytes would silently mis-prune).
//! These tests pin that contract end to end: detection still fires through
//! a pruned scan, the repaired table answers bit-exactly with pruning
//! configured on (degrading to a full scan, never mis-pruning), and
//! re-sealing restores pruning without perturbing the answer.

use wimpi::engine::{EngineConfig, EngineError};
use wimpi::queries::{query, run_with};
use wimpi::storage::integrity::flip_bits;
use wimpi::storage::Catalog;

const SF: f64 = 0.01;
const ZONE_CHUNK_ROWS: usize = 1024;

/// The clustered catalog (lineitem ordered by `l_shipdate`) with fine zone
/// maps and integrity manifests sealed on every table — the layout where Q6
/// actually prunes and every scan verifies.
fn sealed_catalog() -> Catalog {
    let mut cat = wimpi::tpch::clustered_catalog(SF).expect("clustered catalog generates");
    let names: Vec<String> = cat.names().map(String::from).collect();
    for name in names {
        let sealed = cat
            .table(&name)
            .unwrap()
            .as_ref()
            .clone()
            .with_zone_maps_at(ZONE_CHUNK_ROWS)
            .with_integrity();
        cat.register(&name, sealed);
    }
    cat
}

fn pruned_verified() -> EngineConfig {
    EngineConfig::serial().with_morsel_rows(4096).with_prune_scans(true).with_verify_checksums(true)
}

#[test]
fn bitflip_repair_drops_zones_and_resealing_restores_pruning_bit_exactly() {
    let cat = sealed_catalog();

    // Baseline: pruned + verified Q6 equals the unpruned answer, and the
    // clustered layout makes pruning non-vacuous.
    let (unpruned, _) =
        run_with(&query(6), &cat, &EngineConfig::serial().with_verify_checksums(true))
            .expect("unpruned baseline runs");
    let (baseline, base_prof) =
        run_with(&query(6), &cat, &pruned_verified()).expect("pruned baseline runs");
    assert_eq!(baseline, unpruned, "pruning must be a no-op on answers");
    assert!(base_prof.pruned_morsels > 0, "clustered Q6 must actually skip morsels");

    // Corruption: flipped bits in l_quantity, swapped in through the repair
    // API. The swap must drop the zone maps (stale summaries would
    // mis-prune) and keep the manifest (stale checksums detect the swap).
    let clean = cat.table("lineitem").expect("registered");
    let qty = clean.schema().index_of("l_quantity").expect("column exists");
    let rows = clean.num_rows();
    let clean_col = clean.column(qty).as_ref().clone();
    let dirty_col = flip_bits(clean.column(qty).as_ref(), 0..rows, 2, 0xBAD5EED);
    let dirty = (**clean).clone().with_replaced_column(qty, dirty_col).expect("replace");
    assert!(dirty.zones().is_none(), "with_replaced_column must drop zone maps");
    assert!(dirty.manifest().is_some(), "with_replaced_column must keep the manifest");

    let mut corrupted = cat.clone();
    corrupted.register("lineitem", dirty);
    let err = run_with(&query(6), &corrupted, &pruned_verified())
        .expect_err("verified scan must detect the flipped bits");
    match err {
        EngineError::Integrity { table, column, .. } => {
            assert_eq!((table.as_str(), column.as_str()), ("lineitem", "l_quantity"));
        }
        other => panic!("expected a typed integrity violation, got {other}"),
    }

    // Repair: the regenerated (clean) column swapped back in. Zones stay
    // dropped, so a pruning-enabled config degrades to a full scan — the
    // answer must be bit-exact with pruning *configured on* but nothing
    // actually pruned.
    let repaired = corrupted
        .table("lineitem")
        .expect("registered")
        .as_ref()
        .clone()
        .with_replaced_column(qty, clean_col)
        .expect("repair swap");
    assert!(repaired.zones().is_none(), "repair must not resurrect stale zone maps");
    let mut healed = cat.clone();
    healed.register("lineitem", repaired);
    let (after_repair, repair_prof) =
        run_with(&query(6), &healed, &pruned_verified()).expect("repaired scan verifies clean");
    assert_eq!(after_repair, baseline, "repaired answer must be bit-exact");
    assert_eq!(
        repair_prof.pruned_morsels, 0,
        "no zones may mean no pruning — a stale-zone skip here would be a mis-prune"
    );

    // Re-seal: fresh zone maps over the repaired bytes restore pruning, and
    // the pruned answer still matches bit-exactly.
    let resealed = healed
        .table("lineitem")
        .expect("registered")
        .as_ref()
        .clone()
        .with_zone_maps_at(ZONE_CHUNK_ROWS);
    assert!(resealed.zones().is_some(), "re-sealing must rebuild zone maps");
    healed.register("lineitem", resealed);
    let (after_reseal, reseal_prof) =
        run_with(&query(6), &healed, &pruned_verified()).expect("resealed scan runs");
    assert_eq!(after_reseal, baseline, "re-sealed pruned answer must be bit-exact");
    assert_eq!(
        reseal_prof.pruned_morsels, base_prof.pruned_morsels,
        "fresh zones over identical bytes must prune exactly as the baseline did"
    );
    assert_eq!(
        (reseal_prof.rows_in, reseal_prof.rows_out),
        (base_prof.rows_in, base_prof.rows_out),
        "pruning must never change operator row counts"
    );
}

#[test]
fn catalog_seal_zone_maps_reseals_only_tables_that_lost_their_zones() {
    // The catalog-level idiom the shell's `SET prune_scans = on` uses:
    // `seal_zone_maps` covers tables whose zones were dropped by repair
    // while leaving already-sealed tables' zone handles untouched.
    let mut cat = sealed_catalog();
    let orders_zones_before =
        cat.table("orders").expect("registered").zones().map(std::sync::Arc::as_ptr);

    let clean = cat.table("lineitem").expect("registered");
    let qty = clean.schema().index_of("l_quantity").expect("column exists");
    let col = clean.column(qty).as_ref().clone();
    let repaired = (**clean).clone().with_replaced_column(qty, col).expect("identity swap");
    cat.register("lineitem", repaired);
    assert!(cat.table("lineitem").unwrap().zones().is_none());

    cat.seal_zone_maps();
    assert!(cat.table("lineitem").unwrap().zones().is_some(), "lost zones get re-sealed");
    let orders_zones_after =
        cat.table("orders").expect("registered").zones().map(std::sync::Arc::as_ptr);
    assert_eq!(
        orders_zones_before, orders_zones_after,
        "tables with live zones keep their existing handle"
    );
}
