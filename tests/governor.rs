//! Resource-governor suite: reservation accounting under arbitrary
//! (including concurrent) interleavings, cooperative cancellation at morsel
//! boundaries, and budget-constrained determinism.
//!
//! The contract under test (DESIGN.md §10): a budget may slow a query down
//! or fail it with a typed error — it may never change an answer, leak a
//! byte of accounted scratch, or behave differently at different thread
//! counts.

use proptest::prelude::*;
use std::sync::Arc;
use std::thread;
use wimpi::engine::{CancelToken, EngineConfig, EngineError, MemoryReservation, QueryContext};
use wimpi::queries::{query, run_governed};
use wimpi::storage::Catalog;
use wimpi::tpch::Generator;

const SF: f64 = 0.01;

fn catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serial reserve/release sequences against a scalar model: `used()`
    /// tracks the live sum exactly at every step, `high_water()` ends up as
    /// the max prefix sum, and draining every held reservation restores the
    /// account to zero.
    #[test]
    fn high_water_is_the_max_prefix_sum(
        ops in prop::collection::vec((1u64..64_000, any::<bool>()), 1..40),
    ) {
        let mem = MemoryReservation::unlimited();
        let mut held: Vec<u64> = Vec::new();
        let (mut live, mut peak) = (0u64, 0u64);
        for (bytes, pop) in ops {
            if pop && !held.is_empty() {
                let b = held.pop().expect("nonempty");
                mem.release(b);
                live -= b;
            } else {
                prop_assert!(mem.try_reserve(bytes), "unlimited must always grant");
                held.push(bytes);
                live += bytes;
                peak = peak.max(live);
            }
            prop_assert_eq!(mem.used(), live);
            prop_assert_eq!(mem.high_water(), peak);
        }
        for b in held.drain(..) {
            mem.release(b);
        }
        prop_assert_eq!(mem.used(), 0, "budget must be exactly restored");
        prop_assert_eq!(mem.high_water(), peak, "draining must not move the peak");
    }

    /// Concurrent reserve/release storms on a budgeted account: no
    /// interleaving oversubscribes the budget (the compare-and-swap grant is
    /// all-or-nothing), the balance never goes negative (released bytes were
    /// always granted first), and the account drains back to zero.
    #[test]
    fn concurrent_interleavings_never_oversubscribe(
        budget in 1u64..10_000,
        sizes in prop::collection::vec(1u64..4_000, 4..33),
    ) {
        let mem = Arc::new(MemoryReservation::with_budget(budget));
        let mut handles = Vec::new();
        for chunk in sizes.chunks(8) {
            let mem = Arc::clone(&mem);
            let chunk = chunk.to_vec();
            handles.push(thread::spawn(move || {
                for b in chunk {
                    if mem.try_reserve(b) {
                        // A racing observer may see other threads' grants,
                        // but never more than the budget.
                        assert!(mem.used() <= budget, "oversubscribed mid-flight");
                        mem.release(b);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no reservation thread may panic");
        }
        prop_assert_eq!(mem.used(), 0, "all grants must be returned");
        prop_assert!(mem.high_water() <= budget);
        prop_assert!(mem.hard_high_water() <= budget);
    }
}

/// Cancellation is checked at morsel boundaries through a shared fuse, so a
/// token armed to fire after `n` checks either cancels the query at every
/// thread count or at none — and a cancelled run releases its whole budget.
#[test]
fn cancellation_mid_join_is_prompt_and_thread_deterministic() {
    let cat = catalog();
    let q = query(3); // two joins + aggregate + sort: plenty of boundaries
    let (baseline, _) =
        run_governed(&q, &cat, &EngineConfig::serial(), &QueryContext::new()).expect("baseline");

    let mut saw_cancel = false;
    for fuse in [0u64, 1, 2, 5, 10_000] {
        let mut verdicts = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = if threads == 1 {
                EngineConfig::serial()
            } else {
                EngineConfig::with_threads(threads)
            };
            let ctx = QueryContext::new().with_cancel_token(CancelToken::after_checks(fuse));
            match run_governed(&q, &cat, &cfg, &ctx) {
                Err(EngineError::Cancelled) => {
                    assert_eq!(ctx.used(), 0, "cancelled run must release its budget");
                    verdicts.push(true);
                }
                Ok((rel, _)) => {
                    assert_eq!(rel, baseline, "uncancelled run must be bit-exact");
                    verdicts.push(false);
                }
                Err(e) => panic!("fuse {fuse}, {threads} threads: unexpected error {e}"),
            }
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "fuse {fuse}: cancellation verdict varied with thread count: {verdicts:?}"
        );
        saw_cancel |= verdicts[0];
    }
    assert!(saw_cancel, "a short fuse must actually cancel mid-query");

    // Regression: the catalog is untouched — an immediate re-run after a
    // cancellation is bit-exact against the uncancelled baseline.
    let (rerun, _) =
        run_governed(&q, &cat, &EngineConfig::serial(), &QueryContext::new()).expect("rerun");
    assert_eq!(rerun, baseline, "re-run after cancellation must match");
}

/// A budget tight enough to force the Grace fallback must not change the
/// answer — at any thread count — and the degraded plan itself must be
/// thread-count-deterministic (same fallback count, same fan-out).
#[test]
fn grace_degraded_runs_stay_bit_exact_across_threads() {
    let cat = catalog();
    for qn in [1usize, 3, 13] {
        let q = query(qn);
        let (baseline, _) = run_governed(&q, &cat, &EngineConfig::serial(), &QueryContext::new())
            .expect("unbudgeted baseline");

        // 64 KB forces the larger builds at SF 0.01 into Grace partitioning
        // without exhausting anything (see results/pressure_modes.txt).
        let budget = 64 << 10;
        let serial = QueryContext::with_budget(budget);
        let (rel0, prof0) =
            run_governed(&q, &cat, &EngineConfig::serial(), &serial).expect("budgeted serial");
        assert_eq!(rel0, baseline, "Q{qn}: budgeted answer must be bit-exact");
        assert_eq!(serial.used(), 0, "Q{qn}: budget fully restored");

        for threads in [2usize, 4] {
            let ctx = QueryContext::with_budget(budget);
            let cfg = EngineConfig::with_threads(threads);
            let (rel, prof) = run_governed(&q, &cat, &cfg, &ctx).expect("budgeted parallel");
            assert_eq!(rel, rel0, "Q{qn}: diverged at {threads} threads under budget");
            assert_eq!(prof, prof0, "Q{qn}: work profile diverged at {threads} threads");
            assert_eq!(ctx.fallbacks(), serial.fallbacks(), "Q{qn}: fallback count diverged");
            assert_eq!(
                ctx.max_fallback_parts(),
                serial.max_fallback_parts(),
                "Q{qn}: Grace fan-out diverged"
            );
            assert!(ctx.hard_high_water() <= budget, "Q{qn}: reservations broke the budget");
        }
    }
}

/// Panic-safety audit (DESIGN.md §10): the `Reservation` RAII guard must
/// restore the full budget when an operator panics mid-query — the unwind
/// drops the guards, so the account drains to zero and keeps granting. A
/// grown reservation must release its grown size, not its original one.
#[test]
fn reservation_guard_restores_budget_when_an_operator_panics() {
    let ctx = QueryContext::with_budget(10_000);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut outer = ctx.reserve(4_000, "join build").expect("fits");
        assert!(outer.grow(1_000), "growth within budget succeeds");
        let _inner = ctx.reserve(2_000, "sort run").expect("fits");
        assert_eq!(ctx.used(), 7_000);
        panic!("operator blew up mid-query");
    }));
    assert!(result.is_err(), "the closure must actually panic");
    assert_eq!(ctx.used(), 0, "unwind must drop every guard and restore the budget");
    assert_eq!(ctx.high_water(), 7_000, "the peak survives as telemetry");

    // The account is not poisoned: the full budget grants again.
    let g = ctx.reserve(10_000, "post-panic").expect("full budget available after the panic");
    drop(g);
    assert_eq!(ctx.used(), 0);
}

/// Exhaustion is a typed error, not a poisoned engine: the failed run
/// releases everything and the same catalog answers the same query again.
#[test]
fn exhaustion_releases_the_budget_and_engine_stays_usable() {
    let cat = catalog();
    let q = query(1);
    let zero = QueryContext::with_budget(0);
    match run_governed(&q, &cat, &EngineConfig::serial(), &zero) {
        Err(EngineError::ResourceExhausted { budget: 0, requested, operator }) => {
            assert!(requested > 0, "the failing reservation asked for something");
            assert!(!operator.is_empty(), "the failing operator is named");
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }
    assert_eq!(zero.used(), 0, "failed run must release everything");

    let (a, _) =
        run_governed(&q, &cat, &EngineConfig::serial(), &QueryContext::new()).expect("fresh run");
    let (b, _) = run_governed(&q, &cat, &EngineConfig::serial(), &QueryContext::new())
        .expect("engine reusable");
    assert_eq!(a, b);
}
