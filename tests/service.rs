//! Concurrent query service suite: admission arbitration against real TPC-H
//! queries, cancellation-vs-retry interaction, and the determinism contract
//! (DESIGN.md §11) — any answer the service completes is bit-exact with the
//! serial unconstrained run, at any worker count.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use wimpi::engine::{
    governor::UNLIMITED, EngineConfig, EngineError, QueryContext, QuerySpec, Service,
    ServiceConfig, ServiceError,
};
use wimpi::queries::{query, run_governed, CHOKEPOINT_QUERIES};
use wimpi::storage::Catalog;
use wimpi::tpch::Generator;

const SF: f64 = 0.01;

fn catalog() -> Arc<Catalog> {
    Arc::new(Generator::new(SF).generate_catalog().expect("generation succeeds"))
}

/// Pins every worker of `svc` on a gated job holding `estimate` bytes each;
/// returns the gates (drop them to release) once all workers are busy.
fn pin_workers(svc: &Service, workers: usize, estimate: u64) -> Vec<mpsc::Sender<()>> {
    let mut gates = Vec::new();
    let running = Arc::new(AtomicU32::new(0));
    for i in 0..workers {
        let (tx, rx) = mpsc::channel::<()>();
        let rx = Mutex::new(rx);
        let running = Arc::clone(&running);
        let t = svc
            .submit(QuerySpec::new(format!("pin{i}")).with_estimate(estimate), move |_| {
                running.fetch_add(1, Ordering::SeqCst);
                let _ = rx.lock().unwrap().recv();
                Ok(0u64)
            })
            .expect("pin job admits");
        // Tickets for the pins are not waited on; dropping them is fine.
        drop(t);
        gates.push(tx);
    }
    while running.load(Ordering::SeqCst) < workers as u32 {
        std::thread::yield_now();
    }
    gates
}

/// The cancellation-vs-retry satellite: a query cancelled while waiting in
/// the admission queue must leave the queue *immediately* (no free worker
/// required) and never consume a byte of the node budget — at 1, 2, and 4
/// workers.
#[test]
fn queued_cancellation_is_immediate_and_budget_free() {
    for workers in [1usize, 2, 4] {
        let node_budget = 1_000_000u64;
        let pin_bytes = 1_000u64;
        let svc = Service::new(ServiceConfig {
            node_budget,
            workers,
            queue_depth: 16,
            ..ServiceConfig::default()
        });
        let gates = pin_workers(&svc, workers, pin_bytes);

        let ran = Arc::new(AtomicU32::new(0));
        let r = Arc::clone(&ran);
        let doomed = svc
            .submit(QuerySpec::new("doomed").with_estimate(500_000), move |_| {
                r.fetch_add(1, Ordering::SeqCst);
                Ok(0u64)
            })
            .expect("queues behind the pins");
        assert_eq!(svc.queue_depth(), 1, "{workers} workers: the query waits");

        doomed.cancel();
        assert_eq!(
            svc.queue_depth(),
            0,
            "{workers} workers: cancellation must leave the queue immediately, \
             even with every worker busy"
        );
        match doomed.wait() {
            Err(ServiceError::Engine(EngineError::Cancelled)) => {}
            other => panic!("{workers} workers: expected Cancelled, got {other:?}"),
        }

        drop(gates);
        svc.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 0, "{workers} workers: cancelled query ran");
        assert_eq!(svc.node_used(), 0, "{workers} workers: accounting must drain");
        assert!(
            svc.node_high_water() <= workers as u64 * pin_bytes,
            "{workers} workers: the cancelled query's 500 KB grant was never carved \
             (high water {} > pins only)",
            svc.node_high_water()
        );
        assert_eq!(svc.metrics().counter("service_cancelled_total"), 1);
    }
}

/// Cancellation beats retry: when a query's token fires during an attempt
/// that ends `ResourceExhausted`, the coordinator must NOT spend the
/// full-budget retry on a dead query — the attempt count stays at one and
/// the submission still gets exactly one terminal outcome.
#[test]
fn cancellation_suppresses_the_budget_retry() {
    for workers in [1usize, 2, 4] {
        let svc = Service::new(ServiceConfig {
            node_budget: 1_000_000,
            workers,
            ..ServiceConfig::default()
        });
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let spec = QuerySpec::new("self-cancelling");
        let token = spec.cancel.clone();
        let err = svc
            .run_blocking(spec.with_estimate(1_000), move |ctx| {
                a.fetch_add(1, Ordering::SeqCst);
                token.cancel(); // fires mid-attempt, before the exhaustion
                ctx.reserve(500_000, "big build").map(|_| 0u64)
            })
            .expect_err("cannot succeed under a 1 KB grant");
        assert_eq!(
            attempts.load(Ordering::SeqCst),
            1,
            "{workers} workers: a cancelled query must not get the budget retry"
        );
        match err {
            ServiceError::Engine(
                EngineError::ResourceExhausted { .. } | EngineError::Cancelled,
            ) => {}
            other => panic!("{workers} workers: untyped terminal outcome {other:?}"),
        }
        svc.shutdown();
        assert_eq!(svc.node_used(), 0);
        assert_eq!(svc.metrics().counter("service_retries_total"), 0);
    }
}

/// The determinism contract on real queries: choke-point answers completed
/// through the service — concurrent submissions, tight node budget, Grace
/// degradation and budget retries engaged — are bit-exact with the serial
/// unconstrained baseline at every worker count.
#[test]
fn service_answers_are_bit_exact_with_serial_unconstrained_runs() {
    let cat = catalog();
    let subset = [1usize, 6, 13]; // cheap-but-diverse slice of the 8
    let mut baselines = Vec::new();
    for &qn in &subset {
        let (rel, _) =
            run_governed(&query(qn), &cat, &EngineConfig::serial(), &QueryContext::new())
                .expect("baseline");
        baselines.push(rel);
    }

    for workers in [1usize, 2, 4] {
        // Tight node budget: declared estimates are deliberately small so
        // some attempts exhaust and take the full-budget retry path.
        let svc = Service::new(ServiceConfig {
            node_budget: 4 << 20,
            workers,
            queue_depth: 64,
            small_cutoff: 64 << 10,
            ..ServiceConfig::default()
        });
        let mut tickets = Vec::new();
        for round in 0..2 {
            for &qn in &subset {
                let cat = Arc::clone(&cat);
                let label = format!("q{qn}r{round}");
                tickets.push((
                    qn,
                    svc.submit(QuerySpec::new(label).with_estimate(32 << 10), move |ctx| {
                        run_governed(&query(qn), &cat, &EngineConfig::serial(), ctx)
                            .map(|(rel, _)| rel)
                    })
                    .expect("queue is deep enough"),
                ));
            }
        }
        for (qn, t) in tickets {
            let rel = t.wait().unwrap_or_else(|e| panic!("Q{qn} at {workers} workers: {e}"));
            let idx = subset.iter().position(|&n| n == qn).expect("submitted");
            assert_eq!(
                rel, baselines[idx],
                "Q{qn}: answer diverged from serial baseline at {workers} workers"
            );
        }
        svc.shutdown();
        assert!(svc.node_high_water() <= 4 << 20, "oversubscribed at {workers} workers");
        assert_eq!(svc.node_used(), 0);
        assert_eq!(svc.metrics().counter("service_completed_total"), 2 * subset.len() as u64);
    }
}

/// The shutdown-vs-submit race satellite: threads hammer `submit` through a
/// shared `Arc<Service>` while another thread calls `shutdown` concurrently.
/// Every submission must reach exactly one terminal state — a ticket that
/// resolves (completed or `Cancelled` by the drain) or a typed
/// `ShuttingDown`/`Overloaded` refusal with no ticket — and `wait()` must
/// never hang. The ledger identity and the drained node accounting are
/// asserted afterwards, at 1, 2, and 4 workers.
#[test]
fn shutdown_racing_submit_resolves_every_ticket_exactly_once() {
    for workers in [1usize, 2, 4] {
        let svc = Arc::new(Service::new(ServiceConfig {
            node_budget: UNLIMITED,
            workers,
            queue_depth: 256,
            ..ServiceConfig::default()
        }));
        let submitters = 4usize;
        let per_thread = 50usize;
        let completed = Arc::new(AtomicU32::new(0));
        let cancelled = Arc::new(AtomicU32::new(0));
        let refused = Arc::new(AtomicU32::new(0));

        let mut joins = Vec::new();
        for t in 0..submitters {
            let svc = Arc::clone(&svc);
            let completed = Arc::clone(&completed);
            let cancelled = Arc::clone(&cancelled);
            let refused = Arc::clone(&refused);
            joins.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let spec = QuerySpec::new(format!("race-t{t}-{i}"));
                    match svc.submit(spec, move |_| Ok(1u64)) {
                        Ok(ticket) => match ticket.wait() {
                            Ok(_) => {
                                completed.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(ServiceError::Engine(EngineError::Cancelled)) => {
                                cancelled.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(other) => panic!(
                                "{workers} workers: race submission got untyped \
                                 terminal outcome {other:?}"
                            ),
                        },
                        Err(ServiceError::ShuttingDown | ServiceError::Overloaded { .. }) => {
                            refused.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(other) => {
                            panic!("{workers} workers: untyped refusal {other:?}")
                        }
                    }
                }
            }));
        }
        // Let some traffic land, then slam the door mid-stream. A second
        // concurrent shutdown exercises idempotence through `&self`.
        while svc.metrics().counter("service_submitted_total") < submitters as u64 {
            std::thread::yield_now();
        }
        let svc2 = Arc::clone(&svc);
        let shut2 = std::thread::spawn(move || svc2.shutdown());
        svc.shutdown();
        shut2.join().expect("concurrent shutdown must not panic");
        for j in joins {
            j.join().expect("submitter must not hang or panic");
        }

        let total = (submitters * per_thread) as u32;
        assert_eq!(
            completed.load(Ordering::SeqCst)
                + cancelled.load(Ordering::SeqCst)
                + refused.load(Ordering::SeqCst),
            total,
            "{workers} workers: every submission resolves exactly once"
        );
        let m = svc.metrics();
        let terminals = m.counter("service_completed_total")
            + m.counter("service_cancelled_total")
            + m.counter("service_exhausted_total")
            + m.counter("service_failed_total")
            + m.counter("service_panicked_total");
        assert_eq!(
            m.counter("service_submitted_total"),
            terminals,
            "{workers} workers: ledger identity must reconcile after the race"
        );
        assert_eq!(m.counter("service_completed_total"), completed.load(Ordering::SeqCst) as u64);
        assert_eq!(m.counter("service_cancelled_total"), cancelled.load(Ordering::SeqCst) as u64);
        assert_eq!(svc.node_used(), 0, "{workers} workers: accounting must drain");
    }
}

/// Every choke-point query completes through the service under an
/// unconstrained node budget, and the submission/terminal accounting
/// identity holds exactly.
#[test]
fn chokepoint_queries_all_complete_and_accounting_balances() {
    let cat = catalog();
    let svc = Service::new(ServiceConfig {
        node_budget: UNLIMITED,
        workers: 4,
        ..ServiceConfig::default()
    });
    let mut tickets = Vec::new();
    for &qn in CHOKEPOINT_QUERIES.iter() {
        let cat = Arc::clone(&cat);
        tickets.push(
            svc.submit(QuerySpec::new(format!("q{qn}")), move |ctx| {
                run_governed(&query(qn), &cat, &EngineConfig::serial(), ctx)
                    .map(|(rel, _)| rel.num_rows() as u64)
            })
            .expect("admits"),
        );
    }
    for t in tickets {
        t.wait().expect("completes");
    }
    svc.shutdown();
    let m = svc.metrics();
    let n = CHOKEPOINT_QUERIES.len() as u64;
    assert_eq!(m.counter("service_submitted_total"), n);
    assert_eq!(m.counter("service_completed_total"), n);
    let terminals = m.counter("service_completed_total")
        + m.counter("service_cancelled_total")
        + m.counter("service_exhausted_total")
        + m.counter("service_failed_total")
        + m.counter("service_panicked_total");
    assert_eq!(terminals, n, "every submission resolves exactly once");
}
