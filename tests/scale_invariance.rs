//! The extrapolation contract (DESIGN.md §4): the modelled tables must be
//! (near-)invariant to the scale factor actually executed on the host,
//! because every reproduced query's work scales linearly in SF. A breakage
//! here means some counter picked up an SF-independent term (exactly the
//! dictionary-pool bug this test was written against).

use wimpi::core::Study;

#[test]
fn table2_predictions_invariant_to_measure_sf() {
    let a = Study::new(0.01).table2().expect("runs");
    let b = Study::new(0.03).table2().expect("runs");
    for profile in ["op-e5", "pi3b+", "c6g.metal"] {
        for q in 1..=22 {
            let ta = a.get(profile, q).expect("modelled");
            let tb = b.get(profile, q).expect("modelled");
            let rel = (ta - tb).abs() / ta.max(tb);
            // Group counts and constants don't scale perfectly at tiny SFs;
            // 20% is far below the factor-level differences that matter.
            assert!(
                rel < 0.20,
                "{profile} Q{q}: {ta:.4}s at SF 0.01 vs {tb:.4}s at SF 0.03 (rel {rel:.2})"
            );
        }
    }
}

#[test]
fn table3_cluster_predictions_invariant_to_measure_sf() {
    let a = Study::new(0.01).table3(&[2, 4]).expect("runs");
    let b = Study::new(0.02).table3(&[2, 4]).expect("runs");
    for &n in &[2u32, 4] {
        for &q in &a.queries.clone() {
            let ta = a.wimpi(n, q).expect("modelled");
            let tb = b.wimpi(n, q).expect("modelled");
            let rel = (ta - tb).abs() / ta.max(tb);
            assert!(rel < 0.25, "WIMPI x{n} Q{q}: {ta:.4}s vs {tb:.4}s (rel {rel:.2})");
        }
    }
}
