//! End-to-end study test: run every experiment at a tiny scale factor and
//! check that the paper's qualitative findings — the reproduction targets —
//! emerge from the models.

use wimpi::core::{fig3, fig5, fig6, fig7, median, Study};

const MEASURE_SF: f64 = 0.02;

#[test]
fn full_study_reproduces_headline_shapes() {
    let study = Study::new(MEASURE_SF);
    let sf1 = study.table2().expect("table2 runs");
    let sf10 = study.table3(&[4, 8, 16, 24]).expect("table3 runs");

    // §II-D1: the Pi is slowest on Q1 (memory-bound) among all machines.
    let pi_q1 = sf1.get("pi3b+", 1).expect("modelled");
    for p in &sf1.profiles {
        if p != "pi3b+" {
            assert!(sf1.get(p, 1).expect("modelled") < pi_q1, "{p} must beat the Pi on Q1");
        }
    }

    // §II-D1: median Pi/op-e5 slowdown is around one order of magnitude,
    // not two — the paper's core "surprisingly competitive" claim.
    let ratios: Vec<f64> = (1..=22)
        .map(|q| sf1.get("pi3b+", q).expect("pi") / sf1.get("op-e5", q).expect("e5"))
        .collect();
    let med = median(&ratios);
    assert!(
        (2.0..=15.0).contains(&med),
        "median Pi slowdown {med} should be ~one order of magnitude"
    );

    // §II-D2: small clusters hit the memory cliff; the jump to mid sizes is
    // at least 5× on Q1.
    let q1_4 = sf10.wimpi(4, 1).expect("modelled");
    let q1_16 = sf10.wimpi(16, 1).expect("modelled");
    assert!(q1_4 / q1_16 > 5.0, "4→16 node Q1 jump: {q1_4} vs {q1_16}");

    // §II-D2: Q13 is flat across cluster sizes (single-node execution).
    let q13: Vec<f64> =
        [4u32, 8, 16, 24].iter().map(|&n| sf10.wimpi(n, 13).expect("modelled")).collect();
    assert!(q13.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9), "Q13 flat: {q13:?}");

    // §II-D2: at 24 nodes WIMPI beats at least one comparison point on most
    // lineitem queries.
    let mut wins = 0;
    for &q in &sf10.queries {
        let w = sf10.wimpi(24, q).expect("modelled");
        if sf10.servers.profiles.iter().any(|p| sf10.servers.get(p, q).expect("s") > w) {
            wins += 1;
        }
    }
    assert!(wins >= 4, "WIMPI@24 should win somewhere on ≥4 of 8 queries, got {wins}");

    // §III-A1: MSRP-normalized, the single Pi always beats both on-prem
    // servers at SF 1 (Figure 5 left, every point above 1×).
    let figs5 = fig5(&sf1, &sf10);
    let left = &figs5[0];
    for s in &left.series {
        for v in s.values.iter().flatten() {
            assert!(*v > 1.0, "Fig 5 SF1 improvement {v} must exceed break-even");
        }
    }

    // §III-A2: hourly-normalized, the Pi wins by orders of magnitude.
    let figs6 = fig6(&sf1, &sf10);
    for s in &figs6[0].series {
        for v in s.values.iter().flatten() {
            assert!(*v > 10.0, "Fig 6 SF1 improvement {v} should dwarf break-even");
        }
    }

    // §III-B1: energy-normalized, the Pi wins on the clear majority of
    // SF 1 queries.
    let figs7 = fig7(&sf1, &sf10);
    let mut above = 0;
    let mut total = 0;
    for s in &figs7[0].series {
        for v in s.values.iter().flatten() {
            total += 1;
            if *v > 1.0 {
                above += 1;
            }
        }
    }
    assert!(
        above as f64 / total as f64 > 0.8,
        "energy improvements mostly above break-even: {above}/{total}"
    );

    // Figure 3 renders with one series per query and all machines.
    let figs3 = fig3(&sf1, &sf10);
    assert_eq!(figs3[0].series.len(), 22);
    assert_eq!(figs3[0].rows.len(), 9, "nine non-Pi machines");
}

#[test]
fn fig4_reproduces_strategy_ordering_on_servers() {
    let study = Study::new(MEASURE_SF);
    let t = study.fig4().expect("fig4 runs");
    // The source paper's finding: access-aware best, data-centric worst —
    // checked on the fast server where the effect is strongest.
    let ope5 = &t.seconds[0];
    let aa_wins = (0..t.queries.len()).filter(|&qi| ope5[2][qi] <= ope5[0][qi]).count();
    assert!(
        aa_wins >= t.queries.len() - 1,
        "access-aware should beat data-centric on nearly every query: {aa_wins}/8"
    );

    // §II-D3: on the Pi the advantage is less pronounced (bandwidth-starved
    // pullups) — the mean access-aware:data-centric gain is smaller there.
    let gain = |m: usize| -> f64 {
        (0..t.queries.len()).map(|qi| t.seconds[m][0][qi] / t.seconds[m][2][qi]).sum::<f64>()
            / t.queries.len() as f64
    };
    let server_gain = gain(0);
    let pi_gain = gain(2);
    assert!(
        pi_gain < server_gain,
        "pullup advantage must shrink on the Pi: server {server_gain:.2}× vs pi {pi_gain:.2}×"
    );
}

#[test]
fn static_tables_render() {
    let t1 = Study::table1();
    assert_eq!(t1.rows.len(), 10);
    let f2 = Study::fig2();
    assert_eq!(f2.len(), 4);
    // Figure 2d: the Pi's all-core bandwidth stays ~flat while servers
    // scale — the single-memory-channel signature.
    let membw = &f2[3];
    let pi_row = membw.rows.iter().position(|r| r == "pi3b+").expect("pi row");
    let one = membw.series[0].values[pi_row].expect("value");
    let all = membw.series[1].values[pi_row].expect("value");
    assert!(all / one < 1.2);
}
