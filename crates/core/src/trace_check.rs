//! Trace-JSON schema validation.
//!
//! `--trace-json` artifacts and `EXPLAIN ANALYZE` output share one schema
//! (see `wimpi-obs`): a span is an object with `op`, `label`, `rows_in`,
//! `rows_out`, `wall_ns`, `total`, `self`, and `children`. This module
//! parses that JSON with a small hand-rolled reader (the workspace has no
//! serde) and checks the *accounting invariant* that makes traces
//! trustworthy: for every counter, the self-values over the whole tree sum
//! to the root's total — nothing double-counted, nothing dropped.

use std::collections::BTreeMap;

/// A parsed JSON value (just enough for trace documents).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (trace counters are integral but may be large).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry a byte offset.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            self.i += 4;
                            // Surrogates never appear in our emitters' output.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 char verbatim.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }
}

/// Summary of a validated span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of spans in the tree.
    pub spans: usize,
    /// Root totals per counter name.
    pub root_total: BTreeMap<String, u64>,
}

/// Validates one span object: schema (required fields, right types,
/// recursively for children) and accounting (for every counter in the root's
/// `total`, the `self` values over the whole tree sum to it exactly).
pub fn validate_trace_json(doc: &str) -> Result<TraceStats, String> {
    let root = parse_json(doc)?;
    validate_span_value(&root)
}

/// Validates a `--trace-json` document: `{"sf": …, "queries": [{"query": n,
/// "trace": <span>}, …]}`. Returns per-query stats in document order.
pub fn validate_trace_document(doc: &str) -> Result<Vec<(u64, TraceStats)>, String> {
    let root = parse_json(doc)?;
    let queries = root
        .get("queries")
        .and_then(|q| match q {
            Json::Arr(items) => Some(items),
            _ => None,
        })
        .ok_or("document has no \"queries\" array")?;
    let mut out = Vec::new();
    for (i, entry) in queries.iter().enumerate() {
        let qn = entry
            .get("query")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("queries[{i}] has no numeric \"query\""))?;
        let trace = entry.get("trace").ok_or_else(|| format!("queries[{i}] has no \"trace\""))?;
        let stats = validate_span_value(trace).map_err(|e| format!("queries[{i}] (Q{qn}): {e}"))?;
        out.push((qn as u64, stats));
    }
    Ok(out)
}

/// One validated rung of a chaos-serving document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosRung {
    /// Closed-loop clients at this rung.
    pub clients: u64,
    /// Requests the clients offered.
    pub requests: u64,
    /// Requests that completed with an answer (cache hits included).
    pub completed: u64,
    /// Result-cache hits among the completions.
    pub cache_hits: u64,
    /// Completions that were degraded (partial coverage).
    pub degraded: u64,
}

/// Validates a `results/chaos.json` document written by `bench --bin chaos`:
///
/// ```text
/// {"sf": …, "seed": …, "nodes": …, "rungs": [
///   {"clients": …, "requests": …, "completed": …, "cache_hits": …,
///    "hit_rate": …, "p50_s": …, "p99_s": …, "degraded": …, "hedges": …,
///    "retries": …, "invalidations": …,
///    "ledger": {"submitted": …, "completed": …, "cancelled": …,
///               "exhausted": …, "failed": …, "panicked": …}}, …]}
/// ```
///
/// Beyond the schema, it re-checks the serving invariants the bench asserts
/// live: per rung the admission-ledger identity `submitted = completed +
/// cancelled + exhausted + failed + panicked` must reconcile exactly, the
/// hit rate must be a probability, and completions cannot exceed offers.
/// Returns the rungs in document order.
pub fn validate_chaos_document(doc: &str) -> Result<Vec<ChaosRung>, String> {
    let root = parse_json(doc)?;
    let num = |v: &Json, path: &str, key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_num)
            .filter(|n| *n >= 0.0)
            .ok_or_else(|| format!("{path}: missing non-negative number \"{key}\""))
    };
    if num(&root, "document", "sf")? <= 0.0 {
        return Err("document: \"sf\" must be positive".to_string());
    }
    num(&root, "document", "seed")?;
    if num(&root, "document", "nodes")? < 2.0 {
        return Err("document: a chaos ladder needs at least 2 nodes".to_string());
    }
    let rungs = root
        .get("rungs")
        .and_then(|r| match r {
            Json::Arr(items) if !items.is_empty() => Some(items),
            _ => None,
        })
        .ok_or("document has no non-empty \"rungs\" array")?;
    let mut out = Vec::new();
    for (i, rung) in rungs.iter().enumerate() {
        let path = format!("rungs[{i}]");
        for key in ["hedges", "retries", "invalidations", "p50_s", "p99_s"] {
            num(rung, &path, key)?;
        }
        let clients = num(rung, &path, "clients")? as u64;
        let requests = num(rung, &path, "requests")? as u64;
        let completed = num(rung, &path, "completed")? as u64;
        let cache_hits = num(rung, &path, "cache_hits")? as u64;
        let degraded = num(rung, &path, "degraded")? as u64;
        let hit_rate = num(rung, &path, "hit_rate")?;
        if !(0.0..=1.0).contains(&hit_rate) {
            return Err(format!("{path}: hit_rate {hit_rate} is not a probability"));
        }
        if completed > requests {
            return Err(format!("{path}: completed {completed} exceeds requests {requests}"));
        }
        if cache_hits > completed || degraded > completed {
            return Err(format!("{path}: cache_hits/degraded exceed completions"));
        }
        let ledger = rung.get("ledger").ok_or_else(|| format!("{path}: missing \"ledger\""))?;
        let lpath = format!("{path}/ledger");
        let submitted = num(ledger, &lpath, "submitted")? as u64;
        let terminal: u64 = ["completed", "cancelled", "exhausted", "failed", "panicked"]
            .iter()
            .map(|k| num(ledger, &lpath, k).map(|n| n as u64))
            .sum::<Result<u64, String>>()?;
        if submitted != terminal {
            return Err(format!(
                "{lpath}: identity broken — submitted {submitted} != terminal outcomes {terminal}"
            ));
        }
        out.push(ChaosRung { clients, requests, completed, cache_hits, degraded });
    }
    Ok(out)
}

/// One validated run (one query at one budget) of a spill-ladder document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRun {
    /// TPC-H query number.
    pub query: u64,
    /// How the run degraded: `inmem`, `grace`, `spill`, `exhausted`, or
    /// `disk_full`.
    pub mode: String,
    /// Bytes staged on the spill disk.
    pub spilled_bytes: u64,
    /// Checksum-failed chunk reads that were retried.
    pub spill_read_retries: u64,
    /// Corruptions the read path detected (torn or bit-flipped views).
    pub spill_corruptions_detected: u64,
}

/// One validated rung (one memory budget) of a spill-ladder document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRung {
    /// Per-operator memory budget in bytes at this rung.
    pub budget: u64,
    /// Spill-disk capacity in bytes at this rung.
    pub disk_capacity: u64,
    /// The per-query runs at this rung, in document order.
    pub runs: Vec<SpillRun>,
}

/// Validates a `results/spill.json` document written by `bench --bin spill`:
///
/// ```text
/// {"sf": …, "seed": …, "rungs": [
///   {"budget": …, "disk_capacity": …,
///    "runs": [{"query": …, "mode": "inmem|grace|spill|exhausted|disk_full",
///              "bit_exact": true|false, "spilled_bytes": …,
///              "spill_read_retries": …, "spill_corruptions_detected": …}, …],
///    "ledger": {"spilled_bytes": …, "spill_read_retries": …,
///               "spill_corruptions_detected": …}}, …]}
/// ```
///
/// Beyond the schema, it re-checks the degradation invariants the bench
/// asserts live: budgets must walk strictly down the ladder, every run's
/// mode must be one of the five degradation modes, every *completed* run
/// (`inmem`/`grace`/`spill`) must be bit-exact, `inmem`/`grace` runs must
/// not have spilled, `spill` runs must have, and each rung's ledger must
/// equal the sum of its runs' counters exactly. Returns the rungs in
/// document order.
pub fn validate_spill_document(doc: &str) -> Result<Vec<SpillRung>, String> {
    let root = parse_json(doc)?;
    let num = |v: &Json, path: &str, key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_num)
            .filter(|n| *n >= 0.0)
            .ok_or_else(|| format!("{path}: missing non-negative number \"{key}\""))
    };
    if num(&root, "document", "sf")? <= 0.0 {
        return Err("document: \"sf\" must be positive".to_string());
    }
    num(&root, "document", "seed")?;
    let rungs = root
        .get("rungs")
        .and_then(|r| match r {
            Json::Arr(items) if !items.is_empty() => Some(items),
            _ => None,
        })
        .ok_or("document has no non-empty \"rungs\" array")?;
    let mut out: Vec<SpillRung> = Vec::new();
    for (i, rung) in rungs.iter().enumerate() {
        let path = format!("rungs[{i}]");
        let budget = num(rung, &path, "budget")? as u64;
        let disk_capacity = num(rung, &path, "disk_capacity")? as u64;
        if budget == 0 {
            return Err(format!("{path}: budget must be positive"));
        }
        if let Some(prev) = out.last() {
            if budget >= prev.budget {
                return Err(format!(
                    "{path}: budget {budget} does not descend the ladder (previous {})",
                    prev.budget
                ));
            }
        }
        let runs = rung
            .get("runs")
            .and_then(|r| match r {
                Json::Arr(items) if !items.is_empty() => Some(items),
                _ => None,
            })
            .ok_or_else(|| format!("{path} has no non-empty \"runs\" array"))?;
        let mut parsed = Vec::new();
        let mut sums = [0u64; 3];
        for (j, run) in runs.iter().enumerate() {
            let rpath = format!("{path}/runs[{j}]");
            let query = num(run, &rpath, "query")? as u64;
            let mode = match run.get("mode") {
                Some(Json::Str(s)) => s.clone(),
                _ => return Err(format!("{rpath}: missing string \"mode\"")),
            };
            if !["inmem", "grace", "spill", "exhausted", "disk_full"].contains(&mode.as_str()) {
                return Err(format!("{rpath}: unknown mode {mode:?}"));
            }
            let bit_exact = match run.get("bit_exact") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(format!("{rpath}: missing bool \"bit_exact\"")),
            };
            let completed = matches!(mode.as_str(), "inmem" | "grace" | "spill");
            if completed && !bit_exact {
                return Err(format!("{rpath}: completed {mode} run is not bit-exact"));
            }
            let spilled_bytes = num(run, &rpath, "spilled_bytes")? as u64;
            let retries = num(run, &rpath, "spill_read_retries")? as u64;
            let corruptions = num(run, &rpath, "spill_corruptions_detected")? as u64;
            if matches!(mode.as_str(), "inmem" | "grace") && spilled_bytes > 0 {
                return Err(format!("{rpath}: {mode} run spilled {spilled_bytes} bytes"));
            }
            if mode == "spill" && spilled_bytes == 0 {
                return Err(format!("{rpath}: spill run spilled nothing"));
            }
            sums[0] += spilled_bytes;
            sums[1] += retries;
            sums[2] += corruptions;
            parsed.push(SpillRun {
                query,
                mode,
                spilled_bytes,
                spill_read_retries: retries,
                spill_corruptions_detected: corruptions,
            });
        }
        let ledger = rung.get("ledger").ok_or_else(|| format!("{path}: missing \"ledger\""))?;
        let lpath = format!("{path}/ledger");
        for (k, key) in
            ["spilled_bytes", "spill_read_retries", "spill_corruptions_detected"].iter().enumerate()
        {
            let total = num(ledger, &lpath, key)? as u64;
            if total != sums[k] {
                return Err(format!("{lpath}: {key} {total} != sum of runs {}", sums[k]));
            }
        }
        out.push(SpillRung { budget, disk_capacity, runs: parsed });
    }
    Ok(out)
}

fn validate_span_value(v: &Json) -> Result<TraceStats, String> {
    check_span_schema(v, "root")?;
    let mut self_sums = BTreeMap::new();
    let spans = sum_self(v, &mut self_sums);
    let root_total = counter_map(v.get("total").expect("schema checked"));
    for (name, &total) in &root_total {
        let summed = self_sums.get(name).copied().unwrap_or(0);
        if summed != total {
            return Err(format!(
                "counter \"{name}\": tree self-sum {summed} != root total {total}"
            ));
        }
    }
    // The reverse direction: a self counter absent from the root total would
    // be work invented below the root. `worker` is exempt — it is an
    // informational id on morsel spans, not additive work (the obs crate's
    // `structure_eq` ignores it for the same reason).
    for name in self_sums.keys() {
        if name != "worker" && !root_total.contains_key(name) {
            return Err(format!("counter \"{name}\" appears in the tree but not the root total"));
        }
    }
    Ok(TraceStats { spans, root_total })
}

fn check_span_schema(v: &Json, path: &str) -> Result<(), String> {
    for key in ["op", "label"] {
        match v.get(key) {
            Some(Json::Str(_)) => {}
            _ => return Err(format!("{path}: missing string field \"{key}\"")),
        }
    }
    for key in ["rows_in", "rows_out", "wall_ns"] {
        match v.get(key) {
            Some(Json::Num(n)) if *n >= 0.0 => {}
            _ => return Err(format!("{path}: missing non-negative number \"{key}\"")),
        }
    }
    for key in ["total", "self"] {
        match v.get(key) {
            Some(Json::Obj(fields)) => {
                for (name, val) in fields {
                    if !matches!(val, Json::Num(n) if *n >= 0.0) {
                        return Err(format!("{path}: {key}[\"{name}\"] is not a counter"));
                    }
                }
            }
            _ => return Err(format!("{path}: missing object field \"{key}\"")),
        }
    }
    match v.get("children") {
        Some(Json::Arr(children)) => {
            for (i, child) in children.iter().enumerate() {
                check_span_schema(child, &format!("{path}/children[{i}]"))?;
            }
            Ok(())
        }
        _ => Err(format!("{path}: missing array field \"children\"")),
    }
}

fn counter_map(v: &Json) -> BTreeMap<String, u64> {
    match v {
        Json::Obj(fields) => fields
            .iter()
            .filter_map(|(k, val)| val.as_num().map(|n| (k.clone(), n as u64)))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn sum_self(v: &Json, acc: &mut BTreeMap<String, u64>) -> usize {
    for (name, val) in counter_map(v.get("self").expect("schema checked")) {
        *acc.entry(name).or_insert(0) += val;
    }
    let mut spans = 1;
    if let Some(Json::Arr(children)) = v.get("children") {
        for child in children {
            spans += sum_self(child, acc);
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimpi_obs::Span;

    fn sample_tree() -> Span {
        let mut leaf_a = Span::leaf("scan", "lineitem");
        leaf_a.counters = vec![("cpu_ops".into(), 30), ("seq_read_bytes".into(), 100)];
        let mut leaf_b = Span::leaf("eval", "x > 1");
        leaf_b.counters = vec![("cpu_ops".into(), 20)];
        let mut root = Span::leaf("query", "");
        root.counters = vec![("cpu_ops".into(), 60), ("seq_read_bytes".into(), 100)];
        root.children = vec![leaf_a, leaf_b];
        root
    }

    #[test]
    fn roundtrip_obs_span_validates() {
        let stats = validate_trace_json(&sample_tree().to_json()).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.root_total["cpu_ops"], 60);
    }

    #[test]
    fn detects_accounting_mismatch() {
        let mut bad = sample_tree();
        // Inflate a child's inclusive counter past the root's: the root's
        // derived self saturates at 0 and the tree self-sum overshoots.
        bad.children[0].counters[0].1 = 100;
        let err = validate_trace_json(&bad.to_json()).unwrap_err();
        assert!(err.contains("cpu_ops"), "{err}");
    }

    #[test]
    fn worker_counter_is_informational() {
        // Morsel spans carry a `worker` id counter; it is not additive work
        // and must not trip the "invented below the root" check.
        let mut tree = sample_tree();
        tree.children[0].counters.push(("worker".into(), 3));
        validate_trace_json(&tree.to_json()).unwrap();
    }

    #[test]
    fn peak_deltas_telescope() {
        // `peak_bytes` spans record interval deltas of a monotone reservation
        // high-water ratchet: sequential children raise it by at most the
        // parent's own delta, and the remainder is the parent's self value.
        // The additive accounting invariant therefore holds without any
        // special-casing — pin that here.
        let mut tree = sample_tree();
        tree.counters.push(("peak_bytes".into(), 500));
        tree.children[0].counters.push(("peak_bytes".into(), 200));
        tree.children[1].counters.push(("peak_bytes".into(), 250));
        let stats = validate_trace_json(&tree.to_json()).unwrap();
        assert_eq!(stats.root_total["peak_bytes"], 500);
    }

    #[test]
    fn detects_missing_fields() {
        let err = validate_trace_json(r#"{"op":"query"}"#).unwrap_err();
        assert!(err.contains("label"), "{err}");
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = parse_json(r#"{"s":"a\"b\nA","n":-1.5e2,"b":[true,false,null]}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str("a\"b\nA".to_string())));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(-150.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{}trailing").is_err());
        assert!(parse_json(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn validates_trace_documents() {
        let doc = format!(
            r#"{{"sf": 0.1, "queries": [{{"query": 1, "trace": {}}}]}}"#,
            sample_tree().to_json()
        );
        let per_query = validate_trace_document(&doc).unwrap();
        assert_eq!(per_query.len(), 1);
        assert_eq!(per_query[0].0, 1);
        assert_eq!(per_query[0].1.spans, 3);
        assert!(validate_trace_document(r#"{"sf": 1}"#).is_err());
    }

    fn chaos_doc(submitted: u64) -> String {
        format!(
            r#"{{"sf": 0.01, "seed": 42, "nodes": 6, "rungs": [
                {{"clients": 2, "requests": 24, "completed": 22, "cache_hits": 8,
                  "hit_rate": 0.364, "p50_s": 0.5, "p99_s": 2.5, "degraded": 1,
                  "hedges": 3, "retries": 5, "invalidations": 2,
                  "ledger": {{"submitted": {submitted}, "completed": 14, "cancelled": 0,
                             "exhausted": 0, "failed": 0, "panicked": 0}}}}]}}"#
        )
    }

    #[test]
    fn validates_chaos_documents() {
        let rungs = validate_chaos_document(&chaos_doc(14)).expect("valid document");
        assert_eq!(rungs.len(), 1);
        assert_eq!((rungs[0].clients, rungs[0].requests), (2, 24));
        assert_eq!((rungs[0].completed, rungs[0].cache_hits, rungs[0].degraded), (22, 8, 1));
    }

    #[test]
    fn chaos_validation_rejects_a_broken_ledger_identity() {
        let err = validate_chaos_document(&chaos_doc(15)).expect_err("identity broken");
        assert!(err.contains("identity broken"), "{err}");
        assert!(validate_chaos_document(r#"{"sf": 0.01, "seed": 1, "nodes": 6}"#).is_err());
        assert!(
            validate_chaos_document(r#"{"sf": 0.01, "seed": 1, "nodes": 1, "rungs": []}"#).is_err()
        );
    }

    fn spill_doc(ledger_bytes: u64, mode2: &str, exact2: bool) -> String {
        format!(
            r#"{{"sf": 0.01, "seed": 42, "rungs": [
                {{"budget": 65536, "disk_capacity": 1048576,
                  "runs": [{{"query": 1, "mode": "inmem", "bit_exact": true,
                             "spilled_bytes": 0, "spill_read_retries": 0,
                             "spill_corruptions_detected": 0}}],
                  "ledger": {{"spilled_bytes": 0, "spill_read_retries": 0,
                             "spill_corruptions_detected": 0}}}},
                {{"budget": 4096, "disk_capacity": 1048576,
                  "runs": [{{"query": 1, "mode": "{mode2}", "bit_exact": {exact2},
                             "spilled_bytes": 9000, "spill_read_retries": 3,
                             "spill_corruptions_detected": 3}}],
                  "ledger": {{"spilled_bytes": {ledger_bytes}, "spill_read_retries": 3,
                             "spill_corruptions_detected": 3}}}}]}}"#
        )
    }

    #[test]
    fn validates_spill_documents() {
        let rungs = validate_spill_document(&spill_doc(9000, "spill", true)).expect("valid");
        assert_eq!(rungs.len(), 2);
        assert_eq!((rungs[0].budget, rungs[1].budget), (65536, 4096));
        assert_eq!(rungs[1].runs[0].mode, "spill");
        assert_eq!(rungs[1].runs[0].spilled_bytes, 9000);
        // disk_full runs may carry partial spill bytes and need not be exact.
        validate_spill_document(&spill_doc(9000, "disk_full", false)).expect("valid");
    }

    #[test]
    fn spill_validation_rejects_broken_invariants() {
        let err = validate_spill_document(&spill_doc(9001, "spill", true)).unwrap_err();
        assert!(err.contains("sum of runs"), "{err}");
        let err = validate_spill_document(&spill_doc(9000, "spill", false)).unwrap_err();
        assert!(err.contains("not bit-exact"), "{err}");
        let err = validate_spill_document(&spill_doc(9000, "thrash", true)).unwrap_err();
        assert!(err.contains("unknown mode"), "{err}");
        // grace runs must not spill; ladder budgets must descend.
        let err = validate_spill_document(&spill_doc(9000, "grace", true)).unwrap_err();
        assert!(err.contains("grace run spilled"), "{err}");
        assert!(validate_spill_document(r#"{"sf": 0.01, "seed": 1, "rungs": []}"#).is_err());
    }
}
