//! The paper's published numbers, transcribed for side-by-side comparison.
//!
//! Table II (TPC-H SF 1 runtimes, seconds, 22 queries × 10 comparison
//! points) and Table III (SF 10, the 8 choke-point queries; servers
//! single-node, WIMPI at 4–24 nodes). Two cells are typeset ambiguously in
//! the paper's table (m4.16xlarge Q11 in Table II and m4.16xlarge Q4 in
//! Table III); they are interpolated from neighbours and marked below.

/// Comparison-point names, Table II row order.
pub const TABLE2_ROWS: [&str; 10] = [
    "op-e5",
    "op-gold",
    "c4.8xlarge",
    "m4.10xlarge",
    "m4.16xlarge",
    "z1d.metal",
    "m5.metal",
    "a1.metal",
    "c6g.metal",
    "pi3b+",
];

/// Table II: SF 1 runtimes in seconds, `[row][query-1]`.
pub const TABLE2_SECONDS: [[f64; 22]; 10] = [
    // op-e5
    [
        0.161, 0.008, 0.080, 0.061, 0.082, 0.028, 0.052, 0.116, 0.116, 0.062, 0.017, 0.036, 0.196,
        0.019, 0.034, 0.156, 0.101, 0.130, 0.027, 0.045, 0.155, 0.112,
    ],
    // op-gold
    [
        0.056, 0.008, 0.046, 0.025, 0.041, 0.012, 0.024, 0.069, 0.055, 0.031, 0.011, 0.020, 0.121,
        0.011, 0.015, 0.084, 0.051, 0.063, 0.020, 0.022, 0.199, 0.063,
    ],
    // c4.8xlarge
    [
        0.054, 0.008, 0.021, 0.016, 0.020, 0.006, 0.022, 0.037, 0.033, 0.017, 0.006, 0.011, 0.097,
        0.006, 0.011, 0.045, 0.022, 0.050, 0.018, 0.016, 0.068, 0.038,
    ],
    // m4.10xlarge
    [
        0.056, 0.007, 0.021, 0.017, 0.021, 0.007, 0.021, 0.041, 0.034, 0.019, 0.006, 0.013, 0.111,
        0.007, 0.012, 0.048, 0.022, 0.057, 0.021, 0.018, 0.087, 0.044,
    ],
    // m4.16xlarge (Q11 interpolated: the published column omits one value)
    [
        0.043, 0.007, 0.023, 0.015, 0.021, 0.006, 0.023, 0.043, 0.032, 0.022, 0.006, 0.014, 0.116,
        0.009, 0.012, 0.045, 0.016, 0.059, 0.029, 0.020, 0.237, 0.043,
    ],
    // z1d.metal
    [
        0.073, 0.012, 0.079, 0.052, 0.057, 0.027, 0.035, 0.096, 0.083, 0.054, 0.024, 0.032, 0.196,
        0.018, 0.031, 0.167, 0.089, 0.084, 0.037, 0.047, 0.169, 0.094,
    ],
    // m5.metal
    [
        0.034, 0.010, 0.033, 0.023, 0.026, 0.008, 0.025, 0.053, 0.043, 0.031, 0.010, 0.018, 0.135,
        0.011, 0.017, 0.074, 0.027, 0.064, 0.031, 0.024, 0.248, 0.064,
    ],
    // a1.metal
    [
        0.270, 0.009, 0.062, 0.064, 0.087, 0.025, 0.071, 0.126, 0.123, 0.053, 0.018, 0.046, 0.330,
        0.015, 0.026, 0.190, 0.077, 0.135, 0.024, 0.032, 0.085, 0.143,
    ],
    // c6g.metal
    [
        0.049, 0.005, 0.045, 0.026, 0.047, 0.011, 0.038, 0.079, 0.057, 0.052, 0.011, 0.032, 0.204,
        0.020, 0.018, 0.117, 0.040, 0.083, 0.017, 0.022, 0.620, 0.081,
    ],
    // pi3b+
    [
        1.772, 0.044, 0.227, 0.222, 0.283, 0.099, 0.486, 0.244, 0.684, 0.221, 0.034, 0.154, 1.771,
        0.076, 0.093, 0.302, 0.220, 0.394, 0.140, 0.141, 0.603, 0.269,
    ],
];

/// The choke-point queries of Table III, in column order.
pub const TABLE3_QUERIES: [usize; 8] = [1, 3, 4, 5, 6, 13, 14, 19];

/// Table III server rows (same comparison points as Table II minus the Pi).
pub const TABLE3_SERVER_ROWS: [&str; 9] = [
    "op-e5",
    "op-gold",
    "c4.8xlarge",
    "m4.10xlarge",
    "m4.16xlarge",
    "z1d.metal",
    "m5.metal",
    "a1.metal",
    "c6g.metal",
];

/// Table III: SF 10 server runtimes in seconds, `[row][query-index]`.
/// (m4.16xlarge Q4 interpolated — see module docs.)
pub const TABLE3_SERVER_SECONDS: [[f64; 8]; 9] = [
    [1.474, 0.603, 0.465, 0.542, 0.191, 2.405, 0.153, 0.131],
    [0.482, 0.341, 0.212, 0.278, 0.086, 1.817, 0.055, 0.072],
    [0.554, 0.183, 0.144, 0.161, 0.054, 1.897, 0.047, 0.063],
    [0.566, 0.201, 0.154, 0.167, 0.054, 1.963, 0.045, 0.063],
    [0.388, 0.203, 0.150, 0.140, 0.041, 1.644, 0.051, 0.065],
    [0.600, 0.364, 0.225, 0.300, 0.105, 1.787, 0.082, 0.092],
    [0.306, 0.189, 0.117, 0.135, 0.038, 1.351, 0.047, 0.065],
    [2.972, 0.692, 0.620, 0.925, 0.219, 6.651, 0.132, 0.173],
    [0.452, 0.372, 0.258, 0.290, 0.078, 3.505, 0.059, 0.077],
];

/// WIMPI cluster sizes swept in Table III.
pub const TABLE3_CLUSTER_SIZES: [u32; 6] = [4, 8, 12, 16, 20, 24];

/// Table III: SF 10 WIMPI runtimes in seconds, `[size-index][query-index]`.
pub const TABLE3_WIMPI_SECONDS: [[f64; 8]; 6] = [
    [57.814, 53.424, 9.492, 47.147, 0.303, 103.604, 0.280, 0.624],
    [2.319, 5.920, 0.928, 12.165, 0.238, 103.604, 0.167, 0.423],
    [1.561, 0.813, 0.636, 1.999, 0.134, 103.604, 0.108, 0.351],
    [1.242, 0.761, 0.506, 1.730, 0.138, 103.604, 0.103, 0.325],
    [0.705, 0.562, 0.348, 1.143, 0.094, 103.604, 0.085, 0.270],
    [0.678, 0.538, 0.342, 0.868, 0.108, 103.604, 0.104, 0.220],
];

/// Paper Table II runtime for a comparison point and query number.
pub fn table2(name: &str, query: usize) -> Option<f64> {
    let row = TABLE2_ROWS.iter().position(|&r| r == name)?;
    TABLE2_SECONDS[row].get(query.checked_sub(1)?).copied()
}

/// Paper Table III server runtime.
pub fn table3_server(name: &str, query: usize) -> Option<f64> {
    let row = TABLE3_SERVER_ROWS.iter().position(|&r| r == name)?;
    let col = TABLE3_QUERIES.iter().position(|&q| q == query)?;
    Some(TABLE3_SERVER_SECONDS[row][col])
}

/// Paper Table III WIMPI runtime for a cluster size.
pub fn table3_wimpi(nodes: u32, query: usize) -> Option<f64> {
    let row = TABLE3_CLUSTER_SIZES.iter().position(|&n| n == nodes)?;
    let col = TABLE3_QUERIES.iter().position(|&q| q == query)?;
    Some(TABLE3_WIMPI_SECONDS[row][col])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_match_transcription() {
        assert_eq!(table2("op-e5", 1), Some(0.161));
        assert_eq!(table2("pi3b+", 13), Some(1.771));
        assert_eq!(table2("c6g.metal", 21), Some(0.620));
        assert_eq!(table2("nope", 1), None);
        assert_eq!(table2("op-e5", 23), None);
        assert_eq!(table3_server("m5.metal", 6), Some(0.038));
        assert_eq!(table3_wimpi(4, 1), Some(57.814));
        assert_eq!(table3_wimpi(24, 19), Some(0.220));
        assert_eq!(table3_wimpi(10, 1), None);
    }

    #[test]
    fn paper_q13_is_flat_across_cluster_sizes() {
        for &n in &TABLE3_CLUSTER_SIZES {
            assert_eq!(table3_wimpi(n, 13), Some(103.604));
        }
    }

    #[test]
    fn paper_prose_claims_hold_in_transcription() {
        // "on average only about 10× slower" at SF 1 — geometric mean of
        // pi/op-e5 ratios sits in single digits.
        let pi = &TABLE2_SECONDS[9];
        let e5 = &TABLE2_SECONDS[0];
        let log_sum: f64 = pi.iter().zip(e5).map(|(p, e)| (p / e).ln()).sum::<f64>() / 22.0;
        let geo = log_sum.exp();
        assert!((3.0..=12.0).contains(&geo), "geomean pi/op-e5 = {geo}");
        // Q21: the Pi beats c6g.metal (paper §II-D1).
        assert!(table2("pi3b+", 21).unwrap() < table2("c6g.metal", 21).unwrap());
        // SF 10: WIMPI@24 beats at least one comparison point on Q1, Q3,
        // Q4, Q6, Q14 (paper: five of eight queries).
        for q in [1, 3, 4, 6, 14] {
            let w = table3_wimpi(24, q).unwrap();
            let beats = TABLE3_SERVER_ROWS.iter().any(|r| table3_server(r, q).unwrap() > w);
            assert!(beats, "WIMPI@24 should beat someone on Q{q}");
        }
    }
}
