//! # wimpi-core
//!
//! The reproduced study itself: one experiment runner per table/figure of
//! the paper ([`experiments`]), the paper's published numbers for
//! side-by-side comparison ([`reference`]), and report generation
//! ([`report`]). The `wimpi-bench` binaries are thin wrappers over this
//! crate.

pub mod experiments;
// Named `reference` like the primitive; rustdoc disambiguates via the module path.
#[doc(alias = "paper-data")]
pub mod reference;
pub mod report;
pub mod trace_check;

pub use trace_check::{
    parse_json, validate_chaos_document, validate_spill_document, validate_trace_document,
    validate_trace_json, ChaosRung, Json, SpillRun, SpillRung, TraceStats,
};

pub use experiments::{
    fig3, fig5, fig6, fig7, AvailabilityTable, DistributedTable, SingleNodeTable, Study,
};
pub use report::{compare_table2, compare_table3, median, Comparison};
