//! Paper-vs-model comparison summaries for EXPERIMENTS.md.

use crate::experiments::{DistributedTable, SingleNodeTable};
use crate::reference;
use wimpi_hwsim::model::geomean_ratio;

/// A paper-vs-model summary for one table.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What is being compared.
    pub title: String,
    /// Geometric-mean model/paper runtime ratio per comparison point.
    pub per_profile: Vec<(String, f64)>,
    /// Fraction of (query, machine-pair) orderings where the model agrees
    /// with the paper about who is faster.
    pub ordering_agreement: f64,
}

impl Comparison {
    /// Renders as markdown rows.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str("| machine | geomean model/paper |\n|---|---|\n");
        for (name, ratio) in &self.per_profile {
            out.push_str(&format!("| {name} | {ratio:.2}× |\n"));
        }
        out.push_str(&format!(
            "\nPairwise who-is-faster agreement with the paper: **{:.0}%**\n",
            self.ordering_agreement * 100.0
        ));
        out
    }
}

/// Compares a modelled Table II against the paper's.
pub fn compare_table2(model: &SingleNodeTable) -> Comparison {
    let mut per_profile = Vec::new();
    for name in reference::TABLE2_ROWS {
        let paper: Vec<f64> =
            (1..=22).map(|q| reference::table2(name, q).expect("transcribed")).collect();
        let ours: Vec<f64> = (1..=22).map(|q| model.get(name, q).expect("modelled")).collect();
        per_profile.push((name.to_string(), geomean_ratio(&ours, &paper)));
    }
    Comparison {
        title: "Table II (TPC-H SF 1)".to_string(),
        ordering_agreement: ordering_agreement_sf1(model),
        per_profile,
    }
}

fn ordering_agreement_sf1(model: &SingleNodeTable) -> f64 {
    let names = reference::TABLE2_ROWS;
    let mut total = 0usize;
    let mut agree = 0usize;
    for q in 1..=22 {
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                let p = reference::table2(names[i], q).expect("transcribed")
                    < reference::table2(names[j], q).expect("transcribed");
                let m = model.get(names[i], q).expect("modelled")
                    < model.get(names[j], q).expect("modelled");
                total += 1;
                agree += usize::from(p == m);
            }
        }
    }
    agree as f64 / total as f64
}

/// Compares a modelled Table III (servers + WIMPI) against the paper's.
/// Only cluster sizes the paper also ran are compared.
pub fn compare_table3(model: &DistributedTable) -> Comparison {
    let mut per_profile = Vec::new();
    for name in reference::TABLE3_SERVER_ROWS {
        let paper: Vec<f64> = reference::TABLE3_QUERIES
            .iter()
            .map(|&q| reference::table3_server(name, q).expect("transcribed"))
            .collect();
        let ours: Vec<f64> = reference::TABLE3_QUERIES
            .iter()
            .map(|&q| model.servers.get(name, q).expect("modelled"))
            .collect();
        per_profile.push((name.to_string(), geomean_ratio(&ours, &paper)));
    }
    let mut total = 0usize;
    let mut agree = 0usize;
    for &n in &model.cluster_sizes {
        if !reference::TABLE3_CLUSTER_SIZES.contains(&n) {
            continue;
        }
        let paper: Vec<f64> = reference::TABLE3_QUERIES
            .iter()
            .map(|&q| reference::table3_wimpi(n, q).expect("transcribed"))
            .collect();
        let ours: Vec<f64> = reference::TABLE3_QUERIES
            .iter()
            .map(|&q| model.wimpi(n, q).expect("modelled"))
            .collect();
        per_profile.push((format!("pi3b+ x{n}"), geomean_ratio(&ours, &paper)));
        // Agreement: does WIMPI beat op-e5 in the model exactly when it
        // does in the paper?
        for (i, &q) in reference::TABLE3_QUERIES.iter().enumerate() {
            let p = paper[i] < reference::table3_server("op-e5", q).expect("transcribed");
            let m = ours[i] < model.servers.get("op-e5", q).expect("modelled");
            total += 1;
            agree += usize::from(p == m);
        }
    }
    Comparison {
        title: "Table III (TPC-H SF 10, distributed)".to_string(),
        ordering_agreement: if total == 0 { 1.0 } else { agree as f64 / total as f64 },
        per_profile,
    }
}

/// Median of a slice (used for the paper's "median improvement" claims).
pub fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.is_empty() {
        return f64::NAN;
    }
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        (v[mid - 1] + v[mid]) / 2.0
    } else {
        v[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_basics() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn perfect_model_compares_at_one() {
        // Feed the paper's own numbers through the comparison: every ratio
        // must be exactly 1 and agreement 100%.
        let model = SingleNodeTable {
            target_sf: 1.0,
            queries: (1..=22).collect(),
            profiles: reference::TABLE2_ROWS.iter().map(|s| s.to_string()).collect(),
            seconds: reference::TABLE2_SECONDS.iter().map(|r| r.to_vec()).collect(),
        };
        let c = compare_table2(&model);
        for (name, ratio) in &c.per_profile {
            assert!((ratio - 1.0).abs() < 1e-12, "{name} ratio {ratio}");
        }
        assert_eq!(c.ordering_agreement, 1.0);
        let md = c.to_markdown();
        assert!(md.contains("100%"));
    }
}
