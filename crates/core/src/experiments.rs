//! Experiment runners — one per table/figure of the paper (DESIGN.md §4).
//!
//! Every runner executes the workload for real on the host (at a
//! configurable `measure_sf`), scales the measured work profiles to the
//! paper's scale factor, and prices them under the ten hardware models.

use wimpi_analysis::{Series, TextFigure};
use wimpi_cluster::distribute::Strategy;
use wimpi_cluster::faults::FaultPlan;
use wimpi_cluster::memory::MemoryModel;
use wimpi_cluster::{scan_bytes, ClusterConfig, WimpiCluster};
use wimpi_engine::{EngineError, Result, WorkProfile};
use wimpi_hwsim::micro;
use wimpi_hwsim::{all_profiles, predict_all_cores, predict_single_core, HwProfile};
use wimpi_queries::{query, run as run_query, QueryPlan, CHOKEPOINT_QUERIES};
use wimpi_storage::Catalog;
use wimpi_strategies::{Paradigm, STRATEGY_QUERIES};
use wimpi_tpch::Generator;

/// Study-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct Study {
    /// Scale factor actually generated and executed on the host. Work
    /// profiles are scaled linearly from here to each experiment's target
    /// SF (1 or 10).
    pub measure_sf: f64,
}

/// Single-node runtimes for a set of queries across all comparison points.
#[derive(Debug, Clone)]
pub struct SingleNodeTable {
    /// Target scale factor the numbers represent.
    pub target_sf: f64,
    /// Query numbers, column order.
    pub queries: Vec<usize>,
    /// Comparison-point names, row order.
    pub profiles: Vec<String>,
    /// Predicted seconds, `[profile][query]`.
    pub seconds: Vec<Vec<f64>>,
}

impl SingleNodeTable {
    /// Seconds for one comparison point / query.
    pub fn get(&self, profile: &str, q: usize) -> Option<f64> {
        let r = self.profiles.iter().position(|p| p == profile)?;
        let c = self.queries.iter().position(|&x| x == q)?;
        Some(self.seconds[r][c])
    }

    /// Renders as an aligned table.
    pub fn to_figure(&self, title: &str) -> TextFigure {
        let mut f = TextFigure::new(title, "machine");
        f.rows = self.profiles.clone();
        for (c, q) in self.queries.iter().enumerate() {
            f.push_series(Series::new(
                format!("Q{q}"),
                self.seconds.iter().map(|row| row[c]).collect(),
            ));
        }
        f
    }
}

/// Table III: servers plus the WIMPI cluster sweep.
#[derive(Debug, Clone)]
pub struct DistributedTable {
    /// Target scale factor.
    pub target_sf: f64,
    /// Query numbers, column order.
    pub queries: Vec<usize>,
    /// Server runtimes (single node).
    pub servers: SingleNodeTable,
    /// Swept cluster sizes.
    pub cluster_sizes: Vec<u32>,
    /// WIMPI seconds, `[size][query]`.
    pub wimpi_seconds: Vec<Vec<f64>>,
}

impl DistributedTable {
    /// WIMPI seconds at a cluster size.
    pub fn wimpi(&self, nodes: u32, q: usize) -> Option<f64> {
        let r = self.cluster_sizes.iter().position(|&n| n == nodes)?;
        let c = self.queries.iter().position(|&x| x == q)?;
        Some(self.wimpi_seconds[r][c])
    }

    /// Renders servers + cluster rows in one table.
    pub fn to_figure(&self, title: &str) -> TextFigure {
        let mut f = TextFigure::new(title, "configuration");
        f.rows = self.servers.profiles.clone();
        f.rows.extend(self.cluster_sizes.iter().map(|n| format!("pi3b+ x{n}")));
        for (c, q) in self.queries.iter().enumerate() {
            let mut vals: Vec<f64> = self.servers.seconds.iter().map(|row| row[c]).collect();
            vals.extend(self.wimpi_seconds.iter().map(|row| row[c]));
            f.push_series(Series::new(format!("Q{q}"), vals));
        }
        f
    }
}

/// Figure 4 data: per (query, paradigm, machine) predicted seconds.
#[derive(Debug, Clone)]
pub struct StrategyTable {
    /// Query numbers.
    pub queries: Vec<usize>,
    /// Machines compared (the paper uses op-e5, op-gold, pi3b+).
    pub machines: Vec<String>,
    /// Seconds, `[machine][paradigm][query]` with paradigms in
    /// [`Paradigm::ALL`] order.
    pub seconds: Vec<Vec<Vec<f64>>>,
}

impl StrategyTable {
    /// Renders one sub-figure per machine.
    pub fn to_figures(&self) -> Vec<TextFigure> {
        self.machines
            .iter()
            .enumerate()
            .map(|(m, name)| {
                let mut f = TextFigure::new(
                    format!("Fig 4 — execution strategies on {name} (SF 1, 1 thread, s)"),
                    "query",
                );
                f.rows = self.queries.iter().map(|q| format!("Q{q}")).collect();
                for (p, paradigm) in Paradigm::ALL.iter().enumerate() {
                    f.push_series(Series::new(paradigm.label(), self.seconds[m][p].clone()));
                }
                f
            })
            .collect()
    }
}

/// The availability experiment: recovery overhead when nodes are killed
/// mid-study, swept over cluster size and failure count. Not in the paper —
/// the paper §III-C4 only *reports* that OOM crashes stayed isolated; this
/// quantifies what riding through real failures would have cost WIMPI.
#[derive(Debug, Clone)]
pub struct AvailabilityTable {
    /// Target scale factor the numbers represent.
    pub target_sf: f64,
    /// Swept cluster sizes, row order.
    pub cluster_sizes: Vec<u32>,
    /// Nodes killed per experiment, column order (0 = fault-free baseline).
    pub kills: Vec<u32>,
    /// Choke-point total runtime relative to fault-free, `[size][kills]`
    /// (1.0 = no overhead; NaN when the kill count reaches the size).
    pub overhead: Vec<Vec<f64>>,
    /// Simulated seconds attributed to recovery, `[size][kills]`.
    pub recovery_seconds: Vec<Vec<f64>>,
    /// Worst per-query answer coverage, `[size][kills]` (1.0 = complete).
    pub coverage: Vec<Vec<f64>>,
}

impl AvailabilityTable {
    /// Renders the overhead and recovery-time panels.
    pub fn to_figures(&self) -> Vec<TextFigure> {
        let rows: Vec<String> = self.cluster_sizes.iter().map(|n| format!("pi3b+ x{n}")).collect();
        let mut f1 = TextFigure::new(
            format!(
                "Availability — choke-point runtime vs fault-free (SF {}, ratio)",
                self.target_sf
            ),
            "cluster",
        );
        f1.rows = rows.clone();
        let mut f2 = TextFigure::new(
            format!("Availability — simulated recovery seconds (SF {})", self.target_sf),
            "cluster",
        );
        f2.rows = rows;
        for (c, k) in self.kills.iter().enumerate() {
            f1.push_series(Series::new(
                format!("{k} killed"),
                self.overhead.iter().map(|row| row[c]).collect(),
            ));
            f2.push_series(Series::new(
                format!("{k} killed"),
                self.recovery_seconds.iter().map(|row| row[c]).collect(),
            ));
        }
        vec![f1, f2]
    }
}

impl Study {
    /// A study measuring at the given SF.
    pub fn new(measure_sf: f64) -> Self {
        assert!(measure_sf > 0.0);
        Self { measure_sf }
    }

    /// Table I: the hardware specification table (static data).
    pub fn table1() -> TextFigure {
        let mut f = TextFigure::new("Table I — hardware specifications", "name");
        let profiles = all_profiles();
        f.rows = profiles.iter().map(|p| p.name.to_string()).collect();
        f.push_series(Series::new("GHz", profiles.iter().map(|p| p.freq_ghz).collect()));
        f.push_series(Series::new("cores", profiles.iter().map(|p| p.cores as f64).collect()));
        f.push_series(Series::new(
            "LLC(MB)",
            profiles.iter().map(|p| p.llc_bytes as f64 / (1 << 20) as f64).collect(),
        ));
        f.push_series(Series {
            name: "MSRP($)".into(),
            values: profiles.iter().map(|p| p.msrp_usd).collect(),
        });
        f.push_series(Series {
            name: "hourly($)".into(),
            values: profiles.iter().map(|p| p.hourly_usd).collect(),
        });
        f.push_series(Series {
            name: "TDP(W)".into(),
            values: profiles.iter().map(|p| p.tdp_watts).collect(),
        });
        f
    }

    /// Figure 2: microbenchmark scores for all machines, single- and
    /// all-core (model predictions; host kernels anchor them separately).
    pub fn fig2() -> Vec<TextFigure> {
        let profiles = all_profiles();
        let rows: Vec<String> = profiles.iter().map(|p| p.name.to_string()).collect();
        let scores: Vec<micro::MicroScores> = profiles.iter().map(micro::scores).collect();
        let mk = |title: &str, one: Vec<f64>, all: Vec<f64>| {
            let mut f = TextFigure::new(title, "machine");
            f.rows = rows.clone();
            f.push_series(Series::new("1-core", one));
            f.push_series(Series::new("all-cores", all));
            f
        };
        vec![
            mk(
                "Fig 2a — Whetstone MWIPS (higher is better)",
                scores.iter().map(|s| s.whetstone.0).collect(),
                scores.iter().map(|s| s.whetstone.1).collect(),
            ),
            mk(
                "Fig 2b — Dhrystone DMIPS (higher is better)",
                scores.iter().map(|s| s.dhrystone.0).collect(),
                scores.iter().map(|s| s.dhrystone.1).collect(),
            ),
            mk(
                "Fig 2c — sysbench prime seconds (lower is better)",
                scores.iter().map(|s| s.prime_s.0).collect(),
                scores.iter().map(|s| s.prime_s.1).collect(),
            ),
            mk(
                "Fig 2d — memory bandwidth GB/s (higher is better)",
                scores.iter().map(|s| s.membw_gbs.0).collect(),
                scores.iter().map(|s| s.membw_gbs.1).collect(),
            ),
        ]
    }

    /// Table II: all 22 queries at SF 1 across the ten machines.
    pub fn table2(&self) -> Result<SingleNodeTable> {
        let queries: Vec<usize> = (1..=22).collect();
        self.single_node_table(&queries, 1.0)
    }

    /// The server rows of Table III (choke-point queries at SF 10). A lone
    /// Pi cannot hold SF 10 (the reason the paper built WIMPI), so the Pi
    /// row is dropped here, matching the paper's table.
    pub fn table3_servers(&self) -> Result<SingleNodeTable> {
        let mut t = self.single_node_table(&CHOKEPOINT_QUERIES, 10.0)?;
        if let Some(pos) = t.profiles.iter().position(|p| p == "pi3b+") {
            t.profiles.remove(pos);
            t.seconds.remove(pos);
        }
        Ok(t)
    }

    fn single_node_table(&self, queries: &[usize], target_sf: f64) -> Result<SingleNodeTable> {
        let cat = generate(self.measure_sf)?;
        let scale = target_sf / self.measure_sf;
        let mut work: Vec<WorkProfile> = Vec::with_capacity(queries.len());
        let mut base: Vec<u64> = Vec::with_capacity(queries.len());
        for &q in queries {
            let qp = query(q);
            let (_, prof) = run_query(&qp, &cat)?;
            work.push(prof.scale(scale));
            base.push((query_scan_bytes(&qp, &cat)? as f64 * scale) as u64);
        }
        let profiles = all_profiles();
        let mut seconds = Vec::with_capacity(profiles.len());
        for hw in &profiles {
            let mut row = Vec::with_capacity(queries.len());
            for (i, w) in work.iter().enumerate() {
                row.push(predicted_seconds(hw, w, base[i]));
            }
            seconds.push(row);
        }
        Ok(SingleNodeTable {
            target_sf,
            queries: queries.to_vec(),
            profiles: profiles.iter().map(|p| p.name.to_string()).collect(),
            seconds,
        })
    }

    /// Table III: servers plus the WIMPI sweep at the given cluster sizes.
    pub fn table3(&self, cluster_sizes: &[u32]) -> Result<DistributedTable> {
        let servers = self.table3_servers()?;
        let scale = 10.0 / self.measure_sf;
        let mut wimpi_seconds = Vec::with_capacity(cluster_sizes.len());
        for &n in cluster_sizes {
            let cluster =
                WimpiCluster::build(ClusterConfig::new(n, self.measure_sf).with_model_scale(scale))
                    .map_err(cluster_err)?;
            let mut row = Vec::with_capacity(CHOKEPOINT_QUERIES.len());
            for &q in &CHOKEPOINT_QUERIES {
                let r = cluster
                    .run_named(
                        &format!("Q{q}"),
                        &query(q),
                        Strategy::PartialAggPushdown,
                        &FaultPlan::none(),
                    )
                    .map_err(cluster_err)?;
                row.push(r.total_seconds());
            }
            wimpi_seconds.push(row);
        }
        Ok(DistributedTable {
            target_sf: 10.0,
            queries: CHOKEPOINT_QUERIES.to_vec(),
            servers,
            cluster_sizes: cluster_sizes.to_vec(),
            wimpi_seconds,
        })
    }

    /// The availability experiment: for each cluster size, permanently kill
    /// the `k` highest-index nodes (for each `k` in `kills`) and run every
    /// choke-point query through the recovery engine, recording the total
    /// runtime relative to the fault-free baseline, the simulated seconds
    /// recovery cost, and the worst answer coverage. Deterministic: the
    /// kill set is a function of `(size, k)` alone.
    pub fn availability(&self, cluster_sizes: &[u32], kills: &[u32]) -> Result<AvailabilityTable> {
        let scale = 10.0 / self.measure_sf;
        let mut overhead = Vec::with_capacity(cluster_sizes.len());
        let mut recovery = Vec::with_capacity(cluster_sizes.len());
        let mut coverage = Vec::with_capacity(cluster_sizes.len());
        for &n in cluster_sizes {
            let mut cluster =
                WimpiCluster::build(ClusterConfig::new(n, self.measure_sf).with_model_scale(scale))
                    .map_err(cluster_err)?;
            let mut o_row = Vec::with_capacity(kills.len());
            let mut r_row = Vec::with_capacity(kills.len());
            let mut c_row = Vec::with_capacity(kills.len());
            let mut baseline_total = 0.0;
            for &q in &CHOKEPOINT_QUERIES {
                let r = cluster
                    .run_named(
                        &format!("Q{q}"),
                        &query(q),
                        Strategy::PartialAggPushdown,
                        &FaultPlan::none(),
                    )
                    .map_err(cluster_err)?;
                baseline_total += r.total_seconds();
            }
            for &k in kills {
                if k >= n {
                    // Killing the whole cluster leaves nothing to answer.
                    o_row.push(f64::NAN);
                    r_row.push(f64::NAN);
                    c_row.push(0.0);
                    continue;
                }
                for node in 0..n as usize {
                    cluster.restore_node(node).map_err(cluster_err)?;
                }
                for node in (n - k) as usize..n as usize {
                    cluster.kill_node(node).map_err(cluster_err)?;
                }
                let mut total = 0.0;
                let mut rec = 0.0;
                let mut cov = 1.0f64;
                for &q in &CHOKEPOINT_QUERIES {
                    let r = cluster
                        .run_named(
                            &format!("Q{q}"),
                            &query(q),
                            Strategy::PartialAggPushdown,
                            &FaultPlan::none(),
                        )
                        .map_err(cluster_err)?;
                    total += r.total_seconds();
                    rec += r.recovery.recovery_seconds;
                    cov = cov.min(r.recovery.coverage);
                }
                o_row.push(total / baseline_total);
                r_row.push(rec);
                c_row.push(cov);
            }
            overhead.push(o_row);
            recovery.push(r_row);
            coverage.push(c_row);
        }
        Ok(AvailabilityTable {
            target_sf: 10.0,
            cluster_sizes: cluster_sizes.to_vec(),
            kills: kills.to_vec(),
            overhead,
            recovery_seconds: recovery,
            coverage,
        })
    }

    /// Figure 4: the three execution strategies, single-threaded, SF 1, on
    /// op-e5 / op-gold / Pi 3B+.
    pub fn fig4(&self) -> Result<StrategyTable> {
        let cat = generate(self.measure_sf)?;
        let scale = 1.0 / self.measure_sf;
        let machines = ["op-e5", "op-gold", "pi3b+"];
        let hw: Vec<HwProfile> =
            machines.iter().map(|n| wimpi_hwsim::profile(n).expect("profile exists")).collect();
        let mut seconds =
            vec![vec![vec![0.0; STRATEGY_QUERIES.len()]; Paradigm::ALL.len()]; hw.len()];
        for (qi, &q) in STRATEGY_QUERIES.iter().enumerate() {
            for (pi, &paradigm) in Paradigm::ALL.iter().enumerate() {
                let r = wimpi_strategies::run(q, paradigm, &cat);
                let w = r.work.scale(scale);
                for (m, machine) in hw.iter().enumerate() {
                    seconds[m][pi][qi] = predict_single_core(machine, &w).total_s();
                }
            }
        }
        Ok(StrategyTable {
            queries: STRATEGY_QUERIES.to_vec(),
            machines: machines.iter().map(|s| s.to_string()).collect(),
            seconds,
        })
    }
}

/// Predicts all-core seconds, applying the Pi's memory model (the servers'
/// memory dwarfs any TPC-H working set here).
fn predicted_seconds(hw: &HwProfile, work: &WorkProfile, base_bytes: u64) -> f64 {
    let mut t = predict_all_cores(hw, work).total_s();
    if hw.name == "pi3b+" {
        let mem = MemoryModel::wimpi_node();
        match mem.evaluate(base_bytes, work) {
            Ok(penalty) => t += penalty,
            // Out of memory on a single Pi: the run is impossible; model it
            // as fully SD-card-fed (the paper simply could not run these).
            Err(_) => t += work.seq_bytes() as f64 / mem.sd_read_bps,
        }
    }
    t
}

fn query_scan_bytes(q: &QueryPlan, cat: &Catalog) -> Result<u64> {
    match q {
        QueryPlan::Single(p) => scan_bytes(p, cat).map_err(cluster_err),
        QueryPlan::TwoPhase { first, second, .. } => {
            let a = scan_bytes(first, cat).map_err(cluster_err)?;
            let b =
                scan_bytes(&second(wimpi_storage::Value::F64(0.0)), cat).map_err(cluster_err)?;
            Ok(a.max(b))
        }
    }
}

fn cluster_err(e: wimpi_cluster::ClusterError) -> EngineError {
    match e {
        wimpi_cluster::ClusterError::Engine(e) => e,
        other => EngineError::Plan(other.to_string()),
    }
}

fn generate(sf: f64) -> Result<Catalog> {
    Generator::new(sf).generate_catalog().map_err(EngineError::Storage)
}

/// Figure 3: per-query slowdown of the Pi (SF 1) / WIMPI@24 (SF 10)
/// relative to each comparison point.
pub fn fig3(sf1: &SingleNodeTable, sf10: &DistributedTable) -> Vec<TextFigure> {
    let mut f1 = TextFigure::new("Fig 3 (left) — SF 1 speedup over pi3b+", "machine");
    f1.rows = sf1.profiles.iter().filter(|p| *p != "pi3b+").cloned().collect();
    for (c, q) in sf1.queries.iter().enumerate() {
        let pi = sf1.get("pi3b+", *q).expect("pi row present");
        f1.push_series(Series::new(
            format!("Q{q}"),
            sf1.profiles
                .iter()
                .zip(&sf1.seconds)
                .filter(|(p, _)| *p != "pi3b+")
                .map(|(_, row)| pi / row[c])
                .collect(),
        ));
    }
    let biggest = *sf10.cluster_sizes.last().expect("at least one size");
    let mut f2 =
        TextFigure::new(format!("Fig 3 (right) — SF 10 speedup over WIMPI x{biggest}"), "machine");
    f2.rows = sf10.servers.profiles.clone();
    for (c, q) in sf10.queries.iter().enumerate() {
        let w = sf10.wimpi(biggest, *q).expect("largest cluster present");
        f2.push_series(Series::new(
            format!("Q{q}"),
            sf10.servers.seconds.iter().map(|row| w / row[c]).collect(),
        ));
    }
    vec![f1, f2]
}

/// Figure 5: MSRP-normalized improvement of the Pi (SF 1) and of WIMPI per
/// cluster size (SF 10) over the on-premises servers.
pub fn fig5(sf1: &SingleNodeTable, sf10: &DistributedTable) -> Vec<TextFigure> {
    // The paper's SF 1 comparison prices the single Pi at its bare $35 MSRP
    // (peripherals enter only the cluster costing, §II-B).
    let pi_msrp = wimpi_analysis::msrp(&wimpi_hwsim::pi3b()).expect("pi msrp");
    let mut f1 = TextFigure::new(
        "Fig 5 (left) — SF 1 MSRP-normalized improvement of pi3b+ (>1 favours the Pi)",
        "query",
    );
    f1.rows = sf1.queries.iter().map(|q| format!("Q{q}")).collect();
    for server in ["op-e5", "op-gold"] {
        let hw = wimpi_hwsim::profile(server).expect("profile exists");
        let m = wimpi_analysis::msrp(&hw).expect("on-prem MSRP known");
        f1.push_series(Series::new(
            format!("vs {server}"),
            sf1.queries
                .iter()
                .map(|&q| {
                    wimpi_analysis::improvement(
                        sf1.get("pi3b+", q).expect("pi present"),
                        pi_msrp,
                        sf1.get(server, q).expect("server present"),
                        m,
                    )
                })
                .collect(),
        ));
    }
    let mut out = vec![f1];
    for server in ["op-e5", "op-gold"] {
        let hw = wimpi_hwsim::profile(server).expect("profile exists");
        let m = wimpi_analysis::msrp(&hw).expect("on-prem MSRP known");
        let mut f = TextFigure::new(
            format!("Fig 5 (right) — SF 10 MSRP-normalized improvement of WIMPI vs {server}"),
            "nodes",
        );
        f.rows = sf10.cluster_sizes.iter().map(|n| format!("x{n}")).collect();
        for (c, q) in sf10.queries.iter().enumerate() {
            f.push_series(Series::new(
                format!("Q{q}"),
                sf10.cluster_sizes
                    .iter()
                    .zip(&sf10.wimpi_seconds)
                    .map(|(&n, row)| {
                        wimpi_analysis::improvement(
                            row[c],
                            wimpi_analysis::wimpi_msrp(n),
                            sf10.servers.get(server, *q).expect("server present"),
                            m,
                        )
                    })
                    .collect(),
            ));
        }
        out.push(f);
    }
    out
}

/// Figure 6: hourly-cost-normalized improvement over the cloud instances.
pub fn fig6(sf1: &SingleNodeTable, sf10: &DistributedTable) -> Vec<TextFigure> {
    let clouds: Vec<HwProfile> =
        all_profiles().into_iter().filter(|p| p.category == wimpi_hwsim::Category::Cloud).collect();
    let mut f1 =
        TextFigure::new("Fig 6 (left) — SF 1 hourly-cost-normalized improvement of pi3b+", "query");
    f1.rows = sf1.queries.iter().map(|q| format!("Q{q}")).collect();
    f1.precision = 0;
    for cloud in &clouds {
        let hourly = cloud.hourly_usd.expect("cloud pricing known");
        f1.push_series(Series::new(
            format!("vs {}", cloud.name),
            sf1.queries
                .iter()
                .map(|&q| {
                    wimpi_analysis::improvement(
                        sf1.get("pi3b+", q).expect("pi present"),
                        wimpi_analysis::wimpi_hourly(1),
                        sf1.get(cloud.name, q).expect("cloud present"),
                        hourly,
                    )
                })
                .collect(),
        ));
    }
    // SF 10: improvement vs the *cheapest-run* cloud instance per query.
    let mut f2 = TextFigure::new(
        "Fig 6 (right) — SF 10 hourly-cost improvement of WIMPI vs best cloud instance",
        "nodes",
    );
    f2.rows = sf10.cluster_sizes.iter().map(|n| format!("x{n}")).collect();
    f2.precision = 1;
    for (c, q) in sf10.queries.iter().enumerate() {
        let best_cloud: f64 = clouds
            .iter()
            .map(|cl| {
                sf10.servers.get(cl.name, *q).expect("cloud present")
                    * cl.hourly_usd.expect("cloud pricing known")
            })
            .fold(f64::INFINITY, f64::min);
        f2.push_series(Series::new(
            format!("Q{q}"),
            sf10.cluster_sizes
                .iter()
                .zip(&sf10.wimpi_seconds)
                .map(|(&n, row)| best_cloud / (row[c] * wimpi_analysis::wimpi_hourly(n)))
                .collect(),
        ));
    }
    vec![f1, f2]
}

/// Figure 7: TDP-energy-normalized improvement over the on-premises servers.
pub fn fig7(sf1: &SingleNodeTable, sf10: &DistributedTable) -> Vec<TextFigure> {
    let mut f1 =
        TextFigure::new("Fig 7 (left) — SF 1 energy-normalized improvement of pi3b+", "query");
    f1.rows = sf1.queries.iter().map(|q| format!("Q{q}")).collect();
    for server in ["op-e5", "op-gold"] {
        let hw = wimpi_hwsim::profile(server).expect("profile exists");
        let w = hw.tdp_watts.expect("on-prem TDP known");
        f1.push_series(Series::new(
            format!("vs {server}"),
            sf1.queries
                .iter()
                .map(|&q| {
                    wimpi_analysis::improvement(
                        sf1.get("pi3b+", q).expect("pi present"),
                        wimpi_analysis::wimpi_power_w(1),
                        sf1.get(server, q).expect("server present"),
                        w,
                    )
                })
                .collect(),
        ));
    }
    let mut f2 = TextFigure::new(
        "Fig 7 (right) — SF 10 energy-normalized improvement of WIMPI vs op-e5",
        "nodes",
    );
    f2.rows = sf10.cluster_sizes.iter().map(|n| format!("x{n}")).collect();
    let e5 = wimpi_hwsim::profile("op-e5").expect("profile exists");
    let e5_w = e5.tdp_watts.expect("TDP known") * e5.sockets as f64;
    for (c, q) in sf10.queries.iter().enumerate() {
        f2.push_series(Series::new(
            format!("Q{q}"),
            sf10.cluster_sizes
                .iter()
                .zip(&sf10.wimpi_seconds)
                .map(|(&n, row)| {
                    wimpi_analysis::improvement(
                        row[c],
                        wimpi_analysis::wimpi_power_w(n),
                        sf10.servers.get("op-e5", *q).expect("server present"),
                        e5_w,
                    )
                })
                .collect(),
        ));
    }
    vec![f1, f2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_machines() {
        let f = Study::table1();
        assert_eq!(f.rows.len(), 10);
        let text = f.render();
        assert!(text.contains("pi3b+"));
        assert!(text.contains("op-gold"));
    }

    #[test]
    fn fig2_produces_four_panels() {
        let figs = Study::fig2();
        assert_eq!(figs.len(), 4);
        for f in &figs {
            assert_eq!(f.rows.len(), 10);
            assert_eq!(f.series.len(), 2);
        }
    }

    #[test]
    fn table2_small_sf_has_expected_shape() {
        let t = Study::new(0.01).table2().unwrap();
        assert_eq!(t.queries.len(), 22);
        assert_eq!(t.profiles.len(), 10);
        // The Pi is the slowest machine on Q1 (memory-bound).
        let pi = t.get("pi3b+", 1).unwrap();
        for p in &t.profiles {
            if p != "pi3b+" {
                assert!(t.get(p, 1).unwrap() < pi, "{p} must beat the Pi on Q1");
            }
        }
    }

    #[test]
    fn fig3_fig5_fig6_fig7_render() {
        let study = Study::new(0.01);
        let sf1 = study.table2().unwrap();
        let sf10 = study.table3(&[2, 4]).unwrap();
        assert_eq!(fig3(&sf1, &sf10).len(), 2);
        assert_eq!(fig5(&sf1, &sf10).len(), 3);
        assert_eq!(fig6(&sf1, &sf10).len(), 2);
        assert_eq!(fig7(&sf1, &sf10).len(), 2);
        for f in fig5(&sf1, &sf10) {
            assert!(!f.render().is_empty());
        }
    }

    #[test]
    fn availability_prices_failures_above_baseline() {
        let t = Study::new(0.01).availability(&[3, 4], &[0, 1, 2]).unwrap();
        assert_eq!(t.cluster_sizes, vec![3, 4]);
        for (r, _) in t.cluster_sizes.iter().enumerate() {
            assert!((t.overhead[r][0] - 1.0).abs() < 1e-9, "0 kills = baseline");
            assert_eq!(t.recovery_seconds[r][0], 0.0);
            assert!(t.overhead[r][1] > 1.0, "1 kill must cost time: {}", t.overhead[r][1]);
            assert!(t.recovery_seconds[r][1] > 0.0);
            // Answers stay complete: recovery, not degradation.
            assert_eq!(t.coverage[r][1], 1.0);
            assert!(t.overhead[r][2] >= t.overhead[r][1], "more kills cannot be cheaper");
        }
        let figs = t.to_figures();
        assert_eq!(figs.len(), 2);
        assert!(!figs[0].render().is_empty());
    }

    #[test]
    fn fig4_orders_paradigms_correctly() {
        let t = Study::new(0.01).fig4().unwrap();
        assert_eq!(t.machines.len(), 3);
        let figs = t.to_figures();
        assert_eq!(figs.len(), 3);
        // Access-aware beats data-centric on the fast server for the pure
        // scan query Q6 (paper §II-D3 / the Swole result).
        let qi = t.queries.iter().position(|&q| q == 6).unwrap();
        let ope5 = &t.seconds[0];
        assert!(
            ope5[2][qi] < ope5[0][qi],
            "access-aware {} must beat data-centric {} on op-e5",
            ope5[2][qi],
            ope5[0][qi]
        );
        // Compiled-fused is priced as hybrid minus the staged write stream
        // and the per-batch dispatch, so it can never lose to hybrid…
        for (m, name) in t.machines.iter().enumerate() {
            for q in 0..t.queries.len() {
                assert!(
                    t.seconds[m][3][q] <= t.seconds[m][1][q],
                    "fused must not lose to hybrid on {name} Q{}",
                    t.queries[q]
                );
            }
        }
        // …and it changes the Pi-vs-Xeon story: on the Xeon, access-aware's
        // predicate pullups keep winning the scan-heavy queries (extra
        // column passes are free when bandwidth is abundant), but on the
        // single-DDR2-channel Pi those passes are exactly what hurts —
        // compiled-fused, which adds zero byte traffic over the minimum,
        // becomes the best paradigm on strictly more queries there.
        let fused_wins = |m: usize| {
            (0..t.queries.len())
                .filter(|&q| (0..3).all(|p| t.seconds[m][3][q] < t.seconds[m][p][q]))
                .count()
        };
        let pi_idx = t.machines.iter().position(|n| n == "pi3b+").unwrap();
        assert!(
            fused_wins(pi_idx) > fused_wins(0),
            "fusion should dominate on the bandwidth-starved Pi: {} wins there vs {} on op-e5",
            fused_wins(pi_idx),
            fused_wins(0)
        );
    }
}
