//! Zone maps — per-column, morsel-aligned min/max summaries plus presence
//! bitmaps over low-cardinality dictionaries.
//!
//! The paper's wimpy nodes are bandwidth-bound (~2 GB/s on the Pi), so the
//! cheapest byte is the one never streamed: a scan that can prove from a
//! 16-byte `(min, max)` summary that no row in a 64K-row morsel satisfies a
//! predicate skips the whole morsel — the software analogue of the
//! filter-before-data-moves trick the PIM literature wins with. Zone maps
//! are sealed at load time on the same chunk grid as the
//! [`IntegrityManifest`](crate::integrity::IntegrityManifest), summarize
//! every fixed-scale column in a common `i64` slot encoding (raw integers,
//! widened `i32`/date day numbers, decimal mantissas), and carry per-chunk
//! presence bitmaps for dictionary columns whose cardinality is small
//! enough that "which codes appear here" fits in a few words
//! (`l_returnflag`, `l_linestatus`, `l_shipmode`, …).
//!
//! Soundness contract: a zone map describes the column bytes *at seal
//! time*. Any operation that swaps column bytes under the table
//! (fault injection via `Table::with_replaced_column`) drops the zone map
//! rather than carry a now-lying summary — unlike the integrity manifest,
//! which is deliberately carried over because a stale manifest *detects*
//! the swap while a stale zone map would silently mis-prune (DESIGN.md §14).

use crate::column::Column;
use crate::morsel::{morsel_ranges, DEFAULT_MORSEL_ROWS};
use crate::table::Table;
use std::ops::Range;

/// Dictionary columns with at most this many distinct values get per-chunk
/// presence bitmaps. TPC-H's flag/status/mode/priority columns have single-
/// digit cardinalities; anything near the cap (e.g. comment pools) would
/// pay bitmap space for no pruning power.
pub const MAX_PRESENCE_CARDINALITY: usize = 1024;

/// Per-chunk summaries for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnZones {
    /// Column name (matches the table schema).
    pub name: String,
    /// Per-chunk `(min, max)` in the column's i64 slot encoding: raw values
    /// for `Int64`, widened for `Int32`/`Date`, mantissas for `Decimal`.
    /// `None` for types without a fixed-scale i64 encoding (floats, bools,
    /// strings).
    pub ranges: Option<Vec<(i64, i64)>>,
    /// Per-chunk presence bitmaps over dictionary codes (bit `c` set when
    /// code `c` occurs in the chunk). Only for low-cardinality `Str`
    /// columns; every chunk's bitmap has `cardinality.div_ceil(64)` words.
    pub presence: Option<Vec<Vec<u64>>>,
}

/// A sealed set of per-column zone summaries on a fixed chunk grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    chunk_rows: usize,
    columns: Vec<ColumnZones>,
}

impl ZoneMap {
    /// Seals zone summaries over every column at the default morsel
    /// granularity — the grid the parallel kernels scan on.
    pub fn seal(table: &Table) -> ZoneMap {
        Self::seal_with(table, DEFAULT_MORSEL_ROWS)
    }

    /// Seals zone summaries on an explicit chunk grid.
    pub fn seal_with(table: &Table, chunk_rows: usize) -> ZoneMap {
        let columns = table
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| seal_column(&f.name, table.column(i), chunk_rows))
            .collect();
        ZoneMap { chunk_rows, columns }
    }

    /// The chunk granularity the summaries were sealed on.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// All column summaries, in schema order.
    pub fn columns(&self) -> &[ColumnZones] {
        &self.columns
    }

    /// The summary for one column.
    pub fn column(&self, name: &str) -> Option<&ColumnZones> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// The conservative `(min, max)` slot range covering the row span
    /// `rows`, combined across every chunk the span overlaps. `None` when
    /// the column has no ranges (wrong type, unknown name) or the span
    /// falls outside the sealed grid — callers must treat `None` as
    /// "anything possible" and scan.
    pub fn range_over(&self, name: &str, rows: Range<usize>) -> Option<(i64, i64)> {
        let ranges = self.column(name)?.ranges.as_ref()?;
        let (lo, hi) = self.chunk_span(&rows, ranges.len())?;
        let mut it = ranges[lo..=hi].iter();
        let &(mut min, mut max) = it.next()?;
        for &(a, b) in it {
            min = min.min(a);
            max = max.max(b);
        }
        Some((min, max))
    }

    /// The union of presence bitmaps across every chunk the row span
    /// overlaps: a bit is set when that dictionary code *may* occur in
    /// `rows`. `None` follows the same "anything possible" convention as
    /// [`ZoneMap::range_over`].
    pub fn presence_over(&self, name: &str, rows: Range<usize>) -> Option<Vec<u64>> {
        let presence = self.column(name)?.presence.as_ref()?;
        let (lo, hi) = self.chunk_span(&rows, presence.len())?;
        let mut out = presence[lo].clone();
        for chunk in &presence[lo + 1..=hi] {
            for (w, &v) in out.iter_mut().zip(chunk) {
                *w |= v;
            }
        }
        Some(out)
    }

    /// Chunk indices `[lo, hi]` overlapped by a non-empty row span, or
    /// `None` when the span is empty or runs off the sealed grid (a morsel
    /// grid larger than the sealed table fails closed, never panics).
    fn chunk_span(&self, rows: &Range<usize>, chunks: usize) -> Option<(usize, usize)> {
        if rows.is_empty() || self.chunk_rows == 0 {
            return None;
        }
        let lo = rows.start / self.chunk_rows;
        let hi = (rows.end - 1) / self.chunk_rows;
        (hi < chunks).then_some((lo, hi))
    }
}

/// Seals one column. Fixed-scale types get per-chunk min/max in slot
/// encoding; low-cardinality dictionaries additionally get presence
/// bitmaps; floats, bools, and high-cardinality strings summarize nothing.
fn seal_column(name: &str, col: &Column, chunk_rows: usize) -> ColumnZones {
    let chunks = morsel_ranges(col.len(), chunk_rows);
    let ranges = match col {
        Column::Int64(v) | Column::Decimal(v, _) => {
            Some(chunks.iter().map(|r| min_max(v[r.clone()].iter().copied())).collect())
        }
        Column::Int32(v) | Column::Date(v) => {
            Some(chunks.iter().map(|r| min_max(v[r.clone()].iter().map(|&x| x as i64))).collect())
        }
        Column::Float64(_) | Column::Str(_) | Column::Bool(_) => None,
    };
    let presence = match col {
        Column::Str(d) if d.cardinality() <= MAX_PRESENCE_CARDINALITY => {
            let words = d.cardinality().div_ceil(64).max(1);
            Some(
                chunks
                    .iter()
                    .map(|r| {
                        let mut bits = vec![0u64; words];
                        for &c in &d.codes()[r.clone()] {
                            bits[c as usize / 64] |= 1u64 << (c % 64);
                        }
                        bits
                    })
                    .collect(),
            )
        }
        _ => None,
    };
    ColumnZones { name: name.to_string(), ranges, presence }
}

fn min_max(it: impl Iterator<Item = i64>) -> (i64, i64) {
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for v in it {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::DictColumn;
    use crate::schema::{DataType, Field, Schema};

    /// 250 rows of every column type, 100-row chunks → 3 chunks, the same
    /// shape the integrity-manifest tests pin down.
    fn mixed_table(n: usize) -> Table {
        let strs: Vec<String> =
            (0..n).map(|i| ["ALPHA", "BRAVO", "CHARLIE"][i % 3].to_string()).collect();
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("d", DataType::Decimal(2)),
                Field::new("f", DataType::Float64),
                Field::new("w", DataType::Int32),
                Field::new("t", DataType::Date),
                Field::new("s", DataType::Utf8),
                Field::new("b", DataType::Bool),
            ]),
            vec![
                Column::Int64((0..n as i64).collect()),
                Column::Decimal((0..n as i64).map(|i| i * 7).collect(), 2),
                Column::Float64((0..n).map(|i| i as f64 * 0.25).collect()),
                Column::Int32((0..n as i32).collect()),
                Column::Date((0..n as i32).map(|i| 10_000 + i).collect()),
                Column::Str(strs.iter().map(String::as_str).collect()),
                Column::Bool((0..n).map(|i| i % 2 == 0).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn seals_ranges_for_fixed_scale_types_only() {
        let z = ZoneMap::seal_with(&mixed_table(250), 100);
        assert_eq!(z.chunk_rows(), 100);
        for name in ["k", "d", "w", "t"] {
            let c = z.column(name).unwrap();
            assert_eq!(c.ranges.as_ref().unwrap().len(), 3, "{name}: 250 rows / 100 per chunk");
        }
        for name in ["f", "b"] {
            assert!(z.column(name).unwrap().ranges.is_none(), "{name} has no slot encoding");
        }
        // Exact per-chunk bounds on the dense Int64 key.
        let k = z.column("k").unwrap().ranges.as_ref().unwrap();
        assert_eq!(k, &[(0, 99), (100, 199), (200, 249)]);
        // Decimal ranges are over mantissas, dates over widened day numbers.
        assert_eq!(z.column("d").unwrap().ranges.as_ref().unwrap()[0], (0, 99 * 7));
        assert_eq!(z.column("t").unwrap().ranges.as_ref().unwrap()[2], (10_200, 10_249));
    }

    #[test]
    fn presence_bitmaps_cover_low_cardinality_strings() {
        let z = ZoneMap::seal_with(&mixed_table(250), 100);
        let s = z.column("s").unwrap();
        assert!(s.ranges.is_none());
        let presence = s.presence.as_ref().unwrap();
        assert_eq!(presence.len(), 3);
        // All three codes occur in every 100-row chunk of an i%3 pattern.
        for chunk in presence {
            assert_eq!(chunk, &vec![0b111u64]);
        }
    }

    #[test]
    fn high_cardinality_strings_are_not_bitmapped() {
        let n = MAX_PRESENCE_CARDINALITY + 1;
        let strs: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let d: DictColumn = strs.iter().map(String::as_str).collect();
        let t =
            Table::new(Schema::new(vec![Field::new("s", DataType::Utf8)]), vec![Column::Str(d)])
                .unwrap();
        let z = ZoneMap::seal_with(&t, 100);
        assert!(z.column("s").unwrap().presence.is_none());
    }

    #[test]
    fn range_over_combines_chunks_conservatively() {
        let z = ZoneMap::seal_with(&mixed_table(250), 100);
        assert_eq!(z.range_over("k", 0..100), Some((0, 99)));
        assert_eq!(z.range_over("k", 50..150), Some((0, 199)), "spans two chunks");
        assert_eq!(z.range_over("k", 0..250), Some((0, 249)));
        assert_eq!(z.range_over("k", 100..101), Some((100, 199)));
        // Fail-closed cases: empty span, unknown column, unranged type,
        // span past the sealed grid.
        assert_eq!(z.range_over("k", 10..10), None);
        assert_eq!(z.range_over("missing", 0..10), None);
        assert_eq!(z.range_over("f", 0..10), None);
        assert_eq!(z.range_over("k", 0..1000), None);
    }

    #[test]
    fn presence_over_unions_chunks() {
        // A dictionary whose codes are segregated by chunk.
        let strs: Vec<&str> = (0..200).map(|i| if i < 100 { "AIR" } else { "RAIL" }).collect();
        let t = Table::new(
            Schema::new(vec![Field::new("m", DataType::Utf8)]),
            vec![Column::Str(strs.into_iter().collect::<DictColumn>())],
        )
        .unwrap();
        let z = ZoneMap::seal_with(&t, 100);
        assert_eq!(z.presence_over("m", 0..100), Some(vec![0b01]));
        assert_eq!(z.presence_over("m", 100..200), Some(vec![0b10]));
        assert_eq!(z.presence_over("m", 50..150), Some(vec![0b11]), "union across chunks");
        assert_eq!(z.presence_over("m", 0..0), None);
    }

    #[test]
    fn empty_table_seals_without_chunks() {
        let t = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64)]),
            vec![Column::Int64(vec![])],
        )
        .unwrap();
        let z = ZoneMap::seal(&t);
        assert_eq!(z.column("k").unwrap().ranges.as_ref().unwrap().len(), 0);
        assert_eq!(z.range_over("k", 0..0), None);
    }

    #[test]
    fn default_seal_uses_morsel_grid() {
        let z = ZoneMap::seal(&mixed_table(250));
        assert_eq!(z.chunk_rows(), DEFAULT_MORSEL_ROWS);
        assert_eq!(z.column("k").unwrap().ranges.as_ref().unwrap().len(), 1);
        assert_eq!(z.range_over("k", 0..250), Some((0, 249)));
    }
}
