//! # wimpi-storage
//!
//! The columnar storage layer shared by every crate in the WIMPI
//! reproduction: typed [`Column`]s, dictionary-encoded strings, fixed-point
//! [`decimal::Decimal64`]s, [`date::Date32`] calendar dates, [`Schema`]s,
//! immutable [`Table`]s, [`Catalog`]s, and MonetDB-style selection vectors.
//!
//! Design notes live in the repository's `DESIGN.md` (§3, §7).

pub mod checksum;
pub mod column;
pub mod date;
pub mod decimal;
pub mod dict;
pub mod error;
pub mod integrity;
pub mod morsel;
pub mod schema;
pub mod selection;
pub mod spill;
pub mod table;
pub mod value;
pub mod zonemap;

pub use checksum::crc32c;
pub use column::Column;
pub use date::Date32;
pub use decimal::Decimal64;
pub use dict::{DictBuilder, DictColumn};
pub use error::{Result, StorageError};
pub use integrity::{IntegrityManifest, IntegrityViolation};
pub use schema::{DataType, Field, Schema, SchemaRef};
pub use selection::SelVec;
pub use spill::{SpillChunkId, SpillConfig, SpillCounters, SpillDisk, SpillError, SpillFaults};
pub use table::{Catalog, Table};
pub use value::Value;
pub use zonemap::{ColumnZones, ZoneMap};
