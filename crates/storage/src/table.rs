//! Tables and catalogs.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::integrity::IntegrityManifest;
use crate::schema::{Schema, SchemaRef};
use crate::zonemap::ZoneMap;

/// An immutable in-memory table: a schema plus one column per field, plus an
/// optional sealed [`IntegrityManifest`] vouching for the column bytes and
/// an optional sealed [`ZoneMap`] summarizing them for scan pruning.
#[derive(Debug, Clone)]
pub struct Table {
    schema: SchemaRef,
    columns: Vec<Arc<Column>>,
    nrows: usize,
    manifest: Option<Arc<IntegrityManifest>>,
    zones: Option<Arc<ZoneMap>>,
}

impl Table {
    /// Builds a table, checking that every column matches its field's type
    /// and that all columns have the same length.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(StorageError::LengthMismatch { left: schema.len(), right: columns.len() });
        }
        let nrows = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.data_type() != f.data_type {
                return Err(StorageError::TypeMismatch {
                    expected: format!("{} for {}", f.data_type, f.name),
                    actual: c.data_type().to_string(),
                });
            }
            if c.len() != nrows {
                return Err(StorageError::LengthMismatch { left: nrows, right: c.len() });
            }
        }
        Ok(Self {
            schema: Arc::new(schema),
            columns: columns.into_iter().map(Arc::new).collect(),
            nrows,
            manifest: None,
            zones: None,
        })
    }

    /// Seals an [`IntegrityManifest`] over the current column bytes and
    /// returns the table carrying it (DESIGN.md §12). Call at
    /// generation/load time, before the bytes are exposed to faults.
    pub fn with_integrity(mut self) -> Self {
        self.manifest = Some(Arc::new(IntegrityManifest::seal(&self)));
        self
    }

    /// Attaches an externally sealed manifest. The fault-injection and
    /// repair paths use this to pair corrupted bytes with the *original*
    /// manifest (which is exactly what makes the corruption detectable).
    pub fn with_manifest(mut self, manifest: Arc<IntegrityManifest>) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// The sealed manifest, if any.
    pub fn manifest(&self) -> Option<&Arc<IntegrityManifest>> {
        self.manifest.as_ref()
    }

    /// Seals a [`ZoneMap`] over the current column bytes at the default
    /// morsel granularity and returns the table carrying it. Like the
    /// integrity manifest, seal at generation/load time — the summaries
    /// describe exactly the bytes present now (DESIGN.md §14).
    pub fn with_zone_maps(mut self) -> Self {
        self.zones = Some(Arc::new(ZoneMap::seal(&self)));
        self
    }

    /// [`Table::with_zone_maps`] on an explicit chunk grid — tests and
    /// benchmarks shrink it to exercise multi-chunk pruning on small data.
    pub fn with_zone_maps_at(mut self, chunk_rows: usize) -> Self {
        self.zones = Some(Arc::new(ZoneMap::seal_with(&self, chunk_rows)));
        self
    }

    /// The sealed zone map, if any.
    pub fn zones(&self) -> Option<&Arc<ZoneMap>> {
        self.zones.as_ref()
    }

    /// A copy of this table with the column at ordinal `index` replaced
    /// (type and length checked) and every other column Arc-shared. The
    /// manifest handle is carried over unchanged — when the replacement
    /// holds different bytes, scan-time verification will say so. The zone
    /// map is *dropped*: a stale summary over swapped bytes would silently
    /// mis-prune, whereas the stale manifest detects the swap.
    pub fn with_replaced_column(&self, index: usize, column: Column) -> Result<Self> {
        let field = &self.schema.fields()[index];
        if column.data_type() != field.data_type {
            return Err(StorageError::TypeMismatch {
                expected: format!("{} for {}", field.data_type, field.name),
                actual: column.data_type().to_string(),
            });
        }
        if column.len() != self.nrows {
            return Err(StorageError::LengthMismatch { left: self.nrows, right: column.len() });
        }
        let mut columns = self.columns.clone();
        columns[index] = Arc::new(column);
        Ok(Self {
            schema: Arc::clone(&self.schema),
            columns,
            nrows: self.nrows,
            manifest: self.manifest.clone(),
            zones: None,
        })
    }

    /// The table's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The column at ordinal `i`.
    pub fn column(&self, i: usize) -> &Arc<Column> {
        &self.columns[i]
    }

    /// The column with the given name.
    pub fn column_by_name(&self, name: &str) -> Result<&Arc<Column>> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Total heap bytes held by all columns — the quantity the cluster's
    /// per-node memory budget accounts against.
    pub fn heap_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.heap_bytes()).sum()
    }
}

/// A named collection of tables — one per simulated node, or one for the
/// whole database in single-node runs.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), Arc::new(table));
    }

    /// Registers a shared table handle (replication without copying).
    pub fn register_shared(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>> {
        self.tables.get(name).ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Table names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total heap bytes across all tables. Shared (replicated) tables are
    /// counted once per catalog, matching what one node would hold.
    pub fn heap_bytes(&self) -> usize {
        self.tables.values().map(|t| t.heap_bytes()).sum()
    }

    /// Seals an [`IntegrityManifest`] over every table that does not carry
    /// one yet. Tables shared between catalogs lose their sharing here (the
    /// sealed copy is new); callers replicating tables should seal *before*
    /// registering the shared handle.
    pub fn seal_integrity(&mut self) {
        let unsealed: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, t)| t.manifest().is_none())
            .map(|(n, _)| n.clone())
            .collect();
        for name in unsealed {
            let sealed = self.tables[&name].as_ref().clone().with_integrity();
            self.tables.insert(name, Arc::new(sealed));
        }
    }

    /// Seals a [`ZoneMap`] over every table that does not carry one yet,
    /// mirroring [`Catalog::seal_integrity`] (including its caveat about
    /// shared handles losing their sharing).
    pub fn seal_zone_maps(&mut self) {
        let unsealed: Vec<String> = self
            .tables
            .iter()
            .filter(|(_, t)| t.zones().is_none())
            .map(|(n, _)| n.clone())
            .collect();
        for name in unsealed {
            let sealed = self.tables[&name].as_ref().clone().with_zone_maps();
            self.tables.insert(name, Arc::new(sealed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn small_table() -> Table {
        Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Float64)]),
            vec![Column::Int64(vec![1, 2, 3]), Column::Float64(vec![0.5, 1.5, 2.5])],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_types() {
        let err = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64)]),
            vec![Column::Float64(vec![1.0])],
        );
        assert!(matches!(err, Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn construction_validates_lengths() {
        let err = Table::new(
            Schema::new(vec![Field::new("a", DataType::Int64), Field::new("b", DataType::Int64)]),
            vec![Column::Int64(vec![1]), Column::Int64(vec![1, 2])],
        );
        assert!(matches!(err, Err(StorageError::LengthMismatch { .. })));
    }

    #[test]
    fn lookups_by_name_and_ordinal() {
        let t = small_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_by_name("v").unwrap().len(), 3);
        assert!(t.column_by_name("w").is_err());
        assert_eq!(t.column(0).as_i64().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn catalog_register_and_lookup() {
        let mut c = Catalog::new();
        c.register("t", small_table());
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().num_rows(), 3);
        assert!(c.table("missing").is_err());
        assert_eq!(c.names().collect::<Vec<_>>(), ["t"]);
    }

    #[test]
    fn shared_registration_does_not_copy() {
        let t = Arc::new(small_table());
        let mut a = Catalog::new();
        let mut b = Catalog::new();
        a.register_shared("t", Arc::clone(&t));
        b.register_shared("t", Arc::clone(&t));
        assert!(Arc::ptr_eq(a.table("t").unwrap(), b.table("t").unwrap()));
    }

    #[test]
    fn heap_bytes_sums_columns() {
        let t = small_table();
        assert_eq!(t.heap_bytes(), 3 * 8 + 3 * 8);
    }

    #[test]
    fn sealing_attaches_a_verifying_manifest() {
        let t = small_table().with_integrity();
        let m = t.manifest().expect("sealed");
        assert!(m.verify_self());
        assert!(m.verify_table(&t).is_ok());
    }

    #[test]
    fn catalog_seal_integrity_covers_every_table() {
        let mut c = Catalog::new();
        c.register("t", small_table());
        c.seal_integrity();
        assert!(c.table("t").unwrap().manifest().is_some());
        // Idempotent: a second seal keeps the existing manifest handle.
        let before = Arc::as_ptr(c.table("t").unwrap().manifest().unwrap());
        c.seal_integrity();
        assert_eq!(before, Arc::as_ptr(c.table("t").unwrap().manifest().unwrap()));
    }

    #[test]
    fn catalog_seal_zone_maps_covers_every_table() {
        let mut c = Catalog::new();
        c.register("t", small_table());
        c.seal_zone_maps();
        let z = c.table("t").unwrap().zones().expect("sealed");
        assert_eq!(z.range_over("k", 0..3), Some((1, 3)));
        // Idempotent: a second seal keeps the existing zone-map handle.
        let before = Arc::as_ptr(c.table("t").unwrap().zones().unwrap());
        c.seal_zone_maps();
        assert_eq!(before, Arc::as_ptr(c.table("t").unwrap().zones().unwrap()));
    }

    #[test]
    fn replaced_columns_drop_zone_maps() {
        let t = small_table().with_zone_maps();
        assert!(t.zones().is_some());
        let swapped = t.with_replaced_column(0, Column::Int64(vec![9, 2, 3])).expect("valid swap");
        assert!(
            swapped.zones().is_none(),
            "stale zone maps over swapped bytes would silently mis-prune"
        );
    }

    #[test]
    fn replaced_columns_keep_schema_and_manifest() {
        let t = small_table().with_integrity();
        let swapped = t.with_replaced_column(0, Column::Int64(vec![9, 2, 3])).expect("valid swap");
        assert_eq!(swapped.column(0).as_i64().unwrap(), &[9, 2, 3]);
        // The carried-over manifest now (correctly) flags the new bytes.
        let m = swapped.manifest().expect("carried over");
        assert!(m.verify_table(&swapped).is_err());
        assert!(
            t.with_replaced_column(0, Column::Float64(vec![1.0, 2.0, 3.0])).is_err(),
            "type checked"
        );
        assert!(t.with_replaced_column(0, Column::Int64(vec![1])).is_err(), "length checked");
    }
}
