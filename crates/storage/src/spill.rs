//! A deterministic simulated spill disk with checksums and fault injection.
//!
//! The paper's §III-C2/§III-C4 story is that a swap-off wimpy node either
//! fits its working set or dies. The governor reproduces the cliff (Grace
//! partitioning, then a typed `ResourceExhausted`); this module is the tier
//! *past* the cliff: a bounded-capacity [`SpillDisk`] that operators stage
//! partitions on when even Grace cannot shrink the working set (DESIGN.md
//! §16).
//!
//! Everything is simulated in RAM, but the contract is a disk's contract:
//!
//! - **Bounded capacity.** Writes beyond `capacity_bytes` fail with
//!   [`SpillError::DiskFull`]; the engine escalates that to its existing
//!   typed `ResourceExhausted` error.
//! - **Checksummed chunks.** Every chunk's CRC32C (the [`crate::checksum`]
//!   kernel) is recorded at write time and re-verified on every read.
//! - **Seeded fault injection.** Reads may observe torn (truncated) or
//!   bit-flipped views and slow-I/O stragglers. Faults are decided by a
//!   [splitmix64](https://prng.di.unimi.it/splitmix64.c) hash of
//!   `(seed, kind, chunk, attempt)` — order- and thread-count-independent,
//!   so a given seed corrupts exactly the same read attempts no matter how
//!   the surrounding query is scheduled. The *stored* bytes are never
//!   damaged (the model is a flaky microSD read path, not media decay), so
//!   a verified retry eventually returns true bytes; [`SpillDisk::read`]
//!   retries internally with priced backoff and only escalates to
//!   [`SpillError::Unreadable`] after `max_read_retries` failed attempts.
//! - **Priced I/O.** Every transfer accumulates simulated seconds at the
//!   configured MB/s (callers pass the hwsim microSD constant, ≈ 80 MB/s);
//!   stragglers and retries add their own priced delay. No wall-clock
//!   sleeping happens — the cost model is the point, not the latency.

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

use crate::checksum::crc32c;

/// Default cap on verified re-reads of one chunk before the read escalates.
pub const DEFAULT_MAX_READ_RETRIES: u32 = 8;

/// A slow-I/O straggler multiplies the transfer's priced time by this much
/// extra (mirrors the cluster `MemoryModel`'s refault factor of 4).
const STRAGGLER_FACTOR: f64 = 4.0;

/// Seeded fault-injection knobs. A rate of `0` disables that fault kind;
/// a rate of `n` fires on roughly 1-in-`n` decisions, chosen by a
/// deterministic hash of `(seed, kind, chunk, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillFaults {
    /// Seed mixed into every fault decision.
    pub seed: u64,
    /// 1-in-`n` chunk read attempts observe a torn (truncated) view.
    pub torn_every: u64,
    /// 1-in-`n` chunk read attempts observe a single flipped bit.
    pub corrupt_every: u64,
    /// 1-in-`n` transfers are slow-I/O stragglers (priced, never slept).
    pub slow_every: u64,
}

impl SpillFaults {
    /// No injected faults (reads always verify on the first attempt).
    pub fn none() -> Self {
        SpillFaults { seed: 0, torn_every: 0, corrupt_every: 0, slow_every: 0 }
    }

    /// All three fault kinds at 1-in-`every`, decided from `seed`.
    pub fn every(seed: u64, every: u64) -> Self {
        SpillFaults { seed, torn_every: every, corrupt_every: every, slow_every: every }
    }
}

impl Default for SpillFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// Configuration of a [`SpillDisk`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillConfig {
    /// Total bytes the disk holds; writes past this fail with
    /// [`SpillError::DiskFull`].
    pub capacity_bytes: u64,
    /// Sustained read bandwidth, MB/s (callers pass the hwsim microSD
    /// constant; the default matches its 80 MB/s).
    pub read_mbps: f64,
    /// Sustained write bandwidth, MB/s.
    pub write_mbps: f64,
    /// Verified re-reads of one chunk before [`SpillDisk::read`] gives up.
    pub max_read_retries: u32,
    /// Injected-fault knobs.
    pub faults: SpillFaults,
}

impl SpillConfig {
    /// A fault-free disk of `capacity_bytes` at microSD-like bandwidth.
    pub fn with_capacity(capacity_bytes: u64) -> Self {
        SpillConfig {
            capacity_bytes,
            read_mbps: 80.0,
            write_mbps: 80.0,
            max_read_retries: DEFAULT_MAX_READ_RETRIES,
            faults: SpillFaults::none(),
        }
    }

    /// Overrides both transfer rates (MB/s).
    pub fn with_rates(mut self, read_mbps: f64, write_mbps: f64) -> Self {
        self.read_mbps = read_mbps;
        self.write_mbps = write_mbps;
        self
    }

    /// Installs fault-injection knobs.
    pub fn with_faults(mut self, faults: SpillFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the per-chunk read retry cap.
    pub fn with_max_read_retries(mut self, retries: u32) -> Self {
        self.max_read_retries = retries;
        self
    }
}

/// Handle to one written chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpillChunkId(u64);

impl SpillChunkId {
    /// The raw chunk number (sequential from 0 per disk).
    pub fn id(&self) -> u64 {
        self.0
    }
}

/// Errors a spill disk can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillError {
    /// The write does not fit the remaining capacity.
    DiskFull {
        /// Bytes the write asked for.
        requested: u64,
        /// Bytes currently occupied.
        used: u64,
        /// The disk's total capacity.
        capacity: u64,
    },
    /// Every read attempt (initial + retries) failed checksum verification.
    Unreadable {
        /// The chunk that could not be read back.
        chunk: u64,
        /// The CRC32C recorded at write time.
        expected: u32,
        /// The CRC32C of the last corrupted view.
        actual: u32,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// The chunk id is unknown (already freed, or never written).
    UnknownChunk {
        /// The offending chunk id.
        chunk: u64,
    },
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::DiskFull { requested, used, capacity } => {
                write!(f, "spill disk full: write of {requested} B with {used}/{capacity} B used")
            }
            SpillError::Unreadable { chunk, expected, actual, attempts } => write!(
                f,
                "spill chunk {chunk} unreadable after {attempts} attempts: \
                 expected crc32c {expected:#010x}, last view {actual:#010x}"
            ),
            SpillError::UnknownChunk { chunk } => write!(f, "unknown spill chunk {chunk}"),
        }
    }
}

impl std::error::Error for SpillError {}

/// Monotonic counters a [`SpillDisk`] accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillCounters {
    /// Bytes accepted by [`SpillDisk::write`] (the `spilled_bytes` ledger).
    pub spilled_bytes: u64,
    /// Verified re-reads forced by corrupted views.
    pub read_retries: u64,
    /// Checksum mismatches detected at read time (each retry that was
    /// forced detected exactly one corruption first).
    pub corruptions_detected: u64,
    /// Chunks written.
    pub chunks_written: u64,
    /// Successful chunk reads.
    pub chunk_reads: u64,
    /// Slow-I/O stragglers priced in.
    pub stragglers: u64,
}

impl SpillCounters {
    /// Per-counter difference `self - before` (counters only grow).
    pub fn delta_since(&self, before: &SpillCounters) -> SpillCounters {
        SpillCounters {
            spilled_bytes: self.spilled_bytes.saturating_sub(before.spilled_bytes),
            read_retries: self.read_retries.saturating_sub(before.read_retries),
            corruptions_detected: self
                .corruptions_detected
                .saturating_sub(before.corruptions_detected),
            chunks_written: self.chunks_written.saturating_sub(before.chunks_written),
            chunk_reads: self.chunk_reads.saturating_sub(before.chunk_reads),
            stragglers: self.stragglers.saturating_sub(before.stragglers),
        }
    }
}

#[derive(Debug)]
struct Chunk {
    bytes: Vec<u8>,
    crc: u32,
}

#[derive(Debug, Default)]
struct Inner {
    chunks: HashMap<u64, Chunk>,
    used: u64,
    next_id: u64,
    counters: SpillCounters,
    sim_seconds: f64,
}

/// The simulated spill disk. Shared via `Arc`; all mutation is behind one
/// mutex (spill decisions and I/O run on the coordinator thread — see the
/// determinism argument in DESIGN.md §16 — so the lock is never contended
/// on the hot path).
#[derive(Debug)]
pub struct SpillDisk {
    cfg: SpillConfig,
    inner: Mutex<Inner>,
}

/// Domain tags for fault decisions (one per fault kind and direction).
const KIND_TORN: u64 = 0x746f_726e; // "torn"
const KIND_CORRUPT: u64 = 0x666c_6970; // "flip"
const KIND_SLOW_READ: u64 = 0x736c_6f72; // "slor"
const KIND_SLOW_WRITE: u64 = 0x736c_6f77; // "slow"

/// splitmix64 finalizer — the same mixer the TPC-H RNG builds on.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic fault decision plus a derived offset for where the
/// fault lands inside the chunk.
fn fault_roll(seed: u64, kind: u64, chunk: u64, attempt: u32, every: u64) -> Option<u64> {
    if every == 0 {
        return None;
    }
    let h = splitmix64(
        seed ^ splitmix64(kind)
            ^ splitmix64(chunk.wrapping_mul(0x2545_F491_4F6C_DD1D))
            ^ attempt as u64,
    );
    h.is_multiple_of(every).then(|| splitmix64(h))
}

impl SpillDisk {
    /// An empty disk with the given configuration.
    pub fn new(cfg: SpillConfig) -> Self {
        SpillDisk { cfg, inner: Mutex::new(Inner::default()) }
    }

    /// The disk's configuration.
    pub fn config(&self) -> &SpillConfig {
        &self.cfg
    }

    /// Bytes currently occupied by live chunks.
    pub fn used(&self) -> u64 {
        self.inner.lock().unwrap().used
    }

    /// Live (written, not yet freed) chunk count.
    pub fn live_chunks(&self) -> usize {
        self.inner.lock().unwrap().chunks.len()
    }

    /// Snapshot of the lifetime counters.
    pub fn counters(&self) -> SpillCounters {
        self.inner.lock().unwrap().counters
    }

    /// Simulated seconds of spill I/O priced so far (transfers, stragglers,
    /// retry backoff).
    pub fn sim_seconds(&self) -> f64 {
        self.inner.lock().unwrap().sim_seconds
    }

    /// Writes `payload` as one chunk, charging capacity and priced write
    /// time. The recorded CRC32C seals the payload for read-time
    /// verification.
    pub fn write(&self, payload: &[u8]) -> Result<SpillChunkId, SpillError> {
        let mut inner = self.inner.lock().unwrap();
        let len = payload.len() as u64;
        if inner.used + len > self.cfg.capacity_bytes {
            return Err(SpillError::DiskFull {
                requested: len,
                used: inner.used,
                capacity: self.cfg.capacity_bytes,
            });
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let write_s = len as f64 / (self.cfg.write_mbps * 1e6);
        inner.sim_seconds += write_s;
        let f = self.cfg.faults;
        if fault_roll(f.seed, KIND_SLOW_WRITE, id, 0, f.slow_every).is_some() {
            inner.sim_seconds += write_s * STRAGGLER_FACTOR;
            inner.counters.stragglers += 1;
        }
        inner.used += len;
        inner.counters.spilled_bytes += len;
        inner.counters.chunks_written += 1;
        inner.chunks.insert(id, Chunk { bytes: payload.to_vec(), crc: crc32c(payload) });
        Ok(SpillChunkId(id))
    }

    /// Reads a chunk back, verifying its checksum. Corrupted views (torn or
    /// bit-flipped by fault injection) are detected, counted, and retried
    /// with priced backoff up to `max_read_retries` times; only then does
    /// the read escalate to [`SpillError::Unreadable`].
    pub fn read(&self, id: SpillChunkId) -> Result<Vec<u8>, SpillError> {
        let mut inner = self.inner.lock().unwrap();
        let Some(chunk) = inner.chunks.get(&id.0) else {
            return Err(SpillError::UnknownChunk { chunk: id.0 });
        };
        let (bytes, expected) = (chunk.bytes.clone(), chunk.crc);
        let len = bytes.len() as u64;
        let read_s = len as f64 / (self.cfg.read_mbps * 1e6);
        let f = self.cfg.faults;
        let mut last_actual = expected;
        for attempt in 0..=self.cfg.max_read_retries {
            inner.sim_seconds += read_s;
            if fault_roll(f.seed, KIND_SLOW_READ, id.0, attempt, f.slow_every).is_some() {
                inner.sim_seconds += read_s * STRAGGLER_FACTOR;
                inner.counters.stragglers += 1;
            }
            // Faults damage the *view*, never the stored bytes: build the
            // bytes this attempt observes.
            let mut view = std::borrow::Cow::Borrowed(&bytes[..]);
            if !view.is_empty() {
                if let Some(r) = fault_roll(f.seed, KIND_TORN, id.0, attempt, f.torn_every) {
                    let cut = (r % len) as usize; // strict prefix
                    view = std::borrow::Cow::Owned(view[..cut].to_vec());
                }
                if !view.is_empty() {
                    if let Some(r) =
                        fault_roll(f.seed, KIND_CORRUPT, id.0, attempt, f.corrupt_every)
                    {
                        let mut owned = view.into_owned();
                        let pos = (r % owned.len() as u64) as usize;
                        owned[pos] ^= 1 << ((r >> 17) % 8);
                        view = std::borrow::Cow::Owned(owned);
                    }
                }
            }
            let actual = crc32c(&view);
            if actual == expected && view.len() == bytes.len() {
                inner.counters.chunk_reads += 1;
                return Ok(bytes);
            }
            inner.counters.corruptions_detected += 1;
            last_actual = actual;
            if attempt < self.cfg.max_read_retries {
                inner.counters.read_retries += 1;
                // Priced linear backoff: each retry waits one extra transfer
                // time longer before re-reading.
                inner.sim_seconds += read_s * (attempt as f64 + 1.0);
            }
        }
        Err(SpillError::Unreadable {
            chunk: id.0,
            expected,
            actual: last_actual,
            attempts: self.cfg.max_read_retries + 1,
        })
    }

    /// Releases a chunk's capacity. Returns whether the chunk was live.
    pub fn free(&self, id: SpillChunkId) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.chunks.remove(&id.0) {
            Some(c) => {
                inner.used -= c.bytes.len() as u64;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn disk(capacity: u64) -> SpillDisk {
        SpillDisk::new(SpillConfig::with_capacity(capacity))
    }

    #[test]
    fn write_read_free_roundtrip() {
        let d = disk(1 << 20);
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let id = d.write(&payload).unwrap();
        assert_eq!(d.used(), 1000);
        assert_eq!(d.read(id).unwrap(), payload);
        assert_eq!(d.counters().spilled_bytes, 1000);
        assert_eq!(d.counters().chunk_reads, 1);
        assert_eq!(d.counters().read_retries, 0);
        assert!(d.free(id));
        assert_eq!(d.used(), 0);
        assert!(!d.free(id), "double free reports dead chunk");
        assert!(matches!(d.read(id), Err(SpillError::UnknownChunk { .. })));
    }

    #[test]
    fn disk_full_is_typed_and_leaves_state_unchanged() {
        let d = disk(100);
        let id = d.write(&[7u8; 60]).unwrap();
        let err = d.write(&[8u8; 60]).unwrap_err();
        assert_eq!(err, SpillError::DiskFull { requested: 60, used: 60, capacity: 100 });
        assert_eq!(d.used(), 60, "rejected write leaves occupancy untouched");
        assert_eq!(d.counters().spilled_bytes, 60);
        d.free(id);
        assert!(d.write(&[8u8; 60]).is_ok(), "freeing makes room");
    }

    #[test]
    fn io_is_priced_at_configured_rates() {
        let d = SpillDisk::new(SpillConfig::with_capacity(1 << 20).with_rates(80.0, 40.0));
        let id = d.write(&vec![1u8; 400_000]).unwrap();
        let after_write = d.sim_seconds();
        assert!((after_write - 0.01).abs() < 1e-9, "400 KB at 40 MB/s = 10 ms");
        d.read(id).unwrap();
        assert!((d.sim_seconds() - after_write - 0.005).abs() < 1e-9, "400 KB at 80 MB/s = 5 ms");
    }

    #[test]
    fn injected_corruption_is_detected_and_retried_to_success() {
        // High fault rates: many reads corrupt on some attempt, yet every
        // read ends in verified true bytes because the stored chunk is
        // undamaged and retries re-roll the fault decision.
        let cfg = SpillConfig::with_capacity(1 << 20)
            .with_faults(SpillFaults::every(42, 3))
            .with_max_read_retries(16);
        let d = SpillDisk::new(cfg);
        let payloads: Vec<Vec<u8>> =
            (0..32u8).map(|k| (0..200).map(|i| (i as u8).wrapping_mul(k + 1)).collect()).collect();
        let ids: Vec<_> = payloads.iter().map(|p| d.write(p).unwrap()).collect();
        for (id, want) in ids.iter().zip(&payloads) {
            assert_eq!(&d.read(*id).unwrap(), want, "verified read returns true bytes");
        }
        let c = d.counters();
        assert!(c.corruptions_detected > 0, "1-in-3 fault rate must corrupt some views");
        assert_eq!(c.read_retries, c.corruptions_detected, "every detection forced one retry");
        assert_eq!(c.chunk_reads, 32, "every chunk was eventually read");
    }

    #[test]
    fn fault_decisions_are_deterministic_and_order_independent() {
        let cfg = SpillConfig::with_capacity(1 << 20).with_faults(SpillFaults::every(7, 3));
        let run = |order: &[usize]| {
            let d = SpillDisk::new(cfg);
            let ids: Vec<_> = (0..8u8).map(|k| d.write(&[k; 64]).unwrap()).collect();
            for &i in order {
                d.read(ids[i]).unwrap();
            }
            d.counters()
        };
        let fwd = run(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let rev = run(&[7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(fwd, rev, "fault schedule is keyed on chunk ids, not call order");
    }

    #[test]
    fn persistent_corruption_escalates_to_unreadable() {
        // corrupt_every = 1: every attempt observes a flipped bit, so the
        // retry budget runs out and the read escalates with both checksums.
        let cfg = SpillConfig::with_capacity(1 << 20)
            .with_faults(SpillFaults { seed: 1, torn_every: 0, corrupt_every: 1, slow_every: 0 })
            .with_max_read_retries(3);
        let d = SpillDisk::new(cfg);
        let id = d.write(&[9u8; 128]).unwrap();
        match d.read(id).unwrap_err() {
            SpillError::Unreadable { chunk, expected, actual, attempts } => {
                assert_eq!(chunk, id.id());
                assert_eq!(attempts, 4);
                assert_ne!(expected, actual);
            }
            other => panic!("expected Unreadable, got {other:?}"),
        }
        assert_eq!(d.counters().corruptions_detected, 4);
        assert_eq!(d.counters().read_retries, 3, "retries stop at the cap");
    }

    #[test]
    fn torn_views_are_never_accepted() {
        // torn_every = 1 truncates every view; with retries exhausted the
        // read must fail rather than return a short buffer.
        let cfg = SpillConfig::with_capacity(1 << 20)
            .with_faults(SpillFaults { seed: 3, torn_every: 1, corrupt_every: 0, slow_every: 0 })
            .with_max_read_retries(2);
        let d = SpillDisk::new(cfg);
        let id = d.write(&[5u8; 256]).unwrap();
        assert!(matches!(d.read(id), Err(SpillError::Unreadable { .. })));
    }

    #[test]
    fn retries_and_stragglers_are_priced() {
        let clean = SpillDisk::new(SpillConfig::with_capacity(1 << 20));
        let faulty = SpillDisk::new(
            SpillConfig::with_capacity(1 << 20).with_faults(SpillFaults::every(11, 2)),
        );
        for d in [&clean, &faulty] {
            let ids: Vec<_> = (0..16u8).map(|k| d.write(&[k; 4096]).unwrap()).collect();
            for id in ids {
                d.read(id).unwrap();
            }
        }
        assert!(
            faulty.sim_seconds() > clean.sim_seconds(),
            "stragglers and retry backoff must cost simulated time"
        );
    }

    #[test]
    fn empty_chunk_roundtrips() {
        let d = SpillDisk::new(
            SpillConfig::with_capacity(1 << 10).with_faults(SpillFaults::every(5, 1)),
        );
        let id = d.write(&[]).unwrap();
        assert_eq!(d.read(id).unwrap(), Vec::<u8>::new(), "faults cannot damage zero bytes");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-tripping arbitrary payloads through a faulty disk is the
        /// identity whenever the read verifies — the spill tier never
        /// silently hands corrupted partitions back to an operator.
        #[test]
        fn faulty_roundtrip_is_identity(
            len in 0usize..2048,
            seed in 0u64..1_000_000,
            every in 2u64..5,
        ) {
            let mut s = seed | 1;
            let payload: Vec<u8> = (0..len)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (s >> 56) as u8
                })
                .collect();
            let d = SpillDisk::new(
                SpillConfig::with_capacity(1 << 22)
                    .with_faults(SpillFaults::every(seed, every)),
            );
            let id = d.write(&payload).unwrap();
            if let Ok(back) = d.read(id) {
                prop_assert_eq!(back, payload);
            }
            prop_assert!(d.free(id));
            prop_assert_eq!(d.used(), 0);
        }
    }
}
