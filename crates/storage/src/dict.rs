//! Dictionary-encoded string columns.
//!
//! Every string column in the store is dictionary encoded: a `Vec<u32>` of
//! codes plus a sorted-insertion-order dictionary of distinct values. This is
//! the "computationally lightweight" encoding the paper's §III-C2 discusses —
//! fixed-width codes keep scans sequential and cheap, at the price of holding
//! the dictionary in memory. The `bench/dictionary` ablation quantifies the
//! trade-off against raw strings.

use std::collections::HashMap;

/// An immutable dictionary-encoded string column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictColumn {
    codes: Vec<u32>,
    values: Vec<String>,
}

impl DictColumn {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// The dictionary code for row `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u32 {
        self.codes[i]
    }

    /// All codes, in row order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The decoded string for row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &str {
        &self.values[self.codes[i] as usize]
    }

    /// The string a code maps to.
    #[inline]
    pub fn decode(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// The dictionary values (index = code).
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Reassembles a column from raw codes and dictionary values.
    ///
    /// Exists for the integrity layer's fault injection and repair paths,
    /// which must rebuild columns with deliberately wrong (but in-range)
    /// bytes. Every code must index into `values`; that invariant is
    /// asserted here because a code past the dictionary would turn silent
    /// corruption into an out-of-bounds panic at decode time.
    pub fn from_parts(codes: Vec<u32>, values: Vec<String>) -> DictColumn {
        debug_assert!(
            codes.iter().all(|&c| (c as usize) < values.len().max(1)),
            "every code must index the dictionary"
        );
        DictColumn { codes, values }
    }

    /// Looks up the code of an exact value, if present. O(cardinality); use
    /// once per predicate, not per row.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.values.iter().position(|v| v == value).map(|p| p as u32)
    }

    /// Heap bytes held by the column (codes + dictionary payload).
    pub fn heap_bytes(&self) -> usize {
        self.codes.len() * std::mem::size_of::<u32>()
            + self
                .values
                .iter()
                .map(|v| v.capacity() + std::mem::size_of::<String>())
                .sum::<usize>()
    }

    /// Builds a new column containing the rows selected by `sel`, reusing
    /// this column's dictionary (codes stay valid).
    pub fn take(&self, sel: &[u32]) -> DictColumn {
        DictColumn {
            codes: sel.iter().map(|&i| self.codes[i as usize]).collect(),
            values: self.values.clone(),
        }
    }

    /// Copies the contiguous code range `r`, reusing this column's
    /// dictionary (codes stay valid) — see [`crate::Column::slice`].
    pub fn slice(&self, r: std::ops::Range<usize>) -> DictColumn {
        DictColumn { codes: self.codes[r].to_vec(), values: self.values.clone() }
    }

    /// Iterates decoded values in row order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.codes.iter().map(move |&c| self.values[c as usize].as_str())
    }
}

impl<'a> FromIterator<&'a str> for DictColumn {
    fn from_iter<T: IntoIterator<Item = &'a str>>(iter: T) -> Self {
        let mut b = DictBuilder::new();
        for s in iter {
            b.push(s);
        }
        b.finish()
    }
}

/// Incremental builder for [`DictColumn`].
#[derive(Debug, Default)]
pub struct DictBuilder {
    codes: Vec<u32>,
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl DictBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with row capacity pre-allocated.
    pub fn with_capacity(rows: usize) -> Self {
        Self { codes: Vec::with_capacity(rows), ..Self::default() }
    }

    /// Appends one value, interning it in the dictionary.
    pub fn push(&mut self, value: &str) {
        let code = match self.index.get(value) {
            Some(&c) => c,
            None => {
                let c = self.values.len() as u32;
                self.values.push(value.to_string());
                self.index.insert(value.to_string(), c);
                c
            }
        };
        self.codes.push(code);
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Finalizes the column.
    pub fn finish(self) -> DictColumn {
        DictColumn { codes: self.codes, values: self.values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DictColumn {
        ["AIR", "RAIL", "AIR", "TRUCK", "RAIL", "AIR"].into_iter().collect()
    }

    #[test]
    fn interning_dedupes() {
        let c = sample();
        assert_eq!(c.len(), 6);
        assert_eq!(c.cardinality(), 3);
        assert_eq!(c.get(0), "AIR");
        assert_eq!(c.get(3), "TRUCK");
        assert_eq!(c.code(0), c.code(2));
    }

    #[test]
    fn code_of_finds_existing_only() {
        let c = sample();
        let air = c.code_of("AIR").unwrap();
        assert_eq!(c.decode(air), "AIR");
        assert_eq!(c.code_of("SHIP"), None);
    }

    #[test]
    fn take_preserves_dictionary() {
        let c = sample();
        let t = c.take(&[1, 4]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0), "RAIL");
        assert_eq!(t.get(1), "RAIL");
        assert_eq!(t.cardinality(), c.cardinality());
    }

    #[test]
    fn iter_yields_row_order() {
        let c = sample();
        let rows: Vec<&str> = c.iter().collect();
        assert_eq!(rows, ["AIR", "RAIL", "AIR", "TRUCK", "RAIL", "AIR"]);
    }

    #[test]
    fn empty_column() {
        let c: DictColumn = std::iter::empty::<&str>().collect();
        assert!(c.is_empty());
        assert_eq!(c.cardinality(), 0);
        assert_eq!(c.heap_bytes(), 0);
    }

    #[test]
    fn heap_bytes_counts_codes_and_dict() {
        let c = sample();
        assert!(c.heap_bytes() >= 6 * 4 + "AIRRAILTRUCK".len());
    }
}
