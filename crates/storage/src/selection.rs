//! Selection vectors — MonetDB-style candidate lists.
//!
//! A selection vector is a sorted list of row ids that survive a predicate.
//! Operators pass these instead of materializing filtered columns; the
//! `bench/selection` ablation measures the difference.

/// A sorted list of selected row ids.
pub type SelVec = Vec<u32>;

std::thread_local! {
    /// Per-thread free list of selection buffers. Morsel loops churn through
    /// one selection vector per conjunct per morsel; recycling the backing
    /// allocations keeps the steady state allocation-free (the same idiom as
    /// the ASCII LIKE fast path's scratch buffers).
    static SCRATCH: std::cell::RefCell<Vec<SelVec>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Takes an empty selection buffer from the thread-local pool, retaining
/// whatever capacity earlier uses grew; allocates only when the pool is dry.
pub fn take_scratch() -> SelVec {
    let mut v = SCRATCH.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    v.clear();
    v
}

/// Returns a buffer to the thread-local pool for reuse. The pool is bounded,
/// so handing back more buffers than any loop uses at once just drops them.
pub fn put_scratch(v: SelVec) {
    SCRATCH.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 8 {
            pool.push(v);
        }
    });
}

/// The identity selection over `n` rows.
pub fn identity(n: usize) -> SelVec {
    (0..n as u32).collect()
}

/// Intersects two sorted selection vectors.
pub fn intersect(a: &[u32], b: &[u32]) -> SelVec {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Unions two sorted selection vectors.
pub fn union(a: &[u32], b: &[u32]) -> SelVec {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Complements a sorted selection vector over a universe of `n` rows.
///
/// The contract is `sel.len() <= n` with all ids below `n`; a violating
/// caller is a bug (caught by the `debug_assert`), but release builds must
/// not panic on the capacity arithmetic — the subtraction saturates and the
/// output is simply the ids in `0..n` not present in `sel`.
pub fn complement(sel: &[u32], n: usize) -> SelVec {
    debug_assert!(sel.len() <= n, "selection of {} ids over a universe of {n}", sel.len());
    let mut out = Vec::with_capacity(n.saturating_sub(sel.len()));
    let mut next = 0u32;
    for &s in sel {
        while next < s {
            out.push(next);
            next += 1;
        }
        next = s + 1;
    }
    while (next as usize) < n {
        out.push(next);
        next += 1;
    }
    out
}

/// Converts a bool mask to a selection vector.
pub fn from_mask(mask: &[bool]) -> SelVec {
    mask.iter().enumerate().filter_map(|(i, &b)| b.then_some(i as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_covers_all_rows() {
        assert_eq!(identity(4), vec![0, 1, 2, 3]);
        assert!(identity(0).is_empty());
    }

    #[test]
    fn intersect_keeps_common() {
        assert_eq!(intersect(&[0, 2, 4, 6], &[1, 2, 3, 4]), vec![2, 4]);
        assert!(intersect(&[0, 1], &[2, 3]).is_empty());
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn union_merges_sorted() {
        assert_eq!(union(&[0, 2], &[1, 2, 5]), vec![0, 1, 2, 5]);
        assert_eq!(union(&[], &[3]), vec![3]);
    }

    #[test]
    fn complement_inverts() {
        assert_eq!(complement(&[1, 3], 5), vec![0, 2, 4]);
        assert_eq!(complement(&[], 3), vec![0, 1, 2]);
        assert!(complement(&[0, 1, 2], 3).is_empty());
    }

    #[test]
    fn from_mask_selects_true() {
        assert_eq!(from_mask(&[true, false, true]), vec![0, 2]);
    }

    #[test]
    fn scratch_pool_recycles_cleared_buffers() {
        let mut v = take_scratch();
        v.extend(0..100);
        let cap = v.capacity();
        put_scratch(v);
        let v2 = take_scratch();
        assert!(v2.is_empty(), "scratch buffers come back empty");
        assert!(v2.capacity() >= cap, "capacity is retained across reuse");
        put_scratch(v2);
    }

    #[test]
    fn complement_round_trips_with_union() {
        let sel = vec![0, 4, 7, 9];
        let co = complement(&sel, 10);
        assert_eq!(union(&sel, &co), identity(10));
        assert!(intersect(&sel, &co).is_empty());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn complement_saturates_on_contract_violation() {
        // Release builds must not panic on `n - sel.len()` underflow when a
        // buggy caller hands a selection longer than the universe; the
        // debug_assert catches the same call in debug builds.
        assert_eq!(complement(&[0, 1, 2, 3], 2), Vec::<u32>::new());
    }
}

#[cfg(test)]
mod proptests {
    //! Algebraic properties of the selection-vector operations, checked
    //! against a naive `BTreeSet` model: `intersect`/`union`/`complement`
    //! must agree with set semantics and always return sorted, deduplicated
    //! vectors — the invariants every candidate-propagating operator relies
    //! on when it chains these calls.

    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    const N: u32 = 64;

    /// Sorted, deduplicated selection over the universe `0..N` from an
    /// arbitrary draw of ids.
    fn sel_from(raw: &[u32]) -> SelVec {
        let set: BTreeSet<u32> = raw.iter().map(|&v| v % N).collect();
        set.into_iter().collect()
    }

    fn as_set(sel: &[u32]) -> BTreeSet<u32> {
        sel.iter().copied().collect()
    }

    fn is_sorted_dedup(sel: &[u32]) -> bool {
        sel.windows(2).all(|w| w[0] < w[1])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn matches_set_model(
            raw_a in prop::collection::vec(0u32..u32::MAX, 0..96),
            raw_b in prop::collection::vec(0u32..u32::MAX, 0..96),
        ) {
            let (a, b) = (sel_from(&raw_a), sel_from(&raw_b));
            let (sa, sb) = (as_set(&a), as_set(&b));

            let i = intersect(&a, &b);
            prop_assert!(is_sorted_dedup(&i));
            prop_assert_eq!(as_set(&i), &sa & &sb);

            let u = union(&a, &b);
            prop_assert!(is_sorted_dedup(&u));
            prop_assert_eq!(as_set(&u), &sa | &sb);

            let c = complement(&a, N as usize);
            prop_assert!(is_sorted_dedup(&c));
            let universe: BTreeSet<u32> = (0..N).collect();
            prop_assert_eq!(as_set(&c), &universe - &sa);
        }

        #[test]
        fn algebra_laws_hold(
            raw_a in prop::collection::vec(0u32..u32::MAX, 0..96),
            raw_b in prop::collection::vec(0u32..u32::MAX, 0..96),
        ) {
            let (a, b) = (sel_from(&raw_a), sel_from(&raw_b));
            // Commutativity and idempotence.
            prop_assert_eq!(intersect(&a, &b), intersect(&b, &a));
            prop_assert_eq!(union(&a, &b), union(&b, &a));
            prop_assert_eq!(intersect(&a, &a), a.clone());
            prop_assert_eq!(union(&a, &a), a.clone());
            // Involution and De Morgan over the bounded universe.
            let n = N as usize;
            prop_assert_eq!(complement(&complement(&a, n), n), a.clone());
            prop_assert_eq!(
                complement(&union(&a, &b), n),
                intersect(&complement(&a, n), &complement(&b, n))
            );
            // Complement partitions the universe.
            let co = complement(&a, n);
            prop_assert!(intersect(&a, &co).is_empty());
            prop_assert_eq!(union(&a, &co), identity(n));
        }
    }
}
