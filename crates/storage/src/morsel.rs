//! Morsel boundaries — the fixed work units of intra-query parallelism.
//!
//! A morsel is a contiguous range of ~64K rows (Leis et al., "Morsel-Driven
//! Parallelism", SIGMOD 2014). Boundaries depend only on the row count and
//! the configured morsel size — never on the thread count — so any
//! per-morsel partial result (and in particular every floating-point
//! reduction tree built over morsels in index order) is identical no matter
//! how many workers execute the morsels. This is the invariant the engine's
//! bit-exact determinism guarantee rests on (DESIGN.md "Threading model").

use std::ops::Range;

/// Default rows per morsel. Small enough that a handful of live columns fit
/// in a Pi 3B+'s 512 KB LLC slice per core, large enough that dispatch
/// overhead is noise against the per-row work.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Splits `n` rows into contiguous morsels of at most `morsel_rows` rows.
///
/// Every row belongs to exactly one morsel; the final morsel may be short.
/// `morsel_rows == 0` is treated as one morsel spanning everything.
pub fn morsel_ranges(n: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let size = if morsel_rows == 0 { n } else { morsel_rows };
    let count = n.div_ceil(size);
    (0..count).map(|m| (m * size)..((m + 1) * size).min(n)).collect()
}

/// Number of morsels `morsel_ranges(n, morsel_rows)` would produce, without
/// materializing them. Lets observability code size span buffers up front.
pub fn morsel_count(n: usize, morsel_rows: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let size = if morsel_rows == 0 { n } else { morsel_rows };
    n.div_ceil(size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_ranges_len() {
        for n in [0usize, 1, 99, 100, 101, 65_537] {
            for size in [0usize, 1, 100, 65_536] {
                assert_eq!(
                    morsel_count(n, size),
                    morsel_ranges(n, size).len(),
                    "n={n} size={size}"
                );
            }
        }
    }

    #[test]
    fn covers_all_rows_exactly_once() {
        for n in [0usize, 1, 99, 100, 101, 65_536, 65_537, 200_000] {
            let ranges = morsel_ranges(n, 100);
            let covered: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(covered, n, "n={n}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "morsels must be contiguous");
            }
            if n > 0 {
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
            }
        }
    }

    #[test]
    fn zero_morsel_rows_means_one_morsel() {
        let ranges = morsel_ranges(10, 0);
        assert_eq!(ranges.len(), 1);
        assert_eq!(ranges[0], 0..10);
    }

    #[test]
    fn boundaries_independent_of_anything_but_n_and_size() {
        assert_eq!(morsel_ranges(250, 100), vec![0..100, 100..200, 200..250]);
    }
}
