//! Hand-rolled CRC32C (Castagnoli) checksum kernel.
//!
//! The integrity layer (DESIGN.md §12) checksums every morsel-aligned column
//! chunk so silent bit flips in non-ECC RAM or on microSD media are caught at
//! scan time. crates.io is unreachable in the build environment, so the
//! kernel is written in-repo: a slicing-by-8 table-driven fast path (the
//! tables are built at compile time by a `const fn`) with a naive bit-by-bit
//! reference implementation kept alongside for proptest cross-validation,
//! mirroring how the PR 3 LIKE kernel is verified against its recursive
//! reference.
//!
//! CRC32C was chosen over FNV-1a for its guaranteed detection of all
//! single-bit errors (it is a cyclic code; FNV is not), which is exactly the
//! fault model `cluster::faults::FaultKind::BitFlip` injects.

/// The Castagnoli polynomial, reflected (bit-reversed) form.
const POLY: u32 = 0x82F6_3B78;

/// Slicing-by-8 lookup tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][b]` is the CRC of byte `b` followed by `k` zero bytes,
/// which lets the fast path consume eight input bytes per iteration with
/// eight independent loads.
static TABLES: [[u32; 256]; 8] = make_tables();

const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Advances `state` (the *internal*, pre-inversion CRC register) over
/// `bytes` using the slicing-by-8 tables.
fn advance(mut crc: u32, mut bytes: &[u8]) -> u32 {
    while bytes.len() >= 8 {
        let r = crc.to_le_bytes();
        crc = TABLES[7][(r[0] ^ bytes[0]) as usize]
            ^ TABLES[6][(r[1] ^ bytes[1]) as usize]
            ^ TABLES[5][(r[2] ^ bytes[2]) as usize]
            ^ TABLES[4][(r[3] ^ bytes[3]) as usize]
            ^ TABLES[3][bytes[4] as usize]
            ^ TABLES[2][bytes[5] as usize]
            ^ TABLES[1][bytes[6] as usize]
            ^ TABLES[0][bytes[7] as usize];
        bytes = &bytes[8..];
    }
    for &b in bytes {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    !advance(!0, bytes)
}

/// Naive bit-by-bit reference implementation. Kept `pub` so the proptest
/// suite (and any future kernel rewrite) can cross-validate the table-driven
/// fast path against it; never used on the hot path.
pub fn crc32c_naive(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
        }
    }
    !crc
}

/// Incremental CRC32C hasher for streaming typed column payloads without
/// materializing an intermediate byte buffer.
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh hasher (empty input hashes to 0).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = advance(self.state, bytes);
    }

    /// Feeds one little-endian `u32`.
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Feeds one little-endian `u64`.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The checksum of everything fed so far. Does not consume the hasher;
    /// more input may follow.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_answer_vector() {
        // The canonical CRC32C check value from RFC 3720 appendix B.4.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c_naive(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_and_single_byte() {
        assert_eq!(crc32c(&[]), 0);
        assert_eq!(crc32c_naive(&[]), 0);
        for b in 0..=255u8 {
            assert_eq!(crc32c(&[b]), crc32c_naive(&[b]), "byte {b:#04x}");
        }
    }

    #[test]
    fn all_zero_runs_at_slice_boundaries() {
        // Lengths straddling the 8-byte slicing boundary.
        for len in [1usize, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 1024] {
            let zeros = vec![0u8; len];
            assert_eq!(crc32c(&zeros), crc32c_naive(&zeros), "len {len}");
        }
    }

    #[test]
    fn incremental_matches_one_shot_at_any_split() {
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        let whole = crc32c(&data);
        for split in 0..=data.len() {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_detected() {
        // The cyclic-code guarantee the integrity layer leans on: no
        // single-bit flip is ever silent, at any offset.
        let data: Vec<u8> = (0..96u8).collect();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut dirty = data.clone();
                dirty[byte] ^= 1 << bit;
                assert_ne!(crc32c(&dirty), clean, "byte {byte} bit {bit}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The table-driven fast path agrees with the bit-by-bit reference
        /// on arbitrary inputs (covering the empty and sub-slice tails).
        #[test]
        fn fast_path_matches_naive(len in 0usize..200, seed in 0u64..1_000_000_000) {
            let mut s = seed | 1;
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (s >> 56) as u8
                })
                .collect();
            prop_assert_eq!(crc32c(&data), crc32c_naive(&data));
        }

        /// u32/u64 helpers are equivalent to feeding the LE bytes.
        #[test]
        fn typed_updates_match_byte_updates(a in 0u32..u32::MAX, b in 0u64..u64::MAX) {
            let mut typed = Crc32c::new();
            typed.update_u32(a);
            typed.update_u64(b);
            let mut raw = Crc32c::new();
            raw.update(&a.to_le_bytes());
            raw.update(&b.to_le_bytes());
            prop_assert_eq!(typed.finish(), raw.finish());
        }
    }
}
