//! Fixed-point decimal arithmetic.
//!
//! TPC-H money and rate columns are decimals (`decimal(15,2)`). MonetDB — the
//! system the paper benchmarks — stores these as scaled integers, and so do
//! we: a [`Decimal64`] is an `i64` mantissa plus a decimal scale. Addition,
//! subtraction, and multiplication are exact (performed in `i128` and
//! rescaled); division and averaging intentionally go through `f64` because
//! none of the reproduced queries require exact division.

use crate::error::{Result, StorageError};
use std::cmp::Ordering;
use std::fmt;

/// A fixed-point decimal: `mantissa * 10^-scale`.
///
/// ```
/// use wimpi_storage::decimal::Decimal64;
/// let price = Decimal64::from_str_scale("901.00", 2).unwrap();
/// let discount = Decimal64::from_str_scale("0.06", 2).unwrap();
/// let one = Decimal64::one(2);
/// let discounted = price.mul(one.sub(discount).unwrap(), 2).unwrap();
/// assert_eq!(discounted.to_string(), "846.94");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal64 {
    mantissa: i64,
    scale: u8,
}

const POW10: [i128; 19] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
    1_000_000_000_000,
    10_000_000_000_000,
    100_000_000_000_000,
    1_000_000_000_000_000,
    10_000_000_000_000_000,
    100_000_000_000_000_000,
    1_000_000_000_000_000_000,
];

// `add`/`sub` are deliberately inherent (not `std::ops`): they are fallible
// (overflow) and scale-aware, so operator sugar would mislead.
#[allow(clippy::should_implement_trait)]
impl Decimal64 {
    /// Builds a decimal from a raw mantissa and scale.
    pub const fn new(mantissa: i64, scale: u8) -> Self {
        Self { mantissa, scale }
    }

    /// The value `1` at the given scale.
    pub const fn one(scale: u8) -> Self {
        Self { mantissa: POW10[scale as usize] as i64, scale }
    }

    /// The value `0` at the given scale.
    pub const fn zero(scale: u8) -> Self {
        Self { mantissa: 0, scale }
    }

    /// Raw mantissa (value × 10^scale).
    pub const fn mantissa(self) -> i64 {
        self.mantissa
    }

    /// Decimal scale (number of fractional digits).
    pub const fn scale(self) -> u8 {
        self.scale
    }

    /// Converts to `f64`; lossy for very large mantissas, which TPC-H never
    /// produces.
    pub fn to_f64(self) -> f64 {
        self.mantissa as f64 / POW10[self.scale as usize] as f64
    }

    /// Builds from an `f64`, rounding half away from zero.
    pub fn from_f64(v: f64, scale: u8) -> Self {
        let scaled = v * POW10[scale as usize] as f64;
        Self { mantissa: scaled.round() as i64, scale }
    }

    /// Parses a decimal string like `-12.345`, scaling or truncating the
    /// fraction to `scale` digits.
    pub fn from_str_scale(s: &str, scale: u8) -> Result<Self> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let mut parts = body.splitn(2, '.');
        let int_part = parts.next().unwrap_or("");
        let frac_part = parts.next().unwrap_or("");
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(StorageError::Parse(format!("empty decimal: {s:?}")));
        }
        let mut mantissa: i128 = 0;
        for c in int_part.chars() {
            let d =
                c.to_digit(10).ok_or_else(|| StorageError::Parse(format!("bad decimal: {s:?}")))?;
            mantissa = mantissa * 10 + d as i128;
        }
        // Validate the *entire* fraction before scaling: a stray byte past
        // the `scale`-th digit ("1.23x" at scale 2) must be rejected, not
        // silently dropped with the truncated tail.
        if frac_part.bytes().any(|b| !b.is_ascii_digit()) {
            return Err(StorageError::Parse(format!("bad decimal: {s:?}")));
        }
        for i in 0..scale as usize {
            let d = match frac_part.as_bytes().get(i) {
                Some(b) => (b - b'0') as i128,
                None => 0,
            };
            mantissa = mantissa * 10 + d;
        }
        if neg {
            mantissa = -mantissa;
        }
        i64::try_from(mantissa)
            .map(|m| Self { mantissa: m, scale })
            .map_err(|_| StorageError::DecimalOverflow)
    }

    /// Rescales to a new scale, rounding half away from zero when narrowing
    /// — the same convention as [`Decimal64::mul`], so scalar rescales and
    /// the multiply path can never disagree on the last digit.
    pub fn rescale(self, scale: u8) -> Result<Self> {
        if scale == self.scale {
            return Ok(self);
        }
        let m = rescale_i128(self.mantissa as i128, self.scale as usize, scale as usize)?;
        i64::try_from(m)
            .map(|m| Self { mantissa: m, scale })
            .map_err(|_| StorageError::DecimalOverflow)
    }

    /// Exact addition. Operands are first brought to the wider scale.
    pub fn add(self, other: Self) -> Result<Self> {
        let scale = self.scale.max(other.scale);
        let a = self.rescale(scale)?;
        let b = other.rescale(scale)?;
        a.mantissa
            .checked_add(b.mantissa)
            .map(|m| Self { mantissa: m, scale })
            .ok_or(StorageError::DecimalOverflow)
    }

    /// Exact subtraction.
    pub fn sub(self, other: Self) -> Result<Self> {
        self.add(Self { mantissa: -other.mantissa, scale: other.scale })
    }

    /// Exact multiplication, rounded (half away from zero) to `out_scale`.
    pub fn mul(self, other: Self, out_scale: u8) -> Result<Self> {
        let raw = self.mantissa as i128 * other.mantissa as i128;
        let raw_scale = self.scale as usize + other.scale as usize;
        let m = rescale_i128(raw, raw_scale, out_scale as usize)?;
        i64::try_from(m)
            .map(|m| Self { mantissa: m, scale: out_scale })
            .map_err(|_| StorageError::DecimalOverflow)
    }

    /// Division via `f64` (documented lossy path).
    pub fn div_f64(self, other: Self) -> f64 {
        self.to_f64() / other.to_f64()
    }
}

/// Rescales a raw i128 mantissa between scales, rounding half away from zero
/// when narrowing.
fn rescale_i128(m: i128, from: usize, to: usize) -> Result<i128> {
    if to >= from {
        m.checked_mul(POW10[to - from]).ok_or(StorageError::DecimalOverflow)
    } else {
        let div = POW10[from - to];
        let q = m / div;
        let r = m % div;
        // Round half away from zero so totals match hand-computed sums.
        if r.abs() * 2 >= div {
            Ok(q + m.signum())
        } else {
            Ok(q)
        }
    }
}

impl PartialOrd for Decimal64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal64 {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.scale == other.scale {
            self.mantissa.cmp(&other.mantissa)
        } else {
            let scale = self.scale.max(other.scale);
            let a = self.mantissa as i128 * POW10[(scale - self.scale) as usize];
            let b = other.mantissa as i128 * POW10[(scale - other.scale) as usize];
            a.cmp(&b)
        }
    }
}

impl fmt::Display for Decimal64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.mantissa);
        }
        let div = POW10[self.scale as usize] as i64;
        let int = self.mantissa / div;
        let frac = (self.mantissa % div).abs();
        let sign = if self.mantissa < 0 && int == 0 { "-" } else { "" };
        write!(f, "{sign}{int}.{frac:0width$}", width = self.scale as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0.00", "1.50", "-3.07", "901.00", "123456.78"] {
            let d = Decimal64::from_str_scale(s, 2).unwrap();
            assert_eq!(d.to_string(), s, "round trip of {s}");
        }
    }

    #[test]
    fn parse_pads_missing_fraction() {
        let d = Decimal64::from_str_scale("7", 2).unwrap();
        assert_eq!(d.mantissa(), 700);
        let d = Decimal64::from_str_scale("7.5", 2).unwrap();
        assert_eq!(d.mantissa(), 750);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Decimal64::from_str_scale("", 2).is_err());
        assert!(Decimal64::from_str_scale("1.2x", 3).is_err());
        assert!(Decimal64::from_str_scale("abc", 2).is_err());
        // Garbage *past* the retained digits used to slip through: the old
        // loop read only the first `scale` fraction bytes, so "1.23x" at
        // scale 2 parsed as 1.23.
        assert!(Decimal64::from_str_scale("1.23x", 2).is_err());
        assert!(Decimal64::from_str_scale("1.2 3", 2).is_err());
        assert!(Decimal64::from_str_scale("0.00#", 2).is_err());
        assert!(Decimal64::from_str_scale("-5.1e3", 1).is_err());
    }

    #[test]
    fn parse_truncates_long_valid_fractions() {
        // Extra *valid* digits are still truncated per the documented
        // contract ("scaling or truncating"): only garbage is rejected.
        let d = Decimal64::from_str_scale("1.239", 2).unwrap();
        assert_eq!(d.mantissa(), 123);
    }

    #[test]
    fn rescale_narrowing_rounds_half_away_from_zero() {
        // 1.25 → scale 1 must give 1.3 (not the old truncation to 1.2),
        // matching what `mul` produces for the same narrowing.
        assert_eq!(Decimal64::new(125, 2).rescale(1).unwrap(), Decimal64::new(13, 1));
        assert_eq!(Decimal64::new(-125, 2).rescale(1).unwrap(), Decimal64::new(-13, 1));
        assert_eq!(Decimal64::new(124, 2).rescale(1).unwrap(), Decimal64::new(12, 1));
        assert_eq!(Decimal64::new(-124, 2).rescale(1).unwrap(), Decimal64::new(-12, 1));
        // Agreement with the mul path: x.rescale(s) == x.mul(1, s).
        for m in [-1999i64, -125, -5, 0, 5, 125, 1999] {
            let x = Decimal64::new(m, 3);
            for s in 0..=3u8 {
                assert_eq!(
                    x.rescale(s).unwrap(),
                    x.mul(Decimal64::one(0), s).unwrap(),
                    "rescale({m}e-3 -> {s}) diverged from mul"
                );
            }
        }
    }

    #[test]
    fn add_mixed_scales() {
        let a = Decimal64::from_str_scale("1.5", 1).unwrap();
        let b = Decimal64::from_str_scale("0.25", 2).unwrap();
        let c = a.add(b).unwrap();
        assert_eq!(c.to_string(), "1.75");
        assert_eq!(c.scale(), 2);
    }

    #[test]
    fn mul_rescales_and_rounds() {
        // 1.05 * 1.05 = 1.1025 -> 1.10 at scale 2 (round down)
        let a = Decimal64::from_str_scale("1.05", 2).unwrap();
        assert_eq!(a.mul(a, 2).unwrap().to_string(), "1.10");
        // 1.15 * 1.1 = 1.265 -> 1.27 at scale 2 (round half away)
        let b = Decimal64::from_str_scale("1.15", 2).unwrap();
        let c = Decimal64::from_str_scale("1.1", 1).unwrap();
        assert_eq!(b.mul(c, 2).unwrap().to_string(), "1.27");
    }

    #[test]
    fn negative_display() {
        let d = Decimal64::new(-7, 2);
        assert_eq!(d.to_string(), "-0.07");
        let d = Decimal64::new(-107, 2);
        assert_eq!(d.to_string(), "-1.07");
    }

    #[test]
    fn ordering_across_scales() {
        let a = Decimal64::from_str_scale("1.5", 1).unwrap();
        let b = Decimal64::from_str_scale("1.49", 2).unwrap();
        assert!(a > b);
        let c = Decimal64::from_str_scale("1.50", 2).unwrap();
        assert_eq!(a.cmp(&c), Ordering::Equal);
    }

    #[test]
    fn overflow_detected() {
        let big = Decimal64::new(i64::MAX, 0);
        assert_eq!(big.add(Decimal64::new(1, 0)), Err(StorageError::DecimalOverflow));
        assert_eq!(big.mul(big, 0), Err(StorageError::DecimalOverflow));
    }

    #[test]
    fn tpch_discount_expression_is_exact() {
        // l_extendedprice * (1 - l_discount) — the hottest expression in the
        // benchmark; must be exact at scale 4.
        let price = Decimal64::from_str_scale("36485.76", 2).unwrap();
        let disc = Decimal64::from_str_scale("0.09", 2).unwrap();
        let one = Decimal64::one(2);
        let v = price.mul(one.sub(disc).unwrap(), 4).unwrap();
        assert_eq!(v.to_string(), "33202.0416");
    }

    #[test]
    fn from_f64_rounds() {
        assert_eq!(Decimal64::from_f64(1.25, 2).mantissa(), 125);
        assert_eq!(Decimal64::from_f64(-1.25, 2).mantissa(), -125);
        assert_eq!(Decimal64::from_f64(0.064999, 2).mantissa(), 6);
    }
}
