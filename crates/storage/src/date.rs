//! Calendar dates as days since the Unix epoch.
//!
//! TPC-H date columns span 1992-01-01 through 1998-12-31 and the queries need
//! only comparison, `extract(year)`, and month/year interval arithmetic. A
//! 32-bit day count with a proleptic-Gregorian converter (Howard Hinnant's
//! `days_from_civil` algorithm) covers all of that without pulling in a
//! calendar dependency.

use crate::error::{Result, StorageError};
use std::fmt;

/// A date stored as days since 1970-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date32(pub i32);

impl Date32 {
    /// Builds a date from a civil (year, month, day) triple.
    ///
    /// ```
    /// use wimpi_storage::date::Date32;
    /// assert_eq!(Date32::from_ymd(1970, 1, 1).0, 0);
    /// assert_eq!(Date32::from_ymd(1992, 1, 1).0, 8035);
    /// ```
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        debug_assert!((1..=12).contains(&month), "month out of range: {month}");
        debug_assert!((1..=31).contains(&day), "day out of range: {day}");
        let y = if month <= 2 { year - 1 } else { year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (month as i64 + 9) % 12; // Mar=0 .. Feb=11
        let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date32((era * 146097 + doe - 719468) as i32)
    }

    /// Decomposes into a civil (year, month, day) triple.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
        let year = if m <= 2 { y + 1 } else { y } as i32;
        (year, m, d)
    }

    /// The year component (`extract(year from d)`).
    pub fn year(self) -> i32 {
        self.to_ymd().0
    }

    /// The month component, 1-based.
    pub fn month(self) -> u32 {
        self.to_ymd().1
    }

    /// Adds a number of days.
    pub fn add_days(self, days: i32) -> Self {
        Date32(self.0 + days)
    }

    /// Adds calendar months, clamping the day to the target month's length —
    /// the SQL `date + interval 'n' month` rule TPC-H substitution parameters
    /// rely on.
    pub fn add_months(self, months: i32) -> Self {
        let (y, m, d) = self.to_ymd();
        let total = (y as i64) * 12 + (m as i64 - 1) + months as i64;
        let ny = (total.div_euclid(12)) as i32;
        let nm = (total.rem_euclid(12)) as u32 + 1;
        let nd = d.min(days_in_month(ny, nm));
        Date32::from_ymd(ny, nm, nd)
    }

    /// Adds calendar years (`date + interval 'n' year`).
    pub fn add_years(self, years: i32) -> Self {
        self.add_months(years * 12)
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Self> {
        let bad = || StorageError::Parse(format!("bad date: {s:?}"));
        let mut it = s.splitn(3, '-');
        let y: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
            return Err(bad());
        }
        Ok(Date32::from_ymd(y, m, d))
    }
}

/// Number of days in a civil month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month out of range: {month}"),
    }
}

/// Gregorian leap-year rule.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

impl fmt::Display for Date32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date32::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date32(0).to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn round_trip_over_tpch_range() {
        // Every day in the TPC-H population range survives a round trip.
        let start = Date32::from_ymd(1992, 1, 1).0;
        let end = Date32::from_ymd(1998, 12, 31).0;
        for day in start..=end {
            let d = Date32(day);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Date32::from_ymd(y, m, dd).0, day);
        }
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(1992));
        assert!(is_leap(1996));
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(!is_leap(1995));
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1995, 2), 28);
    }

    #[test]
    fn add_months_clamps_day() {
        let d = Date32::from_ymd(1993, 1, 31);
        assert_eq!(d.add_months(1).to_string(), "1993-02-28");
        assert_eq!(d.add_months(3).to_string(), "1993-04-30");
        assert_eq!(d.add_months(12).to_string(), "1994-01-31");
        assert_eq!(d.add_months(-1).to_string(), "1992-12-31");
    }

    #[test]
    fn add_years_matches_q1_style_windows() {
        // The `shipdate >= date '1994-01-01' and < date + 1 year` pattern.
        let lo = Date32::parse("1994-01-01").unwrap();
        let hi = lo.add_years(1);
        assert_eq!(hi.to_string(), "1995-01-01");
        assert_eq!(hi.0 - lo.0, 365);
    }

    #[test]
    fn parse_rejects_bad_dates() {
        assert!(Date32::parse("1994-13-01").is_err());
        assert!(Date32::parse("1994-02-30").is_err());
        assert!(Date32::parse("hello").is_err());
        assert!(Date32::parse("1994-01").is_err());
    }

    #[test]
    fn display_formats_iso() {
        assert_eq!(Date32::from_ymd(1998, 9, 2).to_string(), "1998-09-02");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Date32::parse("1995-03-15").unwrap() < Date32::parse("1995-03-16").unwrap());
    }
}
