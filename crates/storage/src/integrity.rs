//! Per-table integrity manifests: CRC32C checksums over every
//! morsel-aligned column chunk, sealed at generation/load time and verified
//! at scan time (DESIGN.md §12).
//!
//! The threat model is the paper's own hardware: Raspberry-Pi-class nodes
//! with non-ECC LPDDR and microSD storage, where a silently flipped bit in
//! one resident column chunk would otherwise poison a cluster-wide aggregate
//! undetected. Chunks are aligned to [`DEFAULT_MORSEL_ROWS`] so a detected
//! violation names exactly the work unit the engine schedules — and exactly
//! the unit wimpi-tpch's chunk-deterministic generator can recompute for
//! repair.
//!
//! This module also hosts the *seeded corruption helpers* used by
//! `cluster::faults::FaultKind::BitFlip` and the test suite. They are
//! deliberately silent: each returns a corrupted **copy** (never an error,
//! never a panic — dictionary codes are re-clamped into range and string
//! bytes stay ASCII so downstream operators read wrong bytes, not UB).

use std::ops::Range;

use crate::checksum::Crc32c;
use crate::column::Column;
use crate::dict::DictColumn;
use crate::morsel::{morsel_ranges, DEFAULT_MORSEL_ROWS};
use crate::table::Table;

/// Domain-separation salts for the three corruption helpers, so one seed
/// drives independent draw streams.
const DATA_SALT: u64 = 0x1d27_2bd7_35b1_6e9b;
const DICT_SALT: u64 = 0x8b5f_0d3a_6c21_94e7;
const MANIFEST_SALT: u64 = 0x42f0_e1eb_a9ea_3693;

/// The pseudo column name a manifest self-check violation is reported
/// against (the manifest itself was corrupted, not any data chunk).
pub const MANIFEST_PSEUDO_COLUMN: &str = "__manifest__";

/// One detected checksum mismatch: the scan found `actual` where the sealed
/// manifest recorded `expected`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityViolation {
    /// Column the corrupt chunk belongs to ([`MANIFEST_PSEUDO_COLUMN`] when
    /// the manifest itself failed its self-check).
    pub column: String,
    /// Morsel-aligned chunk index; `chunks.len()` is the dictionary
    /// pseudo-chunk of a string column (the dictionary is shared by every
    /// chunk, so it is checksummed once, after the per-chunk codes).
    pub chunk: usize,
    /// The sealed checksum.
    pub expected: u32,
    /// The recomputed checksum.
    pub actual: u32,
}

/// Sealed checksums for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnChecksums {
    /// Column name (matches the table schema).
    pub name: String,
    /// One CRC32C per morsel-aligned chunk of the column's fixed-width
    /// payload (dictionary *codes* for string columns).
    pub chunks: Vec<u32>,
    /// CRC32C of the shared dictionary (string columns only).
    pub dict: Option<u32>,
}

/// A per-table integrity manifest: per-column, per-morsel-aligned-chunk
/// CRC32C checksums plus a self-checksum so corruption of the manifest
/// itself is also detectable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityManifest {
    chunk_rows: usize,
    columns: Vec<ColumnChecksums>,
    self_checksum: u32,
}

impl IntegrityManifest {
    /// Seals a manifest over `table` at the default morsel granularity.
    pub fn seal(table: &Table) -> Self {
        Self::seal_with(table, DEFAULT_MORSEL_ROWS)
    }

    /// Seals a manifest with an explicit chunk size (tests use small chunks
    /// to exercise multi-chunk paths cheaply).
    pub fn seal_with(table: &Table, chunk_rows: usize) -> Self {
        let columns = table
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let col = table.column(i).as_ref();
                ColumnChecksums {
                    name: f.name.clone(),
                    chunks: morsel_ranges(col.len(), chunk_rows)
                        .into_iter()
                        .map(|r| chunk_checksum(col, r))
                        .collect(),
                    dict: match col {
                        Column::Str(d) => Some(dict_checksum(d)),
                        _ => None,
                    },
                }
            })
            .collect();
        let mut m = Self { chunk_rows, columns, self_checksum: 0 };
        m.self_checksum = m.fingerprint();
        m
    }

    /// Rows per checksummed chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The sealed per-column checksums, in schema order.
    pub fn columns(&self) -> &[ColumnChecksums] {
        &self.columns
    }

    /// The sealed checksums for one column.
    pub fn column(&self, name: &str) -> Option<&ColumnChecksums> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Total chunk checksums held (data chunks + dictionary pseudo-chunks)
    /// — the unit the background scrubber budgets in.
    pub fn total_chunks(&self) -> usize {
        self.columns.iter().map(|c| c.chunks.len() + usize::from(c.dict.is_some())).sum()
    }

    /// True when the manifest's own bytes still hash to the checksum sealed
    /// over them — a bit flip *inside the manifest* fails this before any
    /// data chunk is (falsely) accused.
    pub fn verify_self(&self) -> bool {
        self.fingerprint() == self.self_checksum
    }

    /// Recomputes and compares every chunk of `col` against the sealed
    /// values. Returns the number of chunk comparisons performed, or the
    /// first violation found. A column absent from the manifest verifies
    /// trivially (0 checks) — manifests only vouch for what they sealed.
    pub fn verify_column(&self, name: &str, col: &Column) -> Result<usize, IntegrityViolation> {
        let Some(sealed) = self.column(name) else { return Ok(0) };
        let mut checks = 0usize;
        for (chunk, r) in morsel_ranges(col.len(), self.chunk_rows).into_iter().enumerate() {
            let actual = chunk_checksum(col, r);
            let expected = sealed.chunks.get(chunk).copied().unwrap_or(0);
            checks += 1;
            if actual != expected {
                return Err(IntegrityViolation {
                    column: name.to_string(),
                    chunk,
                    expected,
                    actual,
                });
            }
        }
        if let (Some(expected), Column::Str(d)) = (sealed.dict, col) {
            let actual = dict_checksum(d);
            checks += 1;
            if actual != expected {
                return Err(IntegrityViolation {
                    column: name.to_string(),
                    chunk: sealed.chunks.len(),
                    expected,
                    actual,
                });
            }
        }
        Ok(checks)
    }

    /// Verifies every column of `table` (schema order). Returns total chunk
    /// comparisons or the first violation.
    pub fn verify_table(&self, table: &Table) -> Result<usize, IntegrityViolation> {
        let mut checks = 0usize;
        for (i, f) in table.schema().fields().iter().enumerate() {
            checks += self.verify_column(&f.name, table.column(i).as_ref())?;
        }
        Ok(checks)
    }

    /// Enumerates *every* violation in `table` (no early return) — the
    /// quarantine step: a repair pass wants the full extent of the damage,
    /// not just the first corrupt chunk a scan tripped over.
    pub fn violations(&self, table: &Table) -> Vec<IntegrityViolation> {
        let mut found = Vec::new();
        for (i, f) in table.schema().fields().iter().enumerate() {
            let col = table.column(i).as_ref();
            let Some(sealed) = self.column(&f.name) else { continue };
            for (chunk, r) in morsel_ranges(col.len(), self.chunk_rows).into_iter().enumerate() {
                let actual = chunk_checksum(col, r);
                let expected = sealed.chunks.get(chunk).copied().unwrap_or(0);
                if actual != expected {
                    found.push(IntegrityViolation {
                        column: f.name.clone(),
                        chunk,
                        expected,
                        actual,
                    });
                }
            }
            if let (Some(expected), Column::Str(d)) = (sealed.dict, col) {
                let actual = dict_checksum(d);
                if actual != expected {
                    found.push(IntegrityViolation {
                        column: f.name.clone(),
                        chunk: sealed.chunks.len(),
                        expected,
                        actual,
                    });
                }
            }
        }
        found
    }

    /// CRC32C over the manifest's own contents (everything except the
    /// self-checksum field itself).
    fn fingerprint(&self) -> u32 {
        let mut h = Crc32c::new();
        h.update_u64(self.chunk_rows as u64);
        h.update_u64(self.columns.len() as u64);
        for c in &self.columns {
            h.update_u64(c.name.len() as u64);
            h.update(c.name.as_bytes());
            h.update_u64(c.chunks.len() as u64);
            for &crc in &c.chunks {
                h.update_u32(crc);
            }
            match c.dict {
                Some(crc) => {
                    h.update(&[1]);
                    h.update_u32(crc);
                }
                None => h.update(&[0]),
            }
        }
        h.finish()
    }
}

/// CRC32C of one morsel-aligned chunk of a column's stored representation:
/// little-endian fixed-width payloads, IEEE-754 bits for floats, the scale
/// byte then mantissas for decimals, dictionary *codes* for strings.
pub fn chunk_checksum(col: &Column, r: Range<usize>) -> u32 {
    let mut h = Crc32c::new();
    match col {
        Column::Int64(v) => {
            for &x in &v[r] {
                h.update(&x.to_le_bytes());
            }
        }
        Column::Int32(v) => {
            for &x in &v[r] {
                h.update(&x.to_le_bytes());
            }
        }
        Column::Float64(v) => {
            for &x in &v[r] {
                h.update(&x.to_bits().to_le_bytes());
            }
        }
        Column::Decimal(v, s) => {
            h.update(&[*s]);
            for &x in &v[r] {
                h.update(&x.to_le_bytes());
            }
        }
        Column::Date(v) => {
            for &x in &v[r] {
                h.update(&x.to_le_bytes());
            }
        }
        Column::Bool(v) => {
            for &x in &v[r] {
                h.update(&[u8::from(x)]);
            }
        }
        Column::Str(d) => {
            for &c in &d.codes()[r] {
                h.update(&c.to_le_bytes());
            }
        }
    }
    h.finish()
}

/// CRC32C of a string column's shared dictionary (length-prefixed values so
/// `["ab","c"]` and `["a","bc"]` hash differently).
pub fn dict_checksum(d: &DictColumn) -> u32 {
    let mut h = Crc32c::new();
    h.update_u64(d.cardinality() as u64);
    for v in d.values() {
        h.update_u64(v.len() as u64);
        h.update(v.as_bytes());
    }
    h.finish()
}

/// Counter-based SplitMix64 — private copy for the corruption helpers (the
/// cluster fault injector keeps its own; both are pure functions of a seed).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Flips one seeded bit of one stored value inside `col`'s row range `r`.
fn flip_one(col: &mut Column, row: usize, draw: u64) {
    match col {
        Column::Int64(v) => v[row] ^= 1i64 << (draw % 64),
        Column::Decimal(v, _) => v[row] ^= 1i64 << (draw % 64),
        Column::Int32(v) => v[row] ^= 1i32 << (draw % 32),
        Column::Date(v) => v[row] ^= 1i32 << (draw % 32),
        Column::Float64(v) => v[row] = f64::from_bits(v[row].to_bits() ^ (1u64 << (draw % 64))),
        Column::Bool(v) => v[row] = !v[row],
        Column::Str(d) => {
            // A raw bit flip could push a code past the dictionary and turn
            // silent corruption into an out-of-bounds panic; re-clamp so the
            // result is a *valid but wrong* code — wrong bytes, no error.
            let card = d.cardinality() as u32;
            if card > 1 {
                let mut codes = d.codes().to_vec();
                let old = codes[row];
                let mut new = (old ^ (1u32 << (draw % 32))) % card;
                if new == old {
                    new = (old + 1) % card;
                }
                codes[row] = new;
                *d = DictColumn::from_parts(codes, d.values().to_vec());
            }
        }
    }
}

/// Returns a copy of `col` with `bits` seeded single-bit flips applied to
/// stored values inside the row range `r`. Silent by construction: the copy
/// is always structurally valid (see [`flip_one`] for the string-code
/// clamp), it just holds wrong bytes. If an even number of draws cancels
/// out, one extra guaranteed flip is applied so the result really differs
/// (string columns with cardinality ≤ 1 are the lone exception — there is
/// no second value to corrupt a code into, so the copy comes back equal).
pub fn flip_bits(col: &Column, r: Range<usize>, bits: u32, seed: u64) -> Column {
    let mut out = col.clone();
    if r.is_empty() {
        return out;
    }
    let mut rng = SplitMix64(seed ^ DATA_SALT);
    for _ in 0..bits {
        let row = r.start + (rng.next() as usize % r.len());
        flip_one(&mut out, row, rng.next());
    }
    if out == *col {
        flip_one(&mut out, r.start, 0);
    }
    out
}

/// Returns a copy of a string column with `bits` seeded bit flips applied
/// to the *dictionary values* (the shared decode side) rather than the
/// per-row codes. Only bits 0–6 of ASCII bytes are flipped, so the result
/// is always valid UTF-8 — wrong characters, never a decode error.
/// Non-string columns (or dictionaries with no ASCII bytes) come back
/// unchanged.
pub fn corrupt_dict_values(col: &Column, bits: u32, seed: u64) -> Column {
    let Column::Str(d) = col else { return col.clone() };
    let mut values = d.values().to_vec();
    let candidates: Vec<usize> = values
        .iter()
        .enumerate()
        .filter(|(_, v)| v.bytes().any(|b| b < 0x80))
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return col.clone();
    }
    let mut rng = SplitMix64(seed ^ DICT_SALT);
    let flip = |values: &mut Vec<String>, vi: usize, bit: u32| {
        let mut bytes = std::mem::take(&mut values[vi]).into_bytes();
        let ascii: Vec<usize> =
            bytes.iter().enumerate().filter(|(_, &b)| b < 0x80).map(|(i, _)| i).collect();
        let pos = ascii[bit as usize % ascii.len()];
        bytes[pos] ^= 1 << (bit % 7);
        values[vi] = String::from_utf8(bytes).expect("7-bit flips keep ASCII valid");
    };
    for _ in 0..bits.max(1) {
        let vi = candidates[rng.next() as usize % candidates.len()];
        flip(&mut values, vi, rng.next() as u32);
    }
    if values == d.values() {
        // Cancelled-out flips: force one (bit index 1 → XOR 0b10, never a
        // no-op).
        flip(&mut values, candidates[0], 1);
    }
    Column::Str(DictColumn::from_parts(d.codes().to_vec(), values))
}

/// Returns a copy of `m` with one seeded bit flipped inside a stored chunk
/// checksum. The self-checksum is deliberately left stale — a real bit flip
/// would not courteously re-seal the manifest — so [`verify_self`]
/// (IntegrityManifest::verify_self) catches it before any data chunk is
/// falsely accused.
pub fn corrupt_manifest(m: &IntegrityManifest, seed: u64) -> IntegrityManifest {
    let mut out = m.clone();
    let mut rng = SplitMix64(seed ^ MANIFEST_SALT);
    let mut slots: Vec<&mut u32> = Vec::new();
    for c in &mut out.columns {
        slots.extend(c.chunks.iter_mut());
        if let Some(dc) = c.dict.as_mut() {
            slots.push(dc);
        }
    }
    if slots.is_empty() {
        out.self_checksum ^= 1;
        return out;
    }
    let slot = rng.next() as usize % slots.len();
    *slots[slot] ^= 1u32 << (rng.next() % 32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Schema};
    use proptest::prelude::*;

    /// A table with every column type and > 1 chunk at `chunk_rows = 100`.
    fn mixed_table(n: usize) -> Table {
        let strs: Vec<String> =
            (0..n).map(|i| ["ALPHA", "BRAVO", "CHARLIE"][i % 3].to_string()).collect();
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("d", DataType::Decimal(2)),
                Field::new("f", DataType::Float64),
                Field::new("w", DataType::Int32),
                Field::new("t", DataType::Date),
                Field::new("s", DataType::Utf8),
                Field::new("b", DataType::Bool),
            ]),
            vec![
                Column::Int64((0..n as i64).collect()),
                Column::Decimal((0..n as i64).map(|i| i * 7).collect(), 2),
                Column::Float64((0..n).map(|i| i as f64 * 0.25).collect()),
                Column::Int32((0..n as i32).collect()),
                Column::Date((0..n as i32).map(|i| 10_000 + i).collect()),
                Column::Str(strs.iter().map(String::as_str).collect()),
                Column::Bool((0..n).map(|i| i % 2 == 0).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn clean_table_verifies_at_every_granularity() {
        let t = mixed_table(250);
        for chunk_rows in [1usize, 100, 250, 1000, DEFAULT_MORSEL_ROWS] {
            let m = IntegrityManifest::seal_with(&t, chunk_rows);
            assert!(m.verify_self());
            let checks = m.verify_table(&t).expect("clean table verifies");
            assert!(checks >= t.num_columns(), "chunk_rows {chunk_rows}: {checks} checks");
        }
    }

    #[test]
    fn multi_chunk_columns_have_per_chunk_checksums() {
        let t = mixed_table(250);
        let m = IntegrityManifest::seal_with(&t, 100);
        for c in m.columns() {
            assert_eq!(c.chunks.len(), 3, "{}: 250 rows / 100 per chunk", c.name);
        }
        assert!(m.column("s").unwrap().dict.is_some());
        assert_eq!(m.column("k").unwrap().dict, None);
        // 7 columns × 3 chunks + 1 dictionary pseudo-chunk.
        assert_eq!(m.total_chunks(), 22);
    }

    #[test]
    fn every_column_type_detects_seeded_flips() {
        let t = mixed_table(250);
        let m = IntegrityManifest::seal_with(&t, 100);
        for (i, f) in t.schema().fields().iter().enumerate() {
            for seed in 0..20u64 {
                let dirty = flip_bits(t.column(i), 100..200, 1 + (seed % 3) as u32, seed);
                let err = m
                    .verify_column(&f.name, &dirty)
                    .expect_err(&format!("{} seed {seed}: flip must be detected", f.name));
                assert_eq!(err.column, f.name);
                assert_eq!(err.chunk, 1, "{} seed {seed}: corrupt chunk is the middle one", f.name);
                assert_ne!(err.expected, err.actual);
            }
        }
    }

    #[test]
    fn dictionary_corruption_hits_the_pseudo_chunk() {
        let t = mixed_table(250);
        let m = IntegrityManifest::seal_with(&t, 100);
        for seed in 0..20u64 {
            let dirty = corrupt_dict_values(t.column_by_name("s").unwrap(), 2, seed);
            // Codes are untouched, so the data chunks pass and the
            // dictionary pseudo-chunk (index == chunks.len()) fails.
            let err = m.verify_column("s", &dirty).expect_err("dict corruption detected");
            assert_eq!(err.chunk, 3);
            // And the corruption really is silent: still valid UTF-8,
            // decodable at every row.
            let d = dirty.as_str().unwrap();
            for i in 0..d.len() {
                let _ = d.get(i);
            }
        }
    }

    #[test]
    fn manifest_corruption_fails_the_self_check() {
        let t = mixed_table(250);
        let m = IntegrityManifest::seal_with(&t, 100);
        for seed in 0..20u64 {
            let dirty = corrupt_manifest(&m, seed);
            assert!(!dirty.verify_self(), "seed {seed}");
            assert!(m.verify_self(), "original untouched");
        }
    }

    #[test]
    fn string_flips_never_panic_on_decode() {
        let t = mixed_table(250);
        for seed in 0..50u64 {
            let dirty = flip_bits(t.column_by_name("s").unwrap(), 0..250, 4, seed);
            let d = dirty.as_str().unwrap();
            for i in 0..d.len() {
                let _ = d.get(i); // wrong bytes are fine; a panic is not
            }
        }
    }

    #[test]
    fn empty_table_seals_and_verifies() {
        let t = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64)]),
            vec![Column::Int64(vec![])],
        )
        .unwrap();
        let m = IntegrityManifest::seal(&t);
        assert!(m.verify_self());
        assert_eq!(m.verify_table(&t).unwrap(), 0);
        assert!(!corrupt_manifest(&m, 7).verify_self());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any seeded flip of any width column inside any chunk is caught.
        #[test]
        fn seeded_flips_are_always_detected(
            seed in 0u64..1_000_000_000,
            col_idx in 0usize..7,
            bits in 1u32..4,
        ) {
            let t = mixed_table(250);
            let m = IntegrityManifest::seal_with(&t, 100);
            let name = t.schema().fields()[col_idx].name.clone();
            let dirty = flip_bits(t.column(col_idx), 0..250, bits, seed);
            if dirty != *t.column(col_idx).as_ref() {
                prop_assert!(m.verify_column(&name, &dirty).is_err());
            }
        }
    }
}
