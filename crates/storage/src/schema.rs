//! Schemas: column names and types.

use std::fmt;
use std::sync::Arc;

use crate::error::{Result, StorageError};

/// Logical column types supported by the store.
///
/// TPC-H needs exactly these: 64/32-bit integers for keys and counts,
/// fixed-point decimals for money and rates, dates, and strings (always
/// dictionary-encoded — see [`crate::dict::DictColumn`]). `Bool` and
/// `Float64` appear only in intermediates (predicates, averages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 32-bit signed integer.
    Int32,
    /// IEEE-754 double.
    Float64,
    /// Fixed-point decimal with the given scale (see [`crate::decimal`]).
    Decimal(u8),
    /// Days since the Unix epoch (see [`crate::date`]).
    Date,
    /// Dictionary-encoded UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Bytes per row of this type's *orderable key representation*: strings
    /// sort as 4-byte dictionary ranks, everything else as an 8-byte
    /// integer/float. The engine's sort operator sizes its key buffers (and
    /// therefore its memory reservation) from this.
    pub fn sort_key_bytes(&self) -> u64 {
        match self {
            DataType::Utf8 => 4,
            _ => 8,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int64 => write!(f, "int64"),
            DataType::Int32 => write!(f, "int32"),
            DataType::Float64 => write!(f, "float64"),
            DataType::Decimal(s) => write!(f, "decimal({s})"),
            DataType::Date => write!(f, "date"),
            DataType::Utf8 => write!(f, "utf8"),
            DataType::Bool => write!(f, "bool"),
        }
    }
}

/// A named, typed column slot in a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (TPC-H style, e.g. `l_shipdate`).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Builds a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self { name: name.into(), data_type }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle; relations pass these around freely.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Self { fields }
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_string()))
    }

    /// The field with the given name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// True when the schema has a field with the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|f| f.name == name)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fl) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fl.name, fl.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineitem_fragment() -> Schema {
        Schema::new(vec![
            Field::new("l_orderkey", DataType::Int64),
            Field::new("l_quantity", DataType::Decimal(2)),
            Field::new("l_shipdate", DataType::Date),
            Field::new("l_returnflag", DataType::Utf8),
        ])
    }

    #[test]
    fn index_of_finds_fields() {
        let s = lineitem_fragment();
        assert_eq!(s.index_of("l_shipdate").unwrap(), 2);
        assert!(matches!(s.index_of("l_tax"), Err(StorageError::ColumnNotFound(_))));
    }

    #[test]
    fn field_lookup_returns_type() {
        let s = lineitem_fragment();
        assert_eq!(s.field("l_quantity").unwrap().data_type, DataType::Decimal(2));
        assert!(s.contains("l_orderkey"));
        assert!(!s.contains("o_orderkey"));
    }

    #[test]
    fn display_is_readable() {
        let s = lineitem_fragment();
        let text = s.to_string();
        assert!(text.starts_with("(l_orderkey: int64"));
        assert!(text.contains("l_quantity: decimal(2)"));
    }
}
