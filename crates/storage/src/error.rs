//! Error types shared by the storage layer and everything built on it.

use std::fmt;

/// Errors produced by the storage layer.
///
/// The engine and cluster crates wrap these in their own error types; the
/// variants here deliberately stay coarse because callers either surface them
/// to a user or treat them as a hard invariant violation in a test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column was addressed by a name the schema does not contain.
    ColumnNotFound(String),
    /// A table was addressed by a name the catalog does not contain.
    TableNotFound(String),
    /// An operation received a column of an unexpected [`crate::DataType`].
    TypeMismatch {
        /// What the operation required.
        expected: String,
        /// What it actually got.
        actual: String,
    },
    /// Column lengths within one table (or one operation) disagree.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// A memory budget (e.g. a simulated node's 1 GB) would be exceeded.
    OutOfMemory {
        /// Bytes the operation attempted to hold.
        requested: usize,
        /// Bytes the budget allows.
        budget: usize,
    },
    /// Decimal arithmetic overflowed the 64-bit mantissa.
    DecimalOverflow,
    /// A value failed to parse (dates, decimals).
    Parse(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            StorageError::TableNotFound(name) => write!(f, "table not found: {name}"),
            StorageError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            StorageError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StorageError::OutOfMemory { requested, budget } => {
                write!(f, "out of memory: requested {requested} B, budget {budget} B")
            }
            StorageError::DecimalOverflow => write!(f, "decimal overflow"),
            StorageError::Parse(s) => write!(f, "parse error: {s}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = StorageError::ColumnNotFound("l_tax".into());
        assert_eq!(e.to_string(), "column not found: l_tax");
    }

    #[test]
    fn display_out_of_memory() {
        let e = StorageError::OutOfMemory { requested: 10, budget: 5 };
        assert!(e.to_string().contains("requested 10 B"));
        assert!(e.to_string().contains("budget 5 B"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(StorageError::DecimalOverflow, StorageError::DecimalOverflow);
        assert_ne!(
            StorageError::TableNotFound("a".into()),
            StorageError::TableNotFound("b".into())
        );
    }
}
