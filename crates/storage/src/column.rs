//! Typed columns — the unit of storage and of execution.
//!
//! The engine is column-at-a-time in the MonetDB style the paper benchmarks:
//! operators consume and produce whole columns (plus selection vectors), so
//! [`Column`] doubles as both base storage and intermediate representation.

use crate::date::Date32;
use crate::decimal::Decimal64;
use crate::dict::{DictBuilder, DictColumn};
use crate::error::{Result, StorageError};
use crate::schema::DataType;
use crate::value::Value;

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers (keys, counts).
    Int64(Vec<i64>),
    /// 32-bit integers (small keys, years).
    Int32(Vec<i32>),
    /// Doubles (averages, ratios).
    Float64(Vec<f64>),
    /// Fixed-point decimals: raw mantissas plus a shared scale.
    Decimal(Vec<i64>, u8),
    /// Dates as day numbers.
    Date(Vec<i32>),
    /// Dictionary-encoded strings.
    Str(DictColumn),
    /// Booleans (predicate intermediates).
    Bool(Vec<bool>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Int32(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Decimal(v, _) => v.len(),
            Column::Date(v) => v.len(),
            Column::Str(d) => d.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Int32(_) => DataType::Int32,
            Column::Float64(_) => DataType::Float64,
            Column::Decimal(_, s) => DataType::Decimal(*s),
            Column::Date(_) => DataType::Date,
            Column::Str(_) => DataType::Utf8,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Bytes this column streams through the memory system when scanned:
    /// fixed-width payloads count fully, dictionary-encoded strings count
    /// their 4-byte codes (the dictionary itself is small and cache-hot).
    /// Use [`Column::heap_bytes`] for *resident memory* accounting instead.
    pub fn stream_bytes(&self) -> usize {
        match self {
            Column::Int64(v) => v.len() * 8,
            Column::Int32(v) => v.len() * 4,
            Column::Float64(v) => v.len() * 8,
            Column::Decimal(v, _) => v.len() * 8,
            Column::Date(v) => v.len() * 4,
            Column::Str(d) => d.len() * 4,
            Column::Bool(v) => v.len(),
        }
    }

    /// Bytes the column occupies in a system that stores strings *raw*
    /// (per-row text plus an 8-byte offset) rather than dictionary-encoded —
    /// what MonetDB keeps memory-mapped, and therefore the width the
    /// cluster's memory-pressure model must account against (DESIGN.md §2
    /// on the comment-pool substitution). Fixed-width columns match
    /// [`Column::heap_bytes`].
    pub fn resident_bytes(&self) -> usize {
        match self {
            Column::Str(d) => d.codes().iter().map(|&c| d.decode(c).len() + 8).sum::<usize>(),
            other => other.heap_bytes(),
        }
    }

    /// Heap bytes held (payload only, not the enum header).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Column::Int64(v) => v.len() * 8,
            Column::Int32(v) => v.len() * 4,
            Column::Float64(v) => v.len() * 8,
            Column::Decimal(v, _) => v.len() * 8,
            Column::Date(v) => v.len() * 4,
            Column::Str(d) => d.heap_bytes(),
            Column::Bool(v) => v.len(),
        }
    }

    /// The value at row `i`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Column::Int64(v) => Value::I64(v[i]),
            Column::Int32(v) => Value::I32(v[i]),
            Column::Float64(v) => Value::F64(v[i]),
            Column::Decimal(v, s) => Value::Dec(Decimal64::new(v[i], *s)),
            Column::Date(v) => Value::Date(Date32(v[i])),
            Column::Str(d) => Value::Str(d.get(i).to_string()),
            Column::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Copies the contiguous row range `r` into a new column — the morsel
    /// slice used by the engine's parallel kernels (`crate::morsel`).
    ///
    /// Dictionary columns slice their codes but clone the full dictionary:
    /// codes stay valid without re-interning, and the values vector is tiny
    /// next to the code payload for TPC-H's low-cardinality strings. Kernels
    /// that would pay per-morsel dictionary work (LIKE over a near-unique
    /// comment pool) operate on code slices directly instead of slicing.
    pub fn slice(&self, r: std::ops::Range<usize>) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(v[r].to_vec()),
            Column::Int32(v) => Column::Int32(v[r].to_vec()),
            Column::Float64(v) => Column::Float64(v[r].to_vec()),
            Column::Decimal(v, s) => Column::Decimal(v[r].to_vec(), *s),
            Column::Date(v) => Column::Date(v[r].to_vec()),
            Column::Str(d) => Column::Str(d.slice(r)),
            Column::Bool(v) => Column::Bool(v[r].to_vec()),
        }
    }

    /// Gathers the rows named by `sel` into a new column.
    pub fn take(&self, sel: &[u32]) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Int32(v) => Column::Int32(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Float64(v) => Column::Float64(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Decimal(v, s) => {
                Column::Decimal(sel.iter().map(|&i| v[i as usize]).collect(), *s)
            }
            Column::Date(v) => Column::Date(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Str(d) => Column::Str(d.take(sel)),
            Column::Bool(v) => Column::Bool(sel.iter().map(|&i| v[i as usize]).collect()),
        }
    }

    /// Borrows the `i64` payload; errors on other types.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            Column::Int64(v) => Ok(v),
            other => Err(type_err("int64", other)),
        }
    }

    /// Borrows the `i32` payload; errors on other types.
    pub fn as_i32(&self) -> Result<&[i32]> {
        match self {
            Column::Int32(v) => Ok(v),
            other => Err(type_err("int32", other)),
        }
    }

    /// Borrows the `f64` payload; errors on other types.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            Column::Float64(v) => Ok(v),
            other => Err(type_err("float64", other)),
        }
    }

    /// Borrows the decimal mantissas and scale; errors on other types.
    pub fn as_decimal(&self) -> Result<(&[i64], u8)> {
        match self {
            Column::Decimal(v, s) => Ok((v, *s)),
            other => Err(type_err("decimal", other)),
        }
    }

    /// Borrows the date day numbers; errors on other types.
    pub fn as_date(&self) -> Result<&[i32]> {
        match self {
            Column::Date(v) => Ok(v),
            other => Err(type_err("date", other)),
        }
    }

    /// Borrows the dictionary column; errors on other types.
    pub fn as_str(&self) -> Result<&DictColumn> {
        match self {
            Column::Str(d) => Ok(d),
            other => Err(type_err("utf8", other)),
        }
    }

    /// Borrows the bool payload; errors on other types.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(type_err("bool", other)),
        }
    }

    /// Builds a column by repeating one value `n` times (literal broadcast).
    pub fn repeat(value: &Value, n: usize) -> Column {
        match value {
            Value::I64(v) => Column::Int64(vec![*v; n]),
            Value::I32(v) => Column::Int32(vec![*v; n]),
            Value::F64(v) => Column::Float64(vec![*v; n]),
            Value::Dec(d) => Column::Decimal(vec![d.mantissa(); n], d.scale()),
            Value::Date(d) => Column::Date(vec![d.0; n]),
            Value::Str(s) => {
                let mut b = DictBuilder::with_capacity(n);
                for _ in 0..n {
                    b.push(s);
                }
                Column::Str(b.finish())
            }
            Value::Bool(b) => Column::Bool(vec![*b; n]),
        }
    }

    /// Concatenates columns of the same type (used by the cluster driver when
    /// merging per-node partials).
    pub fn concat(parts: &[&Column]) -> Result<Column> {
        let first = parts
            .first()
            .ok_or_else(|| StorageError::Parse("concat of zero columns".to_string()))?;
        match first {
            Column::Int64(_) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend_from_slice(p.as_i64()?);
                }
                Ok(Column::Int64(out))
            }
            Column::Int32(_) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend_from_slice(p.as_i32()?);
                }
                Ok(Column::Int32(out))
            }
            Column::Float64(_) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend_from_slice(p.as_f64()?);
                }
                Ok(Column::Float64(out))
            }
            Column::Decimal(_, s) => {
                let mut out = Vec::new();
                for p in parts {
                    let (m, ps) = p.as_decimal()?;
                    if ps != *s {
                        return Err(type_err(&format!("decimal({s})"), p));
                    }
                    out.extend_from_slice(m);
                }
                Ok(Column::Decimal(out, *s))
            }
            Column::Date(_) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend_from_slice(p.as_date()?);
                }
                Ok(Column::Date(out))
            }
            Column::Str(_) => {
                let mut b = DictBuilder::new();
                for p in parts {
                    for s in p.as_str()?.iter() {
                        b.push(s);
                    }
                }
                Ok(Column::Str(b.finish()))
            }
            Column::Bool(_) => {
                let mut out = Vec::new();
                for p in parts {
                    out.extend_from_slice(p.as_bool()?);
                }
                Ok(Column::Bool(out))
            }
        }
    }
}

fn type_err(expected: &str, actual: &Column) -> StorageError {
    StorageError::TypeMismatch {
        expected: expected.to_string(),
        actual: actual.data_type().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_type() {
        let c = Column::Decimal(vec![100, 250], 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.data_type(), DataType::Decimal(2));
        assert!(!c.is_empty());
    }

    #[test]
    fn value_extraction() {
        let c = Column::Date(vec![Date32::from_ymd(1995, 6, 17).0]);
        assert_eq!(c.value(0).to_string(), "1995-06-17");
        let s: DictColumn = ["a", "b"].into_iter().collect();
        assert_eq!(Column::Str(s).value(1), Value::Str("b".into()));
    }

    #[test]
    fn take_gathers_rows() {
        let c = Column::Int64(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 1]);
        assert_eq!(t.as_i64().unwrap(), &[40, 20]);
    }

    #[test]
    fn typed_accessors_enforce_type() {
        let c = Column::Int64(vec![1]);
        assert!(c.as_i64().is_ok());
        assert!(matches!(c.as_f64(), Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn repeat_broadcasts() {
        let c = Column::repeat(&Value::Str("x".into()), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.as_str().unwrap().cardinality(), 1);
        let c = Column::repeat(&Value::Dec(Decimal64::new(5, 2)), 2);
        assert_eq!(c.as_decimal().unwrap().0, &[5, 5]);
    }

    #[test]
    fn concat_joins_parts() {
        let a = Column::Int64(vec![1, 2]);
        let b = Column::Int64(vec![3]);
        let c = Column::concat(&[&a, &b]).unwrap();
        assert_eq!(c.as_i64().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn concat_rejects_mixed_scales() {
        let a = Column::Decimal(vec![1], 2);
        let b = Column::Decimal(vec![1], 4);
        assert!(Column::concat(&[&a, &b]).is_err());
    }

    #[test]
    fn concat_strings_reinterns() {
        let a = Column::Str(["x", "y"].into_iter().collect());
        let b = Column::Str(["y", "z"].into_iter().collect());
        let c = Column::concat(&[&a, &b]).unwrap();
        let d = c.as_str().unwrap();
        assert_eq!(d.len(), 4);
        assert_eq!(d.cardinality(), 3);
    }

    #[test]
    fn heap_bytes_scale_with_rows() {
        let small = Column::Int64(vec![0; 10]).heap_bytes();
        let big = Column::Int64(vec![0; 1000]).heap_bytes();
        assert_eq!(big, 100 * small);
    }
}
