//! Scalar values: literals, aggregate results, and row cells.

use crate::date::Date32;
use crate::decimal::Decimal64;
use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;

/// A single scalar value of any supported [`DataType`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    I64(i64),
    /// 32-bit integer.
    I32(i32),
    /// Double.
    F64(f64),
    /// Fixed-point decimal.
    Dec(Decimal64),
    /// Calendar date.
    Date(Date32),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::I64(_) => DataType::Int64,
            Value::I32(_) => DataType::Int32,
            Value::F64(_) => DataType::Float64,
            Value::Dec(d) => DataType::Decimal(d.scale()),
            Value::Date(_) => DataType::Date,
            Value::Str(_) => DataType::Utf8,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Numeric view as `f64` (integers, decimals, floats); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::I32(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Dec(d) => Some(d.to_f64()),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::I32(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total order across same-type values; cross-type comparisons order
    /// numerics by magnitude and otherwise fall back to type rank, which keeps
    /// ORDER BY deterministic even on heterogeneous intermediates.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (I64(a), I64(b)) => a.cmp(b),
            (I32(a), I32(b)) => a.cmp(b),
            (F64(a), F64(b)) => a.total_cmp(b),
            (Dec(a), Dec(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.total_cmp(&b),
                _ => type_rank(self).cmp(&type_rank(other)),
            },
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Bool(_) => 0,
        Value::I32(_) => 1,
        Value::I64(_) => 2,
        Value::F64(_) => 3,
        Value::Dec(_) => 4,
        Value::Date(_) => 5,
        Value::Str(_) => 6,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Dec(d) => write!(f, "{d}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<Decimal64> for Value {
    fn from(v: Decimal64) -> Self {
        Value::Dec(v)
    }
}

impl From<Date32> for Value {
    fn from(v: Date32) -> Self {
        Value::Date(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_reflects_variant() {
        assert_eq!(Value::I64(1).data_type(), DataType::Int64);
        assert_eq!(Value::Dec(Decimal64::new(100, 2)).data_type(), DataType::Decimal(2));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Dec(Decimal64::new(150, 2)).as_f64(), Some(1.5));
        assert_eq!(Value::I32(7).as_i64(), Some(7));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn total_cmp_same_type() {
        assert_eq!(Value::I64(1).total_cmp(&Value::I64(2)), Ordering::Less);
        assert_eq!(Value::Str("a".into()).total_cmp(&Value::Str("b".into())), Ordering::Less);
    }

    #[test]
    fn total_cmp_cross_numeric() {
        let d = Value::Dec(Decimal64::new(150, 2)); // 1.50
        assert_eq!(d.total_cmp(&Value::I64(2)), Ordering::Less);
        assert_eq!(d.total_cmp(&Value::F64(1.0)), Ordering::Greater);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Date(Date32::from_ymd(1995, 1, 1)).to_string(), "1995-01-01");
        assert_eq!(Value::Dec(Decimal64::new(-7, 2)).to_string(), "-0.07");
    }
}
