//! Property-based tests for the storage primitives: decimal arithmetic,
//! calendar conversion, dictionary interning.

use proptest::prelude::*;
use wimpi_storage::{Date32, Decimal64, DictBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decimal display/parse round trip at any scale 0–6.
    #[test]
    fn decimal_display_parse_round_trip(mantissa in -1_000_000_000i64..1_000_000_000,
                                        scale in 0u8..=6) {
        let d = Decimal64::new(mantissa, scale);
        let parsed = Decimal64::from_str_scale(&d.to_string(), scale).expect("parses");
        prop_assert_eq!(parsed, d);
    }

    /// Addition is commutative and subtraction inverts it, across scales.
    #[test]
    fn decimal_add_sub_inverse(a in -1_000_000i64..1_000_000, sa in 0u8..=4,
                               b in -1_000_000i64..1_000_000, sb in 0u8..=4) {
        let x = Decimal64::new(a, sa);
        let y = Decimal64::new(b, sb);
        let s1 = x.add(y).expect("no overflow");
        let s2 = y.add(x).expect("no overflow");
        prop_assert_eq!(s1, s2);
        let back = s1.sub(y).expect("no overflow");
        prop_assert_eq!(back.cmp(&x), std::cmp::Ordering::Equal);
    }

    /// Multiplication against the f64 oracle stays within rounding distance.
    #[test]
    fn decimal_mul_close_to_float(a in -100_000i64..100_000, b in -10_000i64..10_000) {
        let x = Decimal64::new(a, 2);
        let y = Decimal64::new(b, 2);
        let exact = x.mul(y, 4).expect("no overflow");
        let float = x.to_f64() * y.to_f64();
        prop_assert!((exact.to_f64() - float).abs() < 1e-4 + float.abs() * 1e-12);
    }

    /// Ordering agrees with the f64 ordering whenever floats can represent
    /// the values exactly enough.
    #[test]
    fn decimal_ordering_matches_float(a in -1_000_000i64..1_000_000, sa in 0u8..=4,
                                      b in -1_000_000i64..1_000_000, sb in 0u8..=4) {
        let x = Decimal64::new(a, sa);
        let y = Decimal64::new(b, sb);
        if (x.to_f64() - y.to_f64()).abs() > 1e-6 {
            prop_assert_eq!(x < y, x.to_f64() < y.to_f64());
        }
    }

    /// Civil-calendar round trip over ±300 years around the epoch.
    #[test]
    fn date_round_trip(days in -110_000i32..110_000) {
        let d = Date32(days);
        let (y, m, dd) = d.to_ymd();
        prop_assert_eq!(Date32::from_ymd(y, m, dd), d);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&dd));
    }

    /// Month arithmetic composes: +a then +b == +(a+b) when no day clamping
    /// can occur (day ≤ 28).
    #[test]
    fn add_months_composes(base_days in 0i32..20_000, a in -24i32..24, b in -24i32..24) {
        let d = Date32(base_days);
        let (y, m, _) = d.to_ymd();
        let safe = Date32::from_ymd(y, m, 15); // mid-month: no clamping
        prop_assert_eq!(safe.add_months(a).add_months(b), safe.add_months(a + b));
    }

    /// Dictionary interning: decode(encode(x)) == x and cardinality equals
    /// the number of distinct inputs.
    #[test]
    fn dict_round_trip(words in prop::collection::vec("[a-z]{0,6}", 0..200)) {
        let mut b = DictBuilder::new();
        for w in &words {
            b.push(w);
        }
        let d = b.finish();
        prop_assert_eq!(d.len(), words.len());
        for (i, w) in words.iter().enumerate() {
            prop_assert_eq!(d.get(i), w.as_str());
        }
        let distinct: std::collections::HashSet<&String> = words.iter().collect();
        prop_assert_eq!(d.cardinality(), distinct.len());
    }

    /// take() then take() composes like index composition.
    #[test]
    fn dict_take_composes(words in prop::collection::vec("[a-z]{1,4}", 1..60),
                          sel1 in prop::collection::vec(any::<prop::sample::Index>(), 1..40),
                          sel2 in prop::collection::vec(any::<prop::sample::Index>(), 1..40)) {
        let d: wimpi_storage::DictColumn = words.iter().map(String::as_str).collect();
        let s1: Vec<u32> = sel1.iter().map(|i| i.index(words.len()) as u32).collect();
        let t1 = d.take(&s1);
        let s2: Vec<u32> = sel2.iter().map(|i| i.index(s1.len()) as u32).collect();
        let t2 = t1.take(&s2);
        for (out, &mid) in s2.iter().enumerate() {
            prop_assert_eq!(t2.get(out), d.get(s1[mid as usize] as usize));
        }
    }
}
