//! Criterion benchmarks for the engine's core operators on TPC-H data.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use wimpi_engine::expr::{col, date, dec2};
use wimpi_engine::plan::{AggExpr, PlanBuilder, SortKey};
use wimpi_engine::{exec, execute_query};
use wimpi_storage::Catalog;
use wimpi_tpch::Generator;

const SF: f64 = 0.05;

fn catalog() -> Catalog {
    Generator::new(SF).generate_catalog().expect("generation succeeds")
}

fn bench_operators(c: &mut Criterion) {
    let cat = catalog();
    let mut g = c.benchmark_group("operators");
    g.sample_size(10);

    g.bench_function("scan_filter_q6_predicates", |b| {
        let plan = PlanBuilder::scan("lineitem")
            .filter(
                col("l_shipdate")
                    .gte(date("1994-01-01"))
                    .and(col("l_shipdate").lt(date("1995-01-01")))
                    .and(col("l_quantity").lt(dec2("24"))),
            )
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });

    g.bench_function("hash_join_lineitem_orders", |b| {
        let plan = PlanBuilder::scan("lineitem")
            .inner_join(PlanBuilder::scan("orders"), vec![("l_orderkey", "o_orderkey")])
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });

    g.bench_function("group_by_two_dict_keys_q1_style", |b| {
        let plan = PlanBuilder::scan("lineitem")
            .aggregate(
                vec![(col("l_returnflag"), "f"), (col("l_linestatus"), "s")],
                vec![AggExpr::sum(col("l_quantity"), "q"), AggExpr::count_star("n")],
            )
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });

    g.bench_function("sort_orders_by_totalprice", |b| {
        let plan = PlanBuilder::scan("orders")
            .sort(vec![SortKey::desc("o_totalprice")])
            .limit(100)
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });

    g.bench_function("like_over_dictionary", |b| {
        let plan = PlanBuilder::scan("orders")
            .filter(col("o_comment").not_like("%special%requests%"))
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });

    // Optimizer value: the same plan with and without optimization.
    g.bench_function("q3_optimized", |b| {
        let q = match wimpi_queries::query(3) {
            wimpi_queries::QueryPlan::Single(p) => p,
            _ => unreachable!(),
        };
        b.iter_batched(
            || q.clone(),
            |p| black_box(execute_query(&p, &cat).expect("runs")),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("q3_unoptimized", |b| {
        let q = match wimpi_queries::query(3) {
            wimpi_queries::QueryPlan::Single(p) => p,
            _ => unreachable!(),
        };
        b.iter(|| black_box(exec::execute(&q, &cat).expect("runs")));
    });

    g.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
