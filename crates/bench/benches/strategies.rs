//! Criterion benchmarks for the three execution paradigms (the host-side
//! reality behind Figure 4): per query, data-centric vs hybrid vs
//! access-aware wall time on this machine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wimpi_strategies::{run, Paradigm, STRATEGY_QUERIES};
use wimpi_tpch::Generator;

const SF: f64 = 0.05;

fn bench_strategies(c: &mut Criterion) {
    let cat = Generator::new(SF).generate_catalog().expect("generation succeeds");
    let mut g = c.benchmark_group("strategies");
    g.sample_size(10);
    for &q in &STRATEGY_QUERIES {
        for paradigm in Paradigm::ALL {
            g.bench_function(format!("q{q:02}_{}", paradigm.label()), |b| {
                b.iter(|| black_box(run(q, paradigm, &cat).digest));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
