//! Criterion benchmarks for the microbenchmark kernels themselves
//! (Figure 2's host anchors).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wimpi_microbench::{dhrystone, membw, primes, whetstone};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    g.bench_function("whetstone_10_loops", |b| {
        b.iter(|| black_box(whetstone::run(10).checksum));
    });
    g.bench_function("dhrystone_500k", |b| {
        b.iter(|| black_box(dhrystone::run(500_000).checksum));
    });
    g.bench_function("sysbench_prime_10000", |b| {
        b.iter(|| black_box(primes::run(10_000).primes_found));
    });
    g.bench_function("membw_64mb_pass", |b| {
        b.iter(|| black_box(membw::read_bandwidth(64 << 20, 1).checksum));
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
