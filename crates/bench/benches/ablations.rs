//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//!
//! * dictionary encoding vs raw string handling on scan-heavy predicates,
//! * candidate-propagating (selection-vector) filters vs naive
//!   materializing filters,
//! * partial-aggregate pushdown vs shipping rows to the driver (the
//!   paper's MonetDB distributed-mode anecdote, §III-C3),
//! * recompute-vs-materialize of a hot intermediate under memory-bandwidth
//!   pressure (§III-C2).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wimpi_cluster::distribute::Strategy;
use wimpi_cluster::{ClusterConfig, WimpiCluster};
use wimpi_engine::expr::{col, lit};
use wimpi_engine::plan::{AggExpr, PlanBuilder};
use wimpi_engine::{execute_query, like::like_match};
use wimpi_tpch::Generator;

const SF: f64 = 0.05;

fn bench_dictionary(c: &mut Criterion) {
    let cat = Generator::new(SF).generate_catalog().expect("generation succeeds");
    let mut g = c.benchmark_group("ablation_dictionary");
    g.sample_size(10);
    // Dictionary path: LIKE evaluated once per distinct value via the engine.
    g.bench_function("like_dict_encoded", |b| {
        let plan = PlanBuilder::scan("orders")
            .filter(col("o_comment").like("%special%requests%"))
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });
    // Raw path: decode every row and match per row (what a raw string
    // column costs).
    g.bench_function("like_raw_per_row", |b| {
        let orders = cat.table("orders").expect("orders registered");
        let comments = orders.column_by_name("o_comment").expect("column");
        let d = comments.as_str().expect("dict");
        b.iter(|| {
            let mut n = 0u64;
            for i in 0..d.len() {
                if like_match(d.get(i), "%special%requests%") {
                    n += 1;
                }
            }
            black_box(n)
        });
    });
    g.finish();
}

fn bench_distributed_pushdown(c: &mut Criterion) {
    let cluster = WimpiCluster::build(ClusterConfig::new(4, SF)).expect("cluster builds");
    let q1 = wimpi_queries::query(1);
    let mut g = c.benchmark_group("ablation_distributed_pushdown");
    g.sample_size(10);
    g.bench_function("partial_agg_pushdown", |b| {
        b.iter(|| {
            black_box(cluster.run(&q1, Strategy::PartialAggPushdown).expect("runs").bytes_shipped)
        });
    });
    g.bench_function("ship_rows_to_driver", |b| {
        b.iter(|| black_box(cluster.run(&q1, Strategy::ShipRows).expect("runs").bytes_shipped));
    });
    g.finish();
}

fn bench_recompute_vs_materialize(c: &mut Criterion) {
    let cat = Generator::new(SF).generate_catalog().expect("generation succeeds");
    let li = cat.table("lineitem").expect("lineitem");
    let ext = li.column_by_name("l_extendedprice").expect("column");
    let (ext, _) = ext.as_decimal().expect("decimal");
    let disc = li.column_by_name("l_discount").expect("column");
    let (disc, _) = disc.as_decimal().expect("decimal");
    let mut g = c.benchmark_group("ablation_recompute_vs_materialize");
    g.sample_size(10);
    // Materialize: compute disc_price once into a vector, then two sums
    // stream it back (extra bandwidth, less compute).
    g.bench_function("materialize_intermediate", |b| {
        b.iter(|| {
            let dp: Vec<i64> = ext.iter().zip(disc).map(|(&e, &d)| e * (100 - d) / 100).collect();
            let a: i64 = dp.iter().sum();
            let b2: i64 = dp.iter().map(|&v| v / 2).sum();
            black_box((a, b2))
        });
    });
    // Recompute: evaluate the expression in both consumers (extra compute,
    // no intermediate traffic) — the §III-C2 trade the paper suggests for
    // bandwidth-starved SBCs.
    g.bench_function("recompute_expression", |b| {
        b.iter(|| {
            let a: i64 = ext.iter().zip(disc).map(|(&e, &d)| e * (100 - d) / 100).sum();
            let b2: i64 = ext.iter().zip(disc).map(|(&e, &d)| e * (100 - d) / 100 / 2).sum();
            black_box((a, b2))
        });
    });
    g.finish();
}

fn bench_selection_vectors(c: &mut Criterion) {
    let cat = Generator::new(SF).generate_catalog().expect("generation succeeds");
    let mut g = c.benchmark_group("ablation_selection");
    g.sample_size(10);
    // Candidate-propagating filter (the engine's default): conjuncts refine
    // a shrinking selection.
    g.bench_function("candidate_propagation", |b| {
        let plan = PlanBuilder::scan("lineitem")
            .filter(
                col("l_quantity")
                    .lt(lit(5i64))
                    .and(col("l_discount").gte(lit(0i64)))
                    .and(col("l_tax").gte(lit(0i64))),
            )
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });
    // Naive: three separate filters, each fully materializing survivors.
    g.bench_function("materializing_filters", |b| {
        let plan = PlanBuilder::scan("lineitem")
            .filter(col("l_quantity").lt(lit(5i64)))
            .filter(col("l_discount").gte(lit(0i64)))
            .filter(col("l_tax").gte(lit(0i64)))
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        b.iter(|| black_box(execute_query(&plan, &cat).expect("runs")));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dictionary,
    bench_distributed_pushdown,
    bench_recompute_vs_materialize,
    bench_selection_vectors
);
criterion_main!(benches);
