//! Regenerates Table I (hardware specifications).

fn main() {
    let args = wimpi_bench::Args::parse();
    wimpi_bench::emit(&args, "table1", &[wimpi_core::Study::table1()]);
}
