//! Runs the entire study once — every table and figure, sharing the
//! expensive measurements — and writes a `summary.md` recording the paper's
//! headline claims next to the model's numbers (the source of
//! EXPERIMENTS.md).

use wimpi_core::{compare_table2, compare_table3, median, reference, Study};
use wimpi_obs::status;

fn main() {
    let args = wimpi_bench::Args::parse();
    status!("running full study at measure SF {} …", args.sf);
    let study = Study::new(args.sf);

    wimpi_bench::emit(&args, "table1", &[Study::table1()]);
    wimpi_bench::emit(&args, "fig2", &Study::fig2());

    let sf1 = study.table2().expect("table2 runs");
    wimpi_bench::emit(&args, "table2", &[sf1.to_figure("Table II — TPC-H SF 1 runtimes (s)")]);
    let sf10 = study.table3(&args.sizes).expect("table3 runs");
    wimpi_bench::emit(&args, "table3", &[sf10.to_figure("Table III — TPC-H SF 10 runtimes (s)")]);
    wimpi_bench::emit(&args, "fig3", &wimpi_core::fig3(&sf1, &sf10));
    let fig4 = study.fig4().expect("fig4 runs");
    wimpi_bench::emit(&args, "fig4", &fig4.to_figures());
    wimpi_bench::emit(&args, "fig5", &wimpi_core::fig5(&sf1, &sf10));
    wimpi_bench::emit(&args, "fig6", &wimpi_core::fig6(&sf1, &sf10));
    wimpi_bench::emit(&args, "fig7", &wimpi_core::fig7(&sf1, &sf10));

    // ---- headline-claim summary --------------------------------------
    let mut md = String::new();
    md.push_str(&format!(
        "# Study summary (measured at SF {}, extrapolated to SF 1 / SF 10)\n\n",
        args.sf
    ));
    let cmp2 = compare_table2(&sf1);
    let cmp3 = compare_table3(&sf10);
    wimpi_bench::write_artifact(&args.out, "table2_compare.md", &cmp2.to_markdown());
    wimpi_bench::write_artifact(&args.out, "table3_compare.md", &cmp3.to_markdown());
    md.push_str(&cmp2.to_markdown());
    md.push('\n');
    md.push_str(&cmp3.to_markdown());
    md.push('\n');

    md.push_str("## Headline claims, paper vs. model\n\n");
    md.push_str("| claim | paper | model |\n|---|---|---|\n");

    // §II-D1: Pi on average ~10× slower than the traditional servers at SF1.
    let ratios: Vec<f64> = (1..=22)
        .map(|q| {
            sf1.get("pi3b+", q).expect("pi modelled") / sf1.get("op-e5", q).expect("e5 modelled")
        })
        .collect();
    let paper_ratios: Vec<f64> = (1..=22)
        .map(|q| {
            reference::table2("pi3b+", q).expect("transcribed")
                / reference::table2("op-e5", q).expect("transcribed")
        })
        .collect();
    md.push_str(&format!(
        "| SF 1 median Pi/op-e5 slowdown | {:.1}× | {:.1}× |\n",
        median(&paper_ratios),
        median(&ratios)
    ));

    // §III-A1: MSRP improvement medians ≈ 22× (op-e5) and 29× (op-gold).
    for (server, paper_med) in [("op-e5", 22.0), ("op-gold", 29.0)] {
        let hw = wimpi_hwsim::profile(server).expect("profile");
        let msrp = wimpi_analysis::msrp(&hw).expect("msrp");
        let imps: Vec<f64> = (1..=22)
            .map(|q| {
                wimpi_analysis::improvement(
                    sf1.get("pi3b+", q).expect("pi"),
                    wimpi_analysis::msrp(&wimpi_hwsim::pi3b()).expect("pi msrp"),
                    sf1.get(server, q).expect("server"),
                    msrp,
                )
            })
            .collect();
        md.push_str(&format!(
            "| SF 1 median MSRP improvement vs {server} | {paper_med:.0}× | {:.0}× |\n",
            median(&imps)
        ));
    }

    // §III-B1: energy improvement 2–22×, median ≈ 10×.
    let e5 = wimpi_hwsim::profile("op-e5").expect("profile");
    let energy: Vec<f64> = (1..=22)
        .map(|q| {
            wimpi_analysis::improvement(
                sf1.get("pi3b+", q).expect("pi"),
                wimpi_analysis::wimpi_power_w(1),
                sf1.get("op-e5", q).expect("server"),
                e5.tdp_watts.expect("tdp"),
            )
        })
        .collect();
    md.push_str(&format!(
        "| SF 1 median energy improvement vs op-e5 | ~10× | {:.0}× |\n",
        median(&energy)
    ));

    // §II-D2: WIMPI@24 outperforms ≥1 comparison point on 5 of 8 queries.
    let biggest = *args.sizes.last().expect("at least one size");
    let mut wins = 0;
    for &q in &sf10.queries {
        let w = sf10.wimpi(biggest, q).expect("wimpi modelled");
        if sf10.servers.profiles.iter().any(|p| sf10.servers.get(p, q).expect("server") > w) {
            wins += 1;
        }
    }
    md.push_str(&format!(
        "| SF 10 queries where WIMPI@{biggest} beats ≥1 server | 5 of 8 | {wins} of 8 |\n"
    ));

    // Q13 stays flat across cluster sizes (single-node execution).
    let q13: Vec<f64> =
        args.sizes.iter().map(|&n| sf10.wimpi(n, 13).expect("q13 modelled")).collect();
    let flat = q13.iter().all(|&t| (t - q13[0]).abs() < 1e-9);
    md.push_str(&format!(
        "| Q13 runtime flat across cluster sizes | yes | {} |\n",
        if flat { "yes" } else { "no" }
    ));

    // Fig 4 ordering: access-aware ≤ hybrid ≤ data-centric per machine.
    let mut order_ok = 0;
    let mut order_total = 0;
    for m in 0..fig4.machines.len() {
        for qi in 0..fig4.queries.len() {
            order_total += 1;
            let dc = fig4.seconds[m][0][qi];
            let hy = fig4.seconds[m][1][qi];
            let aa = fig4.seconds[m][2][qi];
            if aa <= hy && hy <= dc {
                order_ok += 1;
            }
        }
    }
    md.push_str(&format!(
        "| Fig 4: access-aware ≤ hybrid ≤ data-centric | always | {order_ok}/{order_total} |\n"
    ));

    println!("{md}");
    wimpi_bench::write_artifact(&args.out, "summary.md", &md);
}
