//! Regenerates Figure 7 (TDP-energy-normalized comparison).

fn main() {
    let args = wimpi_bench::Args::parse();
    let study = wimpi_core::Study::new(args.sf);
    let sf1 = study.table2().expect("table2 runs");
    let sf10 = study.table3(&args.sizes).expect("table3 runs");
    wimpi_bench::emit(&args, "fig7", &wimpi_core::fig7(&sf1, &sf10));
}
