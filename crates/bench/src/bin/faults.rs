//! Regenerates the availability experiment: recovery overhead, simulated
//! recovery seconds, and answer coverage when nodes are killed mid-study,
//! swept over cluster size (default 4–24) and failure count (0–2).

fn main() {
    let args = wimpi_bench::Args::parse();
    let study = wimpi_core::Study::new(args.sf);
    let t = study.availability(&args.sizes, &[0, 1, 2]).expect("availability runs");
    wimpi_bench::emit(&args, "faults", &t.to_figures());
}
