//! Out-of-core spill ladder: graceful degradation past the memory cliff
//! (paper §III-C2, DESIGN.md §16).
//!
//! ```text
//! cargo run --release --bin spill -- [--sf f] [--smoke] [--sf10]
//! cargo run --release --bin spill -- --validate results/spill.json
//! ```
//!
//! Walks the 8 choke-point queries down a ladder of per-query memory
//! budgets with a fresh fault-injecting [`SpillDisk`] attached to every
//! run, and records the degradation mode each cell lands in:
//!
//! * `inmem` — everything fit, the disk was never touched;
//! * `grace` — Grace partitioning alone shrank the working set enough;
//! * `spill` — at least one operator staged partitions on the spill disk
//!   and streamed them back, answer still bit-exact;
//! * `disk_full` — the spill disk itself filled: typed `ResourceExhausted`
//!   naming the disk, engine reusable;
//! * `exhausted` — even maximal spill fan-out cannot fit: the original
//!   typed error, as if no disk were attached.
//!
//! Every disk carries the seeded fault plan (torn views, bit flips, slow
//! stragglers — one roll in eight each), so every completed `spill` run
//! also proves the read path detects and retries corruption without
//! changing a byte of the answer. Three ledgers must reconcile exactly per
//! run: the disk's own counters, the query's [`WorkProfile`]
//! (`spilled_bytes`, `spill_read_retries`, `spill_corruptions_detected`),
//! and — for the traced representative — the root span totals.
//!
//! A second section checks the bounded-memory streaming TPC-H generator:
//! the streamed chunks must concatenate byte-identically to full
//! generation at the bench scale factor, and `--sf10` opts into walking
//! all of SF 10 `orders`/`lineitem` chunk-by-chunk in bounded memory.
//!
//! Artifacts: `results/spill.txt` (mode matrix + seconds) and
//! `results/spill.json` (schema checked by
//! `wimpi_core::validate_spill_document` — the binary self-validates
//! before writing, and CI re-validates the written file with
//! `--validate`). `--smoke` is the CI entry point: a shorter ladder at a
//! smaller scale, asserting the full cliff still appears.

use std::sync::Arc;
use std::time::Instant;

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_engine::{EngineConfig, EngineError, QueryContext};
use wimpi_obs::status;
use wimpi_queries::{query, run_governed, run_traced_governed, CHOKEPOINT_QUERIES};
use wimpi_storage::spill::{SpillConfig, SpillDisk, SpillFaults};
use wimpi_storage::Column;
use wimpi_tpch::Generator;

/// Deterministic fault-stream seed (reports into `spill.json`).
const SEED: u64 = 42;
/// One fault roll in `FAULT_EVERY` per kind: torn view, bit flip, straggler.
const FAULT_EVERY: u64 = 8;
/// Retry headroom above the default — at a 1-in-8 fault rate per kind the
/// per-attempt failure probability is ≈ 0.23, so 17 attempts make a
/// permanent-failure misclassification astronomically unlikely while still
/// exercising the retry/backoff path on a large fraction of chunks.
const MAX_READ_RETRIES: u32 = 16;

/// One rung of the ladder: a per-query budget and a spill-disk capacity.
/// The tiny-disk rung is what demonstrates `disk_full` as its own mode —
/// the budget forces spilling, the capacity refuses to hold it.
struct Rung {
    label: &'static str,
    budget: u64,
    disk_capacity: u64,
}

const LADDER: [Rung; 6] = [
    Rung { label: "16M", budget: 16 << 20, disk_capacity: 256 << 20 },
    Rung { label: "256K", budget: 256 << 10, disk_capacity: 256 << 20 },
    Rung { label: "16K", budget: 16 << 10, disk_capacity: 256 << 20 },
    Rung { label: "2K", budget: 2 << 10, disk_capacity: 256 << 20 },
    Rung { label: "1K/4K-disk", budget: 1 << 10, disk_capacity: 4 << 10 },
    Rung { label: "64", budget: 64, disk_capacity: 256 << 20 },
];

struct RunReport {
    query: usize,
    mode: &'static str,
    secs: Option<f64>,
    spilled_bytes: u64,
    read_retries: u64,
    corruptions: u64,
}

struct RungReport {
    budget: u64,
    disk_capacity: u64,
    runs: Vec<RunReport>,
}

fn faulted_disk(capacity: u64, qn: usize, budget: u64) -> Arc<SpillDisk> {
    // Every (query, rung) cell gets its own deterministic fault stream so a
    // single cell can be replayed in isolation.
    let seed = SEED ^ (qn as u64) << 32 ^ budget;
    Arc::new(SpillDisk::new(
        SpillConfig::with_capacity(capacity)
            .with_faults(SpillFaults::every(seed, FAULT_EVERY))
            .with_max_read_retries(MAX_READ_RETRIES),
    ))
}

/// Runs one (query, rung) cell and classifies its degradation mode,
/// asserting bit-exactness, ledger reconciliation, and full capacity
/// release on the way.
fn run_cell(
    qn: usize,
    rung: &Rung,
    catalog: &wimpi_storage::Catalog,
    cfg: &EngineConfig,
    baseline: &wimpi_engine::Relation,
) -> RunReport {
    let q = query(qn);
    let disk = faulted_disk(rung.disk_capacity, qn, rung.budget);
    let ctx = QueryContext::with_budget(rung.budget).with_spill(Arc::clone(&disk));
    let started = Instant::now();
    let (mode, secs) = match run_governed(&q, catalog, cfg, &ctx) {
        Ok((rel, prof)) => {
            assert_eq!(
                rel, *baseline,
                "Q{qn} at budget {}: degraded answer must be bit-exact",
                rung.label
            );
            let d = disk.counters();
            assert_eq!(
                (prof.spilled_bytes, prof.spill_read_retries, prof.spill_corruptions_detected),
                (d.spilled_bytes, d.read_retries, d.corruptions_detected),
                "Q{qn} at budget {}: work profile and disk ledger must reconcile",
                rung.label
            );
            let mode = if d.spilled_bytes > 0 {
                "spill"
            } else if ctx.fallbacks() > 0 {
                "grace"
            } else {
                "inmem"
            };
            (mode, Some(started.elapsed().as_secs_f64()))
        }
        Err(EngineError::ResourceExhausted { operator, .. }) => {
            assert_eq!(ctx.used(), 0, "Q{qn}: failed run must release its memory budget");
            if operator.contains("spill disk full") {
                ("disk_full", None)
            } else {
                ("exhausted", None)
            }
        }
        Err(e) => panic!("Q{qn} at budget {}: unexpected error {e}", rung.label),
    };
    assert_eq!(disk.used(), 0, "Q{qn} at budget {}: all spill capacity must be freed", rung.label);
    let d = disk.counters();
    RunReport {
        query: qn,
        mode,
        secs,
        spilled_bytes: d.spilled_bytes,
        read_retries: d.read_retries,
        corruptions: d.corruptions_detected,
    }
}

fn spill_json(sf: f64, reports: &[RungReport]) -> String {
    let mut rungs = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rungs.push(',');
        }
        let mut runs = String::new();
        let mut sums = [0u64; 3];
        for (j, run) in r.runs.iter().enumerate() {
            if j > 0 {
                runs.push(',');
            }
            let completed = matches!(run.mode, "inmem" | "grace" | "spill");
            runs.push_str(&format!(
                r#"{{"query": {}, "mode": "{}", "bit_exact": {}, "spilled_bytes": {}, "spill_read_retries": {}, "spill_corruptions_detected": {}}}"#,
                run.query, run.mode, completed, run.spilled_bytes, run.read_retries,
                run.corruptions,
            ));
            sums[0] += run.spilled_bytes;
            sums[1] += run.read_retries;
            sums[2] += run.corruptions;
        }
        rungs.push_str(&format!(
            r#"{{"budget": {}, "disk_capacity": {}, "runs": [{}], "ledger": {{"spilled_bytes": {}, "spill_read_retries": {}, "spill_corruptions_detected": {}}}}}"#,
            r.budget, r.disk_capacity, runs, sums[0], sums[1], sums[2],
        ));
    }
    format!(r#"{{"sf": {sf}, "seed": {SEED}, "rungs": [{rungs}]}}"#)
}

/// One traced representative: the span tree's root totals, the work
/// profile, and the disk ledger must agree counter for counter, and the
/// rendered JSON must pass the trace checker's additive invariant.
fn check_traced_representative(
    qn: usize,
    rung: &Rung,
    catalog: &wimpi_storage::Catalog,
    cfg: &EngineConfig,
) {
    let disk = faulted_disk(rung.disk_capacity, qn, rung.budget);
    let ctx = QueryContext::with_budget(rung.budget).with_spill(Arc::clone(&disk));
    let (_, prof, span) = run_traced_governed(&query(qn), catalog, cfg, &ctx)
        .unwrap_or_else(|e| panic!("traced Q{qn} at budget {}: {e}", rung.label));
    let d = disk.counters();
    assert!(d.spilled_bytes > 0, "the traced representative must actually spill");
    for (name, profv, diskv) in [
        ("spilled_bytes", prof.spilled_bytes, d.spilled_bytes),
        ("spill_read_retries", prof.spill_read_retries, d.read_retries),
        ("spill_corruptions_detected", prof.spill_corruptions_detected, d.corruptions_detected),
    ] {
        assert_eq!(profv, diskv, "Q{qn}: profile {name} must equal the disk ledger");
        assert_eq!(span.counter(name), profv, "Q{qn}: span root {name} must equal the profile");
    }
    wimpi_core::validate_trace_json(&span.to_json())
        .unwrap_or_else(|e| panic!("traced Q{qn} spill run fails the trace checker: {e}"));
    let pi = wimpi_hwsim::pi3b();
    status!(
        "traced Q{qn} at budget {}: {} spilled bytes, {} retries, {} corruptions detected, \
         modeled Pi spill penalty {:.2}x",
        rung.label,
        d.spilled_bytes,
        d.read_retries,
        d.corruptions_detected,
        wimpi_hwsim::modeled_spill_penalty(&pi, &prof)
    );
}

/// The bounded-memory streaming generator section: streamed chunks must
/// concatenate byte-identically to full generation, and the per-chunk
/// footprint must stay a small fraction of the whole.
fn check_streaming_gen(sf: f64) {
    let g = Generator::new(sf);
    let (full_o, full_l) = g.orders_lineitem().expect("full generation");
    let orders_per_chunk = (g.num_orders() / 7).max(1);
    let stream = g.stream_orders_lineitem(orders_per_chunk);
    let nchunks = stream.num_chunks();
    let mut chunks_o = Vec::new();
    let mut chunks_l = Vec::new();
    let mut max_chunk_bytes = 0usize;
    for part in stream {
        let (o, l) = part.expect("chunk generates");
        max_chunk_bytes = max_chunk_bytes.max(o.heap_bytes() + l.heap_bytes());
        chunks_o.push(o);
        chunks_l.push(l);
    }
    for (full, parts) in [(&full_o, &chunks_o), (&full_l, &chunks_l)] {
        for ci in 0..full.num_columns() {
            let cols: Vec<&Column> = parts.iter().map(|t| t.column(ci).as_ref()).collect();
            let glued = Column::concat(&cols).expect("chunks concatenate");
            assert_eq!(
                &glued,
                full.column(ci).as_ref(),
                "streamed generation must be byte-identical to full generation"
            );
        }
    }
    status!(
        "streaming gen at SF {sf}: {nchunks} chunks, peak chunk {} B vs full {} B, bytes identical",
        max_chunk_bytes,
        full_o.heap_bytes() + full_l.heap_bytes()
    );
}

/// `--sf10`: walk all of SF 10 `orders`/`lineitem` through the streaming
/// generator, holding only one chunk at a time. The full tables would need
/// tens of GB of column data; the stream's peak is one chunk.
fn run_sf10_stream() {
    let g = Generator::new(10.0);
    let stream = g.stream_orders_lineitem(1 << 18);
    let nchunks = stream.num_chunks();
    status!("SF 10 stream: {} orders in {nchunks} chunks", g.num_orders());
    let mut max_chunk_bytes = 0usize;
    let mut orders_seen = 0u64;
    let mut lineitems_seen = 0u64;
    for (c, part) in stream.enumerate() {
        let (o, l) = part.expect("chunk generates");
        max_chunk_bytes = max_chunk_bytes.max(o.heap_bytes() + l.heap_bytes());
        orders_seen += o.num_rows() as u64;
        lineitems_seen += l.num_rows() as u64;
        if c % 8 == 0 {
            status!("  chunk {c}/{nchunks}: {} orders so far", orders_seen);
        }
    }
    assert_eq!(orders_seen, g.num_orders(), "the stream must cover every order exactly once");
    // Determinism under random access: regenerate a middle chunk and
    // compare a column against a fresh stream's version of the same chunk.
    let s1 = g.stream_orders_lineitem(1 << 18);
    let s2 = g.stream_orders_lineitem(1 << 18);
    let (o1, _) = s1.chunk(nchunks / 2).expect("chunk regenerates");
    let (o2, _) = s2.chunk(nchunks / 2).expect("chunk regenerates");
    assert_eq!(o1.column(0).as_ref(), o2.column(0).as_ref(), "chunks must be deterministic");
    status!(
        "SF 10 stream: {} lineitems generated, peak chunk {} MB",
        lineitems_seen,
        max_chunk_bytes >> 20
    );
    println!(
        "sf10 stream: OK ({lineitems_seen} lineitems, peak chunk {} MB)",
        max_chunk_bytes >> 20
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    // `--validate <file>`: re-check an already-written spill.json through
    // the independent schema checker and exit (the CI artifact gate).
    if let Some(i) = argv.iter().position(|a| a == "--validate") {
        let path = argv.get(i + 1).expect("--validate needs a file path");
        let doc =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let rungs = wimpi_core::validate_spill_document(&doc)
            .unwrap_or_else(|e| panic!("{path} fails the spill schema check: {e}"));
        println!("{path}: {} rung(s) validate, spill ledgers reconcile", rungs.len());
        return;
    }
    if argv.iter().any(|a| a == "--sf10") {
        run_sf10_stream();
        return;
    }
    let smoke = argv.iter().any(|a| a == "--smoke");
    let mut args = Args::parse_with(Args { sf: 0.01, ..Args::default() });
    if smoke {
        args.sf = args.sf.min(0.005);
    }
    let qns: Vec<usize> = if args.queries.is_empty() {
        if smoke {
            // Chosen so the short ladder still exhibits the full cliff at
            // the smoke scale factor: Q6 stays inmem throughout, Q1 ends
            // exhausted, Q14 spills at the bottom, Q13 fills the tiny disk.
            vec![1, 6, 13, 14]
        } else {
            CHOKEPOINT_QUERIES.to_vec()
        }
    } else {
        args.queries.clone()
    };
    let ladder: &[Rung] = if smoke { &LADDER[1..] } else { &LADDER };
    status!("spill ladder at SF {} over {qns:?}, seed {SEED}", args.sf);
    let catalog = Generator::new(args.sf).generate_catalog().expect("catalog generates");
    let cfg = EngineConfig::serial();

    let baselines: Vec<wimpi_engine::Relation> = qns
        .iter()
        .map(|&qn| {
            run_governed(&query(qn), &catalog, &cfg, &QueryContext::new())
                .unwrap_or_else(|e| panic!("Q{qn} baseline: {e}"))
                .0
        })
        .collect();

    let mut reports = Vec::new();
    for rung in ladder {
        let mut runs = Vec::new();
        for (qi, &qn) in qns.iter().enumerate() {
            let run = run_cell(qn, rung, &catalog, &cfg, &baselines[qi]);
            status!(
                "Q{qn:<2} budget {:>10}: {:<9} ({} B spilled, {} retries, {} corruptions)",
                rung.label,
                run.mode,
                run.spilled_bytes,
                run.read_retries,
                run.corruptions
            );
            runs.push(run);
        }
        reports.push(RungReport { budget: rung.budget, disk_capacity: rung.disk_capacity, runs });
    }

    // The §III-C2 cliff must actually appear: every degradation mode shows
    // up somewhere on the ladder, and the top rung never degrades.
    assert!(reports[0].runs.iter().all(|r| r.mode == "inmem"), "the top rung must fit in memory");
    for mode in ["grace", "spill", "disk_full", "exhausted"] {
        assert!(
            reports.iter().any(|r| r.runs.iter().any(|run| run.mode == mode)),
            "the ladder must exhibit mode {mode}"
        );
    }
    // Corruption injection must have been exercised on the spill path, and
    // every detected corruption must have been retried.
    let (retries, corruptions) = reports
        .iter()
        .flat_map(|r| &r.runs)
        .fold((0u64, 0u64), |(a, b), r| (a + r.read_retries, b + r.corruptions));
    assert!(corruptions > 0, "the fault plan must have corrupted at least one spill read");
    assert_eq!(retries, corruptions, "every detected corruption is retried exactly once");

    // Traced representative: first spilling cell of the ladder.
    let (ri, qi) = reports
        .iter()
        .enumerate()
        .find_map(|(ri, r)| r.runs.iter().position(|run| run.mode == "spill").map(|qi| (ri, qi)))
        .expect("asserted above: some run spills");
    check_traced_representative(reports[ri].runs[qi].query, &ladder[ri], &catalog, &cfg);

    check_streaming_gen(args.sf);

    // Self-validate the document through the independent checker before
    // writing — CI re-checks the written artifact the same way.
    let doc = spill_json(args.sf, &reports);
    let rungs = wimpi_core::validate_spill_document(&doc)
        .unwrap_or_else(|e| panic!("spill.json fails its own schema check: {e}"));
    assert_eq!(rungs.len(), reports.len());

    let mut fig = TextFigure::new(
        format!("Spill ladder: host seconds (SF {}, seed {SEED})", args.sf),
        "query",
    );
    fig.rows = qns.iter().map(|q| format!("Q{q}")).collect();
    for (li, rung) in ladder.iter().enumerate() {
        fig.push_series(Series {
            name: rung.label.to_string(),
            values: reports[li].runs.iter().map(|r| r.secs).collect(),
        });
    }
    let mut text = fig.render();
    text.push('\n');
    text.push_str(&format!(
        "{:>5} {}\n",
        "query",
        ladder.iter().map(|r| format!("{:>12}", r.label)).collect::<Vec<_>>().join(" ")
    ));
    for (qi, qn) in qns.iter().enumerate() {
        let row: Vec<String> = reports.iter().map(|r| format!("{:>12}", r.runs[qi].mode)).collect();
        text.push_str(&format!("{:>5} {}\n", format!("Q{qn}"), row.join(" ")));
    }
    print!("{text}");
    wimpi_bench::write_artifact(&args.out, "spill.txt", &text);
    wimpi_bench::write_artifact(&args.out, "spill.json", &doc);
    if smoke {
        println!("spill smoke: OK");
    }
}
