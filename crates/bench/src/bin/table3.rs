//! Regenerates Table III (TPC-H SF 10: servers single-node, WIMPI at the
//! swept cluster sizes) and prints the paper-vs-model comparison.

fn main() {
    let args = wimpi_bench::Args::parse();
    let study = wimpi_core::Study::new(args.sf);
    let t3 = study.table3(&args.sizes).expect("table3 runs");
    wimpi_bench::emit(
        &args,
        "table3",
        &[t3.to_figure(&format!(
            "Table III — TPC-H SF 10 runtimes (s), measured at SF {} and extrapolated",
            args.sf
        ))],
    );
    let cmp = wimpi_core::compare_table3(&t3);
    println!("{}", cmp.to_markdown());
    wimpi_bench::write_artifact(&args.out, "table3_compare.md", &cmp.to_markdown());
}
