//! Regenerates Table II (TPC-H SF 1 runtimes, 22 queries × 10 machines) and
//! prints the paper-vs-model comparison.

fn main() {
    let args = wimpi_bench::Args::parse();
    let study = wimpi_core::Study::new(args.sf);
    let t2 = study.table2().expect("table2 runs");
    wimpi_bench::emit(
        &args,
        "table2",
        &[t2.to_figure(&format!(
            "Table II — TPC-H SF 1 runtimes (s), measured at SF {} and extrapolated",
            args.sf
        ))],
    );
    let cmp = wimpi_core::compare_table2(&t2);
    println!("{}", cmp.to_markdown());
    wimpi_bench::write_artifact(&args.out, "table2_compare.md", &cmp.to_markdown());
}
