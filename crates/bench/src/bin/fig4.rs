//! Regenerates Figure 4 (data-centric / hybrid / access-aware execution
//! strategies on op-e5, op-gold, and the Pi 3B+; SF 1, single-threaded).

fn main() {
    let args = wimpi_bench::Args::parse();
    let study = wimpi_core::Study::new(args.sf);
    let t = study.fig4().expect("fig4 runs");
    wimpi_bench::emit(&args, "fig4", &t.to_figures());
}
