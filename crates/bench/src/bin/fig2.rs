//! Regenerates Figure 2 (microbenchmarks, panels a–d) from the hardware
//! models, plus a host-anchor section: the same kernels *actually executed*
//! on this machine, and the WIMPI iperf network figure (§II-C3).

use wimpi_analysis::{Series, TextFigure};
use wimpi_microbench::{dhrystone, membw, network::NetModel, primes, whetstone};

fn main() {
    let args = wimpi_bench::Args::parse();
    let mut figures = wimpi_core::Study::fig2();

    // Host anchor: run the real kernels here (single-threaded).
    let whet = whetstone::run(50);
    let dhry = dhrystone::run(2_000_000);
    let prime = primes::run(10_000);
    let bw = membw::read_bandwidth(256 << 20, 3);
    let mut host = TextFigure::new(
        "Host anchor — the same kernels executed on this machine (1 thread)",
        "kernel",
    );
    host.rows = vec![
        "whetstone MWIPS".into(),
        "dhrystone DMIPS".into(),
        "sysbench prime s".into(),
        "memory GB/s".into(),
    ];
    host.push_series(Series::new(
        "measured",
        vec![whet.mwips, dhry.dmips, prime.elapsed_s, bw.read_gbs],
    ));
    figures.push(host);

    // §II-C3: the WIMPI node link.
    let net = NetModel::wimpi_node();
    let (bytes, mbps) = net.iperf(10.0);
    let mut netfig = TextFigure::new(
        "WIMPI network (iperf model, 10 s window) — paper measured ~220 Mbps",
        "metric",
    );
    netfig.rows = vec!["throughput Mbps".into(), "bytes in 10 s".into()];
    netfig.push_series(Series::new("value", vec![mbps, bytes as f64]));
    figures.push(netfig);

    wimpi_bench::emit(&args, "fig2", &figures);
}
