//! Operator-level query traces: `EXPLAIN ANALYZE` for the bench harness.
//!
//! ```text
//! cargo run --release --bin trace -- [--sf f] [--queries 1,6,...]
//!     [--trace-json path] [--check]
//! ```
//!
//! Runs the selected TPC-H queries (default: the 8 choke-point queries) with
//! tracing enabled, prints each span tree as aligned text on stdout, and —
//! with `--trace-json` — writes the combined JSON document. `--check`
//! validates that document against `wimpi_core::validate_trace_document`:
//! schema plus the accounting invariant that every counter's self-values sum
//! to the root total. CI runs `--queries 1,6 --check` as the trace smoke
//! test.

use wimpi_bench::Args;
use wimpi_engine::EngineConfig;
use wimpi_obs::status;
use wimpi_queries::{query, run_traced, CHOKEPOINT_QUERIES};
use wimpi_tpch::Generator;

fn main() {
    let args = Args::parse_with(Args { sf: 0.05, ..Args::default() });
    let qns: Vec<usize> =
        if args.queries.is_empty() { CHOKEPOINT_QUERIES.to_vec() } else { args.queries.clone() };
    status!("generating TPC-H SF {}", args.sf);
    let catalog = Generator::new(args.sf).generate_catalog().expect("catalog generates");
    let cfg = EngineConfig::serial();

    for &qn in &qns {
        let (_, prof, span) =
            run_traced(&query(qn), &catalog, &cfg).unwrap_or_else(|e| panic!("Q{qn} traces: {e}"));
        println!("Q{qn}");
        print!("{}", span.render());
        println!();
        // The invariant the trace exists to uphold — cheap to assert on
        // every run, not just under --check.
        assert_eq!(
            span.counter("rows_out"),
            prof.rows_out,
            "Q{qn}: root rows_out must match the work profile"
        );
    }

    let doc = wimpi_bench::trace_document(args.sf, &qns, &catalog, &cfg);
    if let Some(path) = &args.trace_json {
        match std::fs::write(path, &doc) {
            Ok(()) => status!("wrote {}", path.display()),
            Err(e) => panic!("cannot write {}: {e}", path.display()),
        }
    }
    if args.check {
        match wimpi_core::validate_trace_document(&doc) {
            Ok(per_query) => {
                for (qn, stats) in &per_query {
                    status!("Q{qn}: {} spans, accounting exact", stats.spans);
                }
                status!("trace check passed ({} queries)", per_query.len());
            }
            Err(e) => panic!("trace check failed: {e}"),
        }
    }
}
