//! Zone-map scan pruning on the 8 choke-point queries.
//!
//! Generates a *clustered* catalog (`lineitem` ordered by `l_shipdate`,
//! `orders` by `o_orderdate` — the layout a date-partitioned ingest would
//! land, see DESIGN.md §14) with zone maps sealed, then runs every
//! choke-point query with `EngineConfig::prune_scans` off and on:
//!
//! * asserts the pruned results are bit-identical to the unpruned ones at
//!   threads 1/2/4 under both executors, and that the profile's
//!   `rows_in`/`rows_out` are untouched — pruning must be a pure no-op on
//!   answers;
//! * reports measured wall seconds (best of several runs) off vs on, the
//!   morsels and megabytes the pruned run skipped, and the hwsim-modeled
//!   prune gain on the Pi 3B+ and op-e5
//!   ([`wimpi_hwsim::modeled_prune_gain`]);
//! * asserts Q6 — the clustered-date selective scan — actually skipped
//!   morsels, so CI notices if pruning silently stops firing.
//!
//! Defaults to SF 0.1; `--smoke` drops to SF 0.05 with one timing
//! iteration for CI. Artifacts land in `results/prune.{txt,json}`.

use std::time::Instant;

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_engine::{EngineConfig, Executor};
use wimpi_hwsim::{modeled_prune_gain, pi3b, profile};
use wimpi_obs::status;
use wimpi_queries::{query, run_with, CHOKEPOINT_QUERIES};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut args = Args::parse_with(Args { sf: 0.1, ..Args::default() });
    let iters = if smoke {
        args.sf = args.sf.min(0.05);
        1
    } else {
        3
    };
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    status!("generating clustered TPC-H SF {} ({threads} threads, best of {iters})", args.sf);
    let catalog = wimpi_tpch::clustered_catalog(args.sf).expect("clustered catalog generates");
    let pi = pi3b();
    let e5 = profile("op-e5").expect("op-e5 profile exists");

    let mut rows = Vec::new();
    let mut off_s = Vec::new();
    let mut on_s = Vec::new();
    let mut speedup = Vec::new();
    let mut skipped_morsels = Vec::new();
    let mut skipped_mb = Vec::new();
    let mut pi_gain = Vec::new();
    let mut e5_gain = Vec::new();

    for qn in CHOKEPOINT_QUERIES {
        let plan = query(qn);
        let base = EngineConfig::with_threads(threads).with_executor(Executor::Fused);
        // Timed runs: pruning off vs on, fused executor, all threads.
        let mut best = [f64::INFINITY; 2];
        let mut runs = Vec::new();
        for (pi_idx, prune) in [false, true].into_iter().enumerate() {
            let cfg = base.with_prune_scans(prune);
            for _ in 0..iters {
                let start = Instant::now();
                let (rel, prof) = run_with(&plan, &catalog, &cfg).expect("query runs");
                best[pi_idx] = best[pi_idx].min(start.elapsed().as_secs_f64());
                if runs.len() <= pi_idx {
                    runs.push((rel, prof));
                }
            }
        }
        let (off, on) = (&runs[0], &runs[1]);
        assert_eq!(off.0, on.0, "Q{qn}: pruned result diverged from unpruned");
        assert_eq!(
            (off.1.rows_in, off.1.rows_out),
            (on.1.rows_in, on.1.rows_out),
            "Q{qn}: pruning must not change operator row counts"
        );
        // Exactness sweep: both executors, threads 1/2/4, pruning on — the
        // morsel-order merge keeps results bit-identical everywhere.
        for executor in [Executor::Materialize, Executor::Fused] {
            for t in [1, 2, 4] {
                let cfg =
                    EngineConfig::with_threads(t).with_executor(executor).with_prune_scans(true);
                let (rel, _) = run_with(&plan, &catalog, &cfg).expect("query runs");
                assert_eq!(rel, off.0, "Q{qn}: pruned {executor:?} at {t} threads diverged");
            }
        }
        if qn == 6 {
            assert!(
                on.1.pruned_morsels > 0,
                "Q6 must skip morsels on a shipdate-clustered catalog \
                 (got pruned_morsels = 0 — pruning stopped firing)"
            );
        }
        rows.push(format!("Q{qn}"));
        off_s.push(best[0]);
        on_s.push(best[1]);
        speedup.push(best[0] / best[1]);
        skipped_morsels.push(on.1.pruned_morsels as f64);
        skipped_mb.push(on.1.pruned_bytes as f64 / 1e6);
        pi_gain.push(modeled_prune_gain(&pi, &on.1));
        e5_gain.push(modeled_prune_gain(&e5, &on.1));
        status!(
            "Q{qn}: prune off {:.3}s, on {:.3}s ({:.2}x), skipped {} morsels / {:.1} MB",
            best[0],
            best[1],
            best[0] / best[1],
            on.1.pruned_morsels,
            on.1.pruned_bytes as f64 / 1e6
        );
    }

    let mut timing = TextFigure::new(
        format!(
            "Zone-map scan pruning, clustered lineitem (SF {}, {threads} threads, host s)",
            args.sf
        ),
        "query",
    );
    timing.rows = rows.clone();
    timing.push_series(Series::new("prune off", off_s));
    timing.push_series(Series::new("prune on", on_s));
    timing.push_series(Series::new("speedup", speedup));

    let mut work =
        TextFigure::new("Scan pruning — skipped work and modeled gain".to_string(), "query");
    work.rows = rows;
    work.push_series(Series::new("morsels skipped", skipped_morsels));
    work.push_series(Series::new("MB skipped", skipped_mb));
    work.push_series(Series::new("pi3b+ gain", pi_gain));
    work.push_series(Series::new("op-e5 gain", e5_gain));

    wimpi_bench::emit(&args, "prune", &[timing, work]);
}
