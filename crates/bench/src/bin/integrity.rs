//! Integrity harness: silent-corruption injection under a corruption-rate
//! ladder, asserting the end-to-end detect → quarantine → repair contract.
//!
//! ```text
//! cargo run --release --bin integrity -- [--sf f] [--queries 1,6,...]
//!     [--smoke]
//! ```
//!
//! Per ladder rung (rising chunks-corrupted × bits-per-chunk), every
//! choke-point query runs once healthy and once with a seeded
//! `FaultKind::BitFlip` silently corrupting resident chunks on one node.
//! Three contracts are asserted at every rung:
//!
//! 1. **100% detection** — every injected corruption trips the scan-time
//!    checksum verifier (`integrity_detected >= 1`, never a silent pass).
//! 2. **Bit-exact repair** — the repaired answer equals the healthy answer
//!    exactly (`Relation` equality, not float tolerance): repair re-executes
//!    on pristine data, and verification + repair cost simulated time.
//! 3. **Exact counter reconciliation** — the cluster registry's
//!    `integrity_failures_total` / `integrity_repairs_total` equal the
//!    summed per-run `RecoveryReport` figures, with no drift.
//!
//! A fourth, zero-overhead guard runs once: with verification *off*, results
//! and work profiles on a checksummed (sealed) catalog are bit-identical to
//! an unsealed catalog's — disabling the feature costs nothing.
//!
//! Artifacts: `results/integrity.{txt,json}` (per-rung detection, repair,
//! and simulated recovery-time figures).
//!
//! `--smoke` is the CI entry point: one rung over Q1/Q6/Q13 plus the
//! zero-overhead guard.

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_cluster::distribute::Strategy;
use wimpi_cluster::faults::{FaultKind, FaultPlan};
use wimpi_cluster::{ClusterConfig, WimpiCluster};
use wimpi_engine::EngineConfig;
use wimpi_obs::status;
use wimpi_queries::{query, run_with, CHOKEPOINT_QUERIES};
use wimpi_tpch::Generator;

/// Cluster size for the ladder (big enough for real partitions, small
/// enough to stay fast).
const NODES: u32 = 4;
/// Node carrying the corruption. Node 0 also hosts single-node queries
/// (Q13), so every query shape meets the fault.
const VICTIM: usize = 0;
/// The corruption-rate ladder: (chunks corrupted, bits flipped per chunk).
const LADDER: [(u32, u32); 4] = [(1, 1), (2, 2), (4, 3), (8, 4)];

/// Aggregates for one ladder rung.
#[derive(Default)]
struct Rung {
    detected: u64,
    repaired: u64,
    recovery_s: f64,
    verify_overhead_s: f64,
}

/// Runs every query at one rung against `cluster`, asserting detection and
/// bit-exact repair per query; returns the rung aggregates.
fn run_rung(cluster: &WimpiCluster, qns: &[usize], chunks: u32, bits: u32) -> Rung {
    let plan = FaultPlan::none().with(VICTIM, FaultKind::BitFlip { chunks, bits_per_chunk: bits });
    let mut rung = Rung::default();
    for &qn in qns {
        let healthy = cluster
            .run(&query(qn), Strategy::PartialAggPushdown)
            .unwrap_or_else(|e| panic!("Q{qn} healthy: {e}"));
        let faulted = cluster
            .run_with_faults(&query(qn), Strategy::PartialAggPushdown, &plan)
            .unwrap_or_else(|e| panic!("Q{qn} corrupted ({chunks}x{bits}): {e}"));
        // Contract 1: no silent pass — every injection is detected.
        assert!(
            faulted.recovery.integrity_detected >= 1,
            "Q{qn} ({chunks}x{bits}): corruption slipped past verification"
        );
        // Contract 2: the repaired answer is the healthy answer, bit-exact,
        // at full coverage, and the repair work costs simulated time.
        assert_eq!(
            faulted.result, healthy.result,
            "Q{qn} ({chunks}x{bits}): repaired answer drifted"
        );
        assert_eq!(
            faulted.recovery.integrity_repaired, faulted.recovery.integrity_detected,
            "Q{qn} ({chunks}x{bits}): a detected violation went unrepaired"
        );
        assert!(!faulted.recovery.degraded, "Q{qn}: repair must restore the full answer");
        assert!((faulted.recovery.coverage - 1.0).abs() < 1e-12, "Q{qn}: coverage");
        assert!(
            faulted.total_seconds() > healthy.total_seconds(),
            "Q{qn} ({chunks}x{bits}): verification + repair cannot be free"
        );
        rung.detected += faulted.recovery.integrity_detected as u64;
        rung.repaired += faulted.recovery.integrity_repaired as u64;
        rung.recovery_s += faulted.recovery.recovery_seconds;
        rung.verify_overhead_s += faulted.total_seconds() - healthy.total_seconds();
    }
    rung
}

/// Zero-overhead-disabled guard: with verification off, a sealed catalog
/// answers bit-identically (results *and* work profiles) to an unsealed one.
fn assert_zero_overhead_when_disabled(sf: f64, qns: &[usize]) {
    let unsealed = Generator::new(sf).generate_catalog().expect("catalog generates");
    let mut sealed = unsealed.clone();
    sealed.seal_integrity();
    let cfg = EngineConfig::serial(); // verify_checksums defaults to off
    for &qn in qns {
        let (rel_u, work_u) =
            run_with(&query(qn), &unsealed, &cfg).unwrap_or_else(|e| panic!("Q{qn}: {e}"));
        let (rel_s, work_s) =
            run_with(&query(qn), &sealed, &cfg).unwrap_or_else(|e| panic!("Q{qn} sealed: {e}"));
        assert_eq!(rel_s, rel_u, "Q{qn}: sealing alone changed the answer");
        assert_eq!(work_s, work_u, "Q{qn}: sealing alone changed the work profile");
    }
    status!("zero-overhead guard: verification off is bit-identical over {qns:?}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args = Args::parse_with(Args { sf: 0.01, ..Args::default() });
    let qns: Vec<usize> = if smoke {
        vec![1, 6, 13]
    } else if args.queries.is_empty() {
        CHOKEPOINT_QUERIES.to_vec()
    } else {
        args.queries.clone()
    };
    let ladder: &[(u32, u32)] = if smoke { &LADDER[..1] } else { &LADDER };

    status!("integrity ladder at SF {} over {qns:?}, {NODES} nodes, victim {VICTIM}", args.sf);
    let cluster = WimpiCluster::build(ClusterConfig::new(NODES, args.sf)).expect("cluster builds");

    let mut fig = TextFigure::new(
        format!("Silent-corruption ladder (SF {}, {NODES} nodes)", args.sf),
        "corruption",
    );
    fig.rows = ladder.iter().map(|(c, b)| format!("{c}x{b}b")).collect();
    let mut detected_col = Vec::new();
    let mut repaired_col = Vec::new();
    let mut recovery_col = Vec::new();
    let mut overhead_col = Vec::new();
    let (mut total_detected, mut total_repaired) = (0u64, 0u64);
    for &(chunks, bits) in ladder {
        let rung = run_rung(&cluster, &qns, chunks, bits);
        status!(
            "{chunks} chunk(s) x {bits} bit(s): {} detected, {} repaired, \
             {:.4}s simulated recovery",
            rung.detected,
            rung.repaired,
            rung.recovery_s
        );
        total_detected += rung.detected;
        total_repaired += rung.repaired;
        detected_col.push(Some(rung.detected as f64));
        repaired_col.push(Some(rung.repaired as f64));
        recovery_col.push(Some(rung.recovery_s));
        overhead_col.push(Some(rung.verify_overhead_s));
    }

    // Contract 3: the registry's ledger reconciles with the per-run reports
    // exactly — every detection and repair was counted once, nowhere twice.
    let m = cluster.metrics();
    assert_eq!(
        m.counter("integrity_failures_total"),
        total_detected,
        "detection counter drifted from the summed recovery reports"
    );
    assert_eq!(
        m.counter("integrity_repairs_total"),
        total_repaired,
        "repair counter drifted from the summed recovery reports"
    );
    assert_eq!(total_repaired, total_detected, "every detection must be repaired");
    assert!(m.counter("integrity_checks_total") > 0, "verified scans must count checks");
    assert_eq!(
        m.counter("cluster_faults_total{kind=\"bit_flip\"}"),
        (ladder.len() * qns.len()) as u64,
        "one injected bit-flip per (rung, query)"
    );

    assert_zero_overhead_when_disabled(args.sf, &qns);

    if smoke {
        status!("integrity smoke passed");
        println!("integrity smoke: OK ({total_detected} detected, {total_repaired} repaired)");
        return;
    }

    fig.push_series(Series { name: "detected".into(), values: detected_col });
    fig.push_series(Series { name: "repaired".into(), values: repaired_col });
    fig.push_series(Series { name: "recovery_s".into(), values: recovery_col });
    fig.push_series(Series { name: "overhead_s".into(), values: overhead_col });
    wimpi_bench::emit(&args, "integrity", &[fig]);
    wimpi_bench::write_artifact(&args.out, "integrity_metrics.txt", &m.render());
}
