//! Chaos-serving harness: the failure-aware front door under a closed-loop
//! mixed-workload ladder with injected faults (DESIGN.md §15).
//!
//! ```text
//! cargo run --release --bin chaos -- [--sf f] [--smoke]
//! ```
//!
//! Builds one simulated cluster, then per ladder rung starts a fresh
//! [`Coordinator`] and drives N closed-loop clients over a hot/cold query
//! mix (hot Q1/Q6 repeat; cold ad-hoc choke-points interleave) where every
//! third request carries a seeded [`FaultPlan::random`] schedule — crash,
//! transient-OOM, straggler, degraded-NIC, and BitFlip faults all sampled.
//! Per rung it asserts the serving contracts:
//!
//! 1. **Bit-exactness** — every non-degraded answer (result-cache hits
//!    included) equals the clean fault-free driver run of the same query.
//! 2. **Ledger identity** — the service's `submitted = completed +
//!    cancelled + exhausted + failed + panicked` reconciles exactly, and so
//!    does the coordinator's routed sub-run ledger
//!    (`coord_subruns_total = ok + failed + cancelled`).
//! 3. **Cache discipline** — reserved bytes drain to the live entries, and
//!    hot traffic actually hits once the mix repeats.
//!
//! Artifacts: `results/chaos.txt` (per-rung table) and `results/chaos.json`
//! (schema checked by `wimpi_core::validate_chaos_document` — the binary
//! self-validates before writing, and CI re-validates the written file).
//!
//! `--smoke` is the CI entry point: a smaller cluster, two rungs, one pass.

use std::sync::Arc;

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_cluster::coordinator::{Coordinator, CoordinatorConfig, QueryRequest};
use wimpi_cluster::distribute::Strategy;
use wimpi_cluster::faults::FaultPlan;
use wimpi_cluster::{ClusterConfig, WimpiCluster};
use wimpi_engine::{EngineError, Relation, ServiceConfig, ServiceError};
use wimpi_obs::status;
use wimpi_queries::query;

/// Deterministic chaos stream seed (reports into `chaos.json`).
const SEED: u64 = 42;
/// Every `FAULT_EVERY`-th request carries a random fault schedule.
const FAULT_EVERY: usize = 3;
/// Hot/cold mix one client plays per round: Q1/Q6 are the hot repeats, the
/// other choke-points arrive cold and ad hoc. Q15 rides along as the
/// two-phase representative — both of its phases route across the cluster.
const MIX: [usize; 17] = [1, 6, 6, 3, 1, 6, 4, 6, 1, 13, 6, 5, 1, 6, 14, 19, 15];

struct RungReport {
    clients: usize,
    requests: u64,
    completed: u64,
    cache_hits: u64,
    degraded: u64,
    hedges: u64,
    retries: u64,
    invalidations: u64,
    p50_s: f64,
    p99_s: f64,
    ledger: [u64; 6], // submitted, completed, cancelled, exhausted, failed, panicked
}

/// One closed-loop client: submit → wait → next. Every non-degraded answer
/// is asserted bit-exact against the clean baseline on the spot.
fn run_client(
    coord: &Coordinator,
    mix: &[usize],
    rounds: usize,
    nodes: u32,
    baselines: &std::collections::HashMap<usize, Relation>,
    client: usize,
) -> (u64, u64, u64, u64) {
    let (mut completed, mut hits, mut degraded, mut refused) = (0u64, 0u64, 0u64, 0u64);
    for round in 0..rounds {
        for (i, &qn) in mix.iter().enumerate() {
            let seq = round * mix.len() + i;
            let mut req = QueryRequest::new(format!("c{client}s{seq}q{qn}"), query(qn));
            if seq.is_multiple_of(FAULT_EVERY) {
                // Deterministic per (client, seq): the same ladder replays
                // the same chaos schedule run after run.
                let fault_seed = SEED ^ ((client as u64) << 32) ^ seq as u64;
                req = req.with_faults(FaultPlan::random(fault_seed, nodes));
            }
            match coord.run_blocking(req) {
                Ok(answer) => {
                    completed += 1;
                    if answer.from_cache {
                        hits += 1;
                    }
                    if answer.degraded {
                        assert!(
                            !answer.from_cache,
                            "Q{qn} c{client}s{seq}: a degraded answer must never be cached"
                        );
                        degraded += 1;
                    } else {
                        assert_eq!(
                            answer.result, baselines[&qn],
                            "Q{qn} c{client}s{seq}: non-degraded answer (from_cache = {}) \
                             must be bit-exact vs the clean run",
                            answer.from_cache
                        );
                    }
                }
                Err(ServiceError::Overloaded { .. } | ServiceError::ShuttingDown) => refused += 1,
                Err(ServiceError::Engine(EngineError::Cancelled)) => refused += 1,
                Err(e) => panic!("Q{qn} c{client}s{seq}: outcome outside the terminal set: {e}"),
            }
        }
    }
    (completed, hits, degraded, refused)
}

/// Runs one ladder rung on a fresh coordinator; asserts the rung's ledger
/// identities before reporting.
fn run_rung(
    cluster: &Arc<WimpiCluster>,
    clients: usize,
    rounds: usize,
    baselines: &std::collections::HashMap<usize, Relation>,
) -> RungReport {
    let nodes = cluster.num_nodes();
    let coord = Coordinator::new(
        Arc::clone(cluster),
        CoordinatorConfig {
            service: ServiceConfig {
                workers: 2,
                queue_depth: (clients * rounds * MIX.len()).max(64),
                ..ServiceConfig::default()
            },
            ..CoordinatorConfig::default()
        },
    );
    let (mut completed, mut hits, mut degraded, mut refused) = (0u64, 0u64, 0u64, 0u64);
    std::thread::scope(|s| {
        let coord = &coord;
        let handles: Vec<_> = (0..clients)
            .map(|c| s.spawn(move || run_client(coord, &MIX, rounds, nodes, baselines, c)))
            .collect();
        for h in handles {
            let (c, h_, d, r) = h.join().expect("client threads must not panic");
            completed += c;
            hits += h_;
            degraded += d;
            refused += r;
        }
    });
    coord.shutdown();

    let requests = (clients * rounds * MIX.len()) as u64;
    assert_eq!(completed + refused, requests, "{clients} clients: an outcome went missing");

    // Ledger identity on the admission path. Cache hits answer before
    // admission, so the service only ever saw the misses.
    let m = coord.service_metrics();
    let ledger = [
        m.counter("service_submitted_total"),
        m.counter("service_completed_total"),
        m.counter("service_cancelled_total"),
        m.counter("service_exhausted_total"),
        m.counter("service_failed_total"),
        m.counter("service_panicked_total"),
    ];
    assert_eq!(
        ledger[0],
        ledger[1..].iter().sum::<u64>(),
        "{clients} clients: service ledger identity must reconcile"
    );

    // …and on the routed sub-run ledger.
    let cm = coord.metrics();
    assert_eq!(
        cm.counter("coord_subruns_total"),
        cm.counter("coord_subruns_ok_total")
            + cm.counter("coord_subruns_failed_total")
            + cm.counter("coord_subruns_cancelled_total"),
        "{clients} clients: sub-run ledger identity must reconcile"
    );
    assert_eq!(cm.counter("coord_result_cache_hits_total"), hits);
    assert_eq!(cm.counter("coord_degraded_answers_total"), degraded);

    RungReport {
        clients,
        requests,
        completed,
        cache_hits: hits,
        degraded,
        hedges: cm.counter("coord_hedges_total"),
        retries: cm.counter("coord_retries_total"),
        invalidations: cm.counter("coord_result_cache_invalidations_total"),
        p50_s: coord.latency_quantile(0.5).unwrap_or(0.0),
        p99_s: coord.latency_quantile(0.99).unwrap_or(0.0),
        ledger,
    }
}

fn chaos_json(sf: f64, nodes: u32, reports: &[RungReport]) -> String {
    let mut rungs = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            rungs.push(',');
        }
        let hit_rate =
            if r.completed == 0 { 0.0 } else { r.cache_hits as f64 / r.completed as f64 };
        rungs.push_str(&format!(
            r#"{{"clients": {}, "requests": {}, "completed": {}, "cache_hits": {}, "hit_rate": {:.6}, "p50_s": {:.6}, "p99_s": {:.6}, "degraded": {}, "hedges": {}, "retries": {}, "invalidations": {}, "ledger": {{"submitted": {}, "completed": {}, "cancelled": {}, "exhausted": {}, "failed": {}, "panicked": {}}}}}"#,
            r.clients,
            r.requests,
            r.completed,
            r.cache_hits,
            hit_rate,
            r.p50_s,
            r.p99_s,
            r.degraded,
            r.hedges,
            r.retries,
            r.invalidations,
            r.ledger[0],
            r.ledger[1],
            r.ledger[2],
            r.ledger[3],
            r.ledger[4],
            r.ledger[5],
        ));
    }
    format!(r#"{{"sf": {sf}, "seed": {SEED}, "nodes": {nodes}, "rungs": [{rungs}]}}"#)
}

fn main() {
    // `--validate <file>`: re-check an already-written chaos.json through
    // the independent schema checker and exit (the CI artifact gate).
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--validate") {
        let path = argv.get(i + 1).expect("--validate needs a file path");
        let doc =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let rungs = wimpi_core::validate_chaos_document(&doc)
            .unwrap_or_else(|e| panic!("{path} fails the chaos schema check: {e}"));
        println!("{path}: {} rung(s) validate, ledger identities reconcile", rungs.len());
        return;
    }
    let smoke = argv.iter().any(|a| a == "--smoke");
    let mut args = Args::parse_with(Args { sf: 0.01, ..Args::default() });
    let (nodes, ladder, rounds): (u32, &[usize], usize) = if smoke {
        args.sf = args.sf.min(0.005);
        (4, &[1, 2], 1)
    } else {
        (6, &[1, 2, 4], 2)
    };
    status!("chaos ladder: {nodes} nodes at SF {}, clients {ladder:?}, seed {SEED}", args.sf);
    let cluster =
        Arc::new(WimpiCluster::build(ClusterConfig::new(nodes, args.sf)).expect("cluster builds"));

    // The referee: one clean fault-free driver run per distinct query.
    // Two-phase Q15 cannot use the driver path (`WimpiCluster::run` serves
    // single plans only), so its referee is the strongest one available: a
    // single-node run over the full unpartitioned catalog.
    let full = wimpi_tpch::Generator::new(args.sf).generate_catalog().expect("full catalog");
    let mut baselines = std::collections::HashMap::new();
    for &qn in &MIX {
        baselines.entry(qn).or_insert_with(|| {
            if qn == 15 {
                let (rel, _) = wimpi_queries::run(&query(qn), &full)
                    .unwrap_or_else(|e| panic!("Q{qn} clean baseline: {e}"));
                rel
            } else {
                cluster
                    .run(&query(qn), Strategy::PartialAggPushdown)
                    .unwrap_or_else(|e| panic!("Q{qn} clean baseline: {e}"))
                    .result
            }
        });
    }

    // Two-phase routing contract: Q15 routes through the coordinator and
    // survives the loss of *any* single node bit-exactly — the scalar
    // pre-pass and the outer join both recover their lost partition.
    {
        for node in 0..nodes as usize {
            // Fresh coordinator per crash: the same fault hits both phases,
            // which legitimately trips the node's breaker — state that must
            // not leak into the next iteration's routing.
            let coord = Coordinator::new(Arc::clone(&cluster), CoordinatorConfig::default());
            let a = coord
                .run_blocking(
                    QueryRequest::new(format!("q15-crash-n{node}"), query(15))
                        .with_faults(FaultPlan::crash(node)),
                )
                .unwrap_or_else(|e| panic!("Q15 must survive losing node {node}: {e}"));
            assert!(!a.degraded, "Q15 must recover from one node loss, not degrade");
            assert!(
                !a.recovery.reassignments.is_empty(),
                "losing node {node} must show up as a recovered reassignment"
            );
            assert_eq!(
                a.result, baselines[&15],
                "Q15 after losing node {node} must stay bit-exact vs the single-node referee"
            );
            coord.shutdown();
        }
        status!("two-phase Q15 survives single-node loss on each of {nodes} nodes");
    }

    let mut reports = Vec::new();
    for &clients in ladder {
        let r = run_rung(&cluster, clients, rounds, &baselines);
        status!(
            "c={clients}: {}/{} completed ({} hits, {} degraded), {} hedges, {} retries, \
             {} invalidations, p50 {:.3}s p99 {:.3}s",
            r.completed,
            r.requests,
            r.cache_hits,
            r.degraded,
            r.hedges,
            r.retries,
            r.invalidations,
            r.p50_s,
            r.p99_s
        );
        reports.push(r);
    }
    // Hot traffic at the sequential rung guarantees repeats: the cache must
    // have produced at least one hit somewhere in the ladder.
    assert!(
        reports.iter().map(|r| r.cache_hits).sum::<u64>() > 0,
        "a hot/cold ladder with repeats must hit the result cache"
    );

    // Self-validate the document through the independent checker before
    // writing — CI re-checks the written artifact the same way.
    let doc = chaos_json(args.sf, nodes, &reports);
    let rungs = wimpi_core::validate_chaos_document(&doc)
        .unwrap_or_else(|e| panic!("chaos.json fails its own schema check: {e}"));
    assert_eq!(rungs.len(), reports.len());

    let mut fig = TextFigure::new(
        format!("Chaos serving ladder ({nodes} nodes, SF {}, seed {SEED})", args.sf),
        "clients",
    );
    fig.rows = reports.iter().map(|r| format!("c={}", r.clients)).collect();
    type Col = fn(&RungReport) -> f64;
    let series: [(&str, Col); 8] = [
        ("completed", |r| r.completed as f64),
        ("cache_hits", |r| r.cache_hits as f64),
        ("degraded", |r| r.degraded as f64),
        ("hedges", |r| r.hedges as f64),
        ("retries", |r| r.retries as f64),
        ("invalidations", |r| r.invalidations as f64),
        ("p50_s", |r| r.p50_s),
        ("p99_s", |r| r.p99_s),
    ];
    for (name, f) in series {
        fig.push_series(Series {
            name: name.to_string(),
            values: reports.iter().map(|r| Some(f(r))).collect(),
        });
    }
    let text = fig.render();
    print!("{text}");
    wimpi_bench::write_artifact(&args.out, "chaos.txt", &text);
    wimpi_bench::write_artifact(&args.out, "chaos.json", &doc);
    if smoke {
        println!("chaos smoke: OK");
    }
}
