//! Regenerates Figure 3 (speedups over the Pi/WIMPI, SF 1 and SF 10).

fn main() {
    let args = wimpi_bench::Args::parse();
    let study = wimpi_core::Study::new(args.sf);
    let sf1 = study.table2().expect("table2 runs");
    let sf10 = study.table3(&args.sizes).expect("table3 runs");
    wimpi_bench::emit(&args, "fig3", &wimpi_core::fig3(&sf1, &sf10));
}
