//! Extension experiment (not in the paper's evaluation): the §III-C1
//! hybrid NAM deployment — WIMPI workers plus one big-memory merge server —
//! compared against the all-Pi cluster on the choke-point queries.

use wimpi_analysis::{Series, TextFigure};
use wimpi_cluster::distribute::Strategy;
use wimpi_cluster::nam::NamCluster;
use wimpi_cluster::{ClusterConfig, WimpiCluster};
use wimpi_obs::status;
use wimpi_queries::{query, CHOKEPOINT_QUERIES};

fn main() {
    let args = wimpi_bench::Args::parse();
    let nodes = *args.sizes.last().expect("at least one size");
    let scale = 10.0 / args.sf;
    status!("building {nodes}-node cluster at measure SF {} (modelled SF 10) …", args.sf);
    let workers = WimpiCluster::build(ClusterConfig::new(nodes, args.sf).with_model_scale(scale))
        .expect("cluster builds");
    let server = wimpi_hwsim::profile("op-e5").expect("profile exists");
    let hybrid = NamCluster::new(workers, server);

    let mut fig = TextFigure::new(
        format!("NAM extension — all-Pi x{nodes} vs Pi x{nodes} + op-e5 merge server (SF 10, s)"),
        "query",
    );
    fig.rows = CHOKEPOINT_QUERIES.iter().map(|q| format!("Q{q}")).collect();
    let mut all_pi = Vec::new();
    let mut nam = Vec::new();
    for &q in &CHOKEPOINT_QUERIES {
        let qp = query(q);
        all_pi.push(
            hybrid
                .workers
                .run(&qp, Strategy::PartialAggPushdown)
                .expect("all-pi runs")
                .total_seconds(),
        );
        nam.push(hybrid.run(&qp, Strategy::PartialAggPushdown).expect("nam runs").total_seconds());
    }
    fig.push_series(Series::new("all-pi", all_pi.clone()));
    fig.push_series(Series::new("nam-hybrid", nam.clone()));
    fig.push_series(Series::new("speedup", all_pi.iter().zip(&nam).map(|(a, b)| a / b).collect()));
    wimpi_bench::emit(&args, "nam", &[fig]);
    if let (Some(m), Some(w)) = (hybrid.msrp(), hybrid.power_w()) {
        status!(
            "hybrid MSRP ${m:.0}, peak {w:.0} W (all-pi: ${:.0}, {:.0} W)",
            wimpi_analysis::wimpi_msrp(nodes),
            wimpi_analysis::wimpi_power_w(nodes)
        );
    }
}
