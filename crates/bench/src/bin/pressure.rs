//! Memory-pressure sweep: the resource governor under shrinking budgets.
//!
//! ```text
//! cargo run --release --bin pressure -- [--sf f] [--queries 1,6,...]
//!     [--smoke]
//! ```
//!
//! Runs the choke-point queries under a ladder of per-query memory budgets
//! (unlimited → 16 MB → 1 MB → 64 KB → 1 KB → 0) and records, per cell, the
//! host seconds, the measured reservation peak, and the execution mode:
//!
//! * `inmem` — everything fit, no degradation;
//! * `grace×k` — at least one join/aggregate build fell back to
//!   Grace-style partitioning (largest fan-out `k`), answer still bit-exact;
//! * `exhausted(op)` — even maximal partitioning cannot fit: the typed
//!   `ResourceExhausted` error named `op`, no crash, engine reusable.
//!
//! Every completed budgeted run is asserted bit-exact against the
//! unconstrained baseline — the governor may slow a query down, never change
//! its answer. Artifacts land in `results/pressure.{txt,json}` plus a
//! `results/pressure_modes.txt` matrix.
//!
//! `--smoke` is the CI entry point: Q1 must degrade (not error) under a tiny
//! budget and stay bit-exact, Q6 must stay bit-exact, and a zero budget must
//! yield `ResourceExhausted` — not a panic.

use std::time::Instant;

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_engine::{EngineConfig, EngineError, QueryContext};
use wimpi_obs::status;
use wimpi_queries::{query, run_governed, CHOKEPOINT_QUERIES};
use wimpi_tpch::Generator;

/// The budget ladder: label and bytes (`None` = unlimited).
const BUDGETS: [(&str, Option<u64>); 6] = [
    ("unlimited", None),
    ("16M", Some(16 << 20)),
    ("1M", Some(1 << 20)),
    ("64K", Some(64 << 10)),
    ("1K", Some(1 << 10)),
    ("0", Some(0)),
];

fn ctx_for(budget: Option<u64>) -> QueryContext {
    match budget {
        Some(b) => QueryContext::with_budget(b),
        None => QueryContext::new(),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args = Args::parse_with(Args { sf: 0.01, ..Args::default() });
    let catalog = Generator::new(args.sf).generate_catalog().expect("catalog generates");
    let cfg = EngineConfig::serial();
    if smoke {
        run_smoke(&catalog, &cfg);
        return;
    }

    let qns: Vec<usize> =
        if args.queries.is_empty() { CHOKEPOINT_QUERIES.to_vec() } else { args.queries.clone() };
    status!("pressure sweep at SF {} over {:?}", args.sf, qns);

    let mut seconds =
        TextFigure::new(format!("Pressure sweep: host seconds (SF {})", args.sf), "query");
    let mut peaks =
        TextFigure::new(format!("Pressure sweep: measured peak bytes (SF {})", args.sf), "query");
    seconds.rows = qns.iter().map(|q| format!("Q{q}")).collect();
    peaks.rows = seconds.rows.clone();
    let mut modes: Vec<Vec<String>> = vec![Vec::new(); qns.len()];

    for (label, budget) in BUDGETS {
        let mut secs_col: Vec<Option<f64>> = Vec::with_capacity(qns.len());
        let mut peak_col: Vec<Option<f64>> = Vec::with_capacity(qns.len());
        for (qi, &qn) in qns.iter().enumerate() {
            let q = query(qn);
            let baseline =
                run_governed(&q, &catalog, &cfg, &QueryContext::new()).expect("baseline runs");
            let ctx = ctx_for(budget);
            let started = Instant::now();
            let (secs, peak, mode) = match run_governed(&q, &catalog, &cfg, &ctx) {
                Ok((rel, _)) => {
                    assert_eq!(
                        rel, baseline.0,
                        "Q{qn} at budget {label}: degraded answer must be bit-exact"
                    );
                    let mode = if ctx.fallbacks() == 0 {
                        "inmem".to_string()
                    } else {
                        format!("grace×{}", ctx.max_fallback_parts())
                    };
                    (Some(started.elapsed().as_secs_f64()), Some(ctx.high_water() as f64), mode)
                }
                Err(EngineError::ResourceExhausted { operator, .. }) => {
                    assert_eq!(ctx.used(), 0, "Q{qn}: failed run must release its budget");
                    (None, None, format!("exhausted({operator})"))
                }
                Err(EngineError::Cancelled) => (None, None, "cancelled".to_string()),
                Err(e) => panic!("Q{qn} at budget {label}: unexpected error {e}"),
            };
            status!("Q{qn:<2} budget {label:>9}: {mode}");
            secs_col.push(secs);
            peak_col.push(peak);
            modes[qi].push(format!("{mode:>16}"));
        }
        seconds.push_series(Series { name: label.to_string(), values: secs_col });
        peaks.push_series(Series { name: label.to_string(), values: peak_col });
    }

    wimpi_bench::emit(&args, "pressure", &[seconds, peaks]);
    let mut mode_text =
        format!("{:>5} {}\n", "query", BUDGETS.map(|(l, _)| format!("{l:>16}")).join(" "));
    for (qi, qn) in qns.iter().enumerate() {
        mode_text.push_str(&format!("{:>5} {}\n", format!("Q{qn}"), modes[qi].join(" ")));
    }
    print!("{mode_text}");
    wimpi_bench::write_artifact(&args.out, "pressure_modes.txt", &mode_text);
}

/// CI smoke: tiny budgets must degrade deterministically, impossible
/// budgets must fail with the typed error, and nothing may crash.
fn run_smoke(catalog: &wimpi_storage::Catalog, cfg: &EngineConfig) {
    for qn in [1usize, 6] {
        let q = query(qn);
        let (base, _) =
            run_governed(&q, catalog, cfg, &QueryContext::new()).expect("baseline runs");

        // 1 KB: Q1's grouped aggregate cannot fit and must fall back to
        // Grace partitioning; Q6's single-group state fits outright. Both
        // answers must be bit-exact.
        let tiny = QueryContext::with_budget(1 << 10);
        let (rel, _) = run_governed(&q, catalog, cfg, &tiny)
            .unwrap_or_else(|e| panic!("Q{qn} must degrade, not error: {e}"));
        assert_eq!(rel, base, "Q{qn}: degraded answer must be bit-exact");
        if qn == 1 {
            assert!(tiny.fallbacks() > 0, "Q1 under 1 KB must take the Grace fallback");
        }
        assert_eq!(tiny.used(), 0, "Q{qn}: budget must be fully released");

        // Budget 0 admits no scratch at all: the typed error, not a crash —
        // and the catalog stays queryable afterwards.
        let zero = QueryContext::with_budget(0);
        match run_governed(&q, catalog, cfg, &zero) {
            Err(EngineError::ResourceExhausted { budget: 0, .. }) => {}
            other => panic!("Q{qn} at budget 0: expected ResourceExhausted, got {other:?}"),
        }
        assert_eq!(zero.used(), 0, "Q{qn}: failed run must release everything");
        let (again, _) =
            run_governed(&q, catalog, cfg, &QueryContext::new()).expect("engine stays usable");
        assert_eq!(again, base, "Q{qn}: rerun after exhaustion must match");
    }
    status!("pressure smoke passed");
    println!("pressure smoke: OK");
}
