//! Regenerates Figure 6 (hourly-cost-normalized comparison vs the cloud).

fn main() {
    let args = wimpi_bench::Args::parse();
    let study = wimpi_core::Study::new(args.sf);
    let sf1 = study.table2().expect("table2 runs");
    let sf10 = study.table3(&args.sizes).expect("table3 runs");
    wimpi_bench::emit(&args, "fig6", &wimpi_core::fig6(&sf1, &sf10));
}
