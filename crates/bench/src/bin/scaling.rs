//! Speedup-vs-threads for the 8 choke-point queries (morsel-driven engine).
//!
//! Runs each query at 1, 2, and 4 software threads on the host, verifying
//! that results and work profiles are bit-identical across thread counts,
//! and reports measured wall-clock speedups next to the hwsim roofline
//! speedups for the Pi 3B+ and op-e5. On core-starved CI hosts the measured
//! columns hover near 1× (there is no silicon to scale onto — the printed
//! host parallelism makes that legible); the modeled columns are the
//! machine-independent answer. Defaults to SF 1, the paper's single-node
//! scale; override with `--sf`/`WIMPI_SF`.

use std::time::Instant;

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_engine::EngineConfig;
use wimpi_hwsim::{modeled_speedup, pi3b, profile, record_residuals};
use wimpi_obs::{status, Registry};
use wimpi_queries::{query, run_with, CHOKEPOINT_QUERIES};
use wimpi_tpch::Generator;

const THREADS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = Args::parse_with(Args { sf: 1.0, ..Args::default() });
    let host_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    status!("generating TPC-H SF {} (host parallelism: {host_threads})", args.sf);
    let catalog = Generator::new(args.sf).generate_catalog().expect("catalog generates");
    let pi = pi3b();
    let e5 = profile("op-e5").expect("op-e5 profile exists");
    let residuals = Registry::new();

    let mut rows = Vec::new();
    let mut measured: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len()];
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len() - 1];
    let mut pi_model: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len() - 1];
    let mut e5_model: Vec<Vec<f64>> = vec![Vec::new(); THREADS.len() - 1];

    for qn in CHOKEPOINT_QUERIES {
        let plan = query(qn);
        let mut secs = Vec::new();
        let mut baseline = None;
        for &t in &THREADS {
            let cfg = EngineConfig::with_threads(t);
            let start = Instant::now();
            let (rel, prof) = run_with(&plan, &catalog, &cfg).expect("query runs");
            secs.push(start.elapsed().as_secs_f64());
            match &baseline {
                None => baseline = Some((rel, prof)),
                Some((rel0, prof0)) => {
                    assert_eq!(&rel, rel0, "Q{qn}: result diverged at {t} threads");
                    assert_eq!(&prof, prof0, "Q{qn}: work profile diverged at {t} threads");
                }
            }
        }
        let prof = baseline.expect("at least one run").1;
        rows.push(format!("Q{qn}"));
        for (i, &s) in secs.iter().enumerate() {
            measured[i].push(s);
        }
        for (i, &t) in THREADS[1..].iter().enumerate() {
            let measured = secs[0] / secs[i + 1];
            let pi_s = modeled_speedup(&pi, &prof, t as u32);
            let e5_s = modeled_speedup(&e5, &prof, t as u32);
            speedups[i].push(measured);
            pi_model[i].push(pi_s);
            e5_model[i].push(e5_s);
            // Modeled-vs-measured speedup residuals: on a real Pi/Xeon these
            // histograms are the calibration check; on starved CI hosts they
            // mostly document how far the host is from the modeled silicon.
            record_residuals(&residuals, pi.name, &format!("Q{qn}/{t}T"), pi_s, measured);
            record_residuals(&residuals, e5.name, &format!("Q{qn}/{t}T"), e5_s, measured);
        }
        status!(
            "Q{qn}: {:.3}s / {:.3}s / {:.3}s (1/2/4 threads), profiles bit-identical",
            secs[0],
            secs[1],
            secs[2]
        );
    }

    let mut fig = TextFigure::new(
        format!(
            "Morsel-driven scaling, choke-point queries at SF {} \
             (host parallelism {host_threads}; modeled = hwsim roofline)",
            args.sf
        ),
        "query",
    );
    fig.rows = rows;
    for (i, &t) in THREADS.iter().enumerate() {
        fig.push_series(Series::new(format!("measured {t}T (s)"), measured[i].clone()));
    }
    for (i, &t) in THREADS[1..].iter().enumerate() {
        fig.push_series(Series::new(format!("measured speedup {t}T"), speedups[i].clone()));
    }
    for (i, &t) in THREADS[1..].iter().enumerate() {
        fig.push_series(Series::new(format!("pi3b+ modeled {t}T"), pi_model[i].clone()));
    }
    for (i, &t) in THREADS[1..].iter().enumerate() {
        fig.push_series(Series::new(format!("op-e5 modeled {t}T"), e5_model[i].clone()));
    }
    wimpi_bench::emit(&args, "scaling", &[fig]);
    wimpi_bench::write_artifact(&args.out, "scaling_metrics.txt", &residuals.render());

    if let Some(path) = &args.trace_json {
        // Trace structure is thread-count-invariant (morsel spans follow
        // morsel boundaries, not workers), so one traced pass at the top
        // thread count stands for all of them.
        let qns: Vec<usize> = if args.queries.is_empty() {
            CHOKEPOINT_QUERIES.to_vec()
        } else {
            args.queries.clone()
        };
        let cfg = EngineConfig::with_threads(*THREADS.last().expect("non-empty"));
        let doc = wimpi_bench::trace_document(args.sf, &qns, &catalog, &cfg);
        match std::fs::write(path, &doc) {
            Ok(()) => status!("wrote {}", path.display()),
            Err(e) => status!("cannot write {}: {e}", path.display()),
        }
        if args.check {
            match wimpi_core::validate_trace_document(&doc) {
                Ok(per_query) => status!("trace check passed ({} queries)", per_query.len()),
                Err(e) => panic!("trace check failed: {e}"),
            }
        }
    }
}
