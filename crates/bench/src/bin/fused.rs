//! Fused vs materializing executor on the 8 choke-point queries.
//!
//! Runs every choke-point query under both `Executor::Materialize` and
//! `Executor::Fused` (same thread count, same morsel size), asserts the
//! results are bit-identical, and reports:
//!
//! * measured wall seconds per executor (best of several runs) and the
//!   host speedup — the multi-x wins on Q1/Q6/Q19 are the headline;
//! * the materialized-bytes term (`seq_write_bytes`) under each executor —
//!   the counter fusion collapses;
//! * the hwsim-modeled fused gain on the Pi 3B+ and op-e5, from the two
//!   measured work profiles ([`wimpi_hwsim::modeled_fused_gain`]) — the
//!   machine-independent version of the same story.
//!
//! Defaults to SF 1; `--smoke` drops to SF 0.05 with one timing iteration
//! for CI. Artifacts land in `results/fused.{txt,json}`.

use std::time::Instant;

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_engine::{EngineConfig, Executor};
use wimpi_hwsim::{modeled_fused_gain, pi3b, profile};
use wimpi_obs::status;
use wimpi_queries::{query, run_with, CHOKEPOINT_QUERIES};
use wimpi_tpch::Generator;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut args = Args::parse_with(Args { sf: 1.0, ..Args::default() });
    let iters = if smoke {
        args.sf = args.sf.min(0.05);
        1
    } else {
        3
    };
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    status!("generating TPC-H SF {} ({} threads, best of {iters})", args.sf, threads);
    let catalog = Generator::new(args.sf).generate_catalog().expect("catalog generates");
    let pi = pi3b();
    let e5 = profile("op-e5").expect("op-e5 profile exists");

    let mut rows = Vec::new();
    let mut mat_s = Vec::new();
    let mut fused_s = Vec::new();
    let mut speedup = Vec::new();
    let mut mat_mb = Vec::new();
    let mut fused_mb = Vec::new();
    let mut pi_gain = Vec::new();
    let mut e5_gain = Vec::new();

    for qn in CHOKEPOINT_QUERIES {
        let plan = query(qn);
        let mut best = [f64::INFINITY; 2];
        let mut runs = Vec::new();
        for (ei, executor) in [Executor::Materialize, Executor::Fused].into_iter().enumerate() {
            let cfg = EngineConfig::with_threads(threads).with_executor(executor);
            for _ in 0..iters {
                let start = Instant::now();
                let (rel, prof) = run_with(&plan, &catalog, &cfg).expect("query runs");
                best[ei] = best[ei].min(start.elapsed().as_secs_f64());
                if runs.len() <= ei {
                    runs.push((rel, prof));
                }
            }
        }
        let (mat, fused) = (&runs[0], &runs[1]);
        assert_eq!(mat.0, fused.0, "Q{qn}: fused result diverged from materializing");
        rows.push(format!("Q{qn}"));
        mat_s.push(best[0]);
        fused_s.push(best[1]);
        speedup.push(best[0] / best[1]);
        mat_mb.push(mat.1.seq_write_bytes as f64 / 1e6);
        fused_mb.push(fused.1.seq_write_bytes as f64 / 1e6);
        pi_gain.push(modeled_fused_gain(&pi, &mat.1, &fused.1));
        e5_gain.push(modeled_fused_gain(&e5, &mat.1, &fused.1));
        status!(
            "Q{qn}: materialize {:.3}s, fused {:.3}s ({:.2}x), written bytes {} -> {}",
            best[0],
            best[1],
            best[0] / best[1],
            mat.1.seq_write_bytes,
            fused.1.seq_write_bytes
        );
    }

    let mut timing = TextFigure::new(
        format!("Fused vs materializing executor (SF {}, {} threads, host s)", args.sf, threads),
        "query",
    );
    timing.rows = rows.clone();
    timing.push_series(Series::new("materialize", mat_s));
    timing.push_series(Series::new("fused", fused_s));
    timing.push_series(Series::new("speedup", speedup));

    let mut work = TextFigure::new(
        "Fused execution — materialized-bytes collapse and modeled gain".to_string(),
        "query",
    );
    work.rows = rows;
    work.push_series(Series::new("mat MB written", mat_mb));
    work.push_series(Series::new("fused MB written", fused_mb));
    work.push_series(Series::new("pi3b+ gain", pi_gain));
    work.push_series(Series::new("op-e5 gain", e5_gain));

    wimpi_bench::emit(&args, "fused", &[timing, work]);
}
