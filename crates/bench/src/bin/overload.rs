//! Overload stress harness: the concurrent query service under a ladder of
//! closed-loop client counts.
//!
//! ```text
//! cargo run --release --bin overload -- [--sf f] [--queries 1,6,...]
//!     [--smoke]
//! ```
//!
//! Drives N closed-loop clients (N ∈ {1, 2, 4, 8}) over the 8 choke-point
//! queries against one `engine::service::Service` whose node-wide budget is
//! sized from the measured unconstrained peaks — small enough that grants
//! contend, large enough that every query fits at full budget. Per level it
//! asserts the service's three contracts:
//!
//! 1. **No oversubscription** — the shared reservation's high-water mark
//!    never exceeds the node budget (checked both by a live sampler thread
//!    and post-hoc).
//! 2. **Bit-exactness** — every answer that completes equals the serial
//!    unconstrained baseline, no matter the concurrency, shedding, Grace
//!    degradation, or budget retries along the way.
//! 3. **Exactly one terminal outcome** — each submission ends as exactly one
//!    of {answer, Overloaded, ResourceExhausted, Cancelled}; the client-side
//!    tally and the service's own counters must agree.
//!
//! Artifacts: `results/overload.{txt,json}` (per-level throughput, sheds,
//! retries, latency) and `results/overload_metrics.txt` (the full registry
//! per level).
//!
//! `--smoke` is the CI entry point: a 2-client burst over Q1/Q6 with a tight
//! budget plus a full-queue shed check, all three contracts asserted.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use wimpi_analysis::{Series, TextFigure};
use wimpi_bench::Args;
use wimpi_engine::{
    EngineConfig, EngineError, QueryContext, QuerySpec, Relation, Service, ServiceConfig,
    ServiceError,
};
use wimpi_obs::status;
use wimpi_queries::{query, run_governed, CHOKEPOINT_QUERIES};
use wimpi_tpch::Generator;

/// Closed-loop client counts — the concurrency ladder.
const LADDER: [usize; 4] = [1, 2, 4, 8];
/// Service worker threads (fixed: the ladder varies offered load, not
/// capacity, so the top rungs overload the queue and shed).
const WORKERS: usize = 2;
/// Admission queue depth — small enough that 8 clients overrun it.
const QUEUE_DEPTH: usize = 4;
/// Rounds each client plays through the whole query set per level.
const ROUNDS: usize = 2;

/// One client's view of its submissions' terminal outcomes.
#[derive(Default, Clone, Copy)]
struct Tally {
    completed: u64,
    shed: u64,
    exhausted: u64,
    cancelled: u64,
}

impl Tally {
    fn total(&self) -> u64 {
        self.completed + self.shed + self.exhausted + self.cancelled
    }
}

/// One closed-loop client: submit → wait → next, `ROUNDS` passes over the
/// query set. Every outcome must be one of the four terminal states; every
/// completed answer must equal the baseline.
fn run_client(
    svc: &Service,
    catalog: &std::sync::Arc<wimpi_storage::Catalog>,
    qns: &[usize],
    baselines: &[Relation],
    estimate: u64,
    client: usize,
) -> Tally {
    let mut tally = Tally::default();
    for round in 0..ROUNDS {
        for (qi, &qn) in qns.iter().enumerate() {
            let cat = std::sync::Arc::clone(catalog);
            let spec = QuerySpec::new(format!("c{client}r{round}q{qn}")).with_estimate(estimate);
            let outcome = svc.run_blocking(spec, move |ctx| {
                run_governed(&query(qn), &cat, &EngineConfig::serial(), ctx).map(|(rel, _)| rel)
            });
            match outcome {
                Ok(rel) => {
                    assert_eq!(
                        rel, baselines[qi],
                        "Q{qn} (client {client}, round {round}): completed answer \
                         must be bit-exact vs the serial unconstrained run"
                    );
                    tally.completed += 1;
                }
                Err(ServiceError::Overloaded { queue_depth, retry_after_hint_s }) => {
                    // A real client would back off `retry_after_hint_s`; the
                    // closed loop just records the shed and moves on.
                    assert!(queue_depth >= QUEUE_DEPTH, "shed below the configured depth");
                    assert!(retry_after_hint_s > 0.0, "hint must be actionable");
                    tally.shed += 1;
                }
                Err(ServiceError::Engine(EngineError::ResourceExhausted { .. })) => {
                    tally.exhausted += 1;
                }
                Err(ServiceError::Engine(EngineError::Cancelled)) => tally.cancelled += 1,
                Err(e) => panic!("Q{qn} (client {client}): outcome outside the terminal set: {e}"),
            }
        }
    }
    tally
}

/// Runs one ladder level; returns (tally, retries, mean latency seconds,
/// elapsed wall seconds, metrics render).
fn run_level(
    clients: usize,
    catalog: &std::sync::Arc<wimpi_storage::Catalog>,
    qns: &[usize],
    baselines: &[Relation],
    node_budget: u64,
    estimate: u64,
) -> (Tally, u64, f64, f64, String) {
    let svc = Service::new(ServiceConfig {
        node_budget,
        workers: WORKERS,
        queue_depth: QUEUE_DEPTH,
        small_cutoff: estimate, // declared estimates queue as "small"
        ..ServiceConfig::default()
    });
    let started = Instant::now();
    let stop = AtomicBool::new(false);
    let mut tally = Tally::default();
    std::thread::scope(|s| {
        let svc = &svc;
        let stop = &stop;
        // Live oversubscription sampler: races admissions on purpose.
        let sampler = s.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                assert!(
                    svc.node_used() <= node_budget,
                    "oversubscribed mid-flight: {} > {}",
                    svc.node_used(),
                    node_budget
                );
                std::thread::yield_now();
            }
        });
        let handles: Vec<_> = (0..clients)
            .map(|c| s.spawn(move || run_client(svc, catalog, qns, baselines, estimate, c)))
            .collect();
        for h in handles {
            let t = h.join().expect("client threads must not panic");
            tally.completed += t.completed;
            tally.shed += t.shed;
            tally.exhausted += t.exhausted;
            tally.cancelled += t.cancelled;
        }
        stop.store(true, Ordering::Relaxed);
        sampler.join().expect("sampler must not panic");
    });
    let elapsed = started.elapsed().as_secs_f64();
    svc.shutdown();

    // Contract 1: the shared reservation never oversubscribed.
    assert!(
        svc.node_high_water() <= node_budget,
        "{clients} clients: high water {} exceeds node budget {node_budget}",
        svc.node_high_water()
    );
    assert_eq!(svc.node_used(), 0, "{clients} clients: grants must drain at quiescence");

    // Contract 3: exactly one terminal outcome per submission — the client
    // tally and the service ledger must agree.
    let m = svc.metrics();
    let expected = (clients * ROUNDS * qns.len()) as u64;
    assert_eq!(tally.total(), expected, "{clients} clients: an outcome went missing");
    assert_eq!(m.counter("service_shed_total"), tally.shed);
    assert_eq!(m.counter("service_completed_total"), tally.completed);
    assert_eq!(m.counter("service_exhausted_total"), tally.exhausted);
    assert_eq!(m.counter("service_cancelled_total"), tally.cancelled);
    assert_eq!(
        m.counter("service_submitted_total"),
        expected - tally.shed,
        "accepted = offered - shed"
    );
    assert_eq!(m.counter("service_failed_total"), 0);
    assert_eq!(m.counter("service_panicked_total"), 0);

    let retries = m.counter("service_retries_total");
    let mean_latency = match m.snapshot().into_iter().find(|(n, _)| n == "service_latency_seconds")
    {
        Some((_, wimpi_obs::Metric::Histogram(h))) if h.count > 0 => h.sum / h.count as f64,
        _ => 0.0,
    };
    (tally, retries, mean_latency, elapsed, m.render())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args = Args::parse_with(Args { sf: 0.01, ..Args::default() });
    let catalog =
        std::sync::Arc::new(Generator::new(args.sf).generate_catalog().expect("catalog generates"));
    if smoke {
        run_smoke(&catalog);
        return;
    }

    let qns: Vec<usize> =
        if args.queries.is_empty() { CHOKEPOINT_QUERIES.to_vec() } else { args.queries.clone() };

    // Serial unconstrained baselines — the bit-exactness referee — and the
    // measured peaks that size the node budget.
    let cfg = EngineConfig::serial();
    let mut baselines = Vec::new();
    let mut max_peak = 0u64;
    for &qn in &qns {
        let ctx = QueryContext::new();
        let (rel, _) = run_governed(&query(qn), &catalog, &cfg, &ctx)
            .unwrap_or_else(|e| panic!("Q{qn} baseline: {e}"));
        max_peak = max_peak.max(ctx.high_water());
        baselines.push(rel);
    }
    // Big enough that any single query fits at full budget (so the one
    // budget retry can always succeed), small enough that concurrent grants
    // contend. Estimates are deliberately tight: most queries Grace-degrade
    // under their grant, and the heaviest exhaust and take the retry.
    // Grace fan-out caps at ~1024 partitions, so a grant below roughly
    // peak/1024 exhausts even after degradation — dividing by 2048 puts the
    // heaviest queries past that edge and onto the retry path.
    let node_budget = max_peak.max(1);
    let estimate = (max_peak / 2048).max(256);
    status!(
        "overload ladder at SF {} over {qns:?}: node budget {node_budget} B, \
         declared estimate {estimate} B, {WORKERS} workers, queue depth {QUEUE_DEPTH}",
        args.sf
    );

    let mut fig = TextFigure::new(
        format!("Overload ladder (SF {}, node budget {node_budget} B)", args.sf),
        "clients",
    );
    fig.rows = LADDER.iter().map(|c| format!("c={c}")).collect();
    let mut cols: Vec<(&str, Vec<Option<f64>>)> = [
        ("completed", vec![]),
        ("shed", vec![]),
        ("exhausted", vec![]),
        ("retries", vec![]),
        ("mean_latency_s", vec![]),
        ("throughput_qps", vec![]),
    ]
    .into();
    let mut metrics_text = String::new();
    for clients in LADDER {
        let (tally, retries, mean_latency, elapsed, render) =
            run_level(clients, &catalog, &qns, &baselines, node_budget, estimate);
        status!(
            "c={clients}: {} completed, {} shed, {} exhausted, {retries} retries, \
             mean latency {mean_latency:.4}s",
            tally.completed,
            tally.shed,
            tally.exhausted
        );
        for (name, col) in cols.iter_mut() {
            col.push(Some(match *name {
                "completed" => tally.completed as f64,
                "shed" => tally.shed as f64,
                "exhausted" => tally.exhausted as f64,
                "retries" => retries as f64,
                "mean_latency_s" => mean_latency,
                _ => tally.completed as f64 / elapsed.max(1e-9),
            }));
        }
        metrics_text.push_str(&format!("=== {clients} client(s) ===\n{render}\n"));
    }
    for (name, col) in cols {
        fig.push_series(Series { name: name.to_string(), values: col });
    }
    wimpi_bench::emit(&args, "overload", &[fig]);
    wimpi_bench::write_artifact(&args.out, "overload_metrics.txt", &metrics_text);
}

/// CI smoke: the three contracts on a small burst, plus a deterministic
/// full-queue shed.
fn run_smoke(catalog: &std::sync::Arc<wimpi_storage::Catalog>) {
    let cfg = EngineConfig::serial();
    let qns = [1usize, 6];
    let mut baselines = Vec::new();
    let mut max_peak = 0u64;
    for &qn in &qns {
        let ctx = QueryContext::new();
        let (rel, _) = run_governed(&query(qn), catalog, &cfg, &ctx).expect("smoke baseline runs");
        max_peak = max_peak.max(ctx.high_water());
        baselines.push(rel);
    }
    let node_budget = max_peak.max(1);
    let (tally, _, _, _, _) =
        run_level(2, catalog, &qns, &baselines, node_budget, (max_peak / 64).max(512));
    assert!(tally.completed > 0, "smoke must complete some queries");

    // Deterministic shed: one worker pinned by queue + tiny depth.
    let svc = Service::new(ServiceConfig {
        node_budget,
        workers: 1,
        queue_depth: 1,
        ..ServiceConfig::default()
    });
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let gate_rx = std::sync::Mutex::new(gate_rx);
    let busy = svc
        .submit(QuerySpec::new("busy"), move |_| {
            let _ = gate_rx.lock().unwrap().recv();
            Ok(0u64)
        })
        .expect("admits");
    while svc.in_flight() == 0 {
        std::thread::yield_now();
    }
    let queued = svc.submit(QuerySpec::new("waits"), |_| Ok(0u64)).expect("queues");
    match svc.submit(QuerySpec::new("shed"), |_| Ok(0u64)) {
        Err(ServiceError::Overloaded { .. }) => {}
        Ok(_) => panic!("full queue must shed"),
        Err(e) => panic!("expected Overloaded, got {e}"),
    }
    drop(gate_tx);
    busy.wait().expect("gated job finishes");
    queued.wait().expect("queued job runs");
    svc.shutdown();
    assert_eq!(svc.metrics().counter("service_shed_total"), 1);
    assert_eq!(svc.node_used(), 0);
    status!("overload smoke passed");
    println!("overload smoke: OK");
}
