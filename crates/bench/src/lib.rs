//! # wimpi-bench
//!
//! Shared harness for the experiment-regenerator binaries (`table1`, `fig2`,
//! `table2`, `table3`, `fig3`–`fig7`, `all`). Each binary prints the paper's
//! table/figure as aligned text and writes both `.txt` and `.json` artifacts
//! under `results/`.
//!
//! Flags (also readable from environment variables):
//!
//! * `--sf <f64>` / `WIMPI_SF` — scale factor executed on the host
//!   (default 0.2; work profiles are extrapolated to the paper's SF 1/10,
//!   see DESIGN.md §4).
//! * `--out <dir>` / `WIMPI_OUT` — artifact directory (default `results`).
//! * `--sizes a,b,c` — cluster sizes for Table III (default the paper's
//!   4,8,12,16,20,24).

use std::fs;
use std::path::{Path, PathBuf};

use wimpi_analysis::TextFigure;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Host-measured scale factor.
    pub sf: f64,
    /// Output directory for artifacts.
    pub out: PathBuf,
    /// Cluster sizes for distributed experiments.
    pub sizes: Vec<u32>,
}

impl Default for Args {
    fn default() -> Self {
        Self { sf: 0.2, out: PathBuf::from("results"), sizes: vec![4, 8, 12, 16, 20, 24] }
    }
}

impl Args {
    /// Parses `std::env` (args override environment variables).
    pub fn parse() -> Self {
        Self::parse_with(Args::default())
    }

    /// Parses `std::env` on top of custom defaults — for binaries whose
    /// natural scale differs from the harness default (e.g. `scaling` runs
    /// at SF 1, the paper's single-node scale).
    pub fn parse_with(base: Args) -> Self {
        let mut out = base;
        if let Ok(v) = std::env::var("WIMPI_SF") {
            if let Ok(sf) = v.parse() {
                out.sf = sf;
            }
        }
        if let Ok(v) = std::env::var("WIMPI_OUT") {
            out.out = PathBuf::from(v);
        }
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--sf" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        out.sf = v;
                    }
                    i += 2;
                }
                "--out" => {
                    if let Some(v) = argv.get(i + 1) {
                        out.out = PathBuf::from(v);
                    }
                    i += 2;
                }
                "--sizes" => {
                    if let Some(v) = argv.get(i + 1) {
                        let parsed: Vec<u32> =
                            v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                        if !parsed.is_empty() {
                            out.sizes = parsed;
                        }
                    }
                    i += 2;
                }
                other => {
                    eprintln!("ignoring unknown flag {other}");
                    i += 1;
                }
            }
        }
        assert!(out.sf > 0.0, "--sf must be positive");
        out
    }
}

/// Prints a figure and writes its `.txt`/`.json` artifacts.
pub fn emit(args: &Args, slug: &str, figures: &[TextFigure]) {
    let mut text = String::new();
    let mut json = String::from("[");
    for (i, f) in figures.iter().enumerate() {
        text.push_str(&f.render());
        text.push('\n');
        if i > 0 {
            json.push(',');
        }
        json.push_str(&f.to_json());
    }
    json.push(']');
    print!("{text}");
    write_artifact(&args.out, &format!("{slug}.txt"), &text);
    write_artifact(&args.out, &format!("{slug}.json"), &json);
}

/// Writes one artifact file, creating the directory if needed.
pub fn write_artifact(dir: &Path, name: &str, contents: &str) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_sweep() {
        let a = Args::default();
        assert_eq!(a.sizes, vec![4, 8, 12, 16, 20, 24]);
        assert!(a.sf > 0.0);
    }

    #[test]
    fn emit_writes_artifacts() {
        let dir = std::env::temp_dir().join("wimpi-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = Args { out: dir.clone(), ..Args::default() };
        let mut f = TextFigure::new("T", "r");
        f.rows = vec!["a".into()];
        f.push_series(wimpi_analysis::Series::new("s", vec![1.0]));
        emit(&args, "demo", &[f]);
        assert!(dir.join("demo.txt").exists());
        assert!(dir.join("demo.json").exists());
        let json = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(json.starts_with('[') && json.ends_with(']'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
