//! # wimpi-bench
//!
//! Shared harness for the experiment-regenerator binaries (`table1`, `fig2`,
//! `table2`, `table3`, `fig3`–`fig7`, `all`). Each binary prints the paper's
//! table/figure as aligned text and writes both `.txt` and `.json` artifacts
//! under `results/`.
//!
//! Flags (also readable from environment variables):
//!
//! * `--sf <f64>` / `WIMPI_SF` — scale factor executed on the host
//!   (default 0.2; work profiles are extrapolated to the paper's SF 1/10,
//!   see DESIGN.md §4).
//! * `--out <dir>` / `WIMPI_OUT` — artifact directory (default `results`).
//! * `--sizes a,b,c` — cluster sizes for Table III (default the paper's
//!   4,8,12,16,20,24).
//! * `--trace-json <path>` / `WIMPI_TRACE_JSON` — also write operator-level
//!   trace trees (one JSON document) to `<path>`.
//! * `--queries a,b,c` — restrict trace-aware binaries to these TPC-H
//!   query numbers.
//! * `--check` — validate emitted trace JSON against the schema checker.
//!
//! Status chatter goes through [`wimpi_obs::status`] (stderr, silenced by
//! `WIMPI_QUIET=1`); stdout carries only table/figure data.

use std::fs;
use std::path::{Path, PathBuf};

use wimpi_analysis::TextFigure;
use wimpi_obs::status;

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Host-measured scale factor.
    pub sf: f64,
    /// Output directory for artifacts.
    pub out: PathBuf,
    /// Cluster sizes for distributed experiments.
    pub sizes: Vec<u32>,
    /// Where to write operator-level trace JSON (`None` = tracing off).
    pub trace_json: Option<PathBuf>,
    /// TPC-H query numbers for trace-aware binaries (empty = binary default).
    pub queries: Vec<usize>,
    /// Validate emitted trace JSON against the schema checker.
    pub check: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            sf: 0.2,
            out: PathBuf::from("results"),
            sizes: vec![4, 8, 12, 16, 20, 24],
            trace_json: None,
            queries: Vec::new(),
            check: false,
        }
    }
}

impl Args {
    /// Parses `std::env` (args override environment variables).
    pub fn parse() -> Self {
        Self::parse_with(Args::default())
    }

    /// Parses `std::env` on top of custom defaults — for binaries whose
    /// natural scale differs from the harness default (e.g. `scaling` runs
    /// at SF 1, the paper's single-node scale).
    pub fn parse_with(base: Args) -> Self {
        let mut out = base;
        if let Ok(v) = std::env::var("WIMPI_SF") {
            if let Ok(sf) = v.parse() {
                out.sf = sf;
            }
        }
        if let Ok(v) = std::env::var("WIMPI_OUT") {
            out.out = PathBuf::from(v);
        }
        if let Ok(v) = std::env::var("WIMPI_TRACE_JSON") {
            if !v.is_empty() {
                out.trace_json = Some(PathBuf::from(v));
            }
        }
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--sf" => {
                    if let Some(v) = argv.get(i + 1).and_then(|s| s.parse().ok()) {
                        out.sf = v;
                    }
                    i += 2;
                }
                "--out" => {
                    if let Some(v) = argv.get(i + 1) {
                        out.out = PathBuf::from(v);
                    }
                    i += 2;
                }
                "--sizes" => {
                    if let Some(v) = argv.get(i + 1) {
                        let parsed: Vec<u32> =
                            v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                        if !parsed.is_empty() {
                            out.sizes = parsed;
                        }
                    }
                    i += 2;
                }
                "--trace-json" => {
                    if let Some(v) = argv.get(i + 1) {
                        out.trace_json = Some(PathBuf::from(v));
                    }
                    i += 2;
                }
                "--queries" => {
                    if let Some(v) = argv.get(i + 1) {
                        out.queries = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                    }
                    i += 2;
                }
                "--check" => {
                    out.check = true;
                    i += 1;
                }
                other => {
                    status!("ignoring unknown flag {other}");
                    i += 1;
                }
            }
        }
        assert!(out.sf > 0.0, "--sf must be positive");
        out
    }
}

/// Runs `queries` with operator-level tracing and renders one trace-JSON
/// document: `{"sf": …, "queries": [{"query": n, "trace": <span>}, …]}` —
/// the schema `wimpi_core::validate_trace_document` checks.
pub fn trace_document(
    sf: f64,
    queries: &[usize],
    catalog: &wimpi_storage::Catalog,
    cfg: &wimpi_engine::EngineConfig,
) -> String {
    let mut doc = format!("{{\"sf\": {sf}, \"queries\": [");
    for (i, &qn) in queries.iter().enumerate() {
        let (_, _, span) = wimpi_queries::run_traced(&wimpi_queries::query(qn), catalog, cfg)
            .unwrap_or_else(|e| panic!("Q{qn} traces: {e}"));
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(&format!("{{\"query\": {qn}, \"trace\": {}}}", span.to_json()));
    }
    doc.push_str("]}");
    doc
}

/// Prints a figure and writes its `.txt`/`.json` artifacts.
pub fn emit(args: &Args, slug: &str, figures: &[TextFigure]) {
    let mut text = String::new();
    let mut json = String::from("[");
    for (i, f) in figures.iter().enumerate() {
        text.push_str(&f.render());
        text.push('\n');
        if i > 0 {
            json.push(',');
        }
        json.push_str(&f.to_json());
    }
    json.push(']');
    print!("{text}");
    write_artifact(&args.out, &format!("{slug}.txt"), &text);
    write_artifact(&args.out, &format!("{slug}.json"), &json);
}

/// Writes one artifact file, creating the directory if needed.
pub fn write_artifact(dir: &Path, name: &str, contents: &str) {
    if let Err(e) = fs::create_dir_all(dir) {
        status!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::write(&path, contents) {
        Ok(()) => status!("wrote {}", path.display()),
        Err(e) => status!("cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_sweep() {
        let a = Args::default();
        assert_eq!(a.sizes, vec![4, 8, 12, 16, 20, 24]);
        assert!(a.sf > 0.0);
    }

    #[test]
    fn emit_writes_artifacts() {
        let dir = std::env::temp_dir().join("wimpi-bench-test");
        let _ = std::fs::remove_dir_all(&dir);
        let args = Args { out: dir.clone(), ..Args::default() };
        let mut f = TextFigure::new("T", "r");
        f.rows = vec!["a".into()];
        f.push_series(wimpi_analysis::Series::new("s", vec![1.0]));
        emit(&args, "demo", &[f]);
        assert!(dir.join("demo.txt").exists());
        assert!(dir.join("demo.json").exists());
        let json = std::fs::read_to_string(dir.join("demo.json")).unwrap();
        assert!(json.starts_with('[') && json.ends_with(']'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
