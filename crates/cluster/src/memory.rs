//! Per-node memory model: 1 GB, swap off, mmap-backed base columns.
//!
//! The paper's §III-C4: node failures "almost always resulted from virtual
//! memory thrashing"; disabling swap turned crashes into isolated
//! out-of-memory errors, while MonetDB's memory-mapped base columns simply
//! re-read from the microSD card when the working set exceeded RAM — the
//! source of the catastrophic small-cluster SF 10 runtimes (57–104 s) that
//! vanish once enough nodes join.

use wimpi_engine::WorkProfile;

/// A measured per-query memory peak from the engine's resource governor,
/// split the same way the model splits demand: `hard_bytes` is the peak of
/// reserved operator scratch (anonymous allocations that hard-OOM a swap-off
/// node), `transient_bytes` the combined peak including tracked materialized
/// intermediates (which only add mmap pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeasuredPeak {
    /// Reservation-only (anonymous scratch) high-water mark, bytes.
    pub hard_bytes: u64,
    /// Combined high-water mark (scratch + intermediates), bytes.
    pub transient_bytes: u64,
}

/// Memory model parameters for one node.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    /// Physical memory, bytes.
    pub mem_bytes: u64,
    /// Bytes reserved by the OS and DBMS runtime.
    pub os_reserve_bytes: u64,
    /// microSD sustained read bandwidth, bytes/s (the thrash path).
    pub sd_read_bps: f64,
}

impl MemoryModel {
    /// The WIMPI node: 1 GB RAM, ~256 MB reserved by the OS and the DBMS
    /// runtime, ~80 MB/s microSD.
    pub fn wimpi_node() -> Self {
        Self {
            mem_bytes: 1 << 30,
            os_reserve_bytes: 256 << 20,
            sd_read_bps: wimpi_hwsim::profiles::wimpi::SDCARD_MBPS * 1e6,
        }
    }

    /// Memory usable by the query.
    pub fn available(&self) -> u64 {
        self.mem_bytes.saturating_sub(self.os_reserve_bytes)
    }

    /// Peak transient memory a run needs beyond the base columns: hash
    /// tables (anonymous, hard allocations) plus a fraction of the
    /// materialized intermediates that are live at once. MonetDB
    /// memory-maps intermediates, so only the hash tables can hard-OOM;
    /// intermediates add *pressure* and thrash instead.
    pub fn transient_bytes(work: &WorkProfile) -> u64 {
        work.hash_bytes + work.seq_write_bytes / 3
    }

    /// Outcome of the model for one node-query execution.
    ///
    /// * `Err(needed)` — hash-table allocations alone exceed memory: with
    ///   swap off this is a hard OOM (the paper's isolated errors).
    /// * `Ok(penalty_s)` — extra seconds spent re-reading mmap-backed data
    ///   from the microSD card (0.0 when everything fits).
    pub fn evaluate(&self, base_bytes: u64, work: &WorkProfile) -> Result<f64, u64> {
        self.evaluate_measured(base_bytes, work, None)
    }

    /// [`evaluate`](Self::evaluate) with an optional [`MeasuredPeak`] from
    /// the engine's resource governor. When present, the measured
    /// reservation peak replaces the modeled `hash_bytes` for the hard-OOM
    /// check and the measured combined peak replaces the modeled
    /// `hash_bytes + seq_write_bytes/3` pressure — ground truth beats the
    /// estimate. With `None` this is bit-identical to `evaluate`, which is
    /// what keeps the model-only tables pinned.
    pub fn evaluate_measured(
        &self,
        base_bytes: u64,
        work: &WorkProfile,
        measured: Option<MeasuredPeak>,
    ) -> Result<f64, u64> {
        let avail = self.available();
        let hard = measured.map_or(work.hash_bytes, |m| m.hard_bytes);
        if hard > avail {
            return Err(hard);
        }
        let transient = measured.map_or_else(|| Self::transient_bytes(work), |m| m.transient_bytes);
        let pressure = base_bytes + transient;
        if pressure <= avail {
            return Ok(0.0);
        }
        // The excess fraction of the mmap-backed working set cannot stay
        // resident; that share of the streamed traffic comes from the card
        // instead of DRAM — and under pressure each page is evicted and
        // re-faulted several times across a query's materializing operators
        // (the eviction-storm behaviour behind the paper's 47–104 s
        // four-node runtimes).
        const REFAULT_FACTOR: f64 = 4.0;
        let excess = (pressure - avail) as f64;
        let miss_frac = (excess / pressure as f64).min(1.0);
        Ok((work.seq_read_bytes + work.seq_write_bytes) as f64 * miss_frac * REFAULT_FACTOR
            / self.sd_read_bps)
    }

    /// Seconds to pull `bytes` of freshly (re)generated base columns through
    /// the microSD card — the storage leg of regenerating a lost lineitem
    /// partition on a survivor (mmap-backed columns must be persisted before
    /// they are queryable, and the card is symmetric enough at this class
    /// that one bandwidth figure covers both directions).
    pub fn reload_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.sd_read_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(hash: u64, writes: u64, reads: u64) -> WorkProfile {
        WorkProfile {
            hash_bytes: hash,
            seq_write_bytes: writes,
            seq_read_bytes: reads,
            ..Default::default()
        }
    }

    #[test]
    fn fits_in_memory_no_penalty() {
        let m = MemoryModel::wimpi_node();
        assert_eq!(m.evaluate(100 << 20, &work(1 << 20, 30 << 20, 500 << 20)), Ok(0.0));
    }

    #[test]
    fn oversized_base_pays_sd_penalty() {
        let m = MemoryModel::wimpi_node();
        // 1.5 GB of base columns on a 0.875 GB budget: heavy thrash.
        let penalty =
            m.evaluate(1_500 << 20, &work(1 << 20, 0, 2_000 << 20)).expect("thrash, not OOM");
        assert!(penalty > 5.0, "expected tens of seconds of SD rereads, got {penalty}");
    }

    #[test]
    fn anonymous_overflow_is_oom() {
        let m = MemoryModel::wimpi_node();
        let result = m.evaluate(0, &work(2 << 30, 0, 0));
        assert!(matches!(result, Err(needed) if needed >= (2 << 30)));
    }

    #[test]
    fn penalty_shrinks_with_base_size() {
        // The paper's jump: halving the partition (adding nodes) collapses
        // the penalty non-linearly, then to zero.
        let m = MemoryModel::wimpi_node();
        let p4 = m.evaluate(1_600 << 20, &work(0, 0, 2_000 << 20)).unwrap();
        let p8 = m.evaluate(800 << 20, &work(0, 0, 1_000 << 20)).unwrap();
        let p16 = m.evaluate(400 << 20, &work(0, 0, 500 << 20)).unwrap();
        assert!(p4 > 4.0 * p8.max(0.01), "4-node thrash dwarfs 8-node: {p4} vs {p8}");
        assert_eq!(p16, 0.0, "16-node partitions fit");
    }

    #[test]
    fn measured_peak_overrides_the_model() {
        let m = MemoryModel::wimpi_node();
        let w = work(2 << 30, 100 << 20, 500 << 20);
        // The model alone says hard OOM (2 GB of hash tables) …
        assert!(m.evaluate(0, &w).is_err());
        // … but a measured Grace-degraded run that reserved only 64 MB of
        // scratch fits, whatever the estimate claimed.
        let measured = MeasuredPeak { hard_bytes: 64 << 20, transient_bytes: 128 << 20 };
        assert_eq!(m.evaluate_measured(0, &w, Some(measured)), Ok(0.0));
        // And conversely: a measured reservation peak above available memory
        // is an OOM even when the model sees harmless hash sizes.
        let small = work(1 << 20, 0, 0);
        let over = MeasuredPeak { hard_bytes: 1 << 30, transient_bytes: 1 << 30 };
        assert!(matches!(m.evaluate_measured(0, &small, Some(over)), Err(n) if n == 1 << 30));
    }

    #[test]
    fn no_measurement_is_bit_identical_to_the_model() {
        let m = MemoryModel::wimpi_node();
        for (base, w) in [
            (100u64 << 20, work(1 << 20, 30 << 20, 500 << 20)),
            (1_500 << 20, work(1 << 20, 0, 2_000 << 20)),
            (1_600 << 20, work(0, 0, 2_000 << 20)),
        ] {
            assert_eq!(m.evaluate(base, &w), m.evaluate_measured(base, &w, None));
        }
    }

    #[test]
    fn available_subtracts_reserve() {
        let m = MemoryModel::wimpi_node();
        assert_eq!(m.available(), (1 << 30) - (256 << 20));
    }
}
