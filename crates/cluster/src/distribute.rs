//! The distributed-query rewrite: the paper's driver program.
//!
//! The paper abandoned MonetDB's built-in distributed mode (it shipped large
//! intermediates to one node and "ground the entire cluster to a halt",
//! §III-C3) and instead ran the *full* query on every node's partition,
//! aggregating partial results on the driver. This module reproduces that
//! rewrite generically: the plan's top aggregate is decomposed into
//! mergeable partials (avg → sum+count), every node runs the plan up to and
//! including the partial aggregate, and the driver re-aggregates, finalizes,
//! and applies the trailing sort/limit/having.
//!
//! [`Strategy::ShipRows`] is the ablation baseline reproducing the MonetDB
//! anecdote: nodes ship pre-aggregation rows and the driver does all the
//! aggregation.

use wimpi_engine::expr::{col, Expr};
use wimpi_engine::plan::{AggExpr, AggFunc, LogicalPlan, PlanBuilder};
use wimpi_engine::{EngineError, Result};

/// Name of the concatenated-partials table the merge plan scans.
pub const PARTIALS_TABLE: &str = "__partials";

/// How partial results travel to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Push the (decomposed) aggregate down to every node; ship tiny
    /// partial-aggregate tables. The paper's driver.
    PartialAggPushdown,
    /// Ship pre-aggregation rows to the driver and aggregate there — the
    /// MonetDB built-in behaviour the paper describes melting the cluster.
    ShipRows,
}

/// A distributed execution recipe.
#[derive(Debug, Clone)]
pub struct Distributed {
    /// The plan every node runs over its partition.
    pub node_plan: LogicalPlan,
    /// The driver plan over [`PARTIALS_TABLE`].
    pub merge_plan: LogicalPlan,
}

/// Trailing operators above the top aggregate, outermost first.
enum Trailing {
    Sort(Vec<wimpi_engine::plan::SortKey>),
    Limit(usize),
    Project(Vec<(Expr, String)>),
    Filter(Expr),
}

/// Rewrites `plan` for distributed execution, or explains why it can't be.
pub fn distribute(plan: &LogicalPlan, strategy: Strategy) -> Result<Distributed> {
    // Peel trailing operators down to the top aggregate.
    let mut trailing: Vec<Trailing> = Vec::new();
    let mut cur = plan;
    let (input, group_by, aggs) = loop {
        match cur {
            LogicalPlan::Sort { input, keys } => {
                trailing.push(Trailing::Sort(keys.clone()));
                cur = input;
            }
            LogicalPlan::Limit { input, n } => {
                trailing.push(Trailing::Limit(*n));
                cur = input;
            }
            LogicalPlan::Project { input, exprs } => {
                trailing.push(Trailing::Project(exprs.clone()));
                cur = input;
            }
            LogicalPlan::Filter { input, predicate } => {
                trailing.push(Trailing::Filter(predicate.clone()));
                cur = input;
            }
            LogicalPlan::Aggregate { input, group_by, aggs } => {
                break (input, group_by, aggs);
            }
            other => {
                // Name just the offending operator — a full plan Debug dump
                // buries the actual problem under pages of nested exprs.
                let top = other.explain();
                let top = top.lines().next().unwrap_or("?").trim();
                return Err(EngineError::Unsupported(format!(
                    "distributed rewrite needs a top-level aggregate, found `{top}` \
                     over tables [{}]",
                    other.tables().join(", ")
                )));
            }
        }
    };
    for a in aggs {
        if a.func == AggFunc::CountDistinct {
            return Err(EngineError::Unsupported(
                "count(distinct) cannot be merged from partials".to_string(),
            ));
        }
    }

    let (node_plan, merge_core) = match strategy {
        Strategy::PartialAggPushdown => {
            // Decompose aggregates into mergeable partials.
            let mut partial_aggs = Vec::new();
            let mut merge_aggs = Vec::new();
            let mut finalize: Vec<(Expr, String)> =
                group_by.iter().map(|(_, n)| (col(n.clone()), n.clone())).collect();
            for a in aggs {
                match a.func {
                    AggFunc::Sum => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::sum(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::CountStar | AggFunc::CountIf => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::sum(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::Min => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::min(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::Max => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::max(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::Avg => {
                        let sum_name = format!("__{}_sum", a.name);
                        let cnt_name = format!("__{}_cnt", a.name);
                        let e = a.expr.clone().expect("avg has an input");
                        partial_aggs.push(AggExpr::sum(e, &sum_name));
                        partial_aggs.push(AggExpr::count_star(&cnt_name));
                        merge_aggs.push(AggExpr::sum(col(&sum_name), &sum_name));
                        merge_aggs.push(AggExpr::sum(col(&cnt_name), &cnt_name));
                        finalize.push((col(&sum_name).div(col(&cnt_name)), a.name.clone()));
                    }
                    AggFunc::CountDistinct => unreachable!("rejected above"),
                }
            }
            let node_plan = LogicalPlan::Aggregate {
                input: input.clone(),
                group_by: group_by.clone(),
                aggs: partial_aggs,
            };
            let merge = PlanBuilder::scan(PARTIALS_TABLE)
                .aggregate(
                    group_by.iter().map(|(_, n)| (col(n.clone()), n.as_str())).collect(),
                    merge_aggs,
                )
                .project(finalize.iter().map(|(e, n)| (e.clone(), n.as_str())).collect())
                .build();
            (node_plan, merge)
        }
        Strategy::ShipRows => {
            // Nodes ship raw pre-aggregation rows; driver aggregates.
            let node_plan = (**input).clone();
            let merge = LogicalPlan::Aggregate {
                input: Box::new(LogicalPlan::Scan {
                    table: PARTIALS_TABLE.to_string(),
                    projection: None,
                }),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            };
            (node_plan, merge)
        }
    };

    // Re-apply trailing operators (innermost were pushed last).
    let mut merge_plan = merge_core;
    for t in trailing.into_iter().rev() {
        merge_plan = match t {
            Trailing::Sort(keys) => LogicalPlan::Sort { input: Box::new(merge_plan), keys },
            Trailing::Limit(n) => LogicalPlan::Limit { input: Box::new(merge_plan), n },
            Trailing::Project(exprs) => LogicalPlan::Project { input: Box::new(merge_plan), exprs },
            Trailing::Filter(predicate) => {
                LogicalPlan::Filter { input: Box::new(merge_plan), predicate }
            }
        };
    }
    Ok(Distributed { node_plan, merge_plan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimpi_engine::expr::lit;
    use wimpi_engine::plan::SortKey;

    fn sample_plan() -> LogicalPlan {
        PlanBuilder::scan("lineitem")
            .filter(col("l_quantity").lt(lit(24i64)))
            .aggregate(
                vec![(col("l_returnflag"), "flag")],
                vec![
                    AggExpr::sum(col("l_extendedprice"), "s"),
                    AggExpr::avg(col("l_discount"), "a"),
                    AggExpr::count_star("n"),
                ],
            )
            .sort(vec![SortKey::asc("flag")])
            .limit(5)
            .build()
    }

    #[test]
    fn pushdown_decomposes_avg() {
        let d = distribute(&sample_plan(), Strategy::PartialAggPushdown).unwrap();
        let node = d.node_plan.explain();
        assert!(node.contains("__a_sum"), "avg must decompose into sum:\n{node}");
        assert!(node.contains("__a_cnt"), "avg must decompose into count:\n{node}");
        let merge = d.merge_plan.explain();
        assert!(merge.contains("Scan __partials"));
        assert!(merge.contains("Limit 5"), "trailing limit survives:\n{merge}");
        assert!(merge.contains("Sort flag"), "trailing sort survives:\n{merge}");
    }

    #[test]
    fn ship_rows_keeps_aggregate_on_driver() {
        let d = distribute(&sample_plan(), Strategy::ShipRows).unwrap();
        assert!(!d.node_plan.explain().contains("Aggregate"), "ship-rows nodes must not aggregate");
        assert!(d.merge_plan.explain().contains("Aggregate"));
    }

    #[test]
    fn rejects_plans_without_top_aggregate() {
        let p = PlanBuilder::scan("lineitem").filter(col("l_quantity").lt(lit(1i64))).build();
        assert!(matches!(
            distribute(&p, Strategy::PartialAggPushdown),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_count_distinct() {
        let p = PlanBuilder::scan("lineitem")
            .aggregate(vec![], vec![AggExpr::count_distinct(col("l_suppkey"), "d")])
            .build();
        assert!(distribute(&p, Strategy::PartialAggPushdown).is_err());
    }
}
