//! The distributed-query rewrite: the paper's driver program.
//!
//! The paper abandoned MonetDB's built-in distributed mode (it shipped large
//! intermediates to one node and "ground the entire cluster to a halt",
//! §III-C3) and instead ran the *full* query on every node's partition,
//! aggregating partial results on the driver. This module reproduces that
//! rewrite generically: the plan's top aggregate is decomposed into
//! mergeable partials (avg → sum+count), every node runs the plan up to and
//! including the partial aggregate, and the driver re-aggregates, finalizes,
//! and applies the trailing sort/limit/having.
//!
//! [`Strategy::ShipRows`] is the ablation baseline reproducing the MonetDB
//! anecdote: nodes ship pre-aggregation rows and the driver does all the
//! aggregation.

use wimpi_engine::expr::{col, Expr};
use wimpi_engine::plan::{AggExpr, AggFunc, LogicalPlan, PlanBuilder};
use wimpi_engine::{EngineError, Result};

/// Name of the concatenated-partials table the merge plan scans.
pub const PARTIALS_TABLE: &str = "__partials";

/// How partial results travel to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Push the (decomposed) aggregate down to every node; ship tiny
    /// partial-aggregate tables. The paper's driver.
    PartialAggPushdown,
    /// Ship pre-aggregation rows to the driver and aggregate there — the
    /// MonetDB built-in behaviour the paper describes melting the cluster.
    ShipRows,
}

/// A distributed execution recipe.
#[derive(Debug, Clone)]
pub struct Distributed {
    /// The plan every node runs over its partition.
    pub node_plan: LogicalPlan,
    /// The driver plan over [`PARTIALS_TABLE`].
    pub merge_plan: LogicalPlan,
}

/// The one partitioned table; everything else is replicated on every node.
const PARTITIONED: &str = "lineitem";

fn touches_partitioned(p: &LogicalPlan) -> bool {
    p.tables().iter().any(|t| t == PARTITIONED)
}

/// True when some aggregate in `p`'s subtree covers the partitioned scan —
/// i.e. a decomposition point exists strictly below here.
fn has_aggregate_over_partitioned(p: &LogicalPlan) -> bool {
    if let LogicalPlan::Aggregate { input, .. } = p {
        if touches_partitioned(input) {
            return true;
        }
    }
    p.inputs().iter().any(|i| has_aggregate_over_partitioned(i))
}

/// Rewrites `plan` for distributed execution, or explains why it can't be.
///
/// The decomposition point is the *lowest* aggregate covering the
/// partitioned scan: every node runs the plan up to and including that
/// aggregate (partial form) over its partition, and the driver merges the
/// partials by group key and then runs everything above the decomposition
/// point — outer aggregates (Q15's `max` over per-supplier revenue), joins
/// against replicated tables (Q15's supplier lookup), filters, projections,
/// sorts, limits — over the *complete* merged groups. Merging at the lowest
/// aggregate is what makes nesting sound: a group's partial sums add up to
/// its global sum, after which any driver-side operator sees exactly the
/// rows a single-node run would.
pub fn distribute(plan: &LogicalPlan, strategy: Strategy) -> Result<Distributed> {
    let mut node_plan = None;
    let merge_plan = rewrite(plan, strategy, &mut node_plan)?;
    let Some(node_plan) = node_plan else {
        return Err(EngineError::Unsupported(format!(
            "distributed rewrite found no `{PARTITIONED}` scan to partition \
             over tables [{}]",
            plan.tables().join(", ")
        )));
    };
    Ok(Distributed { node_plan, merge_plan })
}

/// Builds the driver-side plan for `plan`, setting `node_plan` when the
/// recursion reaches the decomposition point.
fn rewrite(
    plan: &LogicalPlan,
    strategy: Strategy,
    node_plan: &mut Option<LogicalPlan>,
) -> Result<LogicalPlan> {
    // Subtrees over replicated tables run on the driver verbatim.
    if !touches_partitioned(plan) {
        return Ok(plan.clone());
    }
    Ok(match plan {
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            if has_aggregate_over_partitioned(input) {
                // A lower aggregate decomposes; this one runs on the driver
                // over complete merged groups.
                LogicalPlan::Aggregate {
                    input: Box::new(rewrite(input, strategy, node_plan)?),
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                }
            } else {
                let (node, merge_core) = decompose(input, group_by, aggs, strategy)?;
                *node_plan = Some(node);
                merge_core
            }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite(input, strategy, node_plan)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite(input, strategy, node_plan)?),
            exprs: exprs.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite(input, strategy, node_plan)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(rewrite(input, strategy, node_plan)?), n: *n }
        }
        LogicalPlan::Join { left, right, on, join_type } => {
            if touches_partitioned(left) && touches_partitioned(right) {
                return Err(EngineError::Unsupported(format!(
                    "both sides of a join touch the partitioned `{PARTITIONED}` table; \
                     the partial-merge rewrite cannot recover cross-partition pairs"
                )));
            }
            let (l, r) = if touches_partitioned(left) {
                (rewrite(left, strategy, node_plan)?, (**right).clone())
            } else {
                ((**left).clone(), rewrite(right, strategy, node_plan)?)
            };
            LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                on: on.clone(),
                join_type: *join_type,
            }
        }
        LogicalPlan::Scan { .. } => {
            return Err(EngineError::Unsupported(format!(
                "distributed rewrite needs an aggregate over the partitioned \
                 `{PARTITIONED}` scan; found a bare partitioned scan \
                 over tables [{}]",
                plan.tables().join(", ")
            )))
        }
    })
}

/// Decomposes the aggregate at the decomposition point into per-node
/// partials and the driver merge over [`PARTIALS_TABLE`].
fn decompose(
    input: &LogicalPlan,
    group_by: &[(Expr, String)],
    aggs: &[AggExpr],
    strategy: Strategy,
) -> Result<(LogicalPlan, LogicalPlan)> {
    for a in aggs {
        if a.func == AggFunc::CountDistinct {
            return Err(EngineError::Unsupported(
                "count(distinct) cannot be merged from partials".to_string(),
            ));
        }
    }

    let (node_plan, merge_core) = match strategy {
        Strategy::PartialAggPushdown => {
            // Decompose aggregates into mergeable partials.
            let mut partial_aggs = Vec::new();
            let mut merge_aggs = Vec::new();
            let mut finalize: Vec<(Expr, String)> =
                group_by.iter().map(|(_, n)| (col(n.clone()), n.clone())).collect();
            for a in aggs {
                match a.func {
                    AggFunc::Sum => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::sum(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::CountStar | AggFunc::CountIf => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::sum(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::Min => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::min(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::Max => {
                        partial_aggs.push(a.clone());
                        merge_aggs.push(AggExpr::max(col(&a.name), &a.name));
                        finalize.push((col(&a.name), a.name.clone()));
                    }
                    AggFunc::Avg => {
                        let sum_name = format!("__{}_sum", a.name);
                        let cnt_name = format!("__{}_cnt", a.name);
                        let e = a.expr.clone().expect("avg has an input");
                        partial_aggs.push(AggExpr::sum(e, &sum_name));
                        partial_aggs.push(AggExpr::count_star(&cnt_name));
                        merge_aggs.push(AggExpr::sum(col(&sum_name), &sum_name));
                        merge_aggs.push(AggExpr::sum(col(&cnt_name), &cnt_name));
                        finalize.push((col(&sum_name).div(col(&cnt_name)), a.name.clone()));
                    }
                    AggFunc::CountDistinct => unreachable!("rejected above"),
                }
            }
            let node_plan = LogicalPlan::Aggregate {
                input: Box::new(input.clone()),
                group_by: group_by.to_vec(),
                aggs: partial_aggs,
            };
            let merge = PlanBuilder::scan(PARTIALS_TABLE)
                .aggregate(
                    group_by.iter().map(|(_, n)| (col(n.clone()), n.as_str())).collect(),
                    merge_aggs,
                )
                .project(finalize.iter().map(|(e, n)| (e.clone(), n.as_str())).collect())
                .build();
            (node_plan, merge)
        }
        Strategy::ShipRows => {
            // Nodes ship raw pre-aggregation rows; driver aggregates.
            let node_plan = input.clone();
            let merge = LogicalPlan::Aggregate {
                input: Box::new(LogicalPlan::Scan {
                    table: PARTIALS_TABLE.to_string(),
                    projection: None,
                }),
                group_by: group_by.to_vec(),
                aggs: aggs.to_vec(),
            };
            (node_plan, merge)
        }
    };
    Ok((node_plan, merge_core))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimpi_engine::expr::lit;
    use wimpi_engine::plan::SortKey;

    fn sample_plan() -> LogicalPlan {
        PlanBuilder::scan("lineitem")
            .filter(col("l_quantity").lt(lit(24i64)))
            .aggregate(
                vec![(col("l_returnflag"), "flag")],
                vec![
                    AggExpr::sum(col("l_extendedprice"), "s"),
                    AggExpr::avg(col("l_discount"), "a"),
                    AggExpr::count_star("n"),
                ],
            )
            .sort(vec![SortKey::asc("flag")])
            .limit(5)
            .build()
    }

    #[test]
    fn pushdown_decomposes_avg() {
        let d = distribute(&sample_plan(), Strategy::PartialAggPushdown).unwrap();
        let node = d.node_plan.explain();
        assert!(node.contains("__a_sum"), "avg must decompose into sum:\n{node}");
        assert!(node.contains("__a_cnt"), "avg must decompose into count:\n{node}");
        let merge = d.merge_plan.explain();
        assert!(merge.contains("Scan __partials"));
        assert!(merge.contains("Limit 5"), "trailing limit survives:\n{merge}");
        assert!(merge.contains("Sort flag"), "trailing sort survives:\n{merge}");
    }

    #[test]
    fn ship_rows_keeps_aggregate_on_driver() {
        let d = distribute(&sample_plan(), Strategy::ShipRows).unwrap();
        assert!(!d.node_plan.explain().contains("Aggregate"), "ship-rows nodes must not aggregate");
        assert!(d.merge_plan.explain().contains("Aggregate"));
    }

    #[test]
    fn rejects_plans_without_top_aggregate() {
        let p = PlanBuilder::scan("lineitem").filter(col("l_quantity").lt(lit(1i64))).build();
        assert!(matches!(
            distribute(&p, Strategy::PartialAggPushdown),
            Err(EngineError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_count_distinct() {
        let p = PlanBuilder::scan("lineitem")
            .aggregate(vec![], vec![AggExpr::count_distinct(col("l_suppkey"), "d")])
            .build();
        assert!(distribute(&p, Strategy::PartialAggPushdown).is_err());
    }
}
