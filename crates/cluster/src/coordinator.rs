//! The failure-aware serving front door (DESIGN.md §15).
//!
//! [`Coordinator`] composes the two robustness layers the repo already has —
//! the single-node admission/queue machinery of `engine::service` (PR 5) and
//! the per-query fault recovery of [`crate::WimpiCluster`] (PR 1/6) — into
//! one serving path that admits *concurrent* client traffic and routes each
//! query's partitions across the simulated nodes using live health state:
//!
//! * **Circuit breakers** — `breaker_threshold` consecutive sub-run failures
//!   open a node's breaker; routing stops attempting its home partition
//!   until `breaker_cooldown_s` simulated seconds pass, after which exactly
//!   one half-open probe (a real home attempt, priced like any other run)
//!   decides between closing the breaker and re-opening it.
//! * **Straggler EWMA + hedging** — every successful sub-run feeds a
//!   per-node EWMA of simulated seconds; a home run slower than
//!   `hedge_multiplier ×` the fleet median gets a duplicate dispatched on
//!   the least-busy healthy node, and whichever copy finishes first wins
//!   while the loser is cancelled cooperatively (its wasted work is
//!   charged, mirroring the cluster's speculation accounting).
//! * **Retry budget** — failed or breaker-blocked sub-runs are rerouted to
//!   survivors with the capped-backoff idiom from [`crate::faults`], at most
//!   `retry_budget` times per query; when the budget is exhausted the query
//!   degrades to a partial answer with a coverage fraction (when
//!   `degraded_ok`) instead of failing.
//! * **Deterministic caching** — a normalized-plan cache (distribute once
//!   per plan shape) and a bounded [`ResultCache`] whose entries are
//!   governor-reserved through [`MemoryReservation`] and invalidated
//!   whenever integrity repair or lost-partition regeneration touches an
//!   underlying table. A cache hit is therefore provably bit-exact vs
//!   recomputation: cached answers are non-degraded, every computed answer
//!   is a deterministic function of (plan, sealed table bytes), and any
//!   event that rewrote table bytes bumps the dependency versions first.
//!
//! The simulated clock that prices breaker cooldowns advances by each
//! completed query's end-to-end seconds. Under concurrent workers the
//! *order* of those advances is scheduling-dependent, so breaker timing may
//! differ run to run — by construction that only moves *routing* decisions,
//! never answers: every route executes the same deterministic partition
//! work.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::distribute::{distribute, Distributed, Strategy, PARTIALS_TABLE};
use crate::faults::{FaultKind, FaultPlan, Reassignment, RecoveryReport};
use crate::{
    concat_relations, least_busy, median_of, relation_to_table, ClusterError, NodeOutcome, Priced,
    Result, WimpiCluster,
};
use wimpi_engine::{
    bind_params_spanning, strip_params, EngineConfig, EngineError, MemoryReservation, QueryContext,
    QuerySpec, Relation, Service, ServiceConfig, ServiceError, Ticket,
};
use wimpi_hwsim::predict;
use wimpi_obs::Registry;
use wimpi_queries::QueryPlan;
use wimpi_storage::{Catalog, Value};

/// Histogram bounds for end-to-end simulated latency (seconds).
pub const LATENCY_BUCKETS: [f64; 9] = [0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0];

/// Serving-path configuration. Defaults are deliberately conservative: two
/// consecutive failures trip a breaker, hedges fire at 2× the fleet median,
/// and the result cache holds 64 MiB of governor-reserved answers.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Partial-shipping strategy for routed queries.
    pub strategy: Strategy,
    /// Admission/queue/worker configuration of the embedded service.
    pub service: ServiceConfig,
    /// Consecutive sub-run failures that open a node's circuit breaker.
    pub breaker_threshold: u32,
    /// Simulated seconds an open breaker blocks routing before the
    /// half-open probe.
    pub breaker_cooldown_s: f64,
    /// A home run slower than this multiple of the fleet-median EWMA gets a
    /// hedged duplicate.
    pub hedge_multiplier: f64,
    /// EWMA smoothing factor for per-node sub-run seconds.
    pub ewma_alpha: f64,
    /// Rerouted sub-run attempts allowed per query.
    pub retry_budget: u32,
    /// Result-cache budget in bytes (0 disables result caching).
    pub result_cache_bytes: u64,
    /// Return partial answers with coverage when a partition is
    /// unrecoverable, instead of failing the query.
    pub degraded_ok: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::PartialAggPushdown,
            service: ServiceConfig::default(),
            breaker_threshold: 2,
            breaker_cooldown_s: 5.0,
            hedge_multiplier: 2.0,
            ewma_alpha: 0.3,
            retry_budget: 3,
            result_cache_bytes: 64 << 20,
            degraded_ok: true,
        }
    }
}

/// One client request: a named query, the fault schedule its run faces, and
/// an optional admission estimate for the service's grant arbitration.
pub struct QueryRequest {
    /// Label used in errors, metrics, and the service queue.
    pub label: String,
    /// The query to serve.
    pub query: QueryPlan,
    /// Faults injected into this run (none by default).
    pub faults: FaultPlan,
    /// Declared scratch estimate for admission (service default if `None`).
    pub estimate: Option<u64>,
}

impl QueryRequest {
    /// A fault-free request.
    pub fn new(label: impl Into<String>, query: QueryPlan) -> Self {
        Self { label: label.into(), query, faults: FaultPlan::none(), estimate: None }
    }

    /// Attaches a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Declares the admission estimate in bytes.
    pub fn with_estimate(mut self, bytes: u64) -> Self {
        self.estimate = Some(bytes);
        self
    }
}

/// A served answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The merged result (partial when `degraded`).
    pub result: Relation,
    /// Fraction of lineitem rows the answer covers (1.0 unless degraded).
    pub coverage: f64,
    /// True when recovery was exhausted and the answer is partial.
    pub degraded: bool,
    /// True when the answer came from the result cache without execution.
    pub from_cache: bool,
    /// End-to-end simulated seconds (0.0 for a cache hit).
    pub sim_seconds: f64,
    /// Hedged duplicates this query dispatched.
    pub hedges: u32,
    /// Rerouted sub-run attempts this query spent.
    pub retries: u32,
    /// Fault-recovery bookkeeping for the run.
    pub recovery: RecoveryReport,
}

/// What [`Coordinator::submit`] returns: either an immediate cache hit or a
/// queued ticket.
pub enum Submitted {
    /// Served from the result cache before admission.
    Cached(Answer),
    /// Admitted to the service; resolve with [`Submitted::wait`].
    Queued(Ticket<Answer>),
}

impl Submitted {
    /// Blocks until the answer is available.
    pub fn wait(self) -> std::result::Result<Answer, ServiceError> {
        match self {
            Submitted::Cached(a) => Ok(a),
            Submitted::Queued(t) => t.wait(),
        }
    }
}

/// Circuit-breaker state for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Breaker {
    /// Healthy: home partitions route here.
    Closed,
    /// Tripped: blocked until the simulated clock reaches `until_s`.
    Open { until_s: f64 },
    /// One probe is in flight; its outcome decides the next state.
    HalfOpen,
}

/// Live health record for one node.
#[derive(Debug, Clone, Copy)]
struct NodeHealth {
    consecutive_failures: u32,
    breaker: Breaker,
    /// EWMA of successful sub-run seconds (`None` until the first success).
    ewma_s: Option<f64>,
    trips: u64,
}

impl NodeHealth {
    fn new() -> Self {
        Self { consecutive_failures: 0, breaker: Breaker::Closed, ewma_s: None, trips: 0 }
    }
}

/// Shared mutable health state: the simulated clock plus per-node records.
struct HealthState {
    now_s: f64,
    nodes: Vec<NodeHealth>,
}

/// Routing decision for one home partition.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Route {
    /// Breaker closed: attempt the home node.
    Attempt,
    /// Breaker cooled down: attempt as the half-open probe.
    Probe,
    /// Breaker open: skip the home node, reroute immediately.
    Blocked,
}

/// Terminal state of one routed sub-run, tallied into the ledger counters
/// (`coord_subruns_total = ok + failed + cancelled`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Subrun {
    Ok,
    Failed,
    Cancelled,
}

/// The normalized-plan cache: one distributed rewrite per plan shape.
struct PlanCache {
    map: Mutex<HashMap<String, Arc<Distributed>>>,
}

impl PlanCache {
    fn new() -> Self {
        Self { map: Mutex::new(HashMap::new()) }
    }

    fn get_or_build(
        &self,
        key: &str,
        metrics: &Registry,
        build: impl FnOnce() -> Result<Distributed>,
    ) -> Result<Arc<Distributed>> {
        let mut map = self.map.lock().unwrap();
        if let Some(d) = map.get(key) {
            metrics.inc("coord_plan_cache_hits_total", 1);
            return Ok(Arc::clone(d));
        }
        metrics.inc("coord_plan_cache_misses_total", 1);
        let d = Arc::new(build()?);
        map.insert(key.to_string(), Arc::clone(&d));
        Ok(d)
    }
}

/// One cached answer with its memory cost and dependency versions.
struct CacheEntry {
    rel: Relation,
    bytes: u64,
    /// (table, version-at-insert) — a hit requires every version to still
    /// match, so any repair/regeneration event since insert voids the entry.
    deps: Vec<(String, u64)>,
    last_used: u64,
}

struct CacheState {
    entries: HashMap<String, CacheEntry>,
    /// Monotone per-table version, bumped by [`ResultCache::invalidate_tables`].
    versions: HashMap<String, u64>,
    tick: u64,
}

/// A bounded, governor-reserved, deterministically invalidated result cache.
///
/// Entries reserve their byte cost against an internal [`MemoryReservation`]
/// sized by the configured budget; inserts evict least-recently-used entries
/// until the reservation fits, and oversized answers are simply not cached.
/// Invalidation bumps per-table versions and drops every dependent entry —
/// the mechanism that keeps hits bit-exact under active corruption repair.
pub struct ResultCache {
    budget: MemoryReservation,
    state: Mutex<CacheState>,
}

impl ResultCache {
    /// A cache with the given byte budget (0 = caching disabled).
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget: MemoryReservation::with_budget(budget_bytes),
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                versions: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// A version-checked lookup. Counts a hit or a miss on `metrics`.
    pub fn get(&self, key: &str, metrics: &Registry) -> Option<Relation> {
        let mut st = self.state.lock().unwrap();
        st.tick += 1;
        let tick = st.tick;
        let CacheState { entries, versions, .. } = &mut *st;
        let stale = match entries.get_mut(key) {
            Some(e) => {
                let fresh = e.deps.iter().all(|(t, v)| versions.get(t).copied().unwrap_or(0) == *v);
                if fresh {
                    e.last_used = tick;
                    metrics.inc("coord_result_cache_hits_total", 1);
                    return Some(e.rel.clone());
                }
                true
            }
            None => false,
        };
        if stale {
            // Belt-and-braces: invalidate_tables already drops dependents,
            // but a racing insert could have slipped a stale entry back in.
            if let Some(e) = st.entries.remove(key) {
                self.budget.release(e.bytes);
            }
        }
        metrics.inc("coord_result_cache_misses_total", 1);
        None
    }

    /// Inserts (or refreshes) an answer whose correctness depends on
    /// `tables`, evicting LRU entries until the reservation fits. Answers
    /// larger than the whole budget are not cached.
    pub fn insert(&self, key: &str, rel: &Relation, tables: &[String], metrics: &Registry) {
        let bytes = (rel.stream_bytes() as u64).max(1);
        if bytes > self.budget.budget() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if let Some(old) = st.entries.remove(key) {
            self.budget.release(old.bytes);
        }
        while !self.budget.try_reserve(bytes) {
            let Some(lru) =
                st.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                return;
            };
            let e = st.entries.remove(&lru).expect("lru key exists");
            self.budget.release(e.bytes);
            metrics.inc("coord_result_cache_evictions_total", 1);
        }
        st.tick += 1;
        let tick = st.tick;
        let deps =
            tables.iter().map(|t| (t.clone(), st.versions.get(t).copied().unwrap_or(0))).collect();
        st.entries
            .insert(key.to_string(), CacheEntry { rel: rel.clone(), bytes, deps, last_used: tick });
        metrics.set_gauge("coord_result_cache_bytes", self.budget.used() as f64);
    }

    /// Bumps the version of every listed table and drops dependent entries.
    /// Call whenever an event may have rewritten table bytes (integrity
    /// repair, lost-partition regeneration).
    pub fn invalidate_tables(&self, tables: &[String], metrics: &Registry) {
        let mut st = self.state.lock().unwrap();
        for t in tables {
            *st.versions.entry(t.clone()).or_insert(0) += 1;
        }
        let CacheState { entries, versions, .. } = &mut *st;
        let stale: Vec<String> = entries
            .iter()
            .filter(|(_, e)| {
                e.deps.iter().any(|(t, v)| versions.get(t).copied().unwrap_or(0) != *v)
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in stale {
            let e = entries.remove(&k).expect("stale key exists");
            self.budget.release(e.bytes);
            metrics.inc("coord_result_cache_invalidations_total", 1);
        }
        metrics.set_gauge("coord_result_cache_bytes", self.budget.used() as f64);
    }

    /// Bytes currently reserved by cached answers.
    pub fn used_bytes(&self) -> u64 {
        self.budget.used()
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// State shared between the coordinator handle and the service workers.
struct Inner {
    cluster: Arc<WimpiCluster>,
    cfg: CoordinatorConfig,
    health: Mutex<HealthState>,
    plans: PlanCache,
    results: ResultCache,
    metrics: Registry,
}

/// The serving front door. See the module docs for the full model.
pub struct Coordinator {
    inner: Arc<Inner>,
    service: Service,
}

/// The *result*-cache key of a request: the strategy plus the literal plan
/// rendering. Unlike the plan cache (keyed on the parameter-stripped shape),
/// answers depend on the actual parameter values, so the key keeps them.
/// Two-phase answers are not result-cached: the outer plan depends on a
/// phase-1 scalar computed from live table bytes, so a key built from the
/// request alone cannot prove a hit bit-exact.
fn cache_key(strategy: Strategy, query: &QueryPlan) -> Option<String> {
    match query {
        QueryPlan::Single(p) => Some(format!("{strategy:?}\n{}", p.explain())),
        QueryPlan::TwoPhase { .. } => None,
    }
}

/// Folds phase-2 recovery into phase 1's for a two-phase answer: counters
/// add, reassignment lists concatenate, coverage takes the minimum, and the
/// degraded flag ORs.
fn merge_recovery(a: RecoveryReport, b: RecoveryReport) -> RecoveryReport {
    let mut reassignments = a.reassignments;
    reassignments.extend(b.reassignments);
    RecoveryReport {
        retries: a.retries + b.retries,
        speculated: a.speculated + b.speculated,
        reassignments,
        recovery_seconds: a.recovery_seconds + b.recovery_seconds,
        cancelled_work_seconds: a.cancelled_work_seconds + b.cancelled_work_seconds,
        budget_degraded: a.budget_degraded + b.budget_degraded,
        coverage: a.coverage.min(b.coverage),
        degraded: a.degraded || b.degraded,
        integrity_detected: a.integrity_detected + b.integrity_detected,
        integrity_repaired: a.integrity_repaired + b.integrity_repaired,
    }
}

/// Maps a cluster failure onto the engine's typed errors so the service's
/// ledger classifies it correctly (OOM → exhausted, the rest → failed).
fn to_engine(e: ClusterError) -> EngineError {
    match e {
        ClusterError::Engine(e) => e,
        ClusterError::NodeOom { needed, .. } => EngineError::ResourceExhausted {
            requested: needed,
            budget: 0,
            operator: "cluster node".to_string(),
        },
        other => EngineError::Unsupported(other.to_string()),
    }
}

impl Coordinator {
    /// Builds a coordinator over `cluster`, starting `cfg.service.workers`
    /// worker threads.
    pub fn new(cluster: Arc<WimpiCluster>, cfg: CoordinatorConfig) -> Self {
        let nodes = cluster.num_nodes() as usize;
        let service = Service::new(cfg.service.clone());
        let inner = Arc::new(Inner {
            cluster,
            health: Mutex::new(HealthState { now_s: 0.0, nodes: vec![NodeHealth::new(); nodes] }),
            plans: PlanCache::new(),
            results: ResultCache::new(cfg.result_cache_bytes),
            metrics: Registry::new(),
            cfg,
        });
        Coordinator { inner, service }
    }

    /// Submits a request: a result-cache hit answers immediately (no
    /// admission, no execution); otherwise the request queues through the
    /// service's admission machinery and executes routed.
    pub fn submit(&self, req: QueryRequest) -> std::result::Result<Submitted, ServiceError> {
        self.inner.metrics.inc("coord_requests_total", 1);
        if let Some(key) = cache_key(self.inner.cfg.strategy, &req.query) {
            if let Some(rel) = self.inner.results.get(&key, &self.inner.metrics) {
                self.inner.metrics.inc("coord_cache_answers_total", 1);
                return Ok(Submitted::Cached(Answer {
                    result: rel,
                    coverage: 1.0,
                    degraded: false,
                    from_cache: true,
                    sim_seconds: 0.0,
                    hedges: 0,
                    retries: 0,
                    recovery: RecoveryReport::default(),
                }));
            }
        }
        let mut spec = QuerySpec::new(req.label.clone());
        if let Some(bytes) = req.estimate {
            spec = spec.with_estimate(bytes);
        }
        let inner = Arc::clone(&self.inner);
        let ticket =
            self.service.submit(spec, move |ctx| inner.execute(&req, ctx).map_err(to_engine))?;
        Ok(Submitted::Queued(ticket))
    }

    /// [`Coordinator::submit`] + [`Submitted::wait`].
    pub fn run_blocking(&self, req: QueryRequest) -> std::result::Result<Answer, ServiceError> {
        self.submit(req)?.wait()
    }

    /// Coordinator counters: request/cache/hedge/retry/breaker totals, the
    /// sub-run ledger, per-node health gauges, and the latency histogram.
    pub fn metrics(&self) -> &Registry {
        &self.inner.metrics
    }

    /// The embedded service's registry (admission ledger, queue gauges).
    pub fn service_metrics(&self) -> &Registry {
        self.service.metrics()
    }

    /// p-quantile of end-to-end simulated latency, if any query completed.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.inner.metrics.histogram_quantile("coord_latency_seconds", q)
    }

    /// True while `node`'s circuit breaker blocks routing.
    pub fn breaker_is_open(&self, node: usize) -> bool {
        let st = self.inner.health.lock().unwrap();
        matches!(st.nodes.get(node), Some(NodeHealth { breaker: Breaker::Open { .. }, .. }))
    }

    /// The node's straggler EWMA in simulated seconds (None before its
    /// first successful sub-run).
    pub fn node_ewma_seconds(&self, node: usize) -> Option<f64> {
        self.inner.health.lock().unwrap().nodes.get(node).and_then(|h| h.ewma_s)
    }

    /// The result cache (tests and the shell peek at occupancy).
    pub fn result_cache(&self) -> &ResultCache {
        &self.inner.results
    }

    /// Drains the queue (every waiting ticket resolves `Cancelled`), joins
    /// the workers, and leaves the ledger balanced. Idempotent and safe to
    /// race with concurrent [`Coordinator::submit`].
    pub fn shutdown(&self) {
        self.service.shutdown();
    }
}

impl Inner {
    /// Executes one admitted request end to end (runs on a service worker).
    ///
    /// Two-phase scalar queries (Q15-style) route through the same machinery
    /// phase by phase: the scalar-producing inner plan runs first — routed
    /// across the cluster when it touches lineitem, so node loss during the
    /// pre-pass is recovered like any other run — then the outer plan is
    /// instantiated with the extracted scalar and served the same way. The
    /// phases share the admission context, and their costs and recovery
    /// reports merge into one answer.
    fn execute(&self, req: &QueryRequest, ctx: &QueryContext) -> Result<Answer> {
        let answer = match &req.query {
            QueryPlan::Single(p) => self.execute_plan(&req.label, p, &req.faults, ctx)?,
            QueryPlan::TwoPhase { first, scalar_col, second } => {
                self.metrics.inc("coord_two_phase_total", 1);
                let label1 = format!("{} (scalar)", req.label);
                let a1 = self.execute_plan(&label1, first, &req.faults, ctx)?;
                // The queries layer's convention: an empty phase-1 result
                // means the scalar is a neutral 0.0 (keeps both paths
                // bit-identical).
                let scalar = if a1.result.num_rows() == 0 {
                    Value::F64(0.0)
                } else {
                    a1.result.value(0, scalar_col).map_err(ClusterError::from)?
                };
                let a2 = self.execute_plan(&req.label, &second(scalar), &req.faults, ctx)?;
                Answer {
                    result: a2.result,
                    coverage: a1.coverage.min(a2.coverage),
                    degraded: a1.degraded || a2.degraded,
                    from_cache: false,
                    sim_seconds: a1.sim_seconds + a2.sim_seconds,
                    hedges: a1.hedges + a2.hedges,
                    retries: a1.retries + a2.retries,
                    recovery: merge_recovery(a1.recovery, a2.recovery),
                }
            }
        };
        // Deterministic invalidation: any event that may have rewritten
        // table bytes (integrity repair, partition regeneration on a
        // survivor) voids every cached answer depending on those tables
        // *before* the fresh answer is cached.
        let tables = req.query.tables();
        if answer.recovery.integrity_repaired > 0 || !answer.recovery.reassignments.is_empty() {
            self.metrics.inc("coord_invalidation_events_total", 1);
            self.results.invalidate_tables(&tables, &self.metrics);
        }
        if !answer.degraded {
            if let Some(key) = cache_key(self.cfg.strategy, &req.query) {
                self.results.insert(&key, &answer.result, &tables, &self.metrics);
            }
        }
        self.finish(&answer);
        Ok(answer)
    }

    /// Serves one logical plan: routed across the cluster when it touches
    /// the partitioned lineitem table, single-node otherwise.
    ///
    /// The routed path keys the plan cache on the *parameter-stripped* shape
    /// ([`strip_params`]): submissions differing only in literal values (a
    /// shipped-before date, a discount band) share one distributed rewrite,
    /// and the stripped parameters are bound back into the cached node and
    /// merge plans before execution — the rewrite is shape-based, so
    /// normalize-then-bind executes exactly the plan the request asked for.
    fn execute_plan(
        &self,
        label: &str,
        plan: &wimpi_engine::LogicalPlan,
        faults: &FaultPlan,
        ctx: &QueryContext,
    ) -> Result<Answer> {
        if plan.tables().iter().any(|t| t == "lineitem") {
            let (norm, params) = strip_params(plan).map_err(ClusterError::from)?;
            let key = format!("{:?}\n{}", self.cfg.strategy, norm.explain());
            let dist = self.plans.get_or_build(&key, &self.metrics, || {
                distribute(&norm, self.cfg.strategy).map_err(ClusterError::from)
            })?;
            let mut bound = bind_params_spanning(&[&dist.node_plan, &dist.merge_plan], &params)
                .map_err(ClusterError::from)?;
            let merge_plan = bound.pop().expect("two plans bound");
            let node_plan = bound.pop().expect("two plans bound");
            self.execute_routed(label, &Distributed { node_plan, merge_plan }, faults, ctx)
        } else {
            self.execute_single_node(label, plan, faults)
        }
    }

    /// Post-answer bookkeeping: ledger counters, the latency histogram, the
    /// clock advance, and the per-node health gauges.
    fn finish(&self, answer: &Answer) {
        self.metrics.inc("coord_completed_total", 1);
        if answer.degraded {
            self.metrics.inc("coord_degraded_answers_total", 1);
        }
        self.metrics.observe("coord_latency_seconds", &LATENCY_BUCKETS, answer.sim_seconds);
        let mut st = self.health.lock().unwrap();
        st.now_s += answer.sim_seconds;
        let now = st.now_s;
        for (i, h) in st.nodes.iter().enumerate() {
            self.metrics.set_gauge(
                &format!("coord_node_consecutive_failures{{node=\"{i}\"}}"),
                h.consecutive_failures as f64,
            );
            self.metrics.set_gauge(
                &format!("coord_node_ewma_seconds{{node=\"{i}\"}}"),
                h.ewma_s.unwrap_or(0.0),
            );
            let open = matches!(h.breaker, Breaker::Open { .. });
            self.metrics
                .set_gauge(&format!("coord_node_breaker_open{{node=\"{i}\"}}"), open as u64 as f64);
        }
        self.metrics.set_gauge("coord_sim_clock_seconds", now);
    }

    /// The routing decision for `node`'s home partition, transitioning an
    /// expired breaker to half-open.
    fn route(&self, node: usize) -> Route {
        let mut st = self.health.lock().unwrap();
        let now = st.now_s;
        let h = &mut st.nodes[node];
        match h.breaker {
            Breaker::Closed => Route::Attempt,
            Breaker::HalfOpen => Route::Blocked,
            Breaker::Open { until_s } if now < until_s => Route::Blocked,
            Breaker::Open { .. } => {
                h.breaker = Breaker::HalfOpen;
                self.metrics.inc("coord_probes_total", 1);
                Route::Probe
            }
        }
    }

    /// Records a successful sub-run on `node`: closes its breaker, resets
    /// the failure streak, and folds `secs` into the straggler EWMA.
    fn record_success(&self, node: usize, secs: f64) {
        let mut st = self.health.lock().unwrap();
        let h = &mut st.nodes[node];
        h.consecutive_failures = 0;
        h.breaker = Breaker::Closed;
        let alpha = self.cfg.ewma_alpha.clamp(0.0, 1.0);
        h.ewma_s = Some(match h.ewma_s {
            Some(prev) => alpha * secs + (1.0 - alpha) * prev,
            None => secs,
        });
    }

    /// Records a failed sub-run on `node`, tripping the breaker at the
    /// configured threshold (a failed half-open probe re-opens immediately).
    fn record_failure(&self, node: usize) {
        let mut st = self.health.lock().unwrap();
        let now = st.now_s;
        let h = &mut st.nodes[node];
        h.consecutive_failures += 1;
        let probing = h.breaker == Breaker::HalfOpen;
        if probing || h.consecutive_failures >= self.cfg.breaker_threshold {
            h.breaker = Breaker::Open { until_s: now + self.cfg.breaker_cooldown_s };
            h.trips += 1;
            self.metrics.inc("coord_breaker_trips_total", 1);
        }
    }

    /// The fleet-median straggler EWMA, if any node has one.
    fn median_ewma(&self) -> Option<f64> {
        let st = self.health.lock().unwrap();
        median_of(st.nodes.iter().filter_map(|h| h.ewma_s).collect())
    }

    /// A non-lineitem query: the cluster's single-node path (replicated
    /// tables give the identical answer on any node), with the executing
    /// node's health updated from the outcome.
    fn execute_single_node(
        &self,
        label: &str,
        plan: &wimpi_engine::LogicalPlan,
        faults: &FaultPlan,
    ) -> Result<Answer> {
        let run = self.cluster.run_on_single_node(label, plan, faults)?;
        let node = run.recovery.reassignments.last().map(|r| r.to).unwrap_or(0);
        let secs = run.node_seconds.first().copied().unwrap_or(0.0);
        self.record_success(node, secs);
        self.tally_subruns(&[Subrun::Ok], 0, 0, 0);
        let sim_seconds = run.total_seconds();
        Ok(Answer {
            result: run.result,
            coverage: run.recovery.coverage,
            degraded: run.recovery.degraded,
            from_cache: false,
            sim_seconds,
            hedges: 0,
            retries: 0,
            recovery: run.recovery,
        })
    }

    /// Folds one query's sub-run terminals and routing counters into the
    /// ledger: `coord_subruns_total = ok + failed + cancelled` must hold.
    fn tally_subruns(&self, subruns: &[Subrun], retries: u32, hedges: u32, hedge_wins: u32) {
        let ok = subruns.iter().filter(|s| **s == Subrun::Ok).count() as u64;
        let failed = subruns.iter().filter(|s| **s == Subrun::Failed).count() as u64;
        let cancelled = subruns.iter().filter(|s| **s == Subrun::Cancelled).count() as u64;
        self.metrics.inc("coord_subruns_total", ok + failed + cancelled);
        self.metrics.inc("coord_subruns_ok_total", ok);
        self.metrics.inc("coord_subruns_failed_total", failed);
        self.metrics.inc("coord_subruns_cancelled_total", cancelled);
        self.metrics.inc("coord_retries_total", retries as u64);
        self.metrics.inc("coord_hedges_total", hedges as u64);
        self.metrics.inc("coord_hedge_wins_total", hedge_wins as u64);
    }

    /// The routed execution of a lineitem query: health-gated home
    /// attempts, capped-backoff reroutes under the retry budget, EWMA-fed
    /// hedging, then shipping and the driver merge — mirroring
    /// [`WimpiCluster::run_named`]'s phases with routing decisions owned
    /// here.
    fn execute_routed(
        &self,
        label: &str,
        dist: &Distributed,
        faults: &FaultPlan,
        ctx: &QueryContext,
    ) -> Result<Answer> {
        let cl = &*self.cluster;
        let n = cl.node_catalogs.len();
        let mut report = RecoveryReport::default();
        let mut subruns: Vec<Subrun> = Vec::new();
        let mut retries = 0u32;
        let mut hedges = 0u32;
        let mut hedge_wins = 0u32;

        // Phase 1 — breaker-gated home attempts.
        let mut busy = vec![0.0f64; n];
        let mut partials: Vec<Option<Relation>> = (0..n).map(|_| None).collect();
        let mut cancels: Vec<Option<wimpi_engine::CancelToken>> = (0..n).map(|_| None).collect();
        let mut executor: Vec<usize> = (0..n).collect();
        let mut pending: Vec<(usize, f64)> = Vec::new(); // (partition, available_at)
        for (p, cat) in cl.node_catalogs.iter().enumerate() {
            ctx.checkpoint().map_err(ClusterError::from)?;
            match self.route(p) {
                Route::Blocked => {
                    self.metrics.inc("coord_breaker_blocked_total", 1);
                    pending.push((p, 0.0));
                }
                Route::Attempt | Route::Probe => {
                    match cl.attempt_home_partition(
                        label,
                        &dist.node_plan,
                        cat,
                        p,
                        faults,
                        &mut report,
                    )? {
                        NodeOutcome::Done(rel, _prof, secs, cancel) => {
                            subruns.push(Subrun::Ok);
                            self.record_success(p, secs);
                            busy[p] = secs;
                            partials[p] = Some(rel);
                            cancels[p] = Some(cancel);
                        }
                        NodeOutcome::Lost { available_at } => {
                            subruns.push(Subrun::Failed);
                            self.record_failure(p);
                            pending.push((p, available_at));
                        }
                        NodeOutcome::Oom { needed } => {
                            // Capacity, not a fault: identical nodes would
                            // OOM too, so the partition is unrecoverable.
                            subruns.push(Subrun::Failed);
                            if !self.cfg.degraded_ok {
                                self.tally_subruns(&subruns, retries, hedges, hedge_wins);
                                return Err(ClusterError::NodeOom {
                                    query: label.into(),
                                    node: p,
                                    needed,
                                });
                            }
                        }
                    }
                }
            }
        }
        let survivors: Vec<usize> =
            (0..n).filter(|&i| partials[i].is_some() && executor[i] == i).collect();
        if survivors.is_empty() {
            self.tally_subruns(&subruns, retries, hedges, hedge_wins);
            return Err(ClusterError::AllNodesFailed { query: label.into(), failed: n });
        }

        // Phase 2 — reroute pending partitions to healthy survivors with
        // capped backoff, at most `retry_budget` attempts per query.
        let mut attempts_left = self.cfg.retry_budget;
        for &(p, available_at) in &pending {
            ctx.checkpoint().map_err(ClusterError::from)?;
            let mut covered = false;
            while attempts_left > 0 {
                let candidates: Vec<usize> = survivors
                    .iter()
                    .copied()
                    .filter(|&j| j != p && !self.breaker_open_now(j))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let j = least_busy(&candidates, &busy);
                let attempt = self.cfg.retry_budget - attempts_left;
                attempts_left -= 1;
                retries += 1;
                let backoff = cl.observed_backoff_s(attempt);
                match cl.recover_partition(label, &dist.node_plan, p, j) {
                    Ok((rel, _prof, regen_s, exec_s, budgeted)) => {
                        if budgeted {
                            report.budget_degraded += 1;
                        }
                        subruns.push(Subrun::Ok);
                        self.record_success(j, exec_s);
                        let start = busy[j].max(available_at);
                        busy[j] = start + backoff + regen_s + exec_s;
                        report.recovery_seconds += backoff + regen_s + exec_s;
                        report.reassignments.push(Reassignment { partition: p, to: j });
                        partials[p] = Some(rel);
                        executor[p] = j;
                        covered = true;
                        break;
                    }
                    Err(ClusterError::NodeOom { .. }) => {
                        subruns.push(Subrun::Failed);
                        self.record_failure(j);
                        report.recovery_seconds += backoff;
                    }
                    Err(e) => {
                        self.tally_subruns(&subruns, retries, hedges, hedge_wins);
                        return Err(e);
                    }
                }
            }
            if !covered && !self.cfg.degraded_ok {
                self.tally_subruns(&subruns, retries, hedges, hedge_wins);
                return Err(ClusterError::NodeDown { query: label.into(), node: p });
            }
        }

        // Phase 3 — hedged duplicates for stragglers: a home run slower
        // than `hedge_multiplier ×` the fleet-median EWMA races a copy on
        // the least-busy healthy survivor; the loser is cancelled
        // cooperatively and its wasted work charged.
        if let Some(median) = self.median_ewma() {
            let threshold = self.cfg.hedge_multiplier.max(1.0) * median;
            for p in 0..n {
                if partials[p].is_none() || executor[p] != p || busy[p] <= threshold {
                    continue;
                }
                let others: Vec<usize> = survivors
                    .iter()
                    .copied()
                    .filter(|&j| j != p && !self.breaker_open_now(j))
                    .collect();
                if others.is_empty() {
                    continue;
                }
                ctx.checkpoint().map_err(ClusterError::from)?;
                let j = least_busy(&others, &busy);
                hedges += 1;
                match cl.recover_partition(label, &dist.node_plan, p, j) {
                    Ok((rel, _prof, regen_s, exec_s, budgeted)) => {
                        if budgeted {
                            report.budget_degraded += 1;
                        }
                        let done = busy[j].max(threshold) + regen_s + exec_s;
                        if done < busy[p] {
                            // The duplicate won: the straggling home run is
                            // stopped through its cooperative token at
                            // `done`; everything it did is waste.
                            hedge_wins += 1;
                            subruns.push(Subrun::Ok);
                            // The home sub-run's terminal becomes Cancelled.
                            if let Some(s) = subruns.iter_mut().find(|s| **s == Subrun::Ok) {
                                *s = Subrun::Cancelled;
                            }
                            subruns.push(Subrun::Ok);
                            self.record_success(j, exec_s);
                            report.speculated += 1;
                            report.recovery_seconds += regen_s + exec_s;
                            report.cancelled_work_seconds += done;
                            report.reassignments.push(Reassignment { partition: p, to: j });
                            if let Some(tok) = &cancels[p] {
                                tok.cancel();
                            }
                            partials[p] = Some(rel);
                            busy[j] = done;
                            busy[p] = done;
                            executor[p] = j;
                        } else {
                            // The home finished first: the duplicate is
                            // cancelled at that moment; the work it did
                            // between launch and cancellation is waste.
                            subruns.push(Subrun::Cancelled);
                            let waste = (busy[p] - busy[j]).clamp(0.0, regen_s + exec_s);
                            report.cancelled_work_seconds += waste;
                            busy[j] += waste;
                        }
                    }
                    Err(ClusterError::NodeOom { .. }) => {
                        subruns.push(Subrun::Failed);
                        self.record_failure(j);
                    }
                    Err(e) => {
                        self.tally_subruns(&subruns, retries, hedges, hedge_wins);
                        return Err(e);
                    }
                }
            }
        }

        // Phase 4 — ship partials to the driver (degraded NICs priced).
        let row_scale = match self.cfg.strategy {
            Strategy::PartialAggPushdown => 1.0,
            Strategy::ShipRows => cl.config.model_scale,
        };
        let mut bytes_shipped = 0u64;
        let mut nic_extra_s = 0.0f64;
        let mut shippers = 0usize;
        for (p, rel) in partials.iter().enumerate() {
            let Some(rel) = rel else { continue };
            let b = (rel.stream_bytes() as f64 * row_scale) as u64;
            bytes_shipped += b;
            shippers += 1;
            if let Some(FaultKind::DegradedNic { multiplier }) = faults.fault(executor[p]) {
                let base_s = cl.config.net.transfer_s(b) - cl.config.net.latency_ms / 1e3;
                nic_extra_s += base_s * (multiplier.max(1.0) - 1.0);
            }
        }
        let network_seconds = cl.config.net.transfer_s(bytes_shipped)
            + cl.config.net.latency_ms / 1e3 * shippers as f64
            + nic_extra_s;
        report.recovery_seconds += nic_extra_s;

        // Phase 5 — merge on the driver; compute coverage.
        let covered: Vec<Relation> = partials.iter().flatten().cloned().collect();
        let (covered_rows, total_rows) = cl.coverage_rows(&partials);
        report.coverage =
            if total_rows == 0 { 1.0 } else { covered_rows as f64 / total_rows as f64 };
        report.degraded = covered_rows < total_rows;
        let merged_input = concat_relations(&covered)?;
        let mut merge_cat = Catalog::new();
        merge_cat.register(PARTIALS_TABLE, relation_to_table(&merged_input)?);
        // Driver-side plans may reference replicated tables above the
        // decomposition point (e.g. Q15's supplier join); share node 0's
        // replica — replicated tables are identical on every node.
        for t in dist.merge_plan.tables() {
            if t != PARTIALS_TABLE {
                merge_cat.register_shared(&t, Arc::clone(cl.node_catalogs[0].table(&t)?));
            }
        }
        let merge_base = (merged_input.stream_bytes() as f64 * row_scale) as u64;
        let priced = cl.priced_execution(
            &EngineConfig::serial(),
            &dist.merge_plan,
            &merge_cat,
            merge_base,
            row_scale,
        );
        let (result, mut merge_prof, merge_penalty) = match priced {
            Ok(Priced::Fit { rel, prof, penalty_s, budgeted, .. }) => {
                if budgeted {
                    report.budget_degraded += 1;
                }
                (rel, prof, penalty_s)
            }
            Ok(Priced::Oom { needed }) => {
                self.tally_subruns(&subruns, retries, hedges, hedge_wins);
                return Err(ClusterError::NodeOom { query: label.into(), node: 0, needed });
            }
            Err(e) => {
                self.tally_subruns(&subruns, retries, hedges, hedge_wins);
                return Err(e);
            }
        };
        merge_prof.network_bytes = bytes_shipped;
        let merge_seconds =
            predict(&cl.pi, &merge_prof, cl.config.node_threads).total_s() + merge_penalty;
        let sim_seconds =
            busy.iter().cloned().fold(0.0, f64::max) + network_seconds + merge_seconds;
        cl.record_run_metrics(faults, &report);
        self.tally_subruns(&subruns, retries, hedges, hedge_wins);
        Ok(Answer {
            result,
            coverage: report.coverage,
            degraded: report.degraded,
            from_cache: false,
            sim_seconds,
            hedges,
            retries,
            recovery: report,
        })
    }

    /// True while `node`'s breaker is open *right now* (no probe
    /// transition — reroute targets must be strictly healthy).
    fn breaker_open_now(&self, node: usize) -> bool {
        let st = self.health.lock().unwrap();
        matches!(st.nodes[node].breaker, Breaker::Open { .. } | Breaker::HalfOpen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;
    use wimpi_queries::query;

    const SF: f64 = 0.01;

    fn cluster(nodes: u32) -> Arc<WimpiCluster> {
        Arc::new(WimpiCluster::build(ClusterConfig::new(nodes, SF)).expect("cluster builds"))
    }

    fn coordinator(cl: &Arc<WimpiCluster>, cfg: CoordinatorConfig) -> Coordinator {
        Coordinator::new(Arc::clone(cl), cfg)
    }

    #[test]
    fn routed_answers_match_the_cluster_driver_bit_exactly() {
        let cl = cluster(3);
        let reference = cl.run(&query(6), Strategy::PartialAggPushdown).expect("runs");
        let coord = coordinator(&cl, CoordinatorConfig::default());
        let a = coord.run_blocking(QueryRequest::new("q6", query(6))).expect("serves");
        assert_eq!(a.result, reference.result, "routed merge must equal the driver merge");
        assert!(!a.from_cache && !a.degraded);
        assert!(a.sim_seconds > 0.0);
        let m = coord.metrics();
        assert_eq!(m.counter("coord_subruns_total"), 3);
        assert_eq!(m.counter("coord_subruns_ok_total"), 3);
        coord.shutdown();
        let s = coord.service_metrics();
        assert_eq!(s.counter("service_submitted_total"), 1);
        assert_eq!(s.counter("service_completed_total"), 1);
    }

    #[test]
    fn hot_queries_hit_the_result_cache_bit_exactly() {
        let cl = cluster(3);
        let coord = coordinator(&cl, CoordinatorConfig::default());
        let first = coord.run_blocking(QueryRequest::new("q6", query(6))).expect("serves");
        let second = coord.run_blocking(QueryRequest::new("q6-again", query(6))).expect("serves");
        assert!(!first.from_cache);
        assert!(second.from_cache, "repeated plan must hit the result cache");
        assert_eq!(second.result, first.result, "cache hit must be bit-exact");
        assert_eq!(second.sim_seconds, 0.0);
        let m = coord.metrics();
        assert_eq!(m.counter("coord_result_cache_hits_total"), 1);
        assert!(coord.result_cache().used_bytes() > 0, "entries are governor-reserved");
        // Plan cache: distribute ran once even though two requests arrived.
        assert_eq!(m.counter("coord_plan_cache_misses_total"), 1);
        coord.shutdown();
    }

    #[test]
    fn repair_events_invalidate_dependent_cache_entries() {
        let cl = cluster(3);
        let coord = coordinator(&cl, CoordinatorConfig::default());
        let clean = coord.run_blocking(QueryRequest::new("q6", query(6))).expect("serves");
        // A crash on node 1 regenerates its lineitem partition on a
        // survivor — an event that must void every answer depending on
        // lineitem before anything else is served from cache.
        let crashed = coord
            .run_blocking(QueryRequest::new("q1-crash", query(1)).with_faults(FaultPlan::crash(1)))
            .expect("recovers");
        assert!(!crashed.recovery.reassignments.is_empty());
        let m = coord.metrics();
        assert!(m.counter("coord_result_cache_invalidations_total") >= 1);
        // The re-served hot query recomputes and still matches bit-exactly.
        let reread = coord.run_blocking(QueryRequest::new("q6-reread", query(6))).expect("serves");
        assert!(!reread.from_cache, "invalidation must force recomputation");
        assert_eq!(reread.result, clean.result);
        coord.shutdown();
    }

    #[test]
    fn breaker_trips_blocks_routing_and_recovers_via_probe() {
        let cl = cluster(3);
        let cfg = CoordinatorConfig {
            breaker_threshold: 1,
            breaker_cooldown_s: 1e-6, // expires by the next query
            result_cache_bytes: 0,    // force re-execution every time
            ..CoordinatorConfig::default()
        };
        let coord = coordinator(&cl, cfg);
        let reference = cl.run(&query(6), Strategy::PartialAggPushdown).expect("runs");
        let a = coord
            .run_blocking(QueryRequest::new("q6-crash", query(6)).with_faults(FaultPlan::crash(1)))
            .expect("recovers");
        assert_eq!(a.result, reference.result);
        assert!(coord.breaker_is_open(1), "one failure must trip at threshold 1");
        assert!(coord.metrics().counter("coord_breaker_trips_total") >= 1);
        // The cooldown has expired (the clock advanced by the first run), so
        // the fault-free rerun probes node 1 half-open and closes it.
        let b = coord.run_blocking(QueryRequest::new("q6-probe", query(6))).expect("serves");
        assert_eq!(b.result, reference.result);
        assert!(coord.metrics().counter("coord_probes_total") >= 1);
        assert!(!coord.breaker_is_open(1), "successful probe must close the breaker");
        coord.shutdown();
    }

    #[test]
    fn open_breaker_reroutes_without_attempting_the_home_node() {
        let cl = cluster(3);
        let cfg = CoordinatorConfig {
            breaker_threshold: 1,
            breaker_cooldown_s: 1e9, // never cools down in this test
            result_cache_bytes: 0,
            ..CoordinatorConfig::default()
        };
        let coord = coordinator(&cl, cfg);
        let reference = cl.run(&query(6), Strategy::PartialAggPushdown).expect("runs");
        coord
            .run_blocking(QueryRequest::new("q6-crash", query(6)).with_faults(FaultPlan::crash(1)))
            .expect("recovers");
        assert!(coord.breaker_is_open(1));
        // Fault-free rerun: node 1 is skipped outright; the answer is still
        // complete because its partition reroutes under the retry budget.
        let b = coord.run_blocking(QueryRequest::new("q6-blocked", query(6))).expect("serves");
        assert_eq!(b.result, reference.result);
        assert!(b.retries >= 1, "blocked partition must consume a reroute");
        assert!(coord.metrics().counter("coord_breaker_blocked_total") >= 1);
        assert!(coord.breaker_is_open(1), "no probe before the cooldown");
        coord.shutdown();
    }

    #[test]
    fn exhausted_retry_budget_degrades_with_partial_coverage() {
        let cl = cluster(3);
        let cfg = CoordinatorConfig {
            retry_budget: 0,
            degraded_ok: true,
            ..CoordinatorConfig::default()
        };
        let coord = coordinator(&cl, cfg);
        let a = coord
            .run_blocking(QueryRequest::new("q6-crash", query(6)).with_faults(FaultPlan::crash(0)))
            .expect("degrades instead of failing");
        assert!(a.degraded);
        assert!(a.coverage < 1.0 && a.coverage > 0.0, "coverage {}", a.coverage);
        assert_eq!(coord.metrics().counter("coord_degraded_answers_total"), 1);
        // Degraded answers must never be cached.
        let b = coord.run_blocking(QueryRequest::new("q6-clean", query(6))).expect("serves");
        assert!(!b.from_cache, "a degraded answer must not satisfy later requests");
        assert!(!b.degraded);
        coord.shutdown();
    }

    #[test]
    fn stragglers_get_hedged_duplicates_and_answers_stay_exact() {
        let cl = cluster(3);
        let cfg = CoordinatorConfig {
            hedge_multiplier: 1.5,
            result_cache_bytes: 0,
            ..CoordinatorConfig::default()
        };
        let coord = coordinator(&cl, cfg);
        let reference = cl.run(&query(6), Strategy::PartialAggPushdown).expect("runs");
        let a =
            coord
                .run_blocking(QueryRequest::new("q6-slow", query(6)).with_faults(
                    FaultPlan::none().with(1, FaultKind::SlowNode { multiplier: 7.0 }),
                ))
                .expect("serves");
        assert_eq!(a.result, reference.result, "hedging must not change the answer");
        assert!(a.hedges >= 1, "a 7× straggler must trigger a hedge");
        let m = coord.metrics();
        assert!(m.counter("coord_hedges_total") >= 1);
        // Ledger identity over sub-runs.
        assert_eq!(
            m.counter("coord_subruns_total"),
            m.counter("coord_subruns_ok_total")
                + m.counter("coord_subruns_failed_total")
                + m.counter("coord_subruns_cancelled_total")
        );
        coord.shutdown();
    }

    #[test]
    fn non_lineitem_queries_route_single_node_and_cache() {
        let cl = cluster(3);
        let coord = coordinator(&cl, CoordinatorConfig::default());
        let reference = cl.run(&query(13), Strategy::PartialAggPushdown).expect("runs");
        let a = coord.run_blocking(QueryRequest::new("q13", query(13))).expect("serves");
        assert_eq!(a.result, reference.result);
        let b = coord.run_blocking(QueryRequest::new("q13-hot", query(13))).expect("serves");
        assert!(b.from_cache);
        assert_eq!(b.result, reference.result);
        coord.shutdown();
    }

    #[test]
    fn two_phase_queries_route_and_match_the_single_node_reference() {
        let cl = cluster(3);
        let full = wimpi_tpch::Generator::new(SF).generate_catalog().expect("catalog");
        let (reference, _) = wimpi_queries::run(&query(15), &full).expect("reference");
        let coord = coordinator(&cl, CoordinatorConfig::default());
        // Q15 is two-phase in this repo's query set: both phases touch
        // lineitem, so both route across the cluster.
        let a = coord.run_blocking(QueryRequest::new("q15", query(15))).expect("routes");
        assert_eq!(a.result, reference, "routed two-phase must be bit-exact");
        assert!(!a.degraded && !a.from_cache);
        let m = coord.metrics();
        assert_eq!(m.counter("coord_two_phase_total"), 1);
        // One sub-run fan-out per phase.
        assert_eq!(m.counter("coord_subruns_total"), 6);
        // Two-phase answers are never result-cached (the outer plan depends
        // on a live scalar), so a resubmission recomputes — bit-exactly.
        let b = coord.run_blocking(QueryRequest::new("q15-again", query(15))).expect("routes");
        assert!(!b.from_cache);
        assert_eq!(b.result, reference);
        // …but both phases' distributed rewrites come from the plan cache.
        assert!(m.counter("coord_plan_cache_hits_total") >= 2, "phases share cached rewrites");
        coord.shutdown();
    }

    #[test]
    fn two_phase_queries_survive_node_loss_bit_exactly() {
        let cl = cluster(3);
        let full = wimpi_tpch::Generator::new(SF).generate_catalog().expect("catalog");
        let (reference, _) = wimpi_queries::run(&query(15), &full).expect("reference");
        let coord = coordinator(&cl, CoordinatorConfig::default());
        let a = coord
            .run_blocking(
                QueryRequest::new("q15-crash", query(15)).with_faults(FaultPlan::crash(1)),
            )
            .expect("recovers");
        assert_eq!(a.result, reference, "recovery must not change the answer");
        assert!(!a.degraded);
        assert!(
            !a.recovery.reassignments.is_empty(),
            "the crashed partition must have been regenerated on a survivor"
        );
        coord.shutdown();
    }

    #[test]
    fn plan_cache_normalizes_parameterized_variants() {
        use wimpi_engine::expr::{col, date, dec2};
        use wimpi_engine::plan::{AggExpr, PlanBuilder};
        // Two Q6-shaped plans differing only in literal parameters.
        let q6_variant = |from: &str, to: &str| {
            QueryPlan::Single(
                PlanBuilder::scan("lineitem")
                    .filter(
                        col("l_shipdate")
                            .gte(date(from))
                            .and(col("l_shipdate").lt(date(to)))
                            .and(col("l_quantity").lt(dec2("24"))),
                    )
                    .aggregate(
                        vec![],
                        vec![AggExpr::sum(col("l_extendedprice").mul(col("l_discount")), "rev")],
                    )
                    .build(),
            )
        };
        let cl = cluster(3);
        let coord = coordinator(&cl, CoordinatorConfig::default());
        let a = coord
            .run_blocking(QueryRequest::new("v94", q6_variant("1994-01-01", "1995-01-01")))
            .expect("serves");
        let b = coord
            .run_blocking(QueryRequest::new("v95", q6_variant("1995-01-01", "1996-01-01")))
            .expect("serves");
        let m = coord.metrics();
        // One distribute() for both: the second request hit the
        // parameter-stripped shape in the plan cache…
        assert_eq!(m.counter("coord_plan_cache_misses_total"), 1);
        assert!(m.counter("coord_plan_cache_hits_total") >= 1);
        // …while the result cache correctly kept them apart (different
        // literals are different answers).
        assert!(!b.from_cache);
        assert_ne!(a.result, b.result, "different parameters, different answers");
        // Each variant still computes its own correct answer.
        let r94 = cl
            .run(&q6_variant("1994-01-01", "1995-01-01"), Strategy::PartialAggPushdown)
            .expect("runs");
        let r95 = cl
            .run(&q6_variant("1995-01-01", "1996-01-01"), Strategy::PartialAggPushdown)
            .expect("runs");
        assert_eq!(a.result, r94.result);
        assert_eq!(b.result, r95.result);
        coord.shutdown();
    }

    #[test]
    fn result_cache_evicts_lru_within_its_reservation() {
        let metrics = Registry::new();
        let rel = Relation::new(vec![(
            "x".to_string(),
            Arc::new(wimpi_storage::Column::Int64(vec![1, 2, 3])),
        )])
        .expect("relation");
        // Budget sized to hold exactly one copy of `rel`, not two.
        let one = (rel.stream_bytes() as u64).max(1);
        let cache = ResultCache::new(one + one / 2);
        let deps = vec!["t".to_string()];
        cache.insert("a", &rel, &deps, &metrics);
        assert_eq!(cache.len(), 1);
        cache.insert("b", &rel, &deps, &metrics);
        assert_eq!(cache.len(), 1, "budget admits one entry; LRU must evict");
        assert!(metrics.counter("coord_result_cache_evictions_total") >= 1);
        assert!(cache.get("b", &metrics).is_some());
        assert!(cache.get("a", &metrics).is_none());
        cache.invalidate_tables(&deps, &metrics);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.used_bytes(), 0, "invalidation must release the reservation");
    }
}
