//! Hybrid NAM (network-attached-memory) deployments — the paper's §III-C1
//! future-work proposal, implemented as an extension.
//!
//! A single traditional server joins the Pi cluster: it hosts the large
//! memory pool and performs the memory-hungry final stages (driver merge,
//! large aggregations), while the Pi nodes keep doing the embarrassingly
//! parallel partition scans. Compared to the all-Pi driver this removes two
//! bottlenecks at once: the driver's 220 Mbps NIC (the server has a full
//! gigabit port) and the driver's 1 GB memory ceiling (no thrash on the
//! merge).

use crate::distribute::Strategy;
use crate::faults::FaultPlan;
use crate::{DistRun, Result, WimpiCluster};
use wimpi_hwsim::{predict_all_cores, HwProfile};
use wimpi_microbench::NetModel;
use wimpi_queries::QueryPlan;

/// A hybrid cluster: Pi workers plus one big-memory merge server.
pub struct NamCluster {
    /// The underlying all-Pi cluster (owns the data and the workers).
    pub workers: WimpiCluster,
    /// The server hosting the memory pool and running the merge.
    pub server: HwProfile,
    /// The server's network link (a full port, not the Pis' shared bus).
    pub server_net: NetModel,
}

impl NamCluster {
    /// Attaches a merge server to an existing WIMPI cluster.
    pub fn new(workers: WimpiCluster, server: HwProfile) -> Self {
        Self { workers, server, server_net: NetModel::gigabit() }
    }

    /// Runs a query: Pi nodes execute their partitions exactly as in the
    /// all-Pi deployment, but partials ship to the server, which merges
    /// them with its own compute/bandwidth and without memory pressure.
    pub fn run(&self, q: &QueryPlan, strategy: Strategy) -> Result<DistRun> {
        self.run_with_faults(q, strategy, &FaultPlan::none())
    }

    /// [`Self::run`] under an injected fault schedule: worker-side recovery
    /// (retries, reassignment, speculation) happens exactly as in the all-Pi
    /// cluster; only the shipping and merge legs are re-priced on the server.
    pub fn run_with_faults(
        &self,
        q: &QueryPlan,
        strategy: Strategy,
        faults: &FaultPlan,
    ) -> Result<DistRun> {
        let base = self.workers.run_with_faults(q, strategy, faults)?;
        if base.nodes_used == 1 {
            // Single-node queries (Q13): NAM can host them on the server
            // outright — the §III-C1 "tasks that require a large amount of
            // memory" case.
            let prof = base.node_profiles[0];
            let t = predict_all_cores(&self.server, &prof).total_s();
            return Ok(DistRun { node_seconds: vec![t], ..base });
        }
        // Re-price the shipping and the merge on the server.
        let network_seconds = self.server_net.transfer_s(base.bytes_shipped);
        let merge_prof = *base.node_profiles.last().expect("nodes ran");
        // The recorded merge work is not kept separately in DistRun; the
        // dominant terms are captured by re-running the merge predictor on
        // the driver profile. Approximate with the same shape scaled by the
        // server/pi rate ratio — exact for compute, conservative for memory.
        let pi = wimpi_hwsim::pi3b();
        let rate_ratio = (self.server.olap_rate_1c()
            * self.server.effective_cores(self.server.threads))
            / (pi.olap_rate_1c() * pi.effective_cores(pi.threads));
        let merge_seconds = (base.merge_seconds / rate_ratio).min(base.merge_seconds);
        let _ = merge_prof;
        Ok(DistRun { network_seconds, merge_seconds, ..base })
    }

    /// MSRP of the hybrid: the Pi nodes plus the server's CPU list price.
    pub fn msrp(&self) -> Option<f64> {
        let server = self.server.msrp_usd? * self.server.sockets as f64;
        Some(wimpi_analysis::wimpi_msrp(self.workers.num_nodes()) + server)
    }

    /// Peak power: Pi nodes plus the server's TDP.
    pub fn power_w(&self) -> Option<f64> {
        Some(
            wimpi_analysis::wimpi_power_w(self.workers.num_nodes())
                + self.server.tdp_watts? * self.server.sockets as f64,
        )
    }
}

impl std::fmt::Debug for NamCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NamCluster")
            .field("workers", &self.workers.num_nodes())
            .field("server", &self.server.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;
    use wimpi_queries::query;

    fn hybrid(nodes: u32) -> NamCluster {
        let workers = WimpiCluster::build(ClusterConfig::new(nodes, 0.01)).expect("cluster builds");
        NamCluster::new(workers, wimpi_hwsim::profile("op-e5").expect("profile"))
    }

    #[test]
    fn results_match_all_pi_deployment() {
        let h = hybrid(3);
        let q = query(6);
        let all_pi = h.workers.run(&q, Strategy::PartialAggPushdown).unwrap();
        let nam = h.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert_eq!(
            nam.result.column("revenue").unwrap().as_decimal().unwrap(),
            all_pi.result.column("revenue").unwrap().as_decimal().unwrap(),
            "NAM changes the clock, never the answer"
        );
    }

    #[test]
    fn nam_is_never_slower_on_merge_or_network() {
        let h = hybrid(4);
        for qn in [1usize, 3, 5] {
            let q = query(qn);
            let all_pi = h.workers.run(&q, Strategy::PartialAggPushdown).unwrap();
            let nam = h.run(&q, Strategy::PartialAggPushdown).unwrap();
            assert!(nam.network_seconds <= all_pi.network_seconds, "Q{qn} network");
            assert!(nam.merge_seconds <= all_pi.merge_seconds, "Q{qn} merge");
            assert!(nam.total_seconds() <= all_pi.total_seconds(), "Q{qn} total");
        }
    }

    #[test]
    fn q13_moves_to_the_server() {
        // The memory-hungry single-node query lands on the server, which
        // beats a lone Pi by a wide margin.
        let h = hybrid(4);
        let q = query(13);
        let all_pi = h.workers.run(&q, Strategy::PartialAggPushdown).unwrap();
        let nam = h.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert!(
            nam.total_seconds() < all_pi.total_seconds() / 2.0,
            "server-hosted Q13 should be much faster: {} vs {}",
            nam.total_seconds(),
            all_pi.total_seconds()
        );
        assert_eq!(nam.result.num_rows(), all_pi.result.num_rows());
    }

    #[test]
    fn recovery_survives_the_hybrid_path() {
        let mut h = hybrid(3);
        let q = query(6);
        let healthy = h.run(&q, Strategy::PartialAggPushdown).unwrap();
        h.workers.kill_node(1).unwrap();
        let run = h.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert_eq!(run.recovery.reassignments.len(), 1);
        assert!(run.recovery.recovery_seconds > 0.0);
        assert_eq!(
            run.result.column("revenue").unwrap().as_decimal().unwrap(),
            healthy.result.column("revenue").unwrap().as_decimal().unwrap(),
        );
    }

    #[test]
    fn hybrid_costing_includes_server() {
        let h = hybrid(8);
        let msrp = h.msrp().expect("op-e5 has an MSRP");
        assert!(msrp > wimpi_analysis::wimpi_msrp(8));
        let power = h.power_w().expect("op-e5 has a TDP");
        assert!((power - (8.0 * 5.1 + 2.0 * 95.0)).abs() < 1e-9);
    }
}
