//! # wimpi-cluster
//!
//! A faithful simulation of the paper's 24-node WIMPI cluster (§II-B):
//! `lineitem` is partitioned on `l_orderkey` across nodes, every other table
//! is fully replicated (§II-D2), each node runs the full query on its
//! partition for real, and a driver merges partial aggregates. Per-node
//! runtimes come from the Pi 3B+ hardware model, network transfer from the
//! 220 Mbps link model, and memory pressure from the swap-off/microSD model.
//!
//! On top of the fault-free driver sits a fault-tolerance layer
//! ([`faults`]): injected crashes, transient OOMs, stragglers, and degraded
//! NICs are *recovered* rather than fatal — transient faults retry with
//! capped exponential backoff in simulated time, a dead node's lineitem
//! chunk is regenerated on a survivor via the chunk-deterministic generator
//! (the extra work and reshipping priced by the same hwsim/net models), and
//! stragglers past a configurable threshold are speculatively re-executed.
//! When recovery is exhausted, an optional degraded mode returns a partial
//! answer plus a coverage fraction instead of an error.
//!
//! Substitution note (DESIGN.md §2): the paper ran 24 physical Raspberry
//! Pis; here every node's *work* is real (executed on the host over the real
//! partition) and only the *clock* is modelled.

pub mod coordinator;
pub mod distribute;
pub mod faults;
pub mod memory;
pub mod nam;

use std::fmt;
use std::sync::Arc;

use distribute::{distribute, Distributed, Strategy, PARTIALS_TABLE};
use faults::{FaultKind, FaultPlan, Reassignment, RecoveryPolicy, RecoveryReport, SplitMix64};
use memory::{MeasuredPeak, MemoryModel};
use wimpi_engine::{
    optimizer, CancelToken, EngineConfig, EngineError, LogicalPlan, QueryContext, Relation,
    WorkProfile,
};
use wimpi_hwsim::{pi3b, predict, HwProfile};
use wimpi_microbench::NetModel;
use wimpi_obs::Registry;
use wimpi_queries::QueryPlan;
use wimpi_storage::{Catalog, Column, Field, Schema, Table};
use wimpi_tpch::Generator;

/// Histogram bounds for simulated backoff delays (policy default: base
/// 0.05 s doubling to a 1 s cap).
const BACKOFF_BUCKETS: [f64; 5] = [0.05, 0.1, 0.25, 0.5, 1.0];

/// Histogram bounds for per-run recovery seconds.
const RECOVERY_BUCKETS: [f64; 5] = [0.1, 0.5, 1.0, 5.0, 30.0];

/// Domain-separation salt for BitFlip corruption-target draws (which
/// column/chunk/dictionary a flip lands on), independent of the fault-plan
/// stream in [`faults`].
const CORRUPTION_SALT: u64 = 0x5bd1_e995_7b7d_159f;

/// Cluster-level errors. Every query-time variant names the query so
/// multi-query studies can attribute failures.
#[derive(Debug)]
pub enum ClusterError {
    /// A planning/execution failure.
    Engine(EngineError),
    /// A node index outside `0..nodes` was given to a management call.
    NoSuchNode {
        /// The offending index.
        node: usize,
        /// Cluster size.
        nodes: usize,
    },
    /// A node needed by the query is unreachable and unrecoverable.
    NodeDown {
        /// The query being executed.
        query: String,
        /// Node index.
        node: usize,
    },
    /// A node's anonymous memory demand exceeded its RAM (swap is off) and
    /// no recovery path exists: every node is identical, so reassignment
    /// would OOM too.
    NodeOom {
        /// The query being executed.
        query: String,
        /// Node index.
        node: usize,
        /// Bytes the query needed.
        needed: u64,
    },
    /// Every node failed; not even a degraded answer is possible.
    AllNodesFailed {
        /// The query being executed.
        query: String,
        /// How many nodes were lost.
        failed: usize,
    },
    /// The query cannot be distributed (e.g. a two-phase scalar query).
    Unsupported(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Engine(e) => write!(f, "engine: {e}"),
            ClusterError::NoSuchNode { node, nodes } => {
                write!(f, "node {node} does not exist (cluster has {nodes} nodes)")
            }
            ClusterError::NodeDown { query, node } => {
                write!(f, "{query}: node {node} is down and unrecoverable")
            }
            ClusterError::NodeOom { query, node, needed } => {
                write!(
                    f,
                    "{query}: node {node} out of memory ({needed} B needed, swap off); \
                     identical nodes make reassignment futile"
                )
            }
            ClusterError::AllNodesFailed { query, failed } => {
                write!(f, "{query}: all {failed} nodes failed; no survivor to recover on")
            }
            ClusterError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<EngineError> for ClusterError {
    fn from(e: EngineError) -> Self {
        ClusterError::Engine(e)
    }
}

impl From<wimpi_storage::StorageError> for ClusterError {
    fn from(e: wimpi_storage::StorageError) -> Self {
        ClusterError::Engine(EngineError::Storage(e))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Node count (the paper sweeps 4–24).
    pub nodes: u32,
    /// TPC-H scale factor held by the cluster.
    pub sf: f64,
    /// Per-node memory model.
    pub memory: MemoryModel,
    /// Node NIC model.
    pub net: NetModel,
    /// Extrapolation multiplier applied to measured per-node work and base
    /// bytes before pricing (DESIGN.md §4): a cluster *built* at SF `sf` but
    /// *modelled* as holding SF `sf × model_scale`. 1.0 = no extrapolation.
    pub model_scale: f64,
    /// Software threads each node runs its query slice with. Defaults to the
    /// Pi's 4 hardware threads (the paper runs MonetDB fully parallel);
    /// lower it to model partially-loaded nodes.
    pub node_threads: u32,
}

impl ClusterConfig {
    /// A WIMPI cluster of `nodes` Raspberry Pi 3B+ nodes holding SF `sf`.
    pub fn new(nodes: u32, sf: f64) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        Self {
            nodes,
            sf,
            memory: MemoryModel::wimpi_node(),
            net: NetModel::wimpi_node(),
            model_scale: 1.0,
            node_threads: pi3b().threads,
        }
    }

    /// Sets the work-extrapolation multiplier (see `model_scale`).
    pub fn with_model_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.model_scale = scale;
        self
    }

    /// Sets the per-node software thread count (see `node_threads`).
    pub fn with_node_threads(mut self, threads: u32) -> Self {
        assert!(threads > 0, "nodes need at least one thread");
        self.node_threads = threads;
        self
    }
}

/// One distributed run's outcome and simulated timing.
#[derive(Debug, Clone)]
pub struct DistRun {
    /// The merged query result (partial when `recovery.degraded`).
    pub result: Relation,
    /// Simulated seconds per node, including any recovery work the node
    /// absorbed (max is the parallel phase; 0.0 for a node that died
    /// before doing useful work).
    pub node_seconds: Vec<f64>,
    /// Per-partition measured work, indexed by the partition's *home* node
    /// (a reassigned partition's profile is still recorded at its home
    /// index; `recovery.reassignments` says who really ran it).
    pub node_profiles: Vec<WorkProfile>,
    /// Seconds spent shipping partials to the driver.
    pub network_seconds: f64,
    /// Seconds the driver spends merging.
    pub merge_seconds: f64,
    /// Partial-result bytes shipped.
    pub bytes_shipped: u64,
    /// Nodes that actually executed (1 for non-lineitem queries).
    pub nodes_used: u32,
    /// Fault-recovery bookkeeping (all zeros/1.0 for a fault-free run).
    pub recovery: RecoveryReport,
}

impl DistRun {
    /// End-to-end simulated seconds: slowest node + network + merge.
    /// Recovery delays are already folded into the per-node times.
    pub fn total_seconds(&self) -> f64 {
        self.node_seconds.iter().cloned().fold(0.0, f64::max)
            + self.network_seconds
            + self.merge_seconds
    }
}

/// Outcome of one node's attempt at its home partition.
enum NodeOutcome {
    /// Executed: partial result, scaled profile, seconds, and the governed
    /// run's cancellation token (so a later speculation win can stop the
    /// duplicate cooperatively).
    Done(Relation, WorkProfile, f64, CancelToken),
    /// Permanently failed; recovery may begin at the given simulated time.
    Lost { available_at: f64 },
    /// Deterministic OOM (capacity, not a fault): unrecoverable on
    /// identical nodes.
    Oom { needed: u64 },
}

/// One quarantined-corruption repair order: what to restore and what the
/// detection pass already established and cost.
struct RepairJob {
    /// The corrupted table.
    target: String,
    /// Model-scaled scanned bytes (memory-model input for the re-run).
    base: u64,
    /// Simulated cost of one verified scan pass.
    verify_s: f64,
    /// Violations the quarantine enumerated (repairs must match).
    detected: u32,
}

/// One governed, memory-model-priced execution of a plan on one catalog.
enum Priced {
    /// The run fits (possibly only after the reduced-budget retry —
    /// `budgeted` says which): result, scaled profile, thrash penalty, and
    /// the cancellation token of the governed run.
    Fit { rel: Relation, prof: WorkProfile, penalty_s: f64, cancel: CancelToken, budgeted: bool },
    /// Even the budget-governed retry could not fit: deterministic OOM.
    Oom { needed: u64 },
}

/// The simulated WIMPI cluster.
pub struct WimpiCluster {
    config: ClusterConfig,
    pi: HwProfile,
    node_catalogs: Vec<Catalog>,
    /// Replicated tables (region … partsupp + orders), shared by every node
    /// and by recovery catalogs.
    replicated: Vec<(String, Arc<Table>)>,
    alive: Vec<bool>,
    policy: RecoveryPolicy,
    metrics: Registry,
}

impl WimpiCluster {
    /// Generates the database and distributes it: lineitem partitioned by
    /// order key, everything else replicated (shared, not copied, on the
    /// host — each simulated node still *accounts* for its full replica).
    pub fn build(config: ClusterConfig) -> Result<Self> {
        let gen = Generator::new(config.sf);
        // Every resident table is sealed with an integrity manifest at build
        // time — the trusted reference scan-time verification checks against
        // (DESIGN.md §12). Replicated tables share one sealed Arc.
        let mut replicated: Vec<(String, Arc<Table>)> = vec![
            ("region".into(), Arc::new(gen.region_table()?.with_integrity())),
            ("nation".into(), Arc::new(gen.nation_table()?.with_integrity())),
            ("supplier".into(), Arc::new(gen.supplier_table()?.with_integrity())),
            ("customer".into(), Arc::new(gen.customer_table()?.with_integrity())),
            ("part".into(), Arc::new(gen.part_table()?.with_integrity())),
            ("partsupp".into(), Arc::new(gen.partsupp_table()?.with_integrity())),
        ];
        let mut lineitems = Vec::with_capacity(config.nodes as usize);
        let mut order_chunks = Vec::with_capacity(config.nodes as usize);
        for c in 0..config.nodes as u64 {
            let (orders, lineitem) = gen.orders_lineitem_chunk(c, config.nodes as u64)?;
            order_chunks.push(orders);
            lineitems.push(lineitem);
        }
        replicated
            .push(("orders".into(), Arc::new(concat_tables(&order_chunks)?.with_integrity())));
        let mut node_catalogs = Vec::with_capacity(config.nodes as usize);
        for lineitem in lineitems {
            let mut cat = Catalog::new();
            for (name, t) in &replicated {
                cat.register_shared(name.clone(), Arc::clone(t));
            }
            cat.register("lineitem", lineitem.with_integrity());
            node_catalogs.push(cat);
        }
        Ok(Self {
            alive: vec![true; config.nodes as usize],
            pi: pi3b(),
            config,
            node_catalogs,
            replicated,
            policy: RecoveryPolicy::default(),
            metrics: Registry::new(),
        })
    }

    /// Fault/recovery metrics accumulated across every run on this cluster:
    /// per-kind fault counters, retry/speculation/reassignment totals, a
    /// backoff-delay histogram, and the last answer's coverage gauge. Render
    /// with [`Registry::render`] or [`Registry::to_json`].
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Node count.
    pub fn num_nodes(&self) -> u32 {
        self.config.nodes
    }

    /// The recovery policy applied by [`Self::run`] and friends.
    pub fn recovery_policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Replaces the recovery policy.
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// The catalog a node holds (tests and benches peek at partitions).
    pub fn node_catalog(&self, node: usize) -> &Catalog {
        &self.node_catalogs[node]
    }

    fn check_node(&self, node: usize) -> Result<()> {
        if node < self.alive.len() {
            Ok(())
        } else {
            Err(ClusterError::NoSuchNode { node, nodes: self.alive.len() })
        }
    }

    /// Marks a node failed (failure injection). Errors on an out-of-range
    /// index instead of panicking.
    pub fn kill_node(&mut self, node: usize) -> Result<()> {
        self.check_node(node)?;
        self.alive[node] = false;
        Ok(())
    }

    /// Brings a node back. Errors on an out-of-range index.
    pub fn restore_node(&mut self, node: usize) -> Result<()> {
        self.check_node(node)?;
        self.alive[node] = true;
        Ok(())
    }

    /// Live nodes (not [`Self::kill_node`]-ed).
    pub fn alive_nodes(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Runs a query across the cluster with the given shipping strategy,
    /// recovering from any nodes downed via [`Self::kill_node`] under the
    /// cluster's [`RecoveryPolicy`].
    ///
    /// Queries that never touch the partitioned `lineitem` run on one node
    /// only — exactly the paper's Q13 behaviour (§II-D2: "adding more nodes
    /// has no impact on the performance of Q13").
    pub fn run(&self, q: &QueryPlan, strategy: Strategy) -> Result<DistRun> {
        self.run_with_faults(q, strategy, &FaultPlan::none())
    }

    /// [`Self::run`] with an injected fault schedule.
    pub fn run_with_faults(
        &self,
        q: &QueryPlan,
        strategy: Strategy,
        faults: &FaultPlan,
    ) -> Result<DistRun> {
        let label = match q {
            QueryPlan::Single(p) => derive_label(p),
            QueryPlan::TwoPhase { .. } => "two-phase query".to_string(),
        };
        self.run_named(&label, q, strategy, faults)
    }

    /// [`Self::run_with_faults`] with a caller-supplied query name (e.g.
    /// "Q6") used in errors and reports.
    pub fn run_named(
        &self,
        query: &str,
        q: &QueryPlan,
        strategy: Strategy,
        faults: &FaultPlan,
    ) -> Result<DistRun> {
        let plan = match q {
            QueryPlan::Single(p) => p,
            QueryPlan::TwoPhase { .. } => {
                return Err(ClusterError::Unsupported(format!(
                    "{query}: two-phase scalar queries are not distributed; \
                     run them single-node"
                )))
            }
        };
        if !plan.tables().iter().any(|t| t == "lineitem") {
            return self.run_on_single_node(query, plan, faults);
        }
        let Distributed { node_plan, merge_plan } = distribute(plan, strategy)?;
        let n = self.node_catalogs.len();
        let mut report = RecoveryReport::default();

        // Phase 1 — every node attempts its home partition; collect *all*
        // outcomes instead of aborting on the first unhealthy node, so
        // multi-fault schedules see the full picture.
        let mut outcomes: Vec<NodeOutcome> = Vec::with_capacity(n);
        for (i, cat) in self.node_catalogs.iter().enumerate() {
            outcomes.push(self.attempt_home_partition(
                query,
                &node_plan,
                cat,
                i,
                faults,
                &mut report,
            )?);
        }

        // Phase 2 — reassign lost partitions to the least-loaded survivors,
        // regenerating each chunk with the chunk-deterministic generator.
        let mut busy = vec![0.0f64; n];
        let mut partials: Vec<Option<Relation>> = (0..n).map(|_| None).collect();
        let mut profiles = vec![WorkProfile::default(); n];
        let mut exec_cost = vec![f64::NAN; n];
        let mut executor: Vec<usize> = (0..n).collect();
        let mut survivors: Vec<usize> = Vec::new();
        let mut lost: Vec<(usize, f64)> = Vec::new();
        let mut oom_nodes: Vec<(usize, u64)> = Vec::new();
        let mut cancels: Vec<Option<CancelToken>> = (0..n).map(|_| None).collect();
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                NodeOutcome::Done(rel, prof, secs, cancel) => {
                    busy[i] = secs;
                    exec_cost[i] = secs;
                    partials[i] = Some(rel);
                    profiles[i] = prof;
                    cancels[i] = Some(cancel);
                    survivors.push(i);
                }
                NodeOutcome::Lost { available_at } => lost.push((i, available_at)),
                NodeOutcome::Oom { needed } => oom_nodes.push((i, needed)),
            }
        }
        if let Some(&(node, needed)) = oom_nodes.first() {
            // Deterministic capacity overflow: identical nodes mean the
            // reassigned execution would OOM too. Degrade or fail.
            if !self.policy.degraded_ok {
                return Err(ClusterError::NodeOom { query: query.into(), node, needed });
            }
        }
        if survivors.is_empty() {
            return Err(ClusterError::AllNodesFailed { query: query.into(), failed: n });
        }
        let mut absorbed = vec![0usize; n];
        for &(p, available_at) in &lost {
            let candidates: Vec<usize> = survivors
                .iter()
                .copied()
                .filter(|&j| absorbed[j] < self.policy.reassign_cap)
                .collect();
            if candidates.is_empty() {
                // Every survivor is at its reassignment cap: recovery is
                // exhausted for this partition. Degrade or fail.
                if self.policy.degraded_ok {
                    continue;
                }
                return Err(ClusterError::NodeDown { query: query.into(), node: p });
            }
            let j = least_busy(&candidates, &busy);
            absorbed[j] += 1;
            let (rel, prof, regen_s, exec_s, budgeted) =
                self.recover_partition(query, &node_plan, p, j)?;
            if budgeted {
                report.budget_degraded += 1;
            }
            let start = busy[j].max(available_at);
            busy[j] = start + regen_s + exec_s;
            report.recovery_seconds += regen_s + exec_s;
            report.reassignments.push(Reassignment { partition: p, to: j });
            partials[p] = Some(rel);
            profiles[p] = prof;
            exec_cost[p] = exec_s;
            executor[p] = j;
        }

        // Phase 3 — speculative re-execution of stragglers: when a node
        // runs past `threshold × median`, launch a copy (regeneration +
        // execution) on the least-loaded survivor and take whichever
        // finishes first. The result is identical either way (deterministic
        // partitions), so only the clock and the accounting move.
        if self.policy.speculation && survivors.len() > 1 {
            let median_s = median_of(
                survivors
                    .iter()
                    .filter(|&&i| !is_slow(faults.fault(i)))
                    .map(|&i| busy[i])
                    .collect(),
            );
            if let Some(median_s) = median_s {
                let threshold = self.policy.straggler_threshold * median_s;
                for i in 0..n {
                    if !is_slow(faults.fault(i)) || busy[i] <= threshold {
                        continue;
                    }
                    let others: Vec<usize> =
                        survivors.iter().copied().filter(|&j| j != i).collect();
                    if others.is_empty() {
                        continue;
                    }
                    let j = least_busy(&others, &busy);
                    let (rows, heap) = self.partition_size(i);
                    let regen_s = self.regeneration_seconds(rows, heap);
                    // The copy runs on a *healthy* node: strip the
                    // straggler's slowdown from its recorded cost.
                    let mult = match faults.fault(i) {
                        Some(FaultKind::SlowNode { multiplier }) => multiplier.max(1.0),
                        _ => 1.0,
                    };
                    let copy_exec = exec_cost[i] / mult;
                    let done = busy[j].max(threshold) + regen_s + copy_exec;
                    if done < busy[i] {
                        report.speculated += 1;
                        report.recovery_seconds += regen_s + copy_exec;
                        report.reassignments.push(Reassignment { partition: i, to: j });
                        busy[j] = done;
                        // The copy won: the straggler's original run is
                        // stopped through the engine's cooperative token at
                        // `done`, so it is charged only the work it did up
                        // to the cancellation point — all of it wasted.
                        busy[i] = done;
                        report.cancelled_work_seconds += done;
                        if let Some(tok) = &cancels[i] {
                            tok.cancel();
                        }
                        executor[i] = j;
                    }
                }
            }
        }

        // Phase 4 — ship partials to the driver (its NIC is the bottleneck).
        // Partial *aggregates* have SF-independent size; shipped *rows*
        // scale with the modelled SF. A degraded executor NIC multiplies
        // that partition's transfer time.
        let row_scale = match strategy {
            Strategy::PartialAggPushdown => 1.0,
            Strategy::ShipRows => self.config.model_scale,
        };
        let mut bytes_shipped = 0u64;
        let mut nic_extra_s = 0.0f64;
        let mut shippers = 0usize;
        for (p, rel) in partials.iter().enumerate() {
            let Some(rel) = rel else { continue };
            let b = (rel.stream_bytes() as f64 * row_scale) as u64;
            bytes_shipped += b;
            shippers += 1;
            if let Some(FaultKind::DegradedNic { multiplier }) = faults.fault(executor[p]) {
                let base_s = self.config.net.transfer_s(b) - self.config.net.latency_ms / 1e3;
                nic_extra_s += base_s * (multiplier.max(1.0) - 1.0);
            }
        }
        let network_seconds = self.config.net.transfer_s(bytes_shipped)
            + self.config.net.latency_ms / 1e3 * shippers as f64
            + nic_extra_s;
        report.recovery_seconds += nic_extra_s;

        // Phase 5 — merge on the driver node; compute coverage.
        let covered: Vec<Relation> = partials.iter().flatten().cloned().collect();
        let (covered_rows, total_rows) = self.coverage_rows(&partials);
        report.coverage =
            if total_rows == 0 { 1.0 } else { covered_rows as f64 / total_rows as f64 };
        report.degraded = covered_rows < total_rows;
        let merged_input = concat_relations(&covered)?;
        let mut merge_cat = Catalog::new();
        merge_cat.register(PARTIALS_TABLE, relation_to_table(&merged_input)?);
        // Driver-side plans may reference replicated tables above the
        // decomposition point (e.g. Q15's supplier join); share node 0's
        // replica — replicated tables are identical on every node.
        for t in merge_plan.tables() {
            if t != PARTIALS_TABLE {
                merge_cat.register_shared(&t, Arc::clone(self.node_catalogs[0].table(&t)?));
            }
        }
        let merge_base = (merged_input.stream_bytes() as f64 * row_scale) as u64;
        let (result, mut merge_prof, merge_penalty) = match self.priced_execution(
            &EngineConfig::serial(),
            &merge_plan,
            &merge_cat,
            merge_base,
            row_scale,
        )? {
            Priced::Fit { rel, prof, penalty_s, budgeted, .. } => {
                if budgeted {
                    report.budget_degraded += 1;
                }
                (rel, prof, penalty_s)
            }
            Priced::Oom { needed } => {
                return Err(ClusterError::NodeOom { query: query.into(), node: 0, needed })
            }
        };
        merge_prof.network_bytes = bytes_shipped;
        let merge_seconds =
            predict(&self.pi, &merge_prof, self.config.node_threads).total_s() + merge_penalty;
        let nodes_used = {
            let mut ex: Vec<usize> = partials
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_some())
                .map(|(p, _)| executor[p])
                .collect();
            ex.sort_unstable();
            ex.dedup();
            ex.len() as u32
        };
        self.record_run_metrics(faults, &report);
        Ok(DistRun {
            result,
            node_seconds: busy,
            node_profiles: profiles,
            network_seconds,
            merge_seconds,
            bytes_shipped,
            nodes_used,
            recovery: report,
        })
    }

    /// The policy's backoff delay for `attempt`, recorded into the backoff
    /// histogram on the way out.
    fn observed_backoff_s(&self, attempt: u32) -> f64 {
        let delay = self.policy.backoff_s(attempt);
        self.metrics.observe("cluster_backoff_seconds", &BACKOFF_BUCKETS, delay);
        delay
    }

    /// Folds one run's fault schedule and recovery report into the registry.
    fn record_run_metrics(&self, faults: &FaultPlan, report: &RecoveryReport) {
        self.metrics.inc("cluster_runs_total", 1);
        for f in faults.faults() {
            let kind = match f.kind {
                FaultKind::Crash => "crash",
                FaultKind::TransientOom { .. } => "transient_oom",
                FaultKind::SlowNode { .. } => "slow_node",
                FaultKind::DegradedNic { .. } => "degraded_nic",
                FaultKind::BitFlip { .. } => "bit_flip",
            };
            self.metrics.inc(&format!("cluster_faults_total{{kind=\"{kind}\"}}"), 1);
        }
        self.metrics.inc("cluster_retries_total", report.retries as u64);
        self.metrics.inc("cluster_speculations_total", report.speculated as u64);
        self.metrics.inc("cluster_reassignments_total", report.reassignments.len() as u64);
        if report.degraded {
            self.metrics.inc("cluster_degraded_answers_total", 1);
        }
        self.metrics.set_gauge("cluster_coverage_last", report.coverage);
        self.metrics.observe(
            "cluster_recovery_seconds",
            &RECOVERY_BUCKETS,
            report.recovery_seconds,
        );
        if report.cancelled_work_seconds > 0.0 {
            self.metrics.observe(
                "cluster_cancelled_work_seconds",
                &RECOVERY_BUCKETS,
                report.cancelled_work_seconds,
            );
        }
    }

    /// Executes `plan` on `cat` under the resource governor and prices the
    /// run with the memory model, preferring the governor's *measured*
    /// peaks (scaled by `scale`) over the model's `hash_bytes` estimate.
    ///
    /// When the model still predicts a hard OOM, the node gets exactly one
    /// more attempt under a reduced budget — the modelled available memory
    /// mapped back to host scale — so joins and aggregates degrade to
    /// Grace-partitioned builds that shrink the real reservation peak. Only
    /// when even that budgeted run cannot fit (`ResourceExhausted`, or a
    /// measured peak the partitioning cannot reduce) is the OOM final.
    fn priced_execution(
        &self,
        cfg: &EngineConfig,
        plan: &LogicalPlan,
        cat: &Catalog,
        base: u64,
        scale: f64,
    ) -> Result<Priced> {
        let ctx = QueryContext::new();
        let run = wimpi_engine::execute_query_governed(plan, cat, cfg, &ctx);
        self.note_integrity_checks(&ctx);
        let (rel, prof) = run?;
        let prof = prof.scale(scale);
        match self.config.memory.evaluate_measured(base, &prof, scaled_peak(&ctx, scale)) {
            Ok(penalty_s) => {
                Ok(Priced::Fit { rel, prof, penalty_s, cancel: ctx.cancel, budgeted: false })
            }
            Err(needed) => self.budgeted_retry(cfg, plan, cat, base, scale, needed),
        }
    }

    /// Folds a governed run's scan-verification check count into the
    /// registry (no-op for unverified runs).
    fn note_integrity_checks(&self, ctx: &QueryContext) {
        let checks = ctx.integrity_checks();
        if checks > 0 {
            self.metrics.inc("integrity_checks_total", checks);
        }
    }

    /// The one reduced-budget retry behind [`Self::priced_execution`].
    fn budgeted_retry(
        &self,
        cfg: &EngineConfig,
        plan: &LogicalPlan,
        cat: &Catalog,
        base: u64,
        scale: f64,
        needed: u64,
    ) -> Result<Priced> {
        let budget = ((self.config.memory.available() as f64 / scale) as u64).max(1);
        let ctx = QueryContext::with_budget(budget);
        let run = wimpi_engine::execute_query_governed(plan, cat, cfg, &ctx);
        self.note_integrity_checks(&ctx);
        match run {
            Ok((rel, prof)) => {
                let prof = prof.scale(scale);
                match self.config.memory.evaluate_measured(base, &prof, scaled_peak(&ctx, scale)) {
                    Ok(penalty_s) => {
                        self.metrics.inc("cluster_degraded_budget_runs_total", 1);
                        Ok(Priced::Fit { rel, prof, penalty_s, cancel: ctx.cancel, budgeted: true })
                    }
                    Err(still_needed) => Ok(Priced::Oom { needed: still_needed }),
                }
            }
            Err(EngineError::ResourceExhausted { .. }) => Ok(Priced::Oom { needed }),
            Err(e) => Err(e.into()),
        }
    }

    /// One node's attempt at its home partition, with transient faults
    /// retried under the policy's capped exponential backoff (in simulated
    /// seconds — no wall clock anywhere).
    fn attempt_home_partition(
        &self,
        query: &str,
        node_plan: &LogicalPlan,
        cat: &Catalog,
        node: usize,
        faults: &FaultPlan,
        report: &mut RecoveryReport,
    ) -> Result<NodeOutcome> {
        let fault = faults.fault(node);
        if !self.alive[node] || fault == Some(FaultKind::Crash) {
            report.recovery_seconds += self.policy.detect_s;
            return Ok(NodeOutcome::Lost { available_at: self.policy.detect_s });
        }
        if let Some(FaultKind::BitFlip { chunks, bits_per_chunk }) = fault {
            return self.attempt_bit_flipped(node_plan, cat, node, chunks, bits_per_chunk, report);
        }
        let base = (scan_bytes(node_plan, cat)? as f64 * self.config.model_scale) as u64;
        let (rel, prof, exec_s, cancel) = match self.priced_execution(
            &EngineConfig::serial(),
            node_plan,
            cat,
            base,
            self.config.model_scale,
        )? {
            Priced::Fit { rel, prof, penalty_s, cancel, budgeted } => {
                if budgeted {
                    report.budget_degraded += 1;
                }
                let s = predict(&self.pi, &prof, self.config.node_threads).total_s() + penalty_s;
                (rel, prof, s, cancel)
            }
            Priced::Oom { needed } => return Ok(NodeOutcome::Oom { needed }),
        };
        let _ = query;
        match fault {
            Some(FaultKind::TransientOom { failures }) => {
                let budget = self.policy.max_retries;
                if failures <= budget {
                    // Fails `failures` times, then succeeds: the wasted
                    // attempts and backoff delays precede the good run.
                    let mut waste = 0.0;
                    for a in 0..failures {
                        waste += exec_s + self.observed_backoff_s(a);
                    }
                    report.retries += failures;
                    report.recovery_seconds += waste;
                    Ok(NodeOutcome::Done(rel, prof, waste + exec_s, cancel))
                } else {
                    // Retry budget exhausted: declared dead; its partition
                    // becomes reassignable once the attempts have burned.
                    let mut waste = 0.0;
                    for a in 0..=budget {
                        waste += exec_s + self.observed_backoff_s(a);
                    }
                    report.retries += budget;
                    report.recovery_seconds += waste;
                    Ok(NodeOutcome::Lost { available_at: waste })
                }
            }
            Some(FaultKind::SlowNode { multiplier }) => {
                Ok(NodeOutcome::Done(rel, prof, exec_s * multiplier.max(1.0), cancel))
            }
            _ => Ok(NodeOutcome::Done(rel, prof, exec_s, cancel)),
        }
    }

    /// A [`FaultKind::BitFlip`]-faulted node's attempt: resident column
    /// bytes are silently corrupted (no error, only wrong bytes), the node
    /// runs its plan with scan-time verification on, and the checksum
    /// mismatch — not the fault injector — is what surfaces the damage.
    /// Detection quarantines every corrupt chunk against the sealed
    /// manifest, then repairs deterministically and re-verifies
    /// ([`Self::repair_and_rerun`]).
    fn attempt_bit_flipped(
        &self,
        node_plan: &LogicalPlan,
        cat: &Catalog,
        node: usize,
        chunks: u32,
        bits_per_chunk: u32,
        report: &mut RecoveryReport,
    ) -> Result<NodeOutcome> {
        let verify_cfg = EngineConfig::serial().with_verify_checksums(true);
        let base = (scan_bytes(node_plan, cat)? as f64 * self.config.model_scale) as u64;
        let verify_s = self.verification_seconds(base);
        let (ccat, target) =
            self.corrupted_catalog(node_plan, cat, node, chunks, bits_per_chunk)?;
        match self.priced_execution(&verify_cfg, node_plan, &ccat, base, self.config.model_scale) {
            Ok(Priced::Fit { rel, prof, penalty_s, cancel, budgeted }) => {
                // The flips found nothing to land on (e.g. an empty
                // partition): the verified scan vouches for the bytes, so
                // the answer is trustworthy as-is.
                if budgeted {
                    report.budget_degraded += 1;
                }
                let s = predict(&self.pi, &prof, self.config.node_threads).total_s()
                    + penalty_s
                    + verify_s;
                Ok(NodeOutcome::Done(rel, prof, s, cancel))
            }
            Ok(Priced::Oom { needed }) => Ok(NodeOutcome::Oom { needed }),
            Err(ClusterError::Engine(EngineError::Integrity { .. })) => {
                // Detection. Quarantine: enumerate the full extent of the
                // damage against the *clean* manifest, not just the chunk
                // the scan tripped over first.
                let detected = count_violations(cat.table(&target)?, ccat.table(&target)?);
                report.integrity_detected += detected;
                self.metrics.inc("integrity_failures_total", detected as u64);
                let job = RepairJob { target, base, verify_s, detected };
                self.repair_and_rerun(node_plan, cat, node, job, report)
            }
            Err(e) => Err(e),
        }
    }

    /// Repairs a quarantined table deterministically, re-verifies, and
    /// re-executes. `lineitem` partitions are regenerated locally via the
    /// chunk-deterministic TPC-H generator (bit-exact by construction);
    /// replicated tables are re-fetched from a peer's sealed replica over
    /// the modelled link. Verify-after-repair failures burn the policy's
    /// retry budget with backoff, then escalate the partition to the
    /// reassignment / degraded-answer ladder.
    fn repair_and_rerun(
        &self,
        node_plan: &LogicalPlan,
        cat: &Catalog,
        node: usize,
        job: RepairJob,
        report: &mut RecoveryReport,
    ) -> Result<NodeOutcome> {
        let verify_cfg = EngineConfig::serial().with_verify_checksums(true);
        let repair_s = if job.target == "lineitem" {
            let (rows, heap) = self.partition_size(node);
            self.regeneration_seconds(rows, heap)
        } else {
            let bytes =
                (cat.table(&job.target)?.heap_bytes() as f64 * self.config.model_scale) as u64;
            self.config.net.transfer_s(bytes) + self.config.memory.reload_seconds(bytes)
        };
        // Detection already cost one verified scan; every repair attempt
        // costs the repair work plus the re-verified run.
        let mut waste = job.verify_s + repair_s;
        for attempt in 0..=self.policy.max_retries {
            match self.priced_execution(
                &verify_cfg,
                node_plan,
                cat,
                job.base,
                self.config.model_scale,
            ) {
                Ok(Priced::Fit { rel, prof, penalty_s, cancel, budgeted }) => {
                    if budgeted {
                        report.budget_degraded += 1;
                    }
                    report.integrity_repaired += job.detected;
                    self.metrics.inc("integrity_repairs_total", job.detected as u64);
                    self.metrics.observe("integrity_repair_seconds", &RECOVERY_BUCKETS, waste);
                    report.recovery_seconds += waste;
                    let exec_s = predict(&self.pi, &prof, self.config.node_threads).total_s()
                        + penalty_s
                        + job.verify_s;
                    return Ok(NodeOutcome::Done(rel, prof, waste + exec_s, cancel));
                }
                Ok(Priced::Oom { needed }) => return Ok(NodeOutcome::Oom { needed }),
                Err(ClusterError::Engine(EngineError::Integrity { .. })) => {
                    // Verify-after-repair failed: the node's repair source
                    // is itself corrupt. Pay the attempt and back off.
                    report.retries += 1;
                    waste += job.verify_s + repair_s + self.observed_backoff_s(attempt);
                }
                Err(e) => return Err(e),
            }
        }
        // Capped attempts: give the partition up — a survivor regenerates
        // it from scratch (phase 2), or ultimately the degraded path.
        report.recovery_seconds += waste;
        Ok(NodeOutcome::Lost { available_at: waste })
    }

    /// A copy of `cat` where the plan's primary scan target holds silently
    /// corrupted bytes: seeded, deterministic draws flip data chunks,
    /// dictionary values, or the manifest itself, while the *original*
    /// sealed manifest rides along — which is exactly what makes the
    /// corruption detectable. Returns the catalog and the corrupted table's
    /// name.
    fn corrupted_catalog(
        &self,
        node_plan: &LogicalPlan,
        cat: &Catalog,
        node: usize,
        chunks: u32,
        bits_per_chunk: u32,
    ) -> Result<(Catalog, String)> {
        let optimized = optimizer::optimize(node_plan.clone(), cat)?;
        let scanned = scanned_tables(&optimized);
        let (target, cols) = scanned
            .iter()
            .find(|(t, _)| t == "lineitem")
            .or_else(|| scanned.first())
            .ok_or_else(|| ClusterError::Unsupported("plan scans no base table".into()))?
            .clone();
        let t = cat.table(&target)?;
        let schema = t.schema();
        let col_indices: Vec<usize> = match &cols {
            None => (0..t.num_columns()).collect(),
            Some(names) => names
                .iter()
                .filter_map(|n| schema.fields().iter().position(|f| &f.name == n))
                .collect(),
        };
        let mut rng = SplitMix64::new(
            CORRUPTION_SALT
                ^ (node as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ ((chunks as u64) << 32)
                ^ ((bits_per_chunk as u64) << 16),
        );
        let mut dirty: Table = (**t).clone();
        for _ in 0..chunks.max(1) {
            let kind = rng.next() % 8;
            let seed = rng.next();
            if kind == 0 {
                if let Some(m) = dirty.manifest() {
                    let poisoned = wimpi_storage::integrity::corrupt_manifest(m, seed);
                    dirty = dirty.with_manifest(Arc::new(poisoned));
                    continue;
                }
            }
            if col_indices.is_empty() {
                break;
            }
            let ci = col_indices[(rng.next() as usize) % col_indices.len()];
            let col = Arc::clone(dirty.column(ci));
            if kind == 1 && matches!(col.as_ref(), Column::Str(_)) {
                let poisoned = wimpi_storage::integrity::corrupt_dict_values(
                    col.as_ref(),
                    bits_per_chunk.max(1),
                    seed,
                );
                dirty = dirty.with_replaced_column(ci, poisoned)?;
                continue;
            }
            let n = col.len();
            if n == 0 {
                continue;
            }
            let chunk_rows = dirty
                .manifest()
                .map(|m| m.chunk_rows())
                .unwrap_or(wimpi_storage::morsel::DEFAULT_MORSEL_ROWS);
            let ranges = wimpi_storage::morsel::morsel_ranges(n, chunk_rows);
            let r = ranges[(rng.next() as usize) % ranges.len()].clone();
            let poisoned =
                wimpi_storage::integrity::flip_bits(col.as_ref(), r, bits_per_chunk.max(1), seed);
            dirty = dirty.with_replaced_column(ci, poisoned)?;
        }
        let mut out = cat.clone();
        out.register(target.clone(), dirty);
        Ok((out, target))
    }

    /// Simulated seconds for one verified pass over `scanned_bytes`: the
    /// CRC32C kernel is ~one table-lookup op per byte over a sequential
    /// read of the scanned columns.
    fn verification_seconds(&self, scanned_bytes: u64) -> f64 {
        let work = WorkProfile {
            cpu_ops: scanned_bytes,
            seq_read_bytes: scanned_bytes,
            ..WorkProfile::default()
        };
        predict(&self.pi, &work, self.config.node_threads).total_s()
    }

    /// Regenerates partition `p` via the chunk-deterministic generator and
    /// executes the node plan over it on survivor `j`. Returns the partial,
    /// the scaled profile, the regeneration/execution seconds, and whether
    /// the execution only fit under a reduced memory budget.
    fn recover_partition(
        &self,
        query: &str,
        node_plan: &LogicalPlan,
        p: usize,
        j: usize,
    ) -> Result<(Relation, WorkProfile, f64, f64, bool)> {
        let gen = Generator::new(self.config.sf);
        let (_, lineitem) = gen.orders_lineitem_chunk(p as u64, self.config.nodes as u64)?;
        let rows = lineitem.num_rows() as u64;
        let heap = lineitem.heap_bytes() as u64;
        let mut rcat = Catalog::new();
        for (name, t) in &self.replicated {
            rcat.register_shared(name.clone(), Arc::clone(t));
        }
        rcat.register("lineitem", lineitem);
        let base = (scan_bytes(node_plan, &rcat)? as f64 * self.config.model_scale) as u64;
        let (rel, prof, exec_s, budgeted) = match self.priced_execution(
            &EngineConfig::serial(),
            node_plan,
            &rcat,
            base,
            self.config.model_scale,
        )? {
            Priced::Fit { rel, prof, penalty_s, budgeted, .. } => {
                let s = predict(&self.pi, &prof, self.config.node_threads).total_s() + penalty_s;
                (rel, prof, s, budgeted)
            }
            Priced::Oom { needed } => {
                return Err(ClusterError::NodeOom { query: query.into(), node: j, needed })
            }
        };
        let regen_s = self.regeneration_seconds(rows, heap);
        Ok((rel, prof, regen_s, exec_s, budgeted))
    }

    /// Simulated seconds for a survivor to regenerate a lineitem chunk:
    /// generator CPU/stream work priced by the Pi hardware model, plus
    /// persisting the regenerated columns through the microSD card (MonetDB
    /// base columns are mmap-backed files).
    fn regeneration_seconds(&self, rows: u64, heap_bytes: u64) -> f64 {
        let scaled_rows = (rows as f64 * self.config.model_scale) as u64;
        let scaled_heap = (heap_bytes as f64 * self.config.model_scale) as u64;
        let work = WorkProfile {
            // ~64 data-dependent ops per generated row (RNG draws, text
            // synthesis, column appends) — the generator is CPU-heavy.
            cpu_ops: scaled_rows * 64,
            seq_write_bytes: scaled_heap,
            rows_in: scaled_rows,
            ..WorkProfile::default()
        };
        predict(&self.pi, &work, self.config.node_threads).total_s()
            + self.config.memory.reload_seconds(scaled_heap)
    }

    /// (rows, heap bytes) of a node's lineitem partition.
    fn partition_size(&self, node: usize) -> (u64, u64) {
        let t = self.node_catalogs[node]
            .table("lineitem")
            .expect("every node holds a lineitem partition");
        (t.num_rows() as u64, t.heap_bytes() as u64)
    }

    /// (covered, total) lineitem rows for a partial-answer coverage ratio.
    fn coverage_rows(&self, partials: &[Option<Relation>]) -> (u64, u64) {
        let mut covered = 0;
        let mut total = 0;
        for (p, rel) in partials.iter().enumerate() {
            let (rows, _) = self.partition_size(p);
            total += rows;
            if rel.is_some() {
                covered += rows;
            }
        }
        (covered, total)
    }

    /// Runs a whole (non-lineitem) query on one node — node 0 when healthy,
    /// else the first healthy replica (every non-lineitem table is fully
    /// replicated, so any node gives the identical answer).
    fn run_on_single_node(
        &self,
        query: &str,
        plan: &LogicalPlan,
        faults: &FaultPlan,
    ) -> Result<DistRun> {
        let mut report = RecoveryReport::default();
        let healthy = |i: &usize| self.alive[*i] && faults.fault(*i) != Some(FaultKind::Crash);
        let mut candidates = (0..self.node_catalogs.len()).filter(healthy);
        let Some(exec_node) = candidates.next() else {
            return Err(ClusterError::AllNodesFailed {
                query: query.into(),
                failed: self.node_catalogs.len(),
            });
        };
        let mut exec_node = exec_node;
        if exec_node != 0 {
            // Node 0's death was detected, then the query was re-routed.
            report.recovery_seconds += self.policy.detect_s;
            report.reassignments.push(Reassignment { partition: 0, to: exec_node });
        }
        // Silent corruption on the executing replica: detect via the
        // verified scan, repair by re-fetching a peer's sealed copy, and
        // only if even that fails hop to the next healthy replica.
        let mut pre_s = 0.0;
        if let Some(FaultKind::BitFlip { chunks, bits_per_chunk }) = faults.fault(exec_node) {
            let cat = &self.node_catalogs[exec_node];
            match self.attempt_bit_flipped(
                plan,
                cat,
                exec_node,
                chunks,
                bits_per_chunk,
                &mut report,
            )? {
                NodeOutcome::Done(result, prof, t, _cancel) => {
                    self.record_run_metrics(faults, &report);
                    return Ok(DistRun {
                        result,
                        node_seconds: vec![t],
                        node_profiles: vec![prof],
                        network_seconds: 0.0,
                        merge_seconds: 0.0,
                        bytes_shipped: 0,
                        nodes_used: 1,
                        recovery: report,
                    });
                }
                NodeOutcome::Lost { available_at } => {
                    let Some(b) = candidates.next() else {
                        return Err(ClusterError::NodeDown {
                            query: query.into(),
                            node: exec_node,
                        });
                    };
                    report.reassignments.push(Reassignment { partition: 0, to: b });
                    pre_s = available_at;
                    exec_node = b;
                }
                NodeOutcome::Oom { needed } => {
                    return Err(ClusterError::NodeOom {
                        query: query.into(),
                        node: exec_node,
                        needed,
                    })
                }
            }
        }
        let cat = &self.node_catalogs[exec_node];
        let base = (scan_bytes(plan, cat)? as f64 * self.config.model_scale) as u64;
        let (result, prof, exec_s, cancel) = match self.priced_execution(
            &EngineConfig::serial(),
            plan,
            cat,
            base,
            self.config.model_scale,
        )? {
            Priced::Fit { rel, prof, penalty_s, cancel, budgeted } => {
                if budgeted {
                    report.budget_degraded += 1;
                }
                let s = predict(&self.pi, &prof, self.config.node_threads).total_s() + penalty_s;
                (rel, prof, s, cancel)
            }
            Priced::Oom { needed } => {
                return Err(ClusterError::NodeOom { query: query.into(), node: exec_node, needed })
            }
        };
        let mut t = pre_s + exec_s;
        match faults.fault(exec_node) {
            Some(FaultKind::TransientOom { failures }) => {
                let tries = failures.min(self.policy.max_retries);
                let mut waste = 0.0;
                for a in 0..tries {
                    waste += exec_s + self.observed_backoff_s(a);
                }
                report.retries += tries;
                report.recovery_seconds += waste;
                t += waste;
            }
            Some(FaultKind::SlowNode { multiplier }) => {
                let slow = exec_s * multiplier.max(1.0);
                // With a healthy replica available, hop instead of waiting
                // out a straggler worse than the speculation threshold.
                let backup = candidates.next();
                let hop = self.policy.straggler_threshold * exec_s + exec_s;
                match backup {
                    Some(b) if self.policy.speculation && hop < slow => {
                        report.speculated += 1;
                        report.recovery_seconds += exec_s;
                        report.reassignments.push(Reassignment { partition: 0, to: b });
                        // The backup finished first at `hop`: cancel the
                        // straggler's run cooperatively and charge it only
                        // the (wasted) work done up to that point.
                        report.cancelled_work_seconds += hop;
                        cancel.cancel();
                        t = hop;
                    }
                    _ => t = slow,
                }
            }
            _ => {}
        }
        self.record_run_metrics(faults, &report);
        Ok(DistRun {
            result,
            node_seconds: vec![t],
            node_profiles: vec![prof],
            network_seconds: 0.0,
            merge_seconds: 0.0,
            bytes_shipped: 0,
            nodes_used: 1,
            recovery: report,
        })
    }
}

/// A readable label for an anonymous plan, used in error messages when the
/// caller didn't name the query (see [`WimpiCluster::run_named`]).
fn derive_label(plan: &LogicalPlan) -> String {
    format!("query[{}]", plan.tables().join("+"))
}

/// The governor's measured peaks, scaled to the modelled SF. `None` when the
/// run reserved and tracked nothing (e.g. a bare scan) — the model estimate
/// stands in then.
fn scaled_peak(ctx: &QueryContext, scale: f64) -> Option<MeasuredPeak> {
    (ctx.high_water() > 0).then(|| MeasuredPeak {
        hard_bytes: (ctx.hard_high_water() as f64 * scale) as u64,
        transient_bytes: (ctx.high_water() as f64 * scale) as u64,
    })
}

/// The least-busy node among `candidates` (which must be non-empty).
fn least_busy(candidates: &[usize], busy: &[f64]) -> usize {
    *candidates.iter().min_by(|a, b| busy[**a].total_cmp(&busy[**b])).expect("candidates non-empty")
}

/// True for straggler faults.
fn is_slow(fault: Option<FaultKind>) -> bool {
    matches!(fault, Some(FaultKind::SlowNode { .. }))
}

/// Median of an unsorted sample; `None` when empty.
fn median_of(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    Some(xs[xs.len() / 2])
}

/// How many sealed checksums `dirty`'s resident bytes violate, judged
/// against `clean`'s trusted manifest (plus one for a corrupted manifest
/// self-check). At least 1 — this is only called after a detection.
fn count_violations(clean: &Table, dirty: &Table) -> u32 {
    let mut n = 0;
    if let Some(m) = dirty.manifest() {
        if !m.verify_self() {
            n += 1;
        }
    }
    if let Some(m) = clean.manifest() {
        n += m.violations(dirty).len() as u32;
    }
    n.max(1)
}

/// The base tables a plan scans, in first-scan order, each with the union
/// of scanned columns (`None` = every column). Expects an optimized plan so
/// projections reflect what executions will actually read.
fn scanned_tables(plan: &LogicalPlan) -> Vec<(String, Option<Vec<String>>)> {
    fn walk(p: &LogicalPlan, out: &mut Vec<(String, Option<Vec<String>>)>) {
        if let LogicalPlan::Scan { table, projection } = p {
            match out.iter_mut().find(|(t, _)| t == table) {
                Some((_, cols)) => match (cols.as_mut(), projection) {
                    (Some(have), Some(add)) => {
                        for c in add {
                            if !have.contains(c) {
                                have.push(c.clone());
                            }
                        }
                    }
                    _ => *cols = None,
                },
                None => out.push((table.clone(), projection.clone())),
            }
        }
        for child in p.inputs() {
            walk(child, out);
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Bytes of base-table columns a plan actually scans on a catalog —
/// projection-pruned, so Q1 charges only the seven lineitem columns it
/// touches. Strings count at their *raw* width (the modelled MonetDB keeps
/// text memory-mapped uncompressed), which is what makes comment-heavy Q13
/// memory-hungry on a 1 GB node.
pub fn scan_bytes(plan: &LogicalPlan, catalog: &Catalog) -> Result<u64> {
    let optimized = optimizer::optimize(plan.clone(), catalog)?;
    fn walk(p: &LogicalPlan, cat: &Catalog, sum: &mut u64) -> Result<()> {
        if let LogicalPlan::Scan { table, projection } = p {
            let t = cat.table(table)?;
            match projection {
                Some(cols) => {
                    for c in cols {
                        *sum += t.column_by_name(c)?.resident_bytes() as u64;
                    }
                }
                None => {
                    for c in 0..t.num_columns() {
                        *sum += t.column(c).resident_bytes() as u64;
                    }
                }
            }
        }
        for child in p.inputs() {
            walk(child, cat, sum)?;
        }
        Ok(())
    }
    let mut sum = 0;
    walk(&optimized, catalog, &mut sum)?;
    Ok(sum)
}

/// Concatenates same-schema tables (used to assemble the replicated orders
/// table from per-chunk generation).
fn concat_tables(parts: &[Table]) -> Result<Table> {
    let schema = parts.first().expect("at least one part").schema().as_ref().clone();
    let mut columns = Vec::with_capacity(schema.len());
    for i in 0..schema.len() {
        let cols: Vec<&Column> = parts.iter().map(|t| t.column(i).as_ref()).collect();
        columns.push(Column::concat(&cols)?);
    }
    Ok(Table::new(schema, columns)?)
}

/// Concatenates same-schema relations (node partials → driver input).
fn concat_relations(parts: &[Relation]) -> Result<Relation> {
    let first = parts.first().expect("at least one partial");
    let mut fields = Vec::with_capacity(first.num_columns());
    for (idx, (name, _)) in first.fields().iter().enumerate() {
        let cols: Vec<&Column> = parts.iter().map(|r| r.fields()[idx].1.as_ref()).collect();
        fields.push((name.clone(), Arc::new(Column::concat(&cols)?)));
    }
    Ok(Relation::new(fields)?)
}

/// Converts a relation into a storable table (schema inferred from columns).
fn relation_to_table(rel: &Relation) -> Result<Table> {
    let schema = Schema::new(
        rel.fields().iter().map(|(n, c)| Field::new(n.clone(), c.data_type())).collect(),
    );
    let columns = rel.fields().iter().map(|(_, c)| c.as_ref().clone()).collect();
    Ok(Table::new(schema, columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimpi_queries::query;

    fn small_cluster(nodes: u32) -> WimpiCluster {
        WimpiCluster::build(ClusterConfig::new(nodes, 0.01)).expect("build succeeds")
    }

    #[test]
    fn build_partitions_lineitem_and_replicates_rest() {
        let c = small_cluster(4);
        let gen = Generator::new(0.01);
        let (full_orders, full_lineitem) = gen.orders_lineitem().unwrap();
        let part_rows: usize =
            (0..4).map(|i| c.node_catalog(i).table("lineitem").unwrap().num_rows()).sum();
        assert_eq!(part_rows, full_lineitem.num_rows());
        for i in 0..4 {
            let cat = c.node_catalog(i);
            assert_eq!(cat.table("orders").unwrap().num_rows(), full_orders.num_rows());
            assert_eq!(cat.table("customer").unwrap().num_rows(), 1500);
        }
        // Partition key ranges are disjoint and ordered.
        let mut last_max = 0;
        for i in 0..4 {
            let keys = c.node_catalog(i).table("lineitem").unwrap();
            let keys = keys.column_by_name("l_orderkey").unwrap();
            let keys = keys.as_i64().unwrap();
            let lo = *keys.iter().min().unwrap();
            let hi = *keys.iter().max().unwrap();
            assert!(lo > last_max, "partitions must be disjoint on orderkey");
            last_max = hi;
        }
    }

    #[test]
    fn distributed_q6_matches_reference() {
        let c = small_cluster(3);
        let full = Generator::new(0.01).generate_catalog().unwrap();
        let q = query(6);
        let (reference, _) = wimpi_queries::run(&q, &full).unwrap();
        let run = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert_eq!(
            run.result.column("revenue").unwrap().as_decimal().unwrap(),
            reference.column("revenue").unwrap().as_decimal().unwrap(),
        );
        assert_eq!(run.nodes_used, 3);
        assert!(run.total_seconds() > 0.0);
        // Fault-free runs carry an empty recovery report.
        assert_eq!(run.recovery, RecoveryReport::default());
    }

    #[test]
    fn ship_rows_strategy_matches_but_ships_more() {
        let c = small_cluster(2);
        let q = query(6);
        let push = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        let ship = c.run(&q, Strategy::ShipRows).unwrap();
        let a = push.result.column("revenue").unwrap();
        let b = ship.result.column("revenue").unwrap();
        assert_eq!(a.as_decimal().unwrap(), b.as_decimal().unwrap());
        assert!(
            ship.bytes_shipped > 100 * push.bytes_shipped,
            "shipping rows must move orders of magnitude more data: {} vs {}",
            ship.bytes_shipped,
            push.bytes_shipped
        );
    }

    #[test]
    fn q13_runs_on_one_node() {
        let c = small_cluster(4);
        let run = c.run(&query(13), Strategy::PartialAggPushdown).unwrap();
        assert_eq!(run.nodes_used, 1);
        assert_eq!(run.network_seconds, 0.0);
        // Same answer as a full single-node run (customer/orders are
        // replicated, so node 0 sees everything).
        let full = Generator::new(0.01).generate_catalog().unwrap();
        let (reference, _) = wimpi_queries::run(&query(13), &full).unwrap();
        assert_eq!(run.result.num_rows(), reference.num_rows());
    }

    #[test]
    fn dead_node_recovers_via_reassignment() {
        let mut c = small_cluster(3);
        let q = query(6);
        let healthy = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        c.kill_node(1).unwrap();
        let run = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert_eq!(
            run.result.column("revenue").unwrap().as_decimal().unwrap(),
            healthy.result.column("revenue").unwrap().as_decimal().unwrap(),
            "recovery must not change the answer"
        );
        assert_eq!(run.recovery.reassignments.len(), 1);
        assert_eq!(run.recovery.reassignments[0].partition, 1);
        assert_ne!(run.recovery.reassignments[0].to, 1);
        assert!(run.recovery.recovery_seconds > 0.0, "recovery is not free");
        assert!(
            run.total_seconds() > healthy.total_seconds(),
            "regeneration + re-execution must cost simulated time"
        );
        assert_eq!(run.nodes_used, 2);
        assert!(!run.recovery.degraded);
        c.restore_node(1).unwrap();
        let back = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert!(back.recovery.reassignments.is_empty());
    }

    #[test]
    fn q13_reroutes_around_dead_node_zero() {
        let mut c = small_cluster(3);
        let reference = c.run(&query(13), Strategy::PartialAggPushdown).unwrap();
        c.kill_node(0).unwrap();
        let run = c.run(&query(13), Strategy::PartialAggPushdown).unwrap();
        assert_eq!(run.result.num_rows(), reference.result.num_rows());
        assert_eq!(run.recovery.reassignments, vec![Reassignment { partition: 0, to: 1 }]);
    }

    #[test]
    fn all_nodes_dead_is_an_error_naming_the_query() {
        let mut c = small_cluster(2);
        c.kill_node(0).unwrap();
        c.kill_node(1).unwrap();
        let err = c.run(&query(6), Strategy::PartialAggPushdown).unwrap_err();
        assert!(matches!(err, ClusterError::AllNodesFailed { .. }));
        assert!(err.to_string().contains("lineitem"), "query label in message: {err}");
    }

    #[test]
    fn node_management_is_bounds_checked() {
        let mut c = small_cluster(2);
        assert!(matches!(c.kill_node(7), Err(ClusterError::NoSuchNode { node: 7, nodes: 2 })));
        assert!(matches!(c.restore_node(9), Err(ClusterError::NoSuchNode { .. })));
        assert_eq!(c.alive_nodes(), 2);
    }

    #[test]
    fn oom_when_memory_too_small() {
        // 256 bytes: even maximally Grace-partitioned hash builds and the
        // final sort's key buffer cannot fit, so the governed retry is
        // exhausted and the deterministic capacity OOM survives.
        let mut config = ClusterConfig::new(2, 0.01);
        config.memory.mem_bytes = 256;
        config.memory.os_reserve_bytes = 0;
        let c = WimpiCluster::build(config).unwrap();
        let err = c.run(&query(3), Strategy::ShipRows).unwrap_err();
        assert!(matches!(err, ClusterError::NodeOom { .. }));
        assert!(err.to_string().contains("query["), "query label in message: {err}");

        // 16 KiB — which hard-OOMed before the governor existed (the hash
        // tables alone overflow) — now completes: the budgeted retry
        // degrades the builds to Grace partitioning that fits.
        let mut config = ClusterConfig::new(2, 0.01);
        config.memory.mem_bytes = 16 << 10;
        config.memory.os_reserve_bytes = 0;
        let c = WimpiCluster::build(config).unwrap();
        let run = c.run(&query(3), Strategy::ShipRows).unwrap();
        assert!(run.recovery.budget_degraded > 0, "16 KiB must go through the degraded path");
    }

    #[test]
    fn scan_bytes_prunes_projections() {
        let c = small_cluster(1);
        let cat = c.node_catalog(0);
        let q6 = match query(6) {
            QueryPlan::Single(p) => p,
            _ => unreachable!(),
        };
        let pruned = scan_bytes(&q6, cat).unwrap();
        let full = cat.table("lineitem").unwrap().heap_bytes() as u64;
        assert!(pruned < full / 2, "Q6 touches a minority of lineitem: {pruned} vs {full}");
    }

    #[test]
    fn transient_oom_retries_then_succeeds() {
        let c = small_cluster(3);
        let q = query(6);
        let healthy = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        let plan = FaultPlan::none().with(1, FaultKind::TransientOom { failures: 2 });
        let run = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert_eq!(
            run.result.column("revenue").unwrap().as_decimal().unwrap(),
            healthy.result.column("revenue").unwrap().as_decimal().unwrap(),
        );
        assert_eq!(run.recovery.retries, 2);
        assert!(run.recovery.reassignments.is_empty(), "retry succeeded in place");
        assert!(run.node_seconds[1] > healthy.node_seconds[1]);
    }

    #[test]
    fn metrics_accumulate_fault_and_recovery_events() {
        let c = small_cluster(3);
        let q = query(6);
        let plan = FaultPlan::none().with(1, FaultKind::TransientOom { failures: 2 });
        c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        c.run(&q, Strategy::PartialAggPushdown).unwrap();
        let m = c.metrics();
        assert_eq!(m.counter("cluster_runs_total"), 2);
        assert_eq!(m.counter("cluster_faults_total{kind=\"transient_oom\"}"), 1);
        assert_eq!(m.counter("cluster_retries_total"), 2);
        assert_eq!(m.counter("cluster_speculations_total"), 0);
        assert_eq!(m.gauge("cluster_coverage_last"), Some(1.0));
        let rendered = m.render();
        assert!(rendered.contains("cluster_backoff_seconds"), "{rendered}");
        assert!(rendered.contains("cluster_recovery_seconds"), "{rendered}");
    }

    #[test]
    fn transient_oom_beyond_budget_reassigns() {
        let c = small_cluster(3);
        let q = query(6);
        let budget = c.recovery_policy().max_retries;
        let plan = FaultPlan::none().with(0, FaultKind::TransientOom { failures: budget + 5 });
        let run = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert_eq!(run.recovery.retries, budget);
        assert_eq!(run.recovery.reassignments.len(), 1);
        assert_eq!(run.recovery.reassignments[0].partition, 0);
    }

    #[test]
    fn straggler_speculation_caps_the_tail() {
        let mut c = small_cluster(4);
        let q = query(1);
        let healthy = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        let plan = FaultPlan::none().with(2, FaultKind::SlowNode { multiplier: 50.0 });
        let spec = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert_eq!(spec.recovery.speculated, 1);
        assert!(
            spec.total_seconds() < healthy.total_seconds() * 50.0 / 2.0,
            "speculation must beat waiting out a 50x straggler: {} vs {}",
            spec.total_seconds(),
            healthy.total_seconds()
        );
        // Without speculation the straggler dominates.
        let mut policy = *c.recovery_policy();
        policy.speculation = false;
        c.set_recovery_policy(policy);
        let slow = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert_eq!(slow.recovery.speculated, 0);
        assert!(slow.total_seconds() > spec.total_seconds());
        assert_eq!(
            spec.result.column("sum_qty").unwrap().as_decimal().unwrap(),
            slow.result.column("sum_qty").unwrap().as_decimal().unwrap(),
        );
    }

    #[test]
    fn speculation_cancels_the_straggler_cooperatively() {
        let c = small_cluster(4);
        let q = query(1);
        let plan = FaultPlan::none().with(2, FaultKind::SlowNode { multiplier: 50.0 });
        let spec = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert_eq!(spec.recovery.speculated, 1);
        // The straggler is charged only up to the cancellation point, and
        // that wasted work is accounted separately.
        assert!(spec.recovery.cancelled_work_seconds > 0.0);
        assert!(
            spec.recovery.cancelled_work_seconds <= spec.node_seconds[2] + 1e-12,
            "cancelled work cannot exceed the straggler's charged time: {} vs {}",
            spec.recovery.cancelled_work_seconds,
            spec.node_seconds[2]
        );
        let rendered = c.metrics().render();
        assert!(rendered.contains("cluster_cancelled_work_seconds"), "{rendered}");
        // A fault-free run wastes nothing.
        let clean = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert_eq!(clean.recovery.cancelled_work_seconds, 0.0);
    }

    #[test]
    fn model_hard_oom_degrades_to_a_budgeted_grace_run() {
        let q = query(3);
        let reference = small_cluster(2).run(&q, Strategy::PartialAggPushdown).unwrap();
        // Measure the per-node unbudgeted reservation peak, then probe for
        // an `avail` below it that a budget-governed (Grace-degraded) run
        // still fits — mirroring exactly what the cluster's retry will do.
        let probe_cluster = small_cluster(2);
        let plan = match query(3) {
            QueryPlan::Single(p) => p,
            _ => unreachable!(),
        };
        let Distributed { node_plan, .. } =
            distribute(&plan, Strategy::PartialAggPushdown).unwrap();
        let serial = EngineConfig::serial();
        let hard: u64 = (0..2)
            .map(|i| {
                let ctx = QueryContext::new();
                wimpi_engine::execute_query_governed(
                    &node_plan,
                    probe_cluster.node_catalog(i),
                    &serial,
                    &ctx,
                )
                .unwrap();
                ctx.hard_high_water()
            })
            .max()
            .unwrap();
        assert!(hard > 0, "Q3 must reserve scratch");
        let avail = (1..16u64)
            .rev()
            .map(|frac| hard * frac / 16)
            .find(|&avail| {
                (0..2).all(|i| {
                    let ctx = QueryContext::with_budget(avail);
                    wimpi_engine::execute_query_governed(
                        &node_plan,
                        probe_cluster.node_catalog(i),
                        &serial,
                        &ctx,
                    )
                    .is_ok()
                        && ctx.fallbacks() > 0
                        && ctx.hard_high_water() <= avail
                })
            })
            .expect("some reduced budget lets Q3 degrade and fit");
        let mut config = ClusterConfig::new(2, 0.01);
        config.memory.mem_bytes = avail;
        config.memory.os_reserve_bytes = 0;
        let c = WimpiCluster::build(config).unwrap();
        let run = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        // Bit-exact vs the unconstrained cluster, with the degradation
        // visible in the report and the registry.
        for (name, col) in reference.result.fields() {
            assert_eq!(
                run.result.column(name).unwrap().as_ref(),
                col.as_ref(),
                "budget-degraded answer must match on {name}"
            );
        }
        assert!(
            run.recovery.budget_degraded >= 2,
            "both home partitions should have degraded: {}",
            run.recovery.budget_degraded
        );
        assert!(c.metrics().counter("cluster_degraded_budget_runs_total") >= 2);
    }

    #[test]
    fn degraded_nic_prices_extra_shipping() {
        let c = small_cluster(3);
        let q = query(6);
        let healthy = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        let plan = FaultPlan::none().with(1, FaultKind::DegradedNic { multiplier: 8.0 });
        let run = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert!(run.network_seconds > healthy.network_seconds);
        assert!(run.recovery.recovery_seconds > 0.0);
        assert_eq!(
            run.result.column("revenue").unwrap().as_decimal().unwrap(),
            healthy.result.column("revenue").unwrap().as_decimal().unwrap(),
        );
    }

    #[test]
    fn unlimited_survivors_absorb_everything() {
        let mut c = small_cluster(3);
        c.kill_node(1).unwrap();
        c.kill_node(2).unwrap();
        let run = c.run(&query(6), Strategy::PartialAggPushdown).unwrap();
        assert!(!run.recovery.degraded);
        assert!((run.recovery.coverage - 1.0).abs() < 1e-12);
        assert_eq!(run.recovery.reassignments.len(), 2);
        assert_eq!(run.nodes_used, 1);
    }

    #[test]
    fn capped_recovery_fails_loudly_or_degrades() {
        let mut c = small_cluster(4);
        let mut policy = *c.recovery_policy();
        policy.reassign_cap = 1; // one survivor may absorb one partition
        c.set_recovery_policy(policy);
        c.kill_node(1).unwrap();
        c.kill_node(2).unwrap();
        c.kill_node(3).unwrap();
        // Three lost partitions, one survivor with capacity for one: the
        // strict policy refuses …
        let err = c.run(&query(6), Strategy::PartialAggPushdown).unwrap_err();
        assert!(matches!(err, ClusterError::NodeDown { .. }), "got {err}");
        // … and the degraded policy answers with partial coverage.
        policy.degraded_ok = true;
        c.set_recovery_policy(policy);
        let run = c.run(&query(6), Strategy::PartialAggPushdown).unwrap();
        assert!(run.recovery.degraded);
        assert!(run.recovery.coverage > 0.0 && run.recovery.coverage < 1.0);
        assert_eq!(run.recovery.reassignments.len(), 1);
        assert_eq!(run.result.num_rows(), 1, "Q6 still yields its scalar");
    }

    #[test]
    fn bit_flip_is_detected_repaired_and_bit_exact() {
        let c = small_cluster(3);
        let q = query(6);
        let healthy = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert_eq!(healthy.recovery, RecoveryReport::default());
        let plan = FaultPlan::none().with(1, FaultKind::BitFlip { chunks: 2, bits_per_chunk: 3 });
        let run = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert_eq!(run.result, healthy.result, "repaired answer must be bit-exact");
        assert!(run.recovery.integrity_detected >= 1, "{:?}", run.recovery);
        assert_eq!(run.recovery.integrity_repaired, run.recovery.integrity_detected);
        assert!(!run.recovery.degraded);
        assert!((run.recovery.coverage - 1.0).abs() < 1e-12);
        assert!(
            run.node_seconds[1] > healthy.node_seconds[1],
            "detection + repair + re-verified run must cost simulated time"
        );
        let m = c.metrics();
        assert_eq!(m.counter("cluster_faults_total{kind=\"bit_flip\"}"), 1);
        assert_eq!(m.counter("integrity_failures_total"), run.recovery.integrity_detected as u64);
        assert_eq!(m.counter("integrity_repairs_total"), run.recovery.integrity_repaired as u64);
        assert!(m.counter("integrity_checks_total") > 0, "verified scans count their checks");
        assert!(m.render().contains("integrity_repair_seconds"));
    }

    #[test]
    fn bit_flip_on_a_replicated_table_repairs_by_peer_refetch() {
        // Q13 never touches lineitem: the single-replica path corrupts a
        // replicated table and repairs by re-fetching a peer's sealed copy.
        let c = small_cluster(3);
        let q = query(13);
        let healthy = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        let plan = FaultPlan::none().with(0, FaultKind::BitFlip { chunks: 1, bits_per_chunk: 1 });
        let run = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert_eq!(run.result, healthy.result);
        assert!(run.recovery.integrity_detected >= 1, "{:?}", run.recovery);
        assert_eq!(run.recovery.integrity_repaired, run.recovery.integrity_detected);
        assert!(run.node_seconds[0] > healthy.node_seconds[0]);
    }

    #[test]
    fn every_seeded_bit_flip_shape_is_detected() {
        // The corruption helper draws data chunks, dictionary values, and
        // the manifest itself across seeds/params; every shape must be
        // caught and the repaired answer must stay bit-exact.
        let c = small_cluster(4);
        let q = query(1);
        let healthy = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        for (node, chunks, bits) in [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 2, 1)] {
            let plan =
                FaultPlan::none().with(node, FaultKind::BitFlip { chunks, bits_per_chunk: bits });
            let run = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
            assert_eq!(run.result, healthy.result, "node {node} chunks {chunks} bits {bits}");
            assert!(run.recovery.integrity_detected >= 1, "node {node}: {:?}", run.recovery);
            assert_eq!(run.recovery.integrity_repaired, run.recovery.integrity_detected);
        }
    }

    #[test]
    fn unrepairable_corruption_escalates_to_reassignment() {
        // Poison the node's *actual* resident partition (keeping the sealed
        // manifest): local regeneration re-runs over the same corrupt
        // bytes, so verify-after-repair keeps failing until the partition
        // escalates to a survivor.
        let mut c = small_cluster(3);
        let lineitem = Arc::clone(c.node_catalogs[0].table("lineitem").unwrap());
        let qty = lineitem.column(4); // l_quantity — scanned by Q6
        let dirty = wimpi_storage::integrity::flip_bits(qty.as_ref(), 0..qty.len(), 2, 7);
        let poisoned = lineitem.with_replaced_column(4, dirty).unwrap();
        c.node_catalogs[0].register("lineitem", poisoned);
        let q = query(6);
        let plan = FaultPlan::none().with(0, FaultKind::BitFlip { chunks: 1, bits_per_chunk: 1 });
        let run = c.run_with_faults(&q, Strategy::PartialAggPushdown, &plan).unwrap();
        assert!(run.recovery.integrity_detected >= 1);
        assert_eq!(run.recovery.integrity_repaired, 0, "local repair can never verify");
        assert!(run.recovery.retries >= c.recovery_policy().max_retries);
        assert_eq!(run.recovery.reassignments.len(), 1, "{:?}", run.recovery);
        assert_eq!(run.recovery.reassignments[0].partition, 0);
        assert!(!run.recovery.degraded);
        assert!((run.recovery.coverage - 1.0).abs() < 1e-12, "survivor regenerated cleanly");
    }

    #[test]
    fn verification_off_keeps_fault_free_runs_untouched() {
        // Sealing manifests at build time must not change a fault-free
        // run's answer, profile, or integrity accounting.
        let c = small_cluster(2);
        let run = c.run(&query(6), Strategy::PartialAggPushdown).unwrap();
        assert_eq!(run.recovery, RecoveryReport::default());
        assert_eq!(c.metrics().counter("integrity_checks_total"), 0);
        assert_eq!(c.metrics().counter("integrity_failures_total"), 0);
    }
}
