//! # wimpi-cluster
//!
//! A faithful simulation of the paper's 24-node WIMPI cluster (§II-B):
//! `lineitem` is partitioned on `l_orderkey` across nodes, every other table
//! is fully replicated (§II-D2), each node runs the full query on its
//! partition for real, and a driver merges partial aggregates. Per-node
//! runtimes come from the Pi 3B+ hardware model, network transfer from the
//! 220 Mbps link model, and memory pressure from the swap-off/microSD model.
//!
//! Substitution note (DESIGN.md §2): the paper ran 24 physical Raspberry
//! Pis; here every node's *work* is real (executed on the host over the real
//! partition) and only the *clock* is modelled.

pub mod distribute;
pub mod memory;
pub mod nam;

use std::fmt;
use std::sync::Arc;

use distribute::{distribute, Distributed, Strategy, PARTIALS_TABLE};
use memory::MemoryModel;
use wimpi_engine::{optimizer, EngineError, LogicalPlan, Relation, WorkProfile};
use wimpi_hwsim::{pi3b, predict_all_cores, HwProfile};
use wimpi_microbench::NetModel;
use wimpi_queries::QueryPlan;
use wimpi_storage::{Catalog, Column, Field, Schema, Table};
use wimpi_tpch::Generator;

/// Cluster-level errors.
#[derive(Debug)]
pub enum ClusterError {
    /// A planning/execution failure.
    Engine(EngineError),
    /// A node marked dead was needed by the query.
    NodeDown(usize),
    /// A node's anonymous memory demand exceeded its RAM (swap is off).
    NodeOom {
        /// Node index.
        node: usize,
        /// Bytes the query needed.
        needed: u64,
    },
    /// The query cannot be distributed (e.g. a two-phase scalar query).
    Unsupported(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Engine(e) => write!(f, "engine: {e}"),
            ClusterError::NodeDown(n) => write!(f, "node {n} is down"),
            ClusterError::NodeOom { node, needed } => {
                write!(f, "node {node} out of memory ({needed} B needed, swap off)")
            }
            ClusterError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<EngineError> for ClusterError {
    fn from(e: EngineError) -> Self {
        ClusterError::Engine(e)
    }
}

impl From<wimpi_storage::StorageError> for ClusterError {
    fn from(e: wimpi_storage::StorageError) -> Self {
        ClusterError::Engine(EngineError::Storage(e))
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Cluster construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Node count (the paper sweeps 4–24).
    pub nodes: u32,
    /// TPC-H scale factor held by the cluster.
    pub sf: f64,
    /// Per-node memory model.
    pub memory: MemoryModel,
    /// Node NIC model.
    pub net: NetModel,
    /// Extrapolation multiplier applied to measured per-node work and base
    /// bytes before pricing (DESIGN.md §4): a cluster *built* at SF `sf` but
    /// *modelled* as holding SF `sf × model_scale`. 1.0 = no extrapolation.
    pub model_scale: f64,
}

impl ClusterConfig {
    /// A WIMPI cluster of `nodes` Raspberry Pi 3B+ nodes holding SF `sf`.
    pub fn new(nodes: u32, sf: f64) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        Self {
            nodes,
            sf,
            memory: MemoryModel::wimpi_node(),
            net: NetModel::wimpi_node(),
            model_scale: 1.0,
        }
    }

    /// Sets the work-extrapolation multiplier (see `model_scale`).
    pub fn with_model_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.model_scale = scale;
        self
    }
}

/// One distributed run's outcome and simulated timing.
#[derive(Debug, Clone)]
pub struct DistRun {
    /// The merged query result.
    pub result: Relation,
    /// Simulated seconds per node (max is the parallel phase).
    pub node_seconds: Vec<f64>,
    /// Per-node measured work.
    pub node_profiles: Vec<WorkProfile>,
    /// Seconds spent shipping partials to the driver.
    pub network_seconds: f64,
    /// Seconds the driver spends merging.
    pub merge_seconds: f64,
    /// Partial-result bytes shipped.
    pub bytes_shipped: u64,
    /// Nodes that actually executed (1 for non-lineitem queries).
    pub nodes_used: u32,
}

impl DistRun {
    /// End-to-end simulated seconds: slowest node + network + merge.
    pub fn total_seconds(&self) -> f64 {
        self.node_seconds.iter().cloned().fold(0.0, f64::max)
            + self.network_seconds
            + self.merge_seconds
    }
}

/// The simulated WIMPI cluster.
pub struct WimpiCluster {
    config: ClusterConfig,
    pi: HwProfile,
    node_catalogs: Vec<Catalog>,
    alive: Vec<bool>,
}

impl WimpiCluster {
    /// Generates the database and distributes it: lineitem partitioned by
    /// order key, everything else replicated (shared, not copied, on the
    /// host — each simulated node still *accounts* for its full replica).
    pub fn build(config: ClusterConfig) -> Result<Self> {
        let gen = Generator::new(config.sf);
        let shared: Vec<(&str, Arc<Table>)> = vec![
            ("region", Arc::new(gen.region_table()?)),
            ("nation", Arc::new(gen.nation_table()?)),
            ("supplier", Arc::new(gen.supplier_table()?)),
            ("customer", Arc::new(gen.customer_table()?)),
            ("part", Arc::new(gen.part_table()?)),
            ("partsupp", Arc::new(gen.partsupp_table()?)),
        ];
        let mut lineitems = Vec::with_capacity(config.nodes as usize);
        let mut order_chunks = Vec::with_capacity(config.nodes as usize);
        for c in 0..config.nodes as u64 {
            let (orders, lineitem) = gen.orders_lineitem_chunk(c, config.nodes as u64)?;
            order_chunks.push(orders);
            lineitems.push(lineitem);
        }
        let orders = Arc::new(concat_tables(&order_chunks)?);
        let mut node_catalogs = Vec::with_capacity(config.nodes as usize);
        for lineitem in lineitems {
            let mut cat = Catalog::new();
            for (name, t) in &shared {
                cat.register_shared(*name, Arc::clone(t));
            }
            cat.register_shared("orders", Arc::clone(&orders));
            cat.register("lineitem", lineitem);
            node_catalogs.push(cat);
        }
        Ok(Self {
            alive: vec![true; config.nodes as usize],
            pi: pi3b(),
            config,
            node_catalogs,
        })
    }

    /// Cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Node count.
    pub fn num_nodes(&self) -> u32 {
        self.config.nodes
    }

    /// The catalog a node holds (tests and benches peek at partitions).
    pub fn node_catalog(&self, node: usize) -> &Catalog {
        &self.node_catalogs[node]
    }

    /// Marks a node failed (failure-injection tests).
    pub fn kill_node(&mut self, node: usize) {
        self.alive[node] = false;
    }

    /// Brings a node back.
    pub fn restore_node(&mut self, node: usize) {
        self.alive[node] = true;
    }

    /// Runs a query across the cluster with the given shipping strategy.
    ///
    /// Queries that never touch the partitioned `lineitem` run on node 0
    /// only — exactly the paper's Q13 behaviour (§II-D2: "adding more nodes
    /// has no impact on the performance of Q13").
    pub fn run(&self, q: &QueryPlan, strategy: Strategy) -> Result<DistRun> {
        let plan = match q {
            QueryPlan::Single(p) => p,
            QueryPlan::TwoPhase { .. } => {
                return Err(ClusterError::Unsupported(
                    "two-phase scalar queries are not distributed; run them single-node"
                        .to_string(),
                ))
            }
        };
        if !plan.tables().iter().any(|t| t == "lineitem") {
            return self.run_on_single_node(plan);
        }
        let Distributed { node_plan, merge_plan } = distribute(plan, strategy)?;
        let mut node_seconds = Vec::with_capacity(self.node_catalogs.len());
        let mut node_profiles = Vec::with_capacity(self.node_catalogs.len());
        let mut partials: Vec<Relation> = Vec::with_capacity(self.node_catalogs.len());
        for (i, cat) in self.node_catalogs.iter().enumerate() {
            if !self.alive[i] {
                return Err(ClusterError::NodeDown(i));
            }
            let (rel, prof) = wimpi_engine::execute_query(&node_plan, cat)?;
            let prof = prof.scale(self.config.model_scale);
            let base =
                (scan_bytes(&node_plan, cat)? as f64 * self.config.model_scale) as u64;
            let penalty = self
                .config
                .memory
                .evaluate(base, &prof)
                .map_err(|needed| ClusterError::NodeOom { node: i, needed })?;
            node_seconds.push(predict_all_cores(&self.pi, &prof).total_s() + penalty);
            node_profiles.push(prof);
            partials.push(rel);
        }
        // Ship partials to the driver (its NIC is the bottleneck). Partial
        // *aggregates* have SF-independent size; shipped *rows* scale with
        // the modelled SF.
        let row_scale = match strategy {
            Strategy::PartialAggPushdown => 1.0,
            Strategy::ShipRows => self.config.model_scale,
        };
        let bytes_shipped: u64 =
            (partials.iter().map(|r| r.stream_bytes() as u64).sum::<u64>() as f64 * row_scale)
                as u64;
        let network_seconds = self.config.net.transfer_s(bytes_shipped)
            + self.config.net.latency_ms / 1e3 * self.node_catalogs.len() as f64;
        // Merge on the driver node.
        let merged_input = concat_relations(&partials)?;
        let mut merge_cat = Catalog::new();
        merge_cat.register(PARTIALS_TABLE, relation_to_table(&merged_input)?);
        let (result, merge_prof) = wimpi_engine::execute_query(&merge_plan, &merge_cat)?;
        let mut merge_prof = merge_prof.scale(row_scale);
        merge_prof.network_bytes = bytes_shipped;
        let merge_penalty = self
            .config
            .memory
            .evaluate((merged_input.stream_bytes() as f64 * row_scale) as u64, &merge_prof)
            .map_err(|needed| ClusterError::NodeOom { node: 0, needed })?;
        let merge_seconds =
            predict_all_cores(&self.pi, &merge_prof).total_s() + merge_penalty;
        Ok(DistRun {
            result,
            node_seconds,
            node_profiles,
            network_seconds,
            merge_seconds,
            bytes_shipped,
            nodes_used: self.config.nodes,
        })
    }

    /// Runs a whole (non-lineitem) query on node 0.
    fn run_on_single_node(&self, plan: &LogicalPlan) -> Result<DistRun> {
        if !self.alive[0] {
            return Err(ClusterError::NodeDown(0));
        }
        let cat = &self.node_catalogs[0];
        let (result, prof) = wimpi_engine::execute_query(plan, cat)?;
        let prof = prof.scale(self.config.model_scale);
        let base = (scan_bytes(plan, cat)? as f64 * self.config.model_scale) as u64;
        let penalty = self
            .config
            .memory
            .evaluate(base, &prof)
            .map_err(|needed| ClusterError::NodeOom { node: 0, needed })?;
        let t = predict_all_cores(&self.pi, &prof).total_s() + penalty;
        Ok(DistRun {
            result,
            node_seconds: vec![t],
            node_profiles: vec![prof],
            network_seconds: 0.0,
            merge_seconds: 0.0,
            bytes_shipped: 0,
            nodes_used: 1,
        })
    }
}

/// Bytes of base-table columns a plan actually scans on a catalog —
/// projection-pruned, so Q1 charges only the seven lineitem columns it
/// touches. Strings count at their *raw* width (the modelled MonetDB keeps
/// text memory-mapped uncompressed), which is what makes comment-heavy Q13
/// memory-hungry on a 1 GB node.
pub fn scan_bytes(plan: &LogicalPlan, catalog: &Catalog) -> Result<u64> {
    let optimized = optimizer::optimize(plan.clone(), catalog)?;
    fn walk(p: &LogicalPlan, cat: &Catalog, sum: &mut u64) -> Result<()> {
        if let LogicalPlan::Scan { table, projection } = p {
            let t = cat.table(table)?;
            match projection {
                Some(cols) => {
                    for c in cols {
                        *sum += t.column_by_name(c)?.resident_bytes() as u64;
                    }
                }
                None => {
                    for c in 0..t.num_columns() {
                        *sum += t.column(c).resident_bytes() as u64;
                    }
                }
            }
        }
        for child in p.inputs() {
            walk(child, cat, sum)?;
        }
        Ok(())
    }
    let mut sum = 0;
    walk(&optimized, catalog, &mut sum)?;
    Ok(sum)
}

/// Concatenates same-schema tables (used to assemble the replicated orders
/// table from per-chunk generation).
fn concat_tables(parts: &[Table]) -> Result<Table> {
    let schema = parts.first().expect("at least one part").schema().as_ref().clone();
    let mut columns = Vec::with_capacity(schema.len());
    for i in 0..schema.len() {
        let cols: Vec<&Column> = parts.iter().map(|t| t.column(i).as_ref()).collect();
        columns.push(Column::concat(&cols)?);
    }
    Ok(Table::new(schema, columns)?)
}

/// Concatenates same-schema relations (node partials → driver input).
fn concat_relations(parts: &[Relation]) -> Result<Relation> {
    let first = parts.first().expect("at least one partial");
    let mut fields = Vec::with_capacity(first.num_columns());
    for (idx, (name, _)) in first.fields().iter().enumerate() {
        let cols: Vec<&Column> =
            parts.iter().map(|r| r.fields()[idx].1.as_ref()).collect();
        fields.push((name.clone(), Arc::new(Column::concat(&cols)?)));
    }
    Ok(Relation::new(fields)?)
}

/// Converts a relation into a storable table (schema inferred from columns).
fn relation_to_table(rel: &Relation) -> Result<Table> {
    let schema = Schema::new(
        rel.fields()
            .iter()
            .map(|(n, c)| Field::new(n.clone(), c.data_type()))
            .collect(),
    );
    let columns = rel.fields().iter().map(|(_, c)| c.as_ref().clone()).collect();
    Ok(Table::new(schema, columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimpi_queries::query;

    fn small_cluster(nodes: u32) -> WimpiCluster {
        WimpiCluster::build(ClusterConfig::new(nodes, 0.01)).expect("build succeeds")
    }

    #[test]
    fn build_partitions_lineitem_and_replicates_rest() {
        let c = small_cluster(4);
        let gen = Generator::new(0.01);
        let (full_orders, full_lineitem) = gen.orders_lineitem().unwrap();
        let part_rows: usize =
            (0..4).map(|i| c.node_catalog(i).table("lineitem").unwrap().num_rows()).sum();
        assert_eq!(part_rows, full_lineitem.num_rows());
        for i in 0..4 {
            let cat = c.node_catalog(i);
            assert_eq!(cat.table("orders").unwrap().num_rows(), full_orders.num_rows());
            assert_eq!(cat.table("customer").unwrap().num_rows(), 1500);
        }
        // Partition key ranges are disjoint and ordered.
        let mut last_max = 0;
        for i in 0..4 {
            let keys = c.node_catalog(i).table("lineitem").unwrap();
            let keys = keys.column_by_name("l_orderkey").unwrap();
            let keys = keys.as_i64().unwrap();
            let lo = *keys.iter().min().unwrap();
            let hi = *keys.iter().max().unwrap();
            assert!(lo > last_max, "partitions must be disjoint on orderkey");
            last_max = hi;
        }
    }

    #[test]
    fn distributed_q6_matches_reference() {
        let c = small_cluster(3);
        let full = Generator::new(0.01).generate_catalog().unwrap();
        let q = query(6);
        let (reference, _) = wimpi_queries::run(&q, &full).unwrap();
        let run = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        assert_eq!(
            run.result.column("revenue").unwrap().as_decimal().unwrap(),
            reference.column("revenue").unwrap().as_decimal().unwrap(),
        );
        assert_eq!(run.nodes_used, 3);
        assert!(run.total_seconds() > 0.0);
    }

    #[test]
    fn ship_rows_strategy_matches_but_ships_more() {
        let c = small_cluster(2);
        let q = query(6);
        let push = c.run(&q, Strategy::PartialAggPushdown).unwrap();
        let ship = c.run(&q, Strategy::ShipRows).unwrap();
        let a = push.result.column("revenue").unwrap();
        let b = ship.result.column("revenue").unwrap();
        assert_eq!(a.as_decimal().unwrap(), b.as_decimal().unwrap());
        assert!(
            ship.bytes_shipped > 100 * push.bytes_shipped,
            "shipping rows must move orders of magnitude more data: {} vs {}",
            ship.bytes_shipped,
            push.bytes_shipped
        );
    }

    #[test]
    fn q13_runs_on_one_node() {
        let c = small_cluster(4);
        let run = c.run(&query(13), Strategy::PartialAggPushdown).unwrap();
        assert_eq!(run.nodes_used, 1);
        assert_eq!(run.network_seconds, 0.0);
        // Same answer as a full single-node run (customer/orders are
        // replicated, so node 0 sees everything).
        let full = Generator::new(0.01).generate_catalog().unwrap();
        let (reference, _) = wimpi_queries::run(&query(13), &full).unwrap();
        assert_eq!(run.result.num_rows(), reference.num_rows());
    }

    #[test]
    fn dead_node_fails_lineitem_queries() {
        let mut c = small_cluster(3);
        c.kill_node(1);
        assert!(matches!(
            c.run(&query(6), Strategy::PartialAggPushdown),
            Err(ClusterError::NodeDown(1))
        ));
        c.restore_node(1);
        assert!(c.run(&query(6), Strategy::PartialAggPushdown).is_ok());
    }

    #[test]
    fn oom_when_memory_too_small() {
        let mut config = ClusterConfig::new(2, 0.01);
        config.memory.mem_bytes = 16 << 10; // 16 KiB node: hash tables alone overflow
        config.memory.os_reserve_bytes = 0;
        let c = WimpiCluster::build(config).unwrap();
        assert!(matches!(
            c.run(&query(3), Strategy::ShipRows),
            Err(ClusterError::NodeOom { .. })
        ));
    }

    #[test]
    fn scan_bytes_prunes_projections() {
        let c = small_cluster(1);
        let cat = c.node_catalog(0);
        let q6 = match query(6) {
            QueryPlan::Single(p) => p,
            _ => unreachable!(),
        };
        let pruned = scan_bytes(&q6, cat).unwrap();
        let full = cat.table("lineitem").unwrap().heap_bytes() as u64;
        assert!(pruned < full / 2, "Q6 touches a minority of lineitem: {pruned} vs {full}");
    }
}
