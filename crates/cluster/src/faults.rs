//! Fault injection and recovery policy for the WIMPI cluster.
//!
//! The paper's §III-C4 observes that node failures "almost always resulted
//! from virtual memory exhaustion" — and the cluster's data layout makes
//! every failure recoverable: all non-lineitem tables are fully replicated
//! (§II-D2) and each lineitem partition is regenerable on any node via the
//! chunk-deterministic generator (`Generator::orders_lineitem_chunk`). This
//! module provides the two pieces the recovery engine in
//! [`crate::WimpiCluster::run_with_faults`] consumes:
//!
//! * a seeded, deterministic [`FaultPlan`] scheduling per-node crash,
//!   transient-OOM, slow-node (straggler), and degraded-NIC faults, and
//! * a [`RecoveryPolicy`] bounding retries (capped exponential backoff in
//!   *simulated* seconds), straggler speculation, and degraded-mode
//!   (partial-answer) behaviour.
//!
//! Everything here is about the simulated clock; no wall-clock time enters
//! the model.

/// One kind of injected fault on one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Permanent node loss: the node never answers; its lineitem partition
    /// must be regenerated on a survivor.
    Crash,
    /// The node's first `failures` execution attempts abort with an
    /// out-of-memory error (the paper's dominant failure mode), after which
    /// the node succeeds. Recoverable by retrying with backoff while
    /// `failures <=` [`RecoveryPolicy::max_retries`]; beyond that the node
    /// is declared dead and its partition reassigned.
    TransientOom {
        /// Number of leading attempts that fail.
        failures: u32,
    },
    /// The node still answers, but runs `multiplier`× slower (thermal
    /// throttling, a failing SD card). Subject to speculative re-execution
    /// past [`RecoveryPolicy::straggler_threshold`].
    SlowNode {
        /// Runtime multiplier, ≥ 1.
        multiplier: f64,
    },
    /// The node's NIC ships partials `multiplier`× slower than the modelled
    /// 220 Mbps link.
    DegradedNic {
        /// Transfer-time multiplier, ≥ 1.
        multiplier: f64,
    },
    /// Silent data corruption: seeded bit flips in `chunks` resident column
    /// chunks of the node's data (column payloads, a string dictionary, or
    /// the integrity manifest itself — non-ECC LPDDR and microSD media make
    /// this a *when*, not an *if*, on the paper's hardware). Unlike every
    /// other kind it produces **no error** — only wrong bytes. Detection
    /// requires scan-time checksum verification (DESIGN.md §12); the
    /// recovery engine then quarantines the chunk, repairs it
    /// deterministically (local regeneration or priced peer re-fetch), and
    /// verifies again before answering.
    BitFlip {
        /// How many distinct chunks get corrupted.
        chunks: u32,
        /// Seeded single-bit flips applied per corrupted chunk.
        bits_per_chunk: u32,
    },
}

/// Number of [`FaultKind`] variants — keep in sync with the enum so
/// [`FaultPlan::random`] samples every kind uniformly. (An earlier revision
/// hard-coded `% 4` in the sampler; appending a variant then silently
/// under-sampled it. The `random_plans_cover_every_kind` test pins this.)
const NUM_FAULT_KINDS: u64 = 5;

/// A fault bound to a node index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Target node.
    pub node: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults for one distributed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan (fault-free run).
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan that permanently crashes one node.
    pub fn crash(node: usize) -> Self {
        Self::none().with(node, FaultKind::Crash)
    }

    /// Adds a fault (builder style). The first fault registered for a node
    /// wins; later ones for the same node are ignored at query time.
    pub fn with(mut self, node: usize, kind: FaultKind) -> Self {
        self.faults.push(Fault { node, kind });
        self
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The fault scheduled for `node`, if any (first registered wins).
    pub fn fault(&self, node: usize) -> Option<FaultKind> {
        self.faults.iter().find(|f| f.node == node).map(|f| f.kind)
    }

    /// A seeded chaos schedule against an `nodes`-node cluster: between one
    /// and `nodes - 1` faults on distinct nodes with kinds and parameters
    /// drawn deterministically from `seed`. At least one node is always
    /// left entirely healthy, so single-answer recovery stays possible.
    /// The same `(seed, nodes)` pair always yields the same plan.
    pub fn random(seed: u64, nodes: u32) -> Self {
        let mut rng = SplitMix64::new(seed ^ FAULT_STREAM_SALT);
        let mut plan = Self::none();
        if nodes < 2 {
            return plan; // a 1-node cluster has no survivor to recover on
        }
        let max_faults = (nodes - 1).min(3);
        let count = 1 + (rng.next() % max_faults as u64) as u32;
        let mut targets: Vec<usize> = (0..nodes as usize).collect();
        for k in 0..count as usize {
            // Partial Fisher–Yates: pick the k-th distinct target.
            let j = k + (rng.next() as usize) % (targets.len() - k);
            targets.swap(k, j);
            let node = targets[k];
            let kind = match rng.next() % NUM_FAULT_KINDS {
                0 => FaultKind::Crash,
                1 => FaultKind::TransientOom { failures: 1 + (rng.next() % 2) as u32 },
                2 => FaultKind::SlowNode { multiplier: 2.0 + (rng.next() % 6) as f64 },
                3 => FaultKind::DegradedNic { multiplier: 2.0 + (rng.next() % 4) as f64 },
                _ => FaultKind::BitFlip {
                    chunks: 1 + (rng.next() % 3) as u32,
                    bits_per_chunk: 1 + (rng.next() % 3) as u32,
                },
            };
            plan = plan.with(node, kind);
        }
        plan
    }
}

/// How the recovery engine responds to faults. All durations are simulated
/// seconds priced alongside the hwsim/net models.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Retry budget for transient faults before the node is declared dead.
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (capped exponential).
    pub backoff_base_s: f64,
    /// Backoff ceiling.
    pub backoff_cap_s: f64,
    /// Heartbeat timeout before a crashed node's partition is reassigned.
    pub detect_s: f64,
    /// A node slower than `threshold × median` healthy-node runtime gets a
    /// speculative copy of its partition launched on the least-loaded
    /// survivor (when `speculation` is on).
    pub straggler_threshold: f64,
    /// Enables speculative re-execution of stragglers.
    pub speculation: bool,
    /// Most lost partitions a single survivor may absorb before recovery
    /// counts as exhausted (a survivor regenerating many partitions also
    /// multiplies its memory footprint and runtime). `usize::MAX` means
    /// survivors absorb everything.
    pub reassign_cap: usize,
    /// When recovery is exhausted for some partition, return a partial
    /// answer with a coverage fraction instead of an error.
    pub degraded_ok: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_s: 0.05,
            backoff_cap_s: 1.0,
            detect_s: 0.2,
            straggler_threshold: 2.0,
            speculation: true,
            reassign_cap: usize::MAX,
            degraded_ok: false,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that tolerates partial answers (degraded mode).
    pub fn degraded() -> Self {
        Self { degraded_ok: true, ..Self::default() }
    }

    /// Backoff delay before retry number `attempt` (0-based), in simulated
    /// seconds: `base × 2^attempt`, capped.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        (self.backoff_base_s * 2f64.powi(attempt.min(30) as i32)).min(self.backoff_cap_s)
    }
}

/// One partition (or single-node query) moved to a surviving node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reassignment {
    /// The lost lineitem chunk index (or 0 for a single-node query).
    pub partition: usize,
    /// The surviving node that regenerated and executed it.
    pub to: usize,
}

/// Recovery bookkeeping attached to a [`crate::DistRun`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Failed attempts retried (transient faults).
    pub retries: u32,
    /// Speculative re-executions that beat their straggler.
    pub speculated: u32,
    /// Partitions regenerated and executed away from their home node.
    pub reassignments: Vec<Reassignment>,
    /// Extra simulated seconds attributable to recovery: detection and
    /// backoff delays, partition regeneration (hwsim + microSD pricing),
    /// re-execution of lost or speculated partitions, and degraded-NIC
    /// shipping overhead. Not all of it lands on the critical path.
    pub recovery_seconds: f64,
    /// Simulated seconds of duplicate work performed and then thrown away
    /// when a speculated straggler's original run was cooperatively
    /// cancelled (take-whichever-finishes-first keeps both copies running
    /// until one wins; the loser's work up to the cancellation point is
    /// pure waste, and this is where it is accounted).
    pub cancelled_work_seconds: f64,
    /// Executions that only completed under a reduced memory budget: the
    /// memory model predicted a hard OOM at full scale, and the engine's
    /// governed retry degraded joins/aggregates to Grace-partitioned builds
    /// that fit.
    pub budget_degraded: u32,
    /// Fraction of lineitem rows the answer covers (1.0 unless degraded).
    pub coverage: f64,
    /// True when recovery was exhausted and the answer is partial.
    pub degraded: bool,
    /// Corrupt chunks detected by scan-time checksum verification
    /// ([`FaultKind::BitFlip`] injections caught before they could poison
    /// an answer).
    pub integrity_detected: u32,
    /// Corrupt chunks repaired (regenerated or peer-refetched) and
    /// re-verified clean. Equals `integrity_detected` unless repair was
    /// exhausted and the run degraded.
    pub integrity_repaired: u32,
}

impl Default for RecoveryReport {
    fn default() -> Self {
        Self {
            retries: 0,
            speculated: 0,
            reassignments: Vec::new(),
            recovery_seconds: 0.0,
            cancelled_work_seconds: 0.0,
            budget_degraded: 0,
            coverage: 1.0,
            degraded: false,
            integrity_detected: 0,
            integrity_repaired: 0,
        }
    }
}

/// SplitMix64 — the same counter-based generator family the TPC-H
/// generator uses, re-implemented here so fault plans stay deterministic
/// without growing a dependency.
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Domain-separation salt so fault streams never collide with data streams.
const FAULT_STREAM_SALT: u64 = 0x57a6_1efa_0b5e_55ed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic() {
        let a = FaultPlan::random(42, 8);
        let b = FaultPlan::random(42, 8);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn random_plans_leave_a_survivor() {
        for seed in 0..200 {
            for nodes in 2u32..=9 {
                let plan = FaultPlan::random(seed, nodes);
                let crashed = (0..nodes as usize).filter(|&n| plan.fault(n).is_some()).count();
                assert!(crashed < nodes as usize, "seed {seed} nodes {nodes}");
            }
        }
    }

    #[test]
    fn first_fault_per_node_wins() {
        let plan = FaultPlan::crash(1).with(1, FaultKind::SlowNode { multiplier: 4.0 });
        assert_eq!(plan.fault(1), Some(FaultKind::Crash));
        assert_eq!(plan.fault(0), None);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RecoveryPolicy::default();
        assert!(p.backoff_s(1) > p.backoff_s(0));
        assert!(p.backoff_s(20) <= p.backoff_cap_s);
    }

    #[test]
    fn single_node_cluster_gets_no_faults() {
        assert!(FaultPlan::random(7, 1).is_empty());
    }

    #[test]
    fn random_plans_cover_every_kind() {
        // Uniform sampling over all variants: each kind must appear, and no
        // kind may be starved to below half its fair share. (The old `% 4`
        // sampler gave an appended fifth kind a 0% share.)
        let mut counts = [0usize; NUM_FAULT_KINDS as usize];
        let mut total = 0usize;
        for seed in 0..400u64 {
            for f in FaultPlan::random(seed, 6).faults() {
                let k = match f.kind {
                    FaultKind::Crash => 0,
                    FaultKind::TransientOom { .. } => 1,
                    FaultKind::SlowNode { .. } => 2,
                    FaultKind::DegradedNic { .. } => 3,
                    FaultKind::BitFlip { .. } => 4,
                };
                counts[k] += 1;
                total += 1;
            }
        }
        let fair = total / NUM_FAULT_KINDS as usize;
        for (k, &c) in counts.iter().enumerate() {
            assert!(c > fair / 2, "kind {k} under-sampled: {c} of {total}");
        }
    }

    #[test]
    fn bit_flip_plans_parameterize_sensibly() {
        let mut seen = false;
        for seed in 0..200u64 {
            for f in FaultPlan::random(seed, 5).faults() {
                if let FaultKind::BitFlip { chunks, bits_per_chunk } = f.kind {
                    seen = true;
                    assert!((1..=3).contains(&chunks), "seed {seed}");
                    assert!((1..=3).contains(&bits_per_chunk), "seed {seed}");
                }
            }
        }
        assert!(seen, "200 seeds must surface at least one BitFlip");
    }

    #[test]
    fn random_plan_for_a_pinned_seed_is_golden() {
        // Pins the exact sampling stream: any change to the RNG salt, the
        // Fisher–Yates target draw, or the kind/parameter draws (including
        // the `% NUM_FAULT_KINDS` uniform-sampling fix from the integrity
        // PR) shows up here as a diff, not as silently shifted chaos runs.
        let got = FaultPlan::random(9, 24);
        let want = FaultPlan::none()
            .with(22, FaultKind::TransientOom { failures: 2 })
            .with(11, FaultKind::SlowNode { multiplier: 7.0 });
        assert_eq!(got, want);
    }

    #[test]
    fn fixed_seed_window_samples_all_five_kinds_at_chaos_scale() {
        // The chaos bench sweeps small consecutive seed windows against the
        // paper's 24-node rack; every fault kind (BitFlip included) must
        // show up inside one such window or whole chaos ladders would never
        // exercise a recovery path.
        let mut seen = [false; NUM_FAULT_KINDS as usize];
        for seed in 0..64u64 {
            for f in FaultPlan::random(seed, 24).faults() {
                let k = match f.kind {
                    FaultKind::Crash => 0,
                    FaultKind::TransientOom { .. } => 1,
                    FaultKind::SlowNode { .. } => 2,
                    FaultKind::DegradedNic { .. } => 3,
                    FaultKind::BitFlip { .. } => 4,
                };
                seen[k] = true;
            }
        }
        assert_eq!(seen, [true; NUM_FAULT_KINDS as usize], "kinds seen: {seen:?}");
    }
}
