//! Structured status reporting for the bench bins.
//!
//! Progress/status lines go to **stderr** with a uniform `wimpi:` prefix so
//! data written to stdout (markdown tables, CSV, JSON) stays machine-clean.
//! Setting `WIMPI_QUIET=1` suppresses status entirely — used by CI smoke
//! steps that only care about artifacts and exit codes.

/// True when status output is suppressed (`WIMPI_QUIET` set to anything but
/// `0` or the empty string).
pub fn quiet() -> bool {
    match std::env::var("WIMPI_QUIET") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Prints one status line to stderr (`wimpi: <msg>`) unless quieted.
pub fn status(msg: &str) {
    if !quiet() {
        eprintln!("wimpi: {msg}");
    }
}

/// Formats-and-reports convenience: `status!("ran {n} queries")`.
#[macro_export]
macro_rules! status {
    ($($arg:tt)*) => {
        $crate::log::status(&format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_reads_env() {
        // Can't mutate the environment safely under parallel tests; just
        // exercise the default path (unset or whatever the harness set).
        let _ = quiet();
        status("test status line");
    }
}
