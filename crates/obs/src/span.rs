//! Trace spans — one node per operator (or per morsel) of a query execution.
//!
//! A span records what an operator *did*: rows in and out, wall-clock time,
//! and the work-profile counters accumulated while it (and its subtree) ran.
//! Counters are stored **inclusive** (the whole subtree); [`Span::self_counters`]
//! subtracts the children, so summing `self` over the tree reproduces the
//! root's inclusive totals exactly — the invariant the trace checker in
//! `wimpi-core` enforces.

/// One node of a query trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Operator kind: `scan`, `filter`, `eval`, `join`, `aggregate`, `sort`,
    /// `limit`, `query`, or a stage/morsel name (`build`, `probe`, `morsel`).
    pub op: String,
    /// Human label (table name, expression sketch, morsel index…).
    pub label: String,
    /// Rows entering the operator.
    pub rows_in: u64,
    /// Rows leaving the operator.
    pub rows_out: u64,
    /// Measured wall-clock nanoseconds (the only non-deterministic field,
    /// along with the `worker` counter on morsel spans).
    pub wall_ns: u64,
    /// Inclusive work counters (subtree totals), zero entries omitted.
    pub counters: Vec<(String, u64)>,
    /// Child spans in deterministic order (operator inputs first, then
    /// stages, then morsels in morsel-index order).
    pub children: Vec<Span>,
}

impl Span {
    /// A span with everything zero/empty but `op` and `label`.
    pub fn leaf(op: impl Into<String>, label: impl Into<String>) -> Self {
        Span {
            op: op.into(),
            label: label.into(),
            rows_in: 0,
            rows_out: 0,
            wall_ns: 0,
            counters: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The value of one inclusive counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Exclusive counters: this span's inclusive totals minus the sum of its
    /// children's inclusive totals (saturating — children are nested
    /// sub-intervals of an additive counter, so this is exact in practice).
    pub fn self_counters(&self) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(name, v)| {
                let kids: u64 = self.children.iter().map(|c| c.counter(name)).sum();
                (name.clone(), v.saturating_sub(kids))
            })
            .collect()
    }

    /// Total number of spans in the subtree (including `self`).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// True when the tree is a single node.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Structural equality: everything except measured wall time, the
    /// `worker` counter (which worker ran a morsel is a race; *what* ran,
    /// over *which rows*, with *which work*, is deterministic), and the
    /// measured `peak_bytes` counter — a budget-constrained run reserves
    /// less than an unconstrained one yet must still structure-match it.
    pub fn structure_eq(&self, other: &Span) -> bool {
        let strip = |c: &Vec<(String, u64)>| -> Vec<(String, u64)> {
            c.iter().filter(|(n, _)| n != "worker" && n != "peak_bytes").cloned().collect()
        };
        self.op == other.op
            && self.label == other.label
            && self.rows_in == other.rows_in
            && self.rows_out == other.rows_out
            && strip(&self.counters) == strip(&other.counters)
            && self.children.len() == other.children.len()
            && self.children.iter().zip(&other.children).all(|(a, b)| a.structure_eq(b))
    }

    /// Renders the tree as aligned text, one line per span:
    /// `op[label]  rows_in→rows_out  wall  self-bytes  self-ops`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let selfs = self.self_counters();
        let get = |n: &str| selfs.iter().find(|(k, _)| k == n).map_or(0, |(_, v)| *v);
        let bytes = get("seq_read_bytes") + get("seq_write_bytes");
        let name = if self.label.is_empty() {
            self.op.clone()
        } else {
            format!("{}[{}]", self.op, self.label)
        };
        let mut line = format!(
            "{:indent$}{name:w$} {:>12} → {:<12} {:>10} {:>12} B {:>12} ops",
            "",
            self.rows_in,
            self.rows_out,
            fmt_ns(self.wall_ns),
            bytes,
            get("cpu_ops"),
            indent = depth * 2,
            w = 28usize.saturating_sub(depth * 2),
        );
        // Per-stage throughput from the measured wall clock and the span's
        // own (exclusive) traffic. Wall time is the non-deterministic field,
        // so rates appear in the rendering only — never in the JSON the
        // trace checker compares.
        if self.wall_ns > 0 {
            let secs = self.wall_ns as f64 / 1e9;
            let rows = self.rows_in.max(self.rows_out);
            line.push_str(&format!(
                " {:>10} rows/s {:>10}/s",
                fmt_rate(rows as f64 / secs),
                fmt_bytes(bytes as f64 / secs),
            ));
        }
        // The measured reservation peak is inclusive (a ratcheted maximum up
        // to this operator's finish), so it reads from the span itself.
        let peak = self.counter("peak_bytes");
        if peak > 0 {
            line.push_str(&format!(" {peak:>12} B peak"));
        }
        line.push('\n');
        out.push_str(&line);
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Serializes the tree as a JSON object (no external dependencies; the
    /// schema is validated by `wimpi-core`'s trace checker).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.json_into(&mut s);
        s
    }

    fn json_into(&self, s: &mut String) {
        s.push_str("{\"op\":");
        json_str(s, &self.op);
        s.push_str(",\"label\":");
        json_str(s, &self.label);
        s.push_str(&format!(
            ",\"rows_in\":{},\"rows_out\":{},\"wall_ns\":{}",
            self.rows_in, self.rows_out, self.wall_ns
        ));
        json_counters(s, "total", &self.counters);
        json_counters(s, "self", &self.self_counters());
        s.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            c.json_into(s);
        }
        s.push_str("]}");
    }
}

fn json_counters(s: &mut String, key: &str, counters: &[(String, u64)]) {
    s.push_str(&format!(",\"{key}\":{{"));
    for (i, (n, v)) in counters.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        json_str(s, n);
        s.push_str(&format!(":{v}"));
    }
    s.push('}');
}

/// Writes a JSON string literal (escaping quotes, backslashes, controls).
pub(crate) fn json_str(s: &mut String, v: &str) {
    s.push('"');
    for ch in v.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// `12.3M`-style scaling for row rates.
fn fmt_rate(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// `1.2 GB`-style scaling for byte rates.
fn fmt_bytes(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} GB", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} MB", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} KB", v / 1e3)
    } else {
        format!("{v:.0} B")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.1}µs", ns as f64 / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> Span {
        let mut child = Span::leaf("scan", "lineitem");
        child.rows_out = 10;
        child.counters = vec![("cpu_ops".into(), 4), ("seq_read_bytes".into(), 80)];
        let mut root = Span::leaf("query", "");
        root.rows_out = 3;
        root.counters = vec![("cpu_ops".into(), 10), ("seq_read_bytes".into(), 80)];
        root.children.push(child);
        root
    }

    #[test]
    fn self_counters_subtract_children() {
        let t = tree();
        let s = t.self_counters();
        assert_eq!(s[0], ("cpu_ops".to_string(), 6));
        assert_eq!(s[1], ("seq_read_bytes".to_string(), 0));
    }

    #[test]
    fn self_counters_sum_to_root_total() {
        let t = tree();
        fn sum(span: &Span, name: &str) -> u64 {
            span.self_counters().iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
                + span.children.iter().map(|c| sum(c, name)).sum::<u64>()
        }
        assert_eq!(sum(&t, "cpu_ops"), t.counter("cpu_ops"));
        assert_eq!(sum(&t, "seq_read_bytes"), t.counter("seq_read_bytes"));
    }

    #[test]
    fn structure_eq_ignores_wall_worker_and_peak() {
        let mut a = tree();
        let mut b = tree();
        a.wall_ns = 1;
        b.wall_ns = 99;
        a.children[0].counters.push(("worker".into(), 0));
        b.children[0].counters.push(("worker".into(), 3));
        a.counters.push(("peak_bytes".into(), 4096));
        b.counters.push(("peak_bytes".into(), 128));
        assert!(a.structure_eq(&b));
        b.children[0].rows_out = 11;
        assert!(!a.structure_eq(&b));
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut t = tree();
        t.label = "a\"b\\c\nd".into();
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\\\"b\\\\c\\nd"));
        assert!(j.contains("\"total\":{"));
        assert!(j.contains("\"self\":{"));
        assert!(j.contains("\"children\":["));
    }

    #[test]
    fn render_is_indented() {
        let text = tree().render();
        assert!(text.contains("query"));
        assert!(text.contains("  scan[lineitem]"));
        assert_eq!(tree().len(), 2);
    }

    #[test]
    fn render_reports_throughput_when_timed() {
        let mut t = tree();
        // Untimed spans carry no rates (wall time is unmeasured, not zero).
        assert!(!t.render().contains("rows/s"));
        // 10 rows and 80 self-bytes over 1 ms → 10K rows/s, 80.0 KB/s.
        t.children[0].wall_ns = 1_000_000;
        let text = t.render();
        assert!(text.contains("10.0K rows/s"), "{text}");
        assert!(text.contains("80.0 KB/s"), "{text}");
        // Rates never leak into the checker-compared JSON.
        assert!(!t.to_json().contains("rows/s"));
    }
}
