//! wimpi-obs — zero-cost-when-disabled observability for the WIMPI stack.
//!
//! Three small pieces, no dependencies:
//!
//! - [`Tracer`]/[`Span`]: operator-level trace trees for query execution.
//!   Spans carry rows in/out, wall time, and named work counters (the
//!   engine feeds its `WorkProfile` deltas through). Per-morsel spans are
//!   collected through a [`MorselSink`] and merged in morsel-index order, so
//!   trace *structure* is as deterministic as query results — only measured
//!   wall times and worker ids vary run to run.
//! - [`Registry`]: counters, gauges, and fixed-bucket histograms for event
//!   streams (cluster faults/recoveries, hwsim modeled-vs-measured
//!   residuals).
//! - [`log::status`]: uniform stderr status lines for the bench bins,
//!   silenced by `WIMPI_QUIET=1`, keeping stdout machine-clean.
//!
//! Why counters are *named pairs* and not `WorkProfile`: obs sits below the
//! engine in the dependency graph (engine depends on obs, never the other
//! way), so spans store `Vec<(String, u64)>` and the engine converts. The
//! generic form is also what the JSON export and the `wimpi-core` trace
//! checker consume.

pub mod log;
pub mod metrics;
pub mod span;
pub mod tracer;

pub use metrics::{Histogram, Metric, Registry};
pub use span::Span;
pub use tracer::{MorselSink, MorselSpan, Tracer};
