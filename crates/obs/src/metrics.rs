//! A small metrics registry: named counters, gauges, and fixed-bucket
//! histograms behind one mutex. Dependency-free and deterministic — metric
//! names are kept in a `BTreeMap`, so snapshots and renderings are always in
//! lexicographic order regardless of registration order.
//!
//! Used by `cluster` (fault/recovery/backoff events) and `hwsim`
//! (modeled-vs-measured residuals). Throughput is irrelevant at those call
//! sites — events are per-partition or per-query, not per-row — so a mutexed
//! map is the right trade against code size.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::span::{json_str, Span};

/// Bucket bounds for the `operator_peak_bytes` histogram: 4 KiB to 256 MiB
/// in ×16 steps — wimpy-node scratch sizes, per the paper's premise.
const PEAK_BOUNDS: [f64; 5] = [4096.0, 65536.0, 1048576.0, 16777216.0, 268435456.0];

/// One recorded metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonically increasing count of events.
    Counter(u64),
    /// Last-observed value.
    Gauge(f64),
    /// Observations bucketed against fixed upper bounds.
    Histogram(Histogram),
}

/// A histogram with fixed, caller-chosen bucket upper bounds plus an
/// implicit `+inf` bucket, tracking count and sum for mean recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// `counts[i]` = observations `<= bounds[i]` (non-cumulative);
    /// `counts[bounds.len()]` = observations above every bound.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len() + 1], count: 0, sum: 0.0 }
    }

    fn observe(&mut self, v: f64) {
        let slot = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.counts[slot] = self.counts[slot].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum += v;
    }

    /// Observations above the last bound — the explicit overflow bucket.
    /// Rendered as the `+inf` line, `_overflow`, and the JSON `"overflow"`
    /// key, so saturation of the bucket layout is visible without
    /// subtracting bucket counts from the total.
    pub fn overflow(&self) -> u64 {
        self.counts.last().copied().unwrap_or(0)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket holding the target rank — the standard
    /// fixed-bucket estimator. `None` for an empty histogram. A rank that
    /// lands in the overflow bucket reports the last bound (the estimate is
    /// then a *lower* bound; `overflow()` says how much mass sits there).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = seen + c;
            if (next as f64) >= rank && c > 0 {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: unbounded above, so report the last
                    // finite bound as a conservative estimate.
                    return Some(self.bounds.last().copied().unwrap_or(f64::INFINITY));
                };
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let into = (rank - seen as f64) / c as f64;
                return Some(lower + (upper - lower) * into.clamp(0.0, 1.0));
            }
            seen = next;
        }
        Some(self.bounds.last().copied().unwrap_or(f64::INFINITY))
    }
}

/// A registry of named metrics. Interior-mutable so subsystems that only
/// hand out `&self` (e.g. `WimpiCluster::run`) can still record.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first. The add
    /// saturates at `u64::MAX`: a counter that would wrap instead pins,
    /// keeping "monotonically increasing" true even for pathological deltas.
    pub fn inc(&self, name: &str, delta: u64) {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c = c.saturating_add(delta),
            other => panic!("metric {name:?} is not a counter: {other:?}"),
        }
    }

    /// Sets the named gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.metrics.lock().unwrap().insert(name.to_string(), Metric::Gauge(value));
    }

    /// Raises the named gauge to `value` if larger (creates it otherwise) —
    /// a high-water gauge.
    pub fn max_gauge(&self, name: &str, value: f64) {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(g) => *g = g.max(value),
            other => panic!("metric {name:?} is not a gauge: {other:?}"),
        }
    }

    /// Records the measured memory peaks of one query trace. The root span's
    /// inclusive `peak_bytes` (the query-wide reservation high-water mark)
    /// raises the `query_peak_bytes` gauge; every operator's *own* raise of
    /// the high-water mark (its self delta — the inclusive counter is a
    /// ratcheted maximum, so deltas attribute the growth) feeds the
    /// `operator_peak_bytes` histogram and a per-op `peak_bytes{op="..."}`
    /// high-water gauge.
    pub fn record_span_peaks(&self, span: &Span) {
        let total = span.counter("peak_bytes");
        if total > 0 {
            self.max_gauge("query_peak_bytes", total as f64);
        }
        self.walk_peaks(span);
    }

    fn walk_peaks(&self, span: &Span) {
        let own =
            span.self_counters().iter().find(|(n, _)| n == "peak_bytes").map_or(0, |&(_, v)| v);
        if own > 0 {
            self.observe("operator_peak_bytes", &PEAK_BOUNDS, own as f64);
            self.max_gauge(&format!("peak_bytes{{op=\"{}\"}}", span.op), own as f64);
        }
        for c in &span.children {
            self.walk_peaks(c);
        }
    }

    /// Records `value` into the named histogram, creating it with `bounds`
    /// on first use. Later calls ignore `bounds` (the first call wins).
    pub fn observe(&self, name: &str, bounds: &[f64], value: f64) {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Current value of a counter (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Estimated `q`-quantile of the named histogram (`None` when absent,
    /// empty, or not a histogram) — see [`Histogram::quantile`]. Benches use
    /// this for p50/p99 tail-latency reporting.
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<f64> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Histogram(h)) => h.quantile(q),
            _ => None,
        }
    }

    /// Current value of a gauge (`None` when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.metrics.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.lock().unwrap().is_empty()
    }

    /// Renders every metric as `name value` lines (histograms as
    /// `name{le=bound} count` plus `_count`/`_sum`), Prometheus-flavoured.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.snapshot() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                Metric::Gauge(g) => out.push_str(&format!("{name} {g}\n")),
                Metric::Histogram(h) => {
                    for (i, c) in h.counts.iter().enumerate() {
                        let le = h
                            .bounds
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+inf".to_string());
                        out.push_str(&format!("{name}{{le=\"{le}\"}} {c}\n"));
                    }
                    out.push_str(&format!("{name}_overflow {}\n", h.overflow()));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                }
            }
        }
        out
    }

    /// Serializes every metric as one JSON object
    /// (`{"name": 3, "g": 1.5, "h": {"bounds": [...], ...}}`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, metric)) in self.snapshot().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json_str(&mut s, &name);
            s.push(':');
            match metric {
                Metric::Counter(c) => s.push_str(&c.to_string()),
                Metric::Gauge(g) => s.push_str(&json_f64(g)),
                Metric::Histogram(h) => {
                    s.push_str("{\"bounds\":[");
                    for (j, b) in h.bounds.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&json_f64(*b));
                    }
                    s.push_str("],\"counts\":[");
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&c.to_string());
                    }
                    s.push_str(&format!(
                        "],\"overflow\":{},\"count\":{},\"sum\":{}}}",
                        h.overflow(),
                        h.count,
                        json_f64(h.sum)
                    ));
                }
            }
        }
        s.push('}');
        s
    }
}

/// f64 → JSON number (JSON has no NaN/inf; map them to null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.inc("faults.crash", 1);
        r.inc("faults.crash", 2);
        assert_eq!(r.counter("faults.crash"), 3);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let r = Registry::new();
        r.inc("near_max", u64::MAX - 1);
        r.inc("near_max", 5);
        assert_eq!(r.counter("near_max"), u64::MAX, "saturates, never wraps");
        r.inc("near_max", 1);
        assert_eq!(r.counter("near_max"), u64::MAX, "stays pinned once saturated");
    }

    #[test]
    fn histogram_overflow_bucket_is_explicit() {
        let r = Registry::new();
        let bounds = [1.0, 10.0];
        r.observe("lat", &bounds, 0.5);
        r.observe("lat", &bounds, 50.0);
        r.observe("lat", &bounds, 1e9);
        let snap = r.snapshot();
        let (_, Metric::Histogram(h)) = &snap[0] else { panic!("expected histogram") };
        assert_eq!(h.overflow(), 2, "values above the last bound are countable directly");
        assert_eq!(h.overflow(), h.count - 1, "consistent with total minus bounded buckets");
        let text = r.render();
        assert!(text.contains("lat_overflow 2"), "render exposes the overflow line:\n{text}");
        let json = r.to_json();
        assert!(json.contains("\"overflow\":2"), "json exposes the overflow key:\n{json}");
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        r.set_gauge("coverage", 0.5);
        r.set_gauge("coverage", 0.9);
        assert_eq!(r.gauge("coverage"), Some(0.9));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = Registry::new();
        let bounds = [1.0, 10.0];
        r.observe("backoff_s", &bounds, 0.5);
        r.observe("backoff_s", &bounds, 1.0); // inclusive upper bound
        r.observe("backoff_s", &bounds, 5.0);
        r.observe("backoff_s", &bounds, 100.0); // +inf bucket
        let snap = r.snapshot();
        let (_, Metric::Histogram(h)) = &snap[0] else { panic!("expected histogram") };
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 106.5).abs() < 1e-9);
    }

    #[test]
    fn snapshot_is_sorted_and_render_stable() {
        let r = Registry::new();
        r.inc("z.last", 1);
        r.inc("a.first", 1);
        let names: Vec<_> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        let text = r.render();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
    }

    #[test]
    fn span_peaks_feed_gauges_and_histogram() {
        // Root peak 1000 of which the child raised 600: the query gauge
        // reads the root, the per-op gauges read the self deltas.
        let mut child = Span::leaf("join", "");
        child.counters = vec![("peak_bytes".into(), 600)];
        let mut root = Span::leaf("query", "");
        root.counters = vec![("peak_bytes".into(), 1000)];
        root.children.push(child);
        let r = Registry::new();
        r.record_span_peaks(&root);
        assert_eq!(r.gauge("query_peak_bytes"), Some(1000.0));
        assert_eq!(r.gauge("peak_bytes{op=\"join\"}"), Some(600.0));
        assert_eq!(r.gauge("peak_bytes{op=\"query\"}"), Some(400.0));
        let snap = r.snapshot();
        let Some((_, Metric::Histogram(h))) = snap.iter().find(|(n, _)| n == "operator_peak_bytes")
        else {
            panic!("expected operator_peak_bytes histogram")
        };
        assert_eq!(h.count, 2);
        // A second, smaller query must not lower the high-water gauges.
        let mut small = Span::leaf("query", "");
        small.counters = vec![("peak_bytes".into(), 10)];
        r.record_span_peaks(&small);
        assert_eq!(r.gauge("query_peak_bytes"), Some(1000.0));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let bounds = [1.0, 2.0, 4.0];
        // 4 observations in (1, 2], 4 in (2, 4]: p50 sits at the 2.0
        // boundary, p100 at the top of the last occupied bucket.
        for v in [1.5, 1.6, 1.7, 1.8, 2.5, 2.6, 3.0, 3.5] {
            r.observe("lat", &bounds, v);
        }
        let p50 = r.histogram_quantile("lat", 0.5).unwrap();
        assert!((p50 - 2.0).abs() < 1e-9, "p50 = {p50}");
        let p100 = r.histogram_quantile("lat", 1.0).unwrap();
        assert!((p100 - 4.0).abs() < 1e-9, "p100 = {p100}");
        let p25 = r.histogram_quantile("lat", 0.25).unwrap();
        assert!(p25 > 1.0 && p25 <= 2.0, "p25 = {p25}");
        assert_eq!(r.histogram_quantile("missing", 0.5), None);
    }

    #[test]
    fn quantile_overflow_reports_last_bound() {
        let r = Registry::new();
        r.observe("lat", &[1.0], 50.0);
        // All mass in the overflow bucket: the estimate is the last finite
        // bound — a documented lower bound, not an invented value.
        assert_eq!(r.histogram_quantile("lat", 0.99), Some(1.0));
    }

    #[test]
    fn json_is_an_object() {
        let r = Registry::new();
        assert_eq!(r.to_json(), "{}");
        r.inc("c", 2);
        r.set_gauge("g", 1.5);
        r.observe("h", &[1.0], 0.5);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"c\":2"));
        assert!(j.contains("\"g\":1.5"));
        assert!(j.contains("\"bounds\":[1]"));
    }
}
