//! The tracer — builds a [`Span`] tree while a query runs, or does nothing.
//!
//! A disabled tracer is a `None` behind an immutable reference: every call is
//! an inlineable branch on a discriminant, no locking, no allocation, no
//! timestamps. The engine threads `&Tracer` through its operators and defaults
//! to the shared [`Tracer::off`] instance, so untraced execution pays only
//! that branch.
//!
//! An enabled tracer keeps a span *stack* behind a mutex. Operators push a
//! span, run, then pop with their row counts and counter deltas; popping
//! attaches the finished span to its parent. The engine is single-threaded at
//! operator granularity (parallelism lives inside operators, reported through
//! [`MorselSink`]s), so the mutex is uncontended — it exists to keep `Tracer`
//! `Sync` so one instance can be shared with worker threads.

use std::sync::Mutex;
use std::time::Instant;

use crate::span::Span;

/// A span in progress: label data plus the wall-clock start.
struct Open {
    span: Span,
    started: Instant,
}

/// Records a query's execution as a tree of [`Span`]s. See module docs.
pub struct Tracer {
    inner: Option<Mutex<Vec<Open>>>,
}

/// The shared disabled tracer, for default arguments (`Tracer::off()`).
static OFF: Tracer = Tracer::disabled();

impl Tracer {
    /// A tracer that records nothing. `const` so it can back a `static`.
    pub const fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer that records spans.
    pub fn enabled() -> Self {
        Tracer { inner: Some(Mutex::new(Vec::new())) }
    }

    /// A shared reference to the disabled tracer — the default for every
    /// execution path that was not asked to trace.
    pub fn off() -> &'static Tracer {
        &OFF
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span. Every `push` must be paired with exactly one [`pop`]
    /// (`Tracer::pop`) on the same tracer, in LIFO order.
    pub fn push(&self, op: &str, label: &str) {
        if let Some(stack) = &self.inner {
            let open = Open { span: Span::leaf(op, label), started: Instant::now() };
            stack.lock().unwrap().push(open);
        }
    }

    /// Closes the innermost open span with its observed totals and attaches
    /// it to the parent (or keeps it as a finished root).
    ///
    /// `counters` are the span's *inclusive* work-profile deltas — the
    /// caller measures profile-before vs profile-after around its subtree.
    pub fn pop(&self, rows_in: u64, rows_out: u64, counters: Vec<(String, u64)>) {
        if let Some(stack) = &self.inner {
            let mut stack = stack.lock().unwrap();
            let open = stack.pop().expect("Tracer::pop without matching push");
            let mut span = open.span;
            span.rows_in = rows_in;
            span.rows_out = rows_out;
            span.wall_ns = open.started.elapsed().as_nanos() as u64;
            span.counters = counters;
            match stack.last_mut() {
                Some(parent) => parent.span.children.push(span),
                None => {
                    // Finished root: park it as a closed sibling of the stack
                    // bottom so take_root can collect it.
                    let open = Open { span, started: Instant::now() };
                    stack.push(open);
                    // Mark as closed by convention: roots are only taken via
                    // take_root, which pops whatever remains.
                }
            }
        }
    }

    /// Attaches an already-built child span (e.g. merged morsel spans) to the
    /// innermost open span. No-op when disabled or when nothing is open.
    pub fn attach(&self, child: Span) {
        if let Some(stack) = &self.inner {
            if let Some(open) = stack.lock().unwrap().last_mut() {
                open.span.children.push(child);
            }
        }
    }

    /// Attaches many children at once (order preserved).
    pub fn attach_all(&self, children: Vec<Span>) {
        if children.is_empty() {
            return;
        }
        if let Some(stack) = &self.inner {
            if let Some(open) = stack.lock().unwrap().last_mut() {
                open.span.children.extend(children);
            }
        }
    }

    /// A sink for per-morsel spans, enabled iff this tracer is. Workers
    /// record into it without touching the span stack (no ordering races);
    /// the operator merges the result deterministically afterwards.
    pub fn morsel_sink(&self) -> MorselSink {
        if self.is_enabled() {
            MorselSink { inner: Some(Mutex::new(Vec::new())) }
        } else {
            MorselSink { inner: None }
        }
    }

    /// Removes and returns the finished root span. Returns `None` when
    /// disabled or when nothing was recorded. Panics if a span is still open
    /// (push/pop mismatch).
    pub fn take_root(&self) -> Option<Span> {
        let stack = self.inner.as_ref()?;
        let mut stack = stack.lock().unwrap();
        match stack.len() {
            0 => None,
            1 => Some(stack.pop().unwrap().span),
            n => panic!("Tracer::take_root with {n} spans still open"),
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

/// One morsel's execution record, produced by a worker thread.
#[derive(Debug, Clone, Copy)]
pub struct MorselSpan {
    /// Morsel index within the operator (determines merge order).
    pub index: usize,
    /// Rows the morsel processed.
    pub rows: u64,
    /// Worker that ran it (non-deterministic; kept for load inspection).
    pub worker: usize,
    /// Wall-clock nanoseconds the morsel took (non-deterministic).
    pub wall_ns: u64,
}

/// Collects [`MorselSpan`]s from worker threads. Disabled sinks (from a
/// disabled tracer) make [`record`](MorselSink::record) a no-op branch.
pub struct MorselSink {
    inner: Option<Mutex<Vec<MorselSpan>>>,
}

impl MorselSink {
    /// A sink that records nothing.
    pub const fn disabled() -> Self {
        MorselSink { inner: None }
    }

    /// True when morsel spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one morsel's execution. Called from worker threads.
    pub fn record(&self, span: MorselSpan) {
        if let Some(buf) = &self.inner {
            buf.lock().unwrap().push(span);
        }
    }

    /// Drains the recorded morsels as child spans sorted by morsel index —
    /// the same order the engine merges morsel results, so the trace tree is
    /// as deterministic as the query output (only `wall_ns` and the `worker`
    /// counter vary between runs).
    pub fn into_spans(self) -> Vec<Span> {
        let Some(buf) = self.inner else { return Vec::new() };
        let mut morsels = buf.into_inner().unwrap();
        morsels.sort_by_key(|m| m.index);
        morsels
            .into_iter()
            .map(|m| {
                let mut s = Span::leaf("morsel", format!("{}", m.index));
                s.rows_in = m.rows;
                s.rows_out = m.rows;
                s.wall_ns = m.wall_ns;
                s.counters = vec![("worker".to_string(), m.worker as u64)];
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.push("scan", "x");
        t.pop(1, 1, vec![]);
        t.attach(Span::leaf("a", ""));
        assert!(t.take_root().is_none());
        assert!(!t.is_enabled());
        assert!(!Tracer::off().is_enabled());
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let t = Tracer::enabled();
        t.push("query", "");
        t.push("filter", "p");
        t.push("scan", "lineitem");
        t.pop(0, 100, vec![("seq_read_bytes".into(), 800)]);
        t.pop(100, 40, vec![("cpu_ops".into(), 100), ("seq_read_bytes".into(), 800)]);
        t.pop(0, 40, vec![("cpu_ops".into(), 100), ("seq_read_bytes".into(), 800)]);
        let root = t.take_root().expect("root span");
        assert_eq!(root.op, "query");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].op, "filter");
        assert_eq!(root.children[0].children[0].op, "scan");
        assert_eq!(root.children[0].children[0].rows_out, 100);
        // take_root consumed it.
        assert!(t.take_root().is_none());
    }

    #[test]
    fn attach_adds_children_to_open_span() {
        let t = Tracer::enabled();
        t.push("aggregate", "");
        t.attach_all(vec![Span::leaf("morsel", "0"), Span::leaf("morsel", "1")]);
        t.pop(10, 2, vec![]);
        let root = t.take_root().unwrap();
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[1].label, "1");
    }

    #[test]
    fn morsel_sink_sorts_by_index() {
        let t = Tracer::enabled();
        let sink = t.morsel_sink();
        assert!(sink.is_enabled());
        sink.record(MorselSpan { index: 2, rows: 30, worker: 1, wall_ns: 5 });
        sink.record(MorselSpan { index: 0, rows: 10, worker: 0, wall_ns: 7 });
        sink.record(MorselSpan { index: 1, rows: 20, worker: 1, wall_ns: 6 });
        let spans = sink.into_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].label, "0");
        assert_eq!(spans[0].rows_in, 10);
        assert_eq!(spans[2].label, "2");
        assert_eq!(spans[1].counter("worker"), 1);
    }

    #[test]
    fn disabled_sink_is_empty() {
        let sink = Tracer::disabled().morsel_sink();
        assert!(!sink.is_enabled());
        sink.record(MorselSpan { index: 0, rows: 1, worker: 0, wall_ns: 1 });
        assert!(sink.into_spans().is_empty());
    }
}
