//! End-to-end SQL tests: actual TPC-H SQL text, executed through the
//! lexer → parser → planner → engine pipeline, compared against the
//! hand-built plans in `wimpi-queries`.

use wimpi_sql::{execute_sql, plan, SqlError};
use wimpi_storage::Catalog;
use wimpi_tpch::Generator;

fn catalog() -> Catalog {
    Generator::new(0.01).generate_catalog().expect("generation succeeds")
}

fn assert_same_relation(a: &wimpi_engine::Relation, b: &wimpi_engine::Relation, what: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{what}: row count");
    for name in a.names() {
        let ca = a.column(name).expect("col");
        let cb = b.column(name).unwrap_or_else(|_| panic!("{what}: column {name} missing"));
        assert_eq!(ca.as_ref(), cb.as_ref(), "{what}: column {name}");
    }
}

#[test]
fn q6_sql_matches_builder() {
    let cat = catalog();
    let (sql_rel, _) = execute_sql(
        "select sum(l_extendedprice * l_discount) as revenue \
         from lineitem \
         where l_shipdate >= date '1994-01-01' \
           and l_shipdate < date '1994-01-01' + interval '1' year \
           and l_discount between 0.05 and 0.07 \
           and l_quantity < 24",
        &cat,
    )
    .expect("SQL Q6 runs");
    let (builder_rel, _) =
        wimpi_queries::run(&wimpi_queries::query(6), &cat).expect("builder Q6 runs");
    assert_same_relation(&sql_rel, &builder_rel, "Q6");
}

#[test]
fn q1_sql_matches_builder() {
    let cat = catalog();
    let (sql_rel, _) = execute_sql(
        "select l_returnflag, l_linestatus, \
                sum(l_quantity) as sum_qty, \
                sum(l_extendedprice) as sum_base_price, \
                sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
                sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
                avg(l_quantity) as avg_qty, \
                avg(l_extendedprice) as avg_price, \
                avg(l_discount) as avg_disc, \
                count(*) as count_order \
         from lineitem \
         where l_shipdate <= date '1998-12-01' - interval '90' day \
         group by l_returnflag, l_linestatus \
         order by l_returnflag, l_linestatus",
        &cat,
    )
    .expect("SQL Q1 runs");
    let (builder_rel, _) =
        wimpi_queries::run(&wimpi_queries::query(1), &cat).expect("builder Q1 runs");
    assert_same_relation(&sql_rel, &builder_rel, "Q1");
}

#[test]
fn q3_sql_matches_builder_values() {
    let cat = catalog();
    let (sql_rel, _) = execute_sql(
        "select l_orderkey, o_orderdate, o_shippriority, \
                sum(l_extendedprice * (1 - l_discount)) as revenue \
         from customer, orders, lineitem \
         where c_mktsegment = 'BUILDING' \
           and c_custkey = o_custkey \
           and l_orderkey = o_orderkey \
           and o_orderdate < date '1995-03-15' \
           and l_shipdate > date '1995-03-15' \
         group by l_orderkey, o_orderdate, o_shippriority \
         order by revenue desc, o_orderdate \
         limit 10",
        &cat,
    )
    .expect("SQL Q3 runs");
    let (builder_rel, _) =
        wimpi_queries::run(&wimpi_queries::query(3), &cat).expect("builder Q3 runs");
    assert_eq!(sql_rel.num_rows(), builder_rel.num_rows(), "Q3 rows");
    // Revenue series must match exactly (same data, same arithmetic).
    assert_eq!(
        sql_rel.column("revenue").expect("col").as_decimal().expect("dec"),
        builder_rel.column("revenue").expect("col").as_decimal().expect("dec"),
        "Q3 revenue"
    );
}

#[test]
fn q5_sql_with_two_key_join_edge() {
    let cat = catalog();
    // The c_nationkey = s_nationkey equality is the interesting part: the
    // planner must fold it into the supplier join as a second key (or keep
    // it as a residual filter — either is correct).
    let (sql_rel, _) = execute_sql(
        "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
         from customer, orders, lineitem, supplier, nation, region \
         where c_custkey = o_custkey \
           and l_orderkey = o_orderkey \
           and l_suppkey = s_suppkey \
           and c_nationkey = s_nationkey \
           and s_nationkey = n_nationkey \
           and n_regionkey = r_regionkey \
           and r_name = 'ASIA' \
           and o_orderdate >= date '1994-01-01' \
           and o_orderdate < date '1994-01-01' + interval '1' year \
         group by n_name \
         order by revenue desc",
        &cat,
    )
    .expect("SQL Q5 runs");
    let (builder_rel, _) =
        wimpi_queries::run(&wimpi_queries::query(5), &cat).expect("builder Q5 runs");
    assert_eq!(sql_rel.num_rows(), builder_rel.num_rows(), "Q5 rows");
    assert_eq!(
        sql_rel.column("revenue").expect("col").as_decimal().expect("dec"),
        builder_rel.column("revenue").expect("col").as_decimal().expect("dec"),
        "Q5 revenue"
    );
}

#[test]
fn q14_sql_matches_builder() {
    let cat = catalog();
    let (sql_rel, _) = execute_sql(
        "select 100 * sum(case when p_type like 'PROMO%' \
                              then l_extendedprice * (1 - l_discount) \
                              else 0.00 end) / \
                sum(l_extendedprice * (1 - l_discount)) as promo_revenue \
         from lineitem, part \
         where l_partkey = p_partkey \
           and l_shipdate >= date '1995-09-01' \
           and l_shipdate < date '1995-09-01' + interval '1' month",
        &cat,
    )
    .expect("SQL Q14 runs");
    let (builder_rel, _) =
        wimpi_queries::run(&wimpi_queries::query(14), &cat).expect("builder Q14 runs");
    let a = sql_rel.column("promo_revenue").expect("col").as_f64().expect("f64")[0];
    let b = builder_rel.column("promo_revenue").expect("col").as_f64().expect("f64")[0];
    assert!((a - b).abs() < 1e-9, "Q14: {a} vs {b}");
}

#[test]
fn q12_sql_with_count_case() {
    let cat = catalog();
    let (sql_rel, _) = execute_sql(
        "select l_shipmode, \
                sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 1 else 0 end) \
                  as high_line_count, \
                sum(case when o_orderpriority in ('1-URGENT', '2-HIGH') then 0 else 1 end) \
                  as low_line_count \
         from orders, lineitem \
         where o_orderkey = l_orderkey \
           and l_shipmode in ('MAIL', 'SHIP') \
           and l_commitdate < l_receiptdate \
           and l_shipdate < l_commitdate \
           and l_receiptdate >= date '1994-01-01' \
           and l_receiptdate < date '1994-01-01' + interval '1' year \
         group by l_shipmode \
         order by l_shipmode",
        &cat,
    )
    .expect("SQL Q12 runs");
    let (builder_rel, _) =
        wimpi_queries::run(&wimpi_queries::query(12), &cat).expect("builder Q12 runs");
    assert_eq!(sql_rel.num_rows(), builder_rel.num_rows());
    for row in 0..sql_rel.num_rows() {
        let a = sql_rel.value(row, "high_line_count").expect("cell");
        let b = builder_rel.value(row, "high_line_count").expect("cell");
        assert_eq!(a.as_i64(), b.as_i64(), "high_line_count row {row}");
    }
}

#[test]
fn group_key_expression_reference() {
    let cat = catalog();
    // GROUP BY an expression that also appears in the select list.
    let (rel, _) = execute_sql(
        "select extract(year from o_orderdate) as o_year, count(*) as n \
         from orders group by extract(year from o_orderdate) order by o_year",
        &cat,
    )
    .expect("runs");
    assert!(rel.num_rows() >= 6, "1992–1998 order years");
    let years = rel.column("o_year").expect("col");
    let years = years.as_i32().expect("i32");
    assert!(years.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn order_by_position() {
    let cat = catalog();
    let (rel, _) = execute_sql(
        "select o_orderpriority, count(*) as n from orders group by o_orderpriority \
         order by 2 desc limit 1",
        &cat,
    )
    .expect("runs");
    assert_eq!(rel.num_rows(), 1);
}

#[test]
fn helpful_errors_for_unsupported_sql() {
    let cat = catalog();
    // Cross join.
    let err = plan("select * from lineitem, region", &cat).unwrap_err();
    assert!(matches!(err, SqlError::Unsupported(_)), "{err}");
    // Self-join.
    let err =
        plan("select * from nation n1, nation n2 where n1.n_nationkey = n2.n_regionkey", &cat)
            .unwrap_err();
    assert!(matches!(err, SqlError::Unsupported(_)), "{err}");
    // Unknown table / column.
    assert!(matches!(plan("select * from nope", &cat), Err(SqlError::Plan(_))));
    assert!(matches!(plan("select bogus from lineitem", &cat), Err(SqlError::Plan(_))));
    // ORDER BY something not in the output.
    assert!(matches!(
        plan("select l_orderkey from lineitem order by l_tax", &cat),
        Err(SqlError::Plan(_))
    ));
}

#[test]
fn select_star_passthrough() {
    let cat = catalog();
    let (rel, _) = execute_sql("select * from region", &cat).expect("runs");
    assert_eq!(rel.num_rows(), 5);
    assert_eq!(rel.num_columns(), 3);
}
