//! SQL front-end errors.

use std::fmt;

/// Errors from lexing, parsing, planning, or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer failure.
    Lex(String),
    /// Grammar failure.
    Parse(String),
    /// Name resolution / planning failure.
    Plan(String),
    /// A SQL feature outside the supported subset.
    Unsupported(String),
    /// Execution failed — the engine's typed error, preserved so callers
    /// (the shell's concurrent service, retry logic) can still distinguish
    /// `ResourceExhausted` and `Cancelled` from plain failures.
    Engine(wimpi_engine::EngineError),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(s) => write!(f, "lex error: {s}"),
            SqlError::Parse(s) => write!(f, "parse error: {s}"),
            SqlError::Plan(s) => write!(f, "plan error: {s}"),
            SqlError::Unsupported(s) => write!(f, "unsupported SQL: {s}"),
            SqlError::Engine(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for SqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SqlError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wimpi_engine::EngineError> for SqlError {
    fn from(e: wimpi_engine::EngineError) -> Self {
        SqlError::Engine(e)
    }
}

impl SqlError {
    /// Converts into the engine's error type: `Engine` unwraps to the
    /// original, front-end failures become `EngineError::Plan`. This is what
    /// lets a `Service` job run SQL and keep typed retry/cancel semantics.
    pub fn into_engine(self) -> wimpi_engine::EngineError {
        match self {
            SqlError::Engine(e) => e,
            other => wimpi_engine::EngineError::Plan(other.to_string()),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_prefix_by_stage() {
        assert!(SqlError::Lex("x".into()).to_string().starts_with("lex"));
        assert!(SqlError::Parse("x".into()).to_string().starts_with("parse"));
        assert!(SqlError::Unsupported("x".into()).to_string().starts_with("unsupported"));
    }
}
