//! SQL front-end errors.

use std::fmt;

/// Errors from lexing, parsing, or planning SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Tokenizer failure.
    Lex(String),
    /// Grammar failure.
    Parse(String),
    /// Name resolution / planning failure.
    Plan(String),
    /// A SQL feature outside the supported subset.
    Unsupported(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex(s) => write!(f, "lex error: {s}"),
            SqlError::Parse(s) => write!(f, "parse error: {s}"),
            SqlError::Plan(s) => write!(f, "plan error: {s}"),
            SqlError::Unsupported(s) => write!(f, "unsupported SQL: {s}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_prefix_by_stage() {
        assert!(SqlError::Lex("x".into()).to_string().starts_with("lex"));
        assert!(SqlError::Parse("x".into()).to_string().starts_with("parse"));
        assert!(SqlError::Unsupported("x".into()).to_string().starts_with("unsupported"));
    }
}
