//! SQL tokens.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased) or bare identifier (original case).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Decimal literal, kept textual so the planner can choose a scale.
    Number(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `;`.
    Semi,
}

impl Token {
    /// True when the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Number(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semi => write!(f, ";"),
        }
    }
}
