//! Lowers a parsed [`Query`] onto the engine's [`LogicalPlan`].
//!
//! Planning steps:
//!
//! 1. **Name resolution** — FROM tables are looked up in the catalog;
//!    column references (qualified or bare) must resolve to exactly one
//!    table. TPC-H's prefixed column names make bare references unambiguous.
//! 2. **Join-graph construction** — WHERE conjuncts of the shape
//!    `t1.col = t2.col` between different tables become join edges; the
//!    planner joins greedily from the first FROM table through connected
//!    tables (hash join, build side = the newly joined table). Disconnected
//!    FROM tables (cross joins) are rejected.
//! 3. **Aggregation** — if the select list contains aggregates or GROUP BY
//!    is present, aggregate subtrees are pulled out into an `Aggregate`
//!    node with synthesized names and the select list is rewritten over its
//!    output (so `100 * sum(a) / sum(b)` plans as a post-aggregation
//!    projection).
//! 4. **HAVING / ORDER BY / LIMIT** map onto Filter / Sort / Limit.

use std::collections::BTreeSet;

use crate::ast::*;
use crate::error::{Result, SqlError};
use wimpi_engine::expr as ee;
use wimpi_engine::plan::JoinType;
use wimpi_engine::plan::{AggExpr, AggFunc, LogicalPlan, SortKey};
use wimpi_storage::{Catalog, Date32, Decimal64, Value};

/// Plans a parsed query against a catalog.
pub fn plan_query(q: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    let scope = Scope::resolve(&q.from, catalog)?;

    // --- split WHERE into join edges and residual filters ---------------
    let mut conjuncts = Vec::new();
    if let Some(w) = &q.where_clause {
        split_and(w, &mut conjuncts);
    }
    let mut edges: Vec<(usize, String, usize, String)> = Vec::new();
    let mut residual: Vec<SqlExpr> = Vec::new();
    for c in conjuncts {
        match as_join_edge(&c, &scope)? {
            Some(edge) => edges.push(edge),
            None => residual.push(c),
        }
    }

    // --- build the join tree --------------------------------------------
    let mut joined: BTreeSet<usize> = BTreeSet::new();
    joined.insert(0);
    let mut plan = LogicalPlan::Scan { table: scope.tables[0].0.clone(), projection: None };
    let mut remaining: BTreeSet<usize> = (1..scope.tables.len()).collect();
    let mut pending_edges = edges;
    while !remaining.is_empty() {
        // Find a table connected to the joined set.
        let next = remaining
            .iter()
            .copied()
            .find(|&t| {
                pending_edges.iter().any(|(a, _, b, _)| {
                    (joined.contains(a) && *b == t) || (joined.contains(b) && *a == t)
                })
            })
            .ok_or_else(|| {
                SqlError::Unsupported(
                    "cross joins are not supported: every FROM table needs an equality \
                     predicate connecting it"
                        .to_string(),
                )
            })?;
        // Collect every edge between the joined set and `next`.
        let mut on: Vec<(String, String)> = Vec::new();
        pending_edges.retain(|(a, ca, b, cb)| {
            if joined.contains(a) && *b == next {
                on.push((ca.clone(), cb.clone()));
                false
            } else if joined.contains(b) && *a == next {
                on.push((cb.clone(), ca.clone()));
                false
            } else {
                true
            }
        });
        let right = LogicalPlan::Scan { table: scope.tables[next].0.clone(), projection: None };
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            on,
            join_type: JoinType::Inner,
        };
        joined.insert(next);
        remaining.remove(&next);
    }
    // Any edges left (e.g. a second equality between already-joined tables)
    // become residual filters.
    for (_, ca, _, cb) in pending_edges {
        residual.push(SqlExpr::Binary {
            op: SqlOp::Eq,
            left: Box::new(SqlExpr::Column { qualifier: None, name: ca }),
            right: Box::new(SqlExpr::Column { qualifier: None, name: cb }),
        });
    }
    if !residual.is_empty() {
        let pred = residual
            .into_iter()
            .map(|c| lower_expr(&c, &scope))
            .collect::<Result<Vec<_>>>()?
            .into_iter()
            .reduce(|a, b| a.and(b))
            .expect("non-empty");
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred };
    }

    // --- aggregation ------------------------------------------------------
    let items = q.items.as_ref().ok_or_else(|| {
        SqlError::Unsupported("SELECT * with GROUP BY/aggregates is ambiguous".to_string())
    });
    let has_agg = q
        .items
        .as_ref()
        .map(|items| items.iter().any(|i| i.expr.contains_aggregate()))
        .unwrap_or(false)
        || q.having.as_ref().is_some_and(|h| h.contains_aggregate());

    let mut output_names: Vec<String> = Vec::new();
    if has_agg || !q.group_by.is_empty() {
        let items = items?;
        // Group keys: named after the select item that matches them, else
        // synthesized.
        let mut group_cols: Vec<(ee::Expr, String)> = Vec::new();
        let mut key_names: Vec<(SqlExpr, String)> = Vec::new();
        for (i, g) in q.group_by.iter().enumerate() {
            let name = items
                .iter()
                .find(|it| &it.expr == g)
                .map(item_name)
                .unwrap_or_else(|| format!("__key{i}"));
            group_cols.push((lower_expr(g, &scope)?, name.clone()));
            key_names.push((g.clone(), name));
        }
        // Extract aggregates from select items and HAVING.
        let mut aggs: Vec<AggExpr> = Vec::new();
        let mut final_items: Vec<(ee::Expr, String)> = Vec::new();
        for it in items {
            let name = item_name(it);
            let rewritten = extract_aggs(&it.expr, &scope, &mut aggs, &key_names)?;
            output_names.push(name.clone());
            final_items.push((rewritten, name));
        }
        let having = match &q.having {
            Some(h) => Some(extract_aggs(h, &scope, &mut aggs, &key_names)?),
            None => None,
        };
        plan = LogicalPlan::Aggregate { input: Box::new(plan), group_by: group_cols, aggs };
        if let Some(h) = having {
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: h };
        }
        plan = LogicalPlan::Project { input: Box::new(plan), exprs: final_items };
    } else {
        match &q.items {
            None => {
                // SELECT *: keep every column of every FROM table.
                output_names = scope.all_columns();
            }
            Some(items) => {
                let mut exprs = Vec::new();
                for it in items {
                    let name = item_name(it);
                    output_names.push(name.clone());
                    exprs.push((lower_expr(&it.expr, &scope)?, name));
                }
                plan = LogicalPlan::Project { input: Box::new(plan), exprs };
            }
        }
    }

    // --- ORDER BY / LIMIT -------------------------------------------------
    if !q.order_by.is_empty() {
        let mut keys = Vec::new();
        for o in &q.order_by {
            let column = match &o.key {
                OrderKey::Name(n) => {
                    let found = output_names.iter().find(|c| c.eq_ignore_ascii_case(n));
                    found.cloned().ok_or_else(|| {
                        SqlError::Plan(format!("ORDER BY column {n} is not in the output"))
                    })?
                }
                OrderKey::Position(p) => output_names
                    .get(p - 1)
                    .cloned()
                    .ok_or_else(|| SqlError::Plan(format!("ORDER BY position {p} out of range")))?,
            };
            keys.push(SortKey { column, descending: o.descending });
        }
        plan = LogicalPlan::Sort { input: Box::new(plan), keys };
    }
    if let Some(n) = q.limit {
        plan = LogicalPlan::Limit { input: Box::new(plan), n };
    }
    Ok(plan)
}

/// Resolution scope: FROM tables and their columns.
struct Scope {
    /// (table name, alias, column names) per FROM entry.
    tables: Vec<(String, Option<String>, Vec<String>)>,
}

impl Scope {
    fn resolve(from: &[TableRef], catalog: &Catalog) -> Result<Scope> {
        if from.is_empty() {
            return Err(SqlError::Plan("FROM clause is empty".to_string()));
        }
        let mut tables = Vec::new();
        for t in from {
            let table = catalog
                .table(&t.name)
                .map_err(|_| SqlError::Plan(format!("unknown table {}", t.name)))?;
            let cols = table.schema().fields().iter().map(|f| f.name.clone()).collect::<Vec<_>>();
            tables.push((t.name.clone(), t.alias.clone(), cols));
        }
        // Reject duplicate column names across tables (self-joins need
        // aliased projections, which the subset does not cover).
        let mut seen = BTreeSet::new();
        for (name, _, cols) in &tables {
            for c in cols {
                if !seen.insert(c.clone()) {
                    return Err(SqlError::Unsupported(format!(
                        "column {c} appears in more than one FROM table ({name}): self-joins \
                         are outside the SQL subset"
                    )));
                }
            }
        }
        Ok(Scope { tables })
    }

    /// Finds the FROM index owning a column reference.
    fn find(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        for (i, (tname, alias, cols)) in self.tables.iter().enumerate() {
            if let Some(q) = qualifier {
                let matches_q = q.eq_ignore_ascii_case(tname)
                    || alias.as_deref().is_some_and(|a| a.eq_ignore_ascii_case(q));
                if !matches_q {
                    continue;
                }
            }
            if cols.iter().any(|c| c.eq_ignore_ascii_case(name)) {
                return Ok(i);
            }
        }
        Err(SqlError::Plan(format!(
            "unknown column {}{name}",
            qualifier.map(|q| format!("{q}.")).unwrap_or_default()
        )))
    }

    fn all_columns(&self) -> Vec<String> {
        self.tables.iter().flat_map(|(_, _, cols)| cols.iter().cloned()).collect()
    }
}

fn item_name(it: &SelectItem) -> String {
    if let Some(a) = &it.alias {
        return a.clone();
    }
    match &it.expr {
        SqlExpr::Column { name, .. } => name.clone(),
        SqlExpr::Func { name, .. } => name.clone(),
        _ => "expr".to_string(),
    }
}

fn split_and(e: &SqlExpr, out: &mut Vec<SqlExpr>) {
    match e {
        SqlExpr::Binary { op: SqlOp::And, left, right } => {
            split_and(left, out);
            split_and(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// `t1.c1 = t2.c2` across two different tables → a join edge.
fn as_join_edge(e: &SqlExpr, scope: &Scope) -> Result<Option<(usize, String, usize, String)>> {
    if let SqlExpr::Binary { op: SqlOp::Eq, left, right } = e {
        if let (
            SqlExpr::Column { qualifier: ql, name: nl },
            SqlExpr::Column { qualifier: qr, name: nr },
        ) = (&**left, &**right)
        {
            let tl = scope.find(ql.as_deref(), nl)?;
            let tr = scope.find(qr.as_deref(), nr)?;
            if tl != tr {
                return Ok(Some((tl, nl.clone(), tr, nr.clone())));
            }
        }
    }
    Ok(None)
}

/// Lowers a scalar SQL expression to an engine expression.
fn lower_expr(e: &SqlExpr, scope: &Scope) -> Result<ee::Expr> {
    Ok(match e {
        SqlExpr::Column { qualifier, name } => {
            scope.find(qualifier.as_deref(), name)?;
            ee::col(name.clone())
        }
        SqlExpr::Int(v) => ee::lit(*v),
        SqlExpr::Number(s) => ee::Expr::Lit(Value::Dec(number_to_decimal(s)?)),
        SqlExpr::Str(s) => ee::lit(s.as_str()),
        SqlExpr::Date(s) => ee::Expr::Lit(Value::Date(
            Date32::parse(s).map_err(|e| SqlError::Plan(format!("bad date: {e}")))?,
        )),
        SqlExpr::Interval { .. } => {
            return Err(SqlError::Plan(
                "INTERVAL is only valid added to/subtracted from a DATE literal".to_string(),
            ))
        }
        SqlExpr::Binary { op, left, right } => {
            // Constant-fold date ± interval, the TPC-H idiom.
            if let Some(folded) = fold_date_interval(op, left, right)? {
                return Ok(folded);
            }
            let l = lower_expr(left, scope)?;
            let r = lower_expr(right, scope)?;
            match op {
                SqlOp::Add => l.add(r),
                SqlOp::Sub => l.sub(r),
                SqlOp::Mul => l.mul(r),
                SqlOp::Div => l.div(r),
                SqlOp::Eq => l.eq(r),
                SqlOp::Ne => l.neq(r),
                SqlOp::Lt => l.lt(r),
                SqlOp::Le => l.lte(r),
                SqlOp::Gt => l.gt(r),
                SqlOp::Ge => l.gte(r),
                SqlOp::And => l.and(r),
                SqlOp::Or => l.or(r),
            }
        }
        SqlExpr::Not(inner) => lower_expr(inner, scope)?.negate(),
        SqlExpr::Like { expr, pattern, negated } => {
            let input = lower_expr(expr, scope)?;
            if *negated {
                input.not_like(pattern.clone())
            } else {
                input.like(pattern.clone())
            }
        }
        SqlExpr::InList { expr, list, negated } => {
            let input = lower_expr(expr, scope)?;
            let values = list.iter().map(literal_value).collect::<Result<Vec<_>>>()?;
            if *negated {
                input.not_in_list(values)
            } else {
                input.in_list(values)
            }
        }
        SqlExpr::Between { expr, low, high } => {
            let input = lower_expr(expr, scope)?;
            input.between(literal_value(low)?, literal_value(high)?)
        }
        SqlExpr::Case { when, then, otherwise } => {
            lower_expr(when, scope)?.case(lower_expr(then, scope)?, lower_expr(otherwise, scope)?)
        }
        SqlExpr::Extract { field, from } => {
            if field != "YEAR" {
                return Err(SqlError::Unsupported(format!("EXTRACT({field}) — only YEAR")));
            }
            lower_expr(from, scope)?.year()
        }
        SqlExpr::Substring { expr, start, len } => {
            if *start < 1 || *len < 0 {
                return Err(SqlError::Plan("SUBSTRING bounds must be positive".to_string()));
            }
            lower_expr(expr, scope)?.substr(*start as usize, *len as usize)
        }
        SqlExpr::Func { name, .. } => {
            return Err(SqlError::Plan(format!(
                "aggregate {name}() in a scalar context (missing GROUP BY handling?)"
            )))
        }
    })
}

/// `date 'x' ± interval 'n' unit` folds to a date literal at plan time.
fn fold_date_interval(op: &SqlOp, left: &SqlExpr, right: &SqlExpr) -> Result<Option<ee::Expr>> {
    let (base, interval, sign) = match (op, left, right) {
        (SqlOp::Add, SqlExpr::Date(d), SqlExpr::Interval { n, unit }) => (d, (*n, unit), 1),
        (SqlOp::Sub, SqlExpr::Date(d), SqlExpr::Interval { n, unit }) => (d, (*n, unit), -1),
        _ => return Ok(None),
    };
    let d = Date32::parse(base).map_err(|e| SqlError::Plan(format!("bad date: {e}")))?;
    let (n, unit) = interval;
    let n = n as i32 * sign;
    let out = match unit.as_str() {
        "DAY" => d.add_days(n),
        "MONTH" => d.add_months(n),
        "YEAR" => d.add_years(n),
        other => return Err(SqlError::Unsupported(format!("INTERVAL unit {other}"))),
    };
    Ok(Some(ee::Expr::Lit(Value::Date(out))))
}

fn literal_value(e: &SqlExpr) -> Result<Value> {
    Ok(match e {
        SqlExpr::Int(v) => Value::I64(*v),
        SqlExpr::Number(s) => Value::Dec(number_to_decimal(s)?),
        SqlExpr::Str(s) => Value::Str(s.clone()),
        SqlExpr::Date(s) => {
            Value::Date(Date32::parse(s).map_err(|e| SqlError::Plan(format!("bad date: {e}")))?)
        }
        other => return Err(SqlError::Unsupported(format!("expected a literal, found {other:?}"))),
    })
}

/// Picks a decimal scale from the literal's fractional digits (TPC-H rates
/// are scale ≤ 2; anything deeper still fits the engine's scale-6 cap).
fn number_to_decimal(s: &str) -> Result<Decimal64> {
    let frac = s.split('.').nth(1).map(str::len).unwrap_or(0).min(6) as u8;
    Decimal64::from_str_scale(s, frac.max(2))
        .map_err(|e| SqlError::Plan(format!("bad numeric literal {s:?}: {e}")))
}

/// Replaces aggregate subtrees with references to synthesized aggregate
/// outputs, appending the aggregates to `aggs`.
fn extract_aggs(
    e: &SqlExpr,
    scope: &Scope,
    aggs: &mut Vec<AggExpr>,
    keys: &[(SqlExpr, String)],
) -> Result<ee::Expr> {
    // A bare group-key expression can be referenced by its output name.
    if let Some((_, name)) = keys.iter().find(|(k, _)| k == e) {
        return Ok(ee::col(name.clone()));
    }
    match e {
        SqlExpr::Func { name, distinct, star, args } => {
            let func = match (name.as_str(), distinct, star) {
                ("count", true, false) => AggFunc::CountDistinct,
                ("count", false, _) => AggFunc::CountStar,
                ("sum", false, false) => AggFunc::Sum,
                ("avg", false, false) => AggFunc::Avg,
                ("min", false, false) => AggFunc::Min,
                ("max", false, false) => AggFunc::Max,
                other => {
                    return Err(SqlError::Unsupported(format!("aggregate combination {other:?}")))
                }
            };
            let expr = match (func, args.first()) {
                (AggFunc::CountStar, _) => None,
                (_, Some(a)) => Some(lower_expr(a, scope)?),
                (_, None) => return Err(SqlError::Plan(format!("{name}() needs an argument"))),
            };
            let out_name = format!("__agg{}", aggs.len());
            aggs.push(AggExpr { func, expr, name: out_name.clone() });
            Ok(ee::col(out_name))
        }
        SqlExpr::Binary { op, left, right } => {
            let l = extract_aggs(left, scope, aggs, keys)?;
            let r = extract_aggs(right, scope, aggs, keys)?;
            Ok(match op {
                SqlOp::Add => l.add(r),
                SqlOp::Sub => l.sub(r),
                SqlOp::Mul => l.mul(r),
                SqlOp::Div => l.div(r),
                SqlOp::Eq => l.eq(r),
                SqlOp::Ne => l.neq(r),
                SqlOp::Lt => l.lt(r),
                SqlOp::Le => l.lte(r),
                SqlOp::Gt => l.gt(r),
                SqlOp::Ge => l.gte(r),
                SqlOp::And => l.and(r),
                SqlOp::Or => l.or(r),
            })
        }
        SqlExpr::Not(inner) => Ok(extract_aggs(inner, scope, aggs, keys)?.negate()),
        // Leaves without aggregates lower normally.
        other if !other.contains_aggregate() => lower_expr(other, scope),
        other => {
            Err(SqlError::Unsupported(format!("aggregate inside {other:?} is outside the subset")))
        }
    }
}
