//! The SQL abstract syntax tree.

/// Binary operators (shared shape with the engine's, resolved at planning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A scalar SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    /// Possibly-qualified column reference (`l.quantity`, `l_quantity`).
    Column {
        /// Table or alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Int(i64),
    /// Decimal literal (textual; the planner picks a scale).
    Number(String),
    /// String literal.
    Str(String),
    /// `DATE 'YYYY-MM-DD'` literal.
    Date(String),
    /// `INTERVAL 'n' unit` literal (consumed only by date arithmetic).
    Interval {
        /// Magnitude.
        n: i64,
        /// `DAY`, `MONTH`, or `YEAR`.
        unit: String,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: SqlOp,
        /// Left operand.
        left: Box<SqlExpr>,
        /// Right operand.
        right: Box<SqlExpr>,
    },
    /// `NOT expr`.
    Not(Box<SqlExpr>),
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// Input.
        expr: Box<SqlExpr>,
        /// Pattern.
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr [NOT] IN (literals…)`.
    InList {
        /// Probe.
        expr: Box<SqlExpr>,
        /// Candidates.
        list: Vec<SqlExpr>,
        /// NOT IN.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<SqlExpr>,
        /// Lower bound.
        low: Box<SqlExpr>,
        /// Upper bound.
        high: Box<SqlExpr>,
    },
    /// `CASE WHEN c THEN a ELSE b END`.
    Case {
        /// Condition.
        when: Box<SqlExpr>,
        /// True branch.
        then: Box<SqlExpr>,
        /// False branch.
        otherwise: Box<SqlExpr>,
    },
    /// Aggregate or scalar function call.
    Func {
        /// Lower-cased function name.
        name: String,
        /// `COUNT(DISTINCT …)`.
        distinct: bool,
        /// `COUNT(*)`.
        star: bool,
        /// Arguments.
        args: Vec<SqlExpr>,
    },
    /// `EXTRACT(YEAR FROM expr)`.
    Extract {
        /// Field (only `YEAR` is supported).
        field: String,
        /// Source expression.
        from: Box<SqlExpr>,
    },
    /// `SUBSTRING(expr FROM start FOR len)`.
    Substring {
        /// Input.
        expr: Box<SqlExpr>,
        /// 1-based start.
        start: i64,
        /// Length.
        len: i64,
    },
}

impl SqlExpr {
    /// True when the tree contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            SqlExpr::Func { name, .. } => {
                matches!(name.as_str(), "sum" | "avg" | "count" | "min" | "max")
            }
            SqlExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            SqlExpr::Not(e) => e.contains_aggregate(),
            SqlExpr::Like { expr, .. } | SqlExpr::InList { expr, .. } => expr.contains_aggregate(),
            SqlExpr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            SqlExpr::Case { when, then, otherwise } => {
                when.contains_aggregate()
                    || then.contains_aggregate()
                    || otherwise.contains_aggregate()
            }
            SqlExpr::Extract { from, .. } => from.contains_aggregate(),
            _ => false,
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SqlExpr,
    /// Optional `AS alias`.
    pub alias: Option<String>,
}

/// A table in FROM, with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Catalog table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Output column name or 1-based position.
    pub key: OrderKey,
    /// DESC?
    pub descending: bool,
}

/// An ORDER BY key target.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// Output column by name.
    Name(String),
    /// 1-based select-list position.
    Position(usize),
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list (`None` = `SELECT *`).
    pub items: Option<Vec<SelectItem>>,
    /// FROM tables (comma list; explicit `JOIN … ON` is normalized into
    /// this list plus WHERE conjuncts by the parser).
    pub from: Vec<TableRef>,
    /// WHERE clause.
    pub where_clause: Option<SqlExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SqlExpr>,
    /// HAVING clause.
    pub having: Option<SqlExpr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_walks_nesting() {
        let agg = SqlExpr::Func {
            name: "sum".into(),
            distinct: false,
            star: false,
            args: vec![SqlExpr::Column { qualifier: None, name: "x".into() }],
        };
        let wrapped = SqlExpr::Binary {
            op: SqlOp::Div,
            left: Box::new(SqlExpr::Int(100)),
            right: Box::new(agg),
        };
        assert!(wrapped.contains_aggregate());
        let plain = SqlExpr::Column { qualifier: None, name: "x".into() };
        assert!(!plain.contains_aggregate());
    }
}
