//! # wimpi-sql
//!
//! A SQL front end for the WIMPI engine: lexer, recursive-descent parser,
//! and planner for the TPC-H-sized subset (SELECT/FROM with inner joins,
//! WHERE, GROUP BY, HAVING, ORDER BY, LIMIT; LIKE/IN/BETWEEN/CASE/EXTRACT/
//! SUBSTRING; DATE ± INTERVAL folding; sum/avg/count/min/max with
//! `count(distinct …)`).
//!
//! Outside the subset — correlated or scalar subqueries, outer-join syntax,
//! self-joins — the planner returns a precise [`SqlError::Unsupported`];
//! `wimpi-queries` covers those query shapes through the plan-builder API.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod token;

pub use error::{Result, SqlError};

use wimpi_engine::{LogicalPlan, Relation, WorkProfile};
use wimpi_storage::Catalog;

/// Parses and plans one SELECT statement.
pub fn plan(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let q = parser::parse(sql)?;
    planner::plan_query(&q, catalog)
}

/// Parses, plans, optimizes, and executes one SELECT statement.
pub fn execute_sql(sql: &str, catalog: &Catalog) -> Result<(Relation, WorkProfile)> {
    let p = plan(sql, catalog)?;
    wimpi_engine::execute_query(&p, catalog)
        .map_err(|e| SqlError::Plan(format!("execution failed: {e}")))
}
