//! # wimpi-sql
//!
//! A SQL front end for the WIMPI engine: lexer, recursive-descent parser,
//! and planner for the TPC-H-sized subset (SELECT/FROM with inner joins,
//! WHERE, GROUP BY, HAVING, ORDER BY, LIMIT; LIKE/IN/BETWEEN/CASE/EXTRACT/
//! SUBSTRING; DATE ± INTERVAL folding; sum/avg/count/min/max with
//! `count(distinct …)`).
//!
//! Outside the subset — correlated or scalar subqueries, outer-join syntax,
//! self-joins — the planner returns a precise [`SqlError::Unsupported`];
//! `wimpi-queries` covers those query shapes through the plan-builder API.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod planner;
pub mod token;

pub use error::{Result, SqlError};

use wimpi_engine::{EngineConfig, LogicalPlan, QueryContext, Relation, Span, WorkProfile};
use wimpi_storage::Catalog;

/// Parses and plans one SELECT statement.
pub fn plan(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let q = parser::parse(sql)?;
    planner::plan_query(&q, catalog)
}

/// Parses, plans, optimizes, and executes one SELECT statement.
pub fn execute_sql(sql: &str, catalog: &Catalog) -> Result<(Relation, WorkProfile)> {
    execute_sql_governed(sql, catalog, &QueryContext::default())
}

/// [`execute_sql`] under a resource governor: the context's memory budget
/// caps operator scratch (joins/aggregates degrade to Grace partitioning
/// before erroring) and its cancellation token/deadline stop the query
/// cooperatively. The shell's `SET memory_budget` / `SET timeout_ms` route
/// through here.
pub fn execute_sql_governed(
    sql: &str,
    catalog: &Catalog,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile)> {
    execute_sql_with(sql, catalog, &EngineConfig::serial(), ctx)
}

/// [`execute_sql_governed`] with an explicit [`EngineConfig`] — the shell's
/// `SET verify_checksums` routes through here to turn scan-time integrity
/// verification on for a governed run.
pub fn execute_sql_with(
    sql: &str,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile)> {
    let p = plan(sql, catalog)?;
    wimpi_engine::execute_query_governed(&p, catalog, cfg, ctx).map_err(SqlError::Engine)
}

/// Executes one SELECT statement with operator-level tracing — the engine's
/// `EXPLAIN ANALYZE`. The returned [`Span`] tree carries per-operator row
/// counts, wall times, and work-profile deltas (including the measured
/// `peak_bytes` reservation high-water mark); its root totals equal the
/// returned [`WorkProfile`] exactly.
pub fn explain_analyze(sql: &str, catalog: &Catalog) -> Result<(Relation, WorkProfile, Span)> {
    explain_analyze_governed(sql, catalog, &QueryContext::default())
}

/// [`explain_analyze`] under a resource governor (see
/// [`execute_sql_governed`]).
pub fn explain_analyze_governed(
    sql: &str,
    catalog: &Catalog,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile, Span)> {
    explain_analyze_with(sql, catalog, &EngineConfig::serial(), ctx)
}

/// [`explain_analyze_governed`] with an explicit [`EngineConfig`] (see
/// [`execute_sql_with`]).
pub fn explain_analyze_with(
    sql: &str,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile, Span)> {
    let p = plan(sql, catalog)?;
    wimpi_engine::execute_query_traced_governed(&p, catalog, cfg, ctx).map_err(SqlError::Engine)
}

/// Strips a leading `EXPLAIN ANALYZE` prefix (case-insensitive, any
/// whitespace between the keywords), returning the statement to trace.
/// Returns `None` when the input is not an EXPLAIN ANALYZE.
pub fn strip_explain_analyze(sql: &str) -> Option<&str> {
    fn strip_word<'a>(s: &'a str, word: &str) -> Option<&'a str> {
        let head = s.get(..word.len())?;
        if !head.eq_ignore_ascii_case(word) {
            return None;
        }
        let rest = &s[word.len()..];
        // Keyword must end at a word boundary: `EXPLAINANALYZE` is not SQL.
        rest.starts_with(char::is_whitespace).then(|| rest.trim_start())
    }
    let rest = strip_word(sql.trim_start(), "EXPLAIN")?;
    strip_word(rest, "ANALYZE").filter(|r| !r.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_explain_analyze_is_case_insensitive() {
        assert_eq!(strip_explain_analyze("EXPLAIN ANALYZE SELECT 1"), Some("SELECT 1"));
        assert_eq!(strip_explain_analyze("explain   analyze\n select 1"), Some("select 1"));
        assert_eq!(strip_explain_analyze("  Explain Analyze select 1"), Some("select 1"));
    }

    #[test]
    fn strip_explain_analyze_rejects_non_prefixes() {
        assert_eq!(strip_explain_analyze("SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAINANALYZE SELECT 1"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN ANALYZE"), None);
        assert_eq!(strip_explain_analyze("EXPLAIN ANALYZE "), None);
    }

    #[test]
    fn verify_checksums_catches_corruption_that_silently_skews_answers() {
        use wimpi_storage::{Column, DataType, Field, Schema, Table};
        let schema = Schema::new(vec![Field::new("x", DataType::Int64)]);
        let clean =
            Table::new(schema, vec![Column::Int64((1..=100).collect())]).unwrap().with_integrity();
        let dirty = wimpi_storage::integrity::flip_bits(clean.column(0).as_ref(), 0..100, 1, 9);
        let corrupted = clean.with_replaced_column(0, dirty).unwrap();
        let mut cat = Catalog::new();
        cat.register("t", corrupted);
        let sql = "SELECT sum(x) AS s FROM t";
        // Verification off: the corruption silently skews the aggregate.
        let (skewed, _) = execute_sql(sql, &cat).expect("no detection without verification");
        assert!(skewed.num_rows() == 1);
        // Verification on: the scan refuses the corrupt chunk, typed.
        let cfg = wimpi_engine::EngineConfig::serial().with_verify_checksums(true);
        let err = execute_sql_with(sql, &cat, &cfg, &QueryContext::new()).unwrap_err();
        match err {
            SqlError::Engine(wimpi_engine::EngineError::Integrity { table, column, .. }) => {
                assert_eq!((table.as_str(), column.as_str()), ("t", "x"));
            }
            other => panic!("expected an integrity violation, got {other}"),
        }
    }
}
