//! Recursive-descent SQL parser for the supported subset:
//!
//! ```sql
//! SELECT item [AS alias], …
//! FROM t1 [a1], t2 [a2], …  |  t1 JOIN t2 ON cond [JOIN …]
//! [WHERE cond]
//! [GROUP BY expr, …]
//! [HAVING cond]
//! [ORDER BY name|position [ASC|DESC], …]
//! [LIMIT n]
//! ```
//!
//! Explicit `JOIN … ON` is normalized into the FROM list plus WHERE
//! conjuncts; the planner rebuilds the join tree from equality edges.

use crate::ast::*;
use crate::error::{Result, SqlError};
use crate::lexer::lex;
use crate::token::Token;

/// Parses one SELECT statement.
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    // Allow a trailing semicolon.
    if p.peek_is(|t| *t == Token::Semi) {
        p.advance();
    }
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!("trailing input starting at {:?}", p.tokens[p.pos])));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_is(&self, f: impl Fn(&Token) -> bool) -> bool {
        self.peek().is_some_and(f)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {kw}, found {}",
                self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end".into())
            )))
        }
    }

    fn expect(&mut self, tok: Token) -> Result<()> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected {tok}, found {}",
                self.peek().map(|t| t.to_string()).unwrap_or_else(|| "end".into())
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Word(w)) => Ok(w),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
            ))),
        }
    }

    // ---- grammar ------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let items = if self.peek() == Some(&Token::Star) {
            self.advance();
            None
        } else {
            let mut items = vec![self.select_item()?];
            while self.peek() == Some(&Token::Comma) {
                self.advance();
                items.push(self.select_item()?);
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut join_conds: Vec<SqlExpr> = Vec::new();
        loop {
            if self.peek() == Some(&Token::Comma) {
                self.advance();
                from.push(self.table_ref()?);
            } else if self.peek_kw("JOIN") || self.peek_kw("INNER") {
                if self.eat_kw("INNER") {
                    self.expect_kw("JOIN")?;
                } else {
                    self.advance();
                }
                from.push(self.table_ref()?);
                self.expect_kw("ON")?;
                join_conds.push(self.expr()?);
            } else {
                break;
            }
        }
        let mut where_clause = if self.eat_kw("WHERE") { Some(self.expr()?) } else { None };
        // Fold explicit join conditions into WHERE.
        for c in join_conds {
            where_clause = Some(match where_clause {
                Some(w) => {
                    SqlExpr::Binary { op: SqlOp::And, left: Box::new(w), right: Box::new(c) }
                }
                None => c,
            });
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.peek() == Some(&Token::Comma) {
                self.advance();
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            order_by.push(self.order_item()?);
            while self.peek() == Some(&Token::Comma) {
                self.advance();
                order_by.push(self.order_item()?);
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT needs a non-negative integer, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query { items, from, where_clause, group_by, having, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") { Some(self.ident()?) } else { None };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        // A bare identifier that is not a clause keyword is an alias.
        let alias = match self.peek() {
            Some(Token::Word(w)) if !is_clause_keyword(w) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { name, alias })
    }

    fn order_item(&mut self) -> Result<OrderItem> {
        let key = match self.advance() {
            Some(Token::Word(w)) => OrderKey::Name(w),
            Some(Token::Int(n)) if n >= 1 => OrderKey::Position(n as usize),
            other => {
                return Err(SqlError::Parse(format!(
                    "ORDER BY needs a column name or position, found {other:?}"
                )))
            }
        };
        let descending = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };
        Ok(OrderItem { key, descending })
    }

    // Precedence: OR < AND < NOT < comparison/LIKE/IN/BETWEEN < +- < */ < unary.
    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = SqlExpr::Binary { op: SqlOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = SqlExpr::Binary { op: SqlOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.eat_kw("NOT") {
            Ok(SqlExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<SqlExpr> {
        let left = self.additive()?;
        // Postfix predicates: [NOT] LIKE / IN / BETWEEN.
        let negated = self.eat_kw("NOT");
        if self.eat_kw("LIKE") {
            let pattern = match self.advance() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIKE needs a string pattern, found {other:?}"
                    )))
                }
            };
            return Ok(SqlExpr::Like { expr: Box::new(left), pattern, negated });
        }
        if self.eat_kw("IN") {
            self.expect(Token::LParen)?;
            let mut list = vec![self.additive()?];
            while self.peek() == Some(&Token::Comma) {
                self.advance();
                list.push(self.additive()?);
            }
            self.expect(Token::RParen)?;
            return Ok(SqlExpr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            let between =
                SqlExpr::Between { expr: Box::new(left), low: Box::new(low), high: Box::new(high) };
            return Ok(if negated { SqlExpr::Not(Box::new(between)) } else { between });
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT before comparison".into()));
        }
        let op = match self.peek() {
            Some(Token::Eq) => SqlOp::Eq,
            Some(Token::Ne) => SqlOp::Ne,
            Some(Token::Lt) => SqlOp::Lt,
            Some(Token::Le) => SqlOp::Le,
            Some(Token::Gt) => SqlOp::Gt,
            Some(Token::Ge) => SqlOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(SqlExpr::Binary { op, left: Box::new(left), right: Box::new(right) })
    }

    fn additive(&mut self) -> Result<SqlExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => SqlOp::Add,
                Some(Token::Minus) => SqlOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = SqlExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<SqlExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => SqlOp::Mul,
                Some(Token::Slash) => SqlOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = SqlExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<SqlExpr> {
        if self.peek() == Some(&Token::Minus) {
            self.advance();
            let inner = self.unary()?;
            return Ok(match inner {
                SqlExpr::Int(v) => SqlExpr::Int(-v),
                SqlExpr::Number(s) => SqlExpr::Number(format!("-{s}")),
                other => SqlExpr::Binary {
                    op: SqlOp::Sub,
                    left: Box::new(SqlExpr::Int(0)),
                    right: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.advance() {
            Some(Token::Int(v)) => Ok(SqlExpr::Int(v)),
            Some(Token::Number(s)) => Ok(SqlExpr::Number(s)),
            Some(Token::Str(s)) => Ok(SqlExpr::Str(s)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("date") => match self.advance() {
                Some(Token::Str(s)) => Ok(SqlExpr::Date(s)),
                other => {
                    Err(SqlError::Parse(format!("DATE needs a string literal, found {other:?}")))
                }
            },
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("interval") => {
                let n = match self.advance() {
                    Some(Token::Str(s)) => s
                        .trim()
                        .parse::<i64>()
                        .map_err(|_| SqlError::Parse(format!("bad interval {s:?}")))?,
                    Some(Token::Int(v)) => v,
                    other => {
                        return Err(SqlError::Parse(format!(
                            "INTERVAL needs a magnitude, found {other:?}"
                        )))
                    }
                };
                let unit = self.ident()?.to_uppercase();
                Ok(SqlExpr::Interval { n, unit })
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("case") => {
                self.expect_kw("WHEN")?;
                let when = self.expr()?;
                self.expect_kw("THEN")?;
                let then = self.expr()?;
                self.expect_kw("ELSE")?;
                let otherwise = self.expr()?;
                self.expect_kw("END")?;
                Ok(SqlExpr::Case {
                    when: Box::new(when),
                    then: Box::new(then),
                    otherwise: Box::new(otherwise),
                })
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("extract") => {
                self.expect(Token::LParen)?;
                let field = self.ident()?.to_uppercase();
                self.expect_kw("FROM")?;
                let from = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(SqlExpr::Extract { field, from: Box::new(from) })
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("substring") => {
                self.expect(Token::LParen)?;
                let expr = self.expr()?;
                self.expect_kw("FROM")?;
                let start = match self.advance() {
                    Some(Token::Int(v)) => v,
                    other => {
                        return Err(SqlError::Parse(format!(
                            "SUBSTRING FROM needs an integer, found {other:?}"
                        )))
                    }
                };
                self.expect_kw("FOR")?;
                let len = match self.advance() {
                    Some(Token::Int(v)) => v,
                    other => {
                        return Err(SqlError::Parse(format!(
                            "SUBSTRING FOR needs an integer, found {other:?}"
                        )))
                    }
                };
                self.expect(Token::RParen)?;
                Ok(SqlExpr::Substring { expr: Box::new(expr), start, len })
            }
            Some(Token::Word(w)) => {
                if self.peek() == Some(&Token::LParen) {
                    // Function call.
                    self.advance();
                    let name = w.to_lowercase();
                    if self.peek() == Some(&Token::Star) {
                        self.advance();
                        self.expect(Token::RParen)?;
                        return Ok(SqlExpr::Func {
                            name,
                            distinct: false,
                            star: true,
                            args: vec![],
                        });
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = vec![self.expr()?];
                    while self.peek() == Some(&Token::Comma) {
                        self.advance();
                        args.push(self.expr()?);
                    }
                    self.expect(Token::RParen)?;
                    Ok(SqlExpr::Func { name, distinct, star: false, args })
                } else if self.peek() == Some(&Token::Dot) {
                    self.advance();
                    let name = self.ident()?;
                    Ok(SqlExpr::Column { qualifier: Some(w), name })
                } else {
                    Ok(SqlExpr::Column { qualifier: None, name: w })
                }
            }
            other => Err(SqlError::Parse(format!(
                "expected expression, found {}",
                other.map(|t| t.to_string()).unwrap_or_else(|| "end".into())
            ))),
        }
    }
}

fn is_clause_keyword(w: &str) -> bool {
    [
        "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "AS", "AND", "OR",
        "SELECT", "FROM",
    ]
    .iter()
    .any(|k| w.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q6_shape() {
        let q = parse(
            "select sum(l_extendedprice * l_discount) as revenue \
             from lineitem \
             where l_shipdate >= date '1994-01-01' \
               and l_shipdate < date '1995-01-01' \
               and l_discount between 0.05 and 0.07 \
               and l_quantity < 24",
        )
        .unwrap();
        assert_eq!(q.from.len(), 1);
        let items = q.items.unwrap();
        assert_eq!(items[0].alias.as_deref(), Some("revenue"));
        assert!(items[0].expr.contains_aggregate());
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_group_order_limit() {
        let q = parse(
            "select l_orderkey, sum(l_quantity) as q from lineitem \
             group by l_orderkey order by q desc, l_orderkey limit 10",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn explicit_join_normalizes_into_where() {
        let q = parse(
            "select * from lineitem join orders on l_orderkey = o_orderkey \
             where l_quantity < 10",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        // WHERE must now be an AND of the filter and the join condition.
        match q.where_clause.unwrap() {
            SqlExpr::Binary { op: SqlOp::And, .. } => {}
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn aliases_and_qualified_columns() {
        let q = parse("select l.l_quantity from lineitem l where l.l_tax > 0.02").unwrap();
        assert_eq!(q.from[0].alias.as_deref(), Some("l"));
        let items = q.items.unwrap();
        assert_eq!(
            items[0].expr,
            SqlExpr::Column { qualifier: Some("l".into()), name: "l_quantity".into() }
        );
    }

    #[test]
    fn parses_case_extract_substring_interval() {
        let q = parse(
            "select case when p_type like 'PROMO%' then 1 else 0 end as promo, \
                    extract(year from o_orderdate), \
                    substring(c_phone from 1 for 2) \
             from orders where o_orderdate < date '1995-01-01' + interval '1' year",
        )
        .unwrap();
        let items = q.items.unwrap();
        assert!(matches!(items[0].expr, SqlExpr::Case { .. }));
        assert!(matches!(items[1].expr, SqlExpr::Extract { .. }));
        assert!(matches!(items[2].expr, SqlExpr::Substring { .. }));
    }

    #[test]
    fn count_star_and_distinct() {
        let q = parse("select count(*), count(distinct ps_suppkey) from partsupp").unwrap();
        let items = q.items.unwrap();
        assert!(matches!(&items[0].expr, SqlExpr::Func { star: true, .. }));
        assert!(matches!(&items[1].expr, SqlExpr::Func { distinct: true, .. }));
    }

    #[test]
    fn operator_precedence() {
        // a + b * c parses as a + (b * c)
        let q = parse("select a + b * c from t").unwrap();
        match &q.items.unwrap()[0].expr {
            SqlExpr::Binary { op: SqlOp::Add, right, .. } => {
                assert!(matches!(&**right, SqlExpr::Binary { op: SqlOp::Mul, .. }));
            }
            other => panic!("precedence broken: {other:?}"),
        }
        // x = 1 or y = 2 and z = 3 → OR(x=1, AND(y=2, z=3))
        let q = parse("select * from t where x = 1 or y = 2 and z = 3").unwrap();
        match q.where_clause.unwrap() {
            SqlExpr::Binary { op: SqlOp::Or, right, .. } => {
                assert!(matches!(&*right, SqlExpr::Binary { op: SqlOp::And, .. }));
            }
            other => panic!("precedence broken: {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_limit() {
        assert!(parse("select * from t extra junk words").is_err());
        assert!(parse("select * from t limit abc").is_err());
        assert!(parse("select from t").is_err());
    }
}
