//! SQL lexer.

use crate::error::{Result, SqlError};
use crate::token::Token;

/// Tokenizes a SQL string. Comments (`-- …`) are skipped; identifiers stay
/// case-preserved (comparisons are case-insensitive at parse time).
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let b = input.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if b.get(i + 1) == Some(&b'-') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if !b.get(i + 1).is_some_and(|n| n.is_ascii_digit()) => {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '<' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push(Token::Le);
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token::Ne);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                        None => return Err(SqlError::Lex("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut is_float = c == '.';
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || (b[i] == b'.' && !is_float && {
                            is_float = true;
                            true
                        }))
                {
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Token::Number(text.to_string()));
                } else {
                    let v: i64 =
                        text.parse().map_err(|_| SqlError::Lex(format!("bad integer {text:?}")))?;
                    out.push(Token::Int(v));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Word(input[start..i].to_string()));
            }
            other => return Err(SqlError::Lex(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_simple_select() {
        let toks = lex("SELECT a, sum(b) FROM t WHERE a >= 10.5 -- tail\n").unwrap();
        assert_eq!(toks[0], Token::Word("SELECT".into()));
        assert!(toks.iter().any(|t| *t == Token::Number("10.5".into())));
        assert!(toks.contains(&Token::Ge));
        assert!(!toks.iter().any(|t| matches!(t, Token::Word(w) if w == "tail")));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn operators_distinguished() {
        let toks = lex("< <= <> != >= > =").unwrap();
        assert_eq!(
            toks,
            vec![Token::Lt, Token::Le, Token::Ne, Token::Ne, Token::Ge, Token::Gt, Token::Eq]
        );
    }

    #[test]
    fn dotted_names_and_numbers() {
        let toks = lex("l.quantity 1.5 42").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("l".into()),
                Token::Dot,
                Token::Word("quantity".into()),
                Token::Number("1.5".into()),
                Token::Int(42),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("select @x").is_err());
    }
}
