//! Physical clustering: re-ordering a generated table on a sort key.
//!
//! The raw TPC-H layout emits `l_shipdate` (and the other date columns) in
//! key order, which spreads every date uniformly across the file — a
//! per-morsel min/max summary then spans the whole domain and zone-map
//! pruning can never skip anything. Real ingest pipelines land data in
//! arrival (≈ date) order, so the prune benchmark clusters `lineitem` by
//! `l_shipdate` to restore that locality before sealing zone maps
//! (DESIGN.md §14). Clustering is a pure row permutation: every query
//! result is bit-identical to the unclustered catalog's.

use wimpi_storage::{Catalog, Column, Result, StorageError, Table};

use crate::gen::Generator;

/// A copy of `table` with its rows stably re-ordered so `column` ascends.
///
/// The stable argsort keeps equal-key rows in their original relative
/// order, so the permutation — and thus every sealed summary over it — is
/// deterministic. Seals (integrity manifest, zone maps) are *not* carried
/// over: the caller re-seals the permuted bytes.
pub fn cluster_by(table: &Table, column: &str) -> Result<Table> {
    if table.num_rows() > u32::MAX as usize {
        return Err(StorageError::LengthMismatch {
            left: table.num_rows(),
            right: u32::MAX as usize,
        });
    }
    let key = table.column_by_name(column)?;
    let mut order: Vec<u32> = (0..table.num_rows() as u32).collect();
    match key.as_ref() {
        Column::Int64(v) => order.sort_by_key(|&i| v[i as usize]),
        Column::Int32(v) => order.sort_by_key(|&i| v[i as usize]),
        Column::Date(v) => order.sort_by_key(|&i| v[i as usize]),
        Column::Decimal(v, _) => order.sort_by_key(|&i| v[i as usize]),
        Column::Bool(v) => order.sort_by_key(|&i| v[i as usize]),
        Column::Float64(v) => order.sort_by(|&a, &b| v[a as usize].total_cmp(&v[b as usize])),
        Column::Str(d) => order.sort_by_key(|&i| d.get(i as usize)),
    }
    let columns = (0..table.num_columns()).map(|j| table.column(j).take(&order)).collect();
    Table::new(table.schema().as_ref().clone(), columns)
}

/// The single-node catalog with `lineitem` clustered by `l_shipdate` and
/// `orders` by `o_orderdate`, then sealed (integrity + zone maps) — the
/// layout the scan-pruning benchmark and CI smoke run against.
pub fn clustered_catalog(sf: f64) -> Result<Catalog> {
    let mut cat = Generator::new(sf).generate_catalog()?;
    for (name, key) in [("lineitem", "l_shipdate"), ("orders", "o_orderdate")] {
        let sorted = cluster_by(cat.table(name)?, key)?;
        cat.register(name, sorted);
    }
    cat.seal_integrity();
    cat.seal_zone_maps();
    Ok(cat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_is_a_stable_permutation() {
        let gen = Generator::new(0.001);
        let (_, lineitem) = gen.orders_lineitem().unwrap();
        let sorted = cluster_by(&lineitem, "l_shipdate").unwrap();
        assert_eq!(sorted.num_rows(), lineitem.num_rows());

        // Sorted key, and the multiset of every column is preserved — spot
        // check via per-column sums that a permutation cannot change.
        let dates = match sorted.column_by_name("l_shipdate").unwrap().as_ref() {
            Column::Date(v) => v.clone(),
            other => panic!("unexpected type {:?}", other.data_type()),
        };
        assert!(dates.windows(2).all(|w| w[0] <= w[1]), "l_shipdate must ascend");
        for j in 0..lineitem.num_columns() {
            let (a, b) = (lineitem.column(j), sorted.column(j));
            let sum = |c: &Column| -> i128 {
                match c {
                    Column::Int64(v) => v.iter().map(|&x| x as i128).sum(),
                    Column::Decimal(v, _) => v.iter().map(|&x| x as i128).sum(),
                    Column::Date(v) => v.iter().map(|&x| x as i128).sum(),
                    Column::Str(d) => (0..d.len()).map(|i| d.get(i).len() as i128).sum(),
                    _ => 0,
                }
            };
            assert_eq!(sum(a), sum(b), "column {j} multiset changed");
        }

        // Determinism: clustering twice yields identical bytes.
        let again = cluster_by(&lineitem, "l_shipdate").unwrap();
        for j in 0..sorted.num_columns() {
            assert_eq!(sorted.column(j), again.column(j));
        }
    }

    #[test]
    fn clustered_catalog_is_sealed_and_sorted() {
        let cat = clustered_catalog(0.001).unwrap();
        let li = cat.table("lineitem").unwrap();
        assert!(li.zones().is_some(), "clustered catalog seals zone maps");
        assert!(li.manifest().is_some(), "and integrity manifests");
        let dates = match li.column_by_name("l_shipdate").unwrap().as_ref() {
            Column::Date(v) => v.clone(),
            other => panic!("unexpected type {:?}", other.data_type()),
        };
        assert!(dates.windows(2).all(|w| w[0] <= w[1]), "l_shipdate must ascend");
    }

    #[test]
    fn clustering_tightens_zone_ranges() {
        // Re-seal on a fine grid so even tiny test data spans many chunks:
        // after clustering, one chunk covers a sliver of the date domain.
        let gen = Generator::new(0.001);
        let (_, lineitem) = gen.orders_lineitem().unwrap();
        let sorted = cluster_by(&lineitem, "l_shipdate").unwrap().with_zone_maps_at(512);
        let zones = sorted.zones().unwrap();
        let full =
            zones.range_over("l_shipdate", 0..sorted.num_rows()).expect("date ranges sealed");
        let chunk = zones.range_over("l_shipdate", 0..512).expect("first chunk range");
        assert!(
            chunk.1 - chunk.0 < (full.1 - full.0) / 2,
            "a clustered chunk must span a fraction of the domain: {chunk:?} vs {full:?}"
        );
    }
}
