//! Deterministic, seekable random numbers for data generation.
//!
//! dbgen keeps per-column RNG streams and "advances" them so any table chunk
//! can be generated independently. We get the same property more simply:
//! every (stream, row) pair seeds an independent counter-based generator via
//! SplitMix64, so generating chunk `k` of a table never depends on chunks
//! `0..k`. This is what lets the cluster crate build one node's lineitem
//! partition without materializing the whole table.

/// A small counter-based PRNG: SplitMix64 over a per-(stream, row) seed.
#[derive(Debug, Clone)]
pub struct RowRng {
    state: u64,
}

/// Golden-ratio increment used by SplitMix64.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RowRng {
    /// Builds the generator for one logical stream (e.g. "lineitem.quantity")
    /// and one row index.
    pub fn new(stream: u64, row: u64) -> Self {
        // Two mixing rounds decorrelate stream and row contributions.
        let seed = mix(stream.wrapping_mul(GAMMA).wrapping_add(mix(row.wrapping_add(GAMMA))));
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Uses 128-bit multiply-shift
    /// rejection-free mapping — bias is < 2^-64, irrelevant at TPC-H scales.
    #[inline]
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 as u128 + 1;
        let draw = (self.next_u64() as u128 * span) >> 64;
        lo + draw as i64
    }

    /// Uniform `usize` index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.uniform_i64(0, n as i64 - 1) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A random lowercase/uppercase/digit "v-string" of length in
    /// `[min, max]`, dbgen's address alphabet.
    pub fn v_string(&mut self, min: usize, max: usize) -> String {
        const ALPHA: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789, ";
        let len = self.uniform_i64(min as i64, max as i64) as usize;
        (0..len).map(|_| ALPHA[self.index(ALPHA.len())] as char).collect()
    }
}

/// Stream identifiers, one per generated attribute. Values are arbitrary but
/// must stay stable: changing them changes the generated database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Stream {
    OrderCustkey = 1,
    OrderDate = 2,
    OrderPriority = 3,
    OrderClerk = 4,
    OrderComment = 5,
    LineCount = 10,
    LinePartkey = 11,
    LineSuppIdx = 12,
    LineQuantity = 13,
    LineDiscount = 14,
    LineTax = 15,
    LineShipDelta = 16,
    LineCommitDelta = 17,
    LineReceiptDelta = 18,
    LineReturnFlag = 19,
    LineInstruct = 20,
    LineMode = 21,
    LineComment = 22,
    PartName = 30,
    PartMfgr = 31,
    PartBrand = 32,
    PartType = 33,
    PartSize = 34,
    PartContainer = 35,
    PartComment = 36,
    SuppNation = 40,
    SuppAcctbal = 41,
    SuppAddress = 42,
    SuppComment = 43,
    SuppPhone = 44,
    CustNation = 50,
    CustAcctbal = 51,
    CustAddress = 52,
    CustSegment = 53,
    CustComment = 54,
    CustPhone = 55,
    PsAvailQty = 60,
    PsSupplyCost = 61,
    PsComment = 62,
    NationComment = 70,
    RegionComment = 71,
}

impl Stream {
    /// The stream's stable seed value.
    pub fn id(self) -> u64 {
        self as u64
    }

    /// Shorthand for building the per-row generator.
    pub fn rng(self, row: u64) -> RowRng {
        RowRng::new(self.id(), row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RowRng::new(3, 17);
        let mut b = RowRng::new(3, 17);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_rows_differ() {
        let a = RowRng::new(3, 17).next_u64();
        let b = RowRng::new(3, 18).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let a = RowRng::new(1, 0).next_u64();
        let b = RowRng::new(2, 0).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = RowRng::new(9, 9);
        for _ in 0..10_000 {
            let v = r.uniform_i64(-5, 5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut r = RowRng::new(11, 0);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.uniform_i64(0, 9) as usize] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                c > expected * 9 / 10 && c < expected * 11 / 10,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = RowRng::new(13, 0);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn v_string_lengths() {
        let mut r = RowRng::new(15, 0);
        for _ in 0..100 {
            let s = r.v_string(10, 40);
            assert!((10..=40).contains(&s.len()));
        }
    }
}
