//! Word lists and the pseudo-text grammar of TPC-H spec §4.2.2.10 /
//! appendix word lists.
//!
//! The grammar and word lists follow the published specification closely
//! enough that every `LIKE` pattern the queries depend on hits with its
//! intended selectivity: `%special%requests%` (Q13) draws from the adjective
//! and noun lists, `%green%` / `forest%` (Q9, Q20) from the color list, and
//! `%Customer%Complaints%` (Q16) is injected into supplier comments at the
//! spec's 5-in-10,000 rate.

use crate::rng::RowRng;

/// The P_NAME color vocabulary (spec appendix; 90 of dbgen's 92 colors —
/// close enough that color-based selectivities are preserved; documented
/// substitution in DESIGN.md).
pub const COLORS: &[&str] = &[
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "goldenrod",
    "green",
    "grey",
    "honeydew",
    "hot",
    "indian",
    "ivory",
    "khaki",
    "lace",
    "lavender",
    "lawn",
    "lemon",
    "light",
    "lime",
    "linen",
    "magenta",
    "maroon",
    "medium",
    "metallic",
    "midnight",
    "mint",
    "misty",
    "moccasin",
    "navajo",
    "navy",
    "olive",
    "orange",
    "orchid",
    "pale",
    "papaya",
    "peach",
    "peru",
    "pink",
    "plum",
    "powder",
    "puff",
    "purple",
    "red",
    "rose",
    "rosy",
    "royal",
    "saddle",
    "salmon",
    "sandy",
    "seashell",
    "sienna",
    "sky",
    "slate",
    "smoke",
    "snow",
    "spring",
    "steel",
    "tan",
    "thistle",
    "tomato",
    "turquoise",
    "violet",
    "wheat",
    "white",
    "yellow",
];

/// P_TYPE syllable 1.
pub const TYPES_1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// P_TYPE syllable 2.
pub const TYPES_2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// P_TYPE syllable 3.
pub const TYPES_3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// P_CONTAINER syllable 1.
pub const CONTAINERS_1: &[&str] = &["SM", "LG", "MED", "JUMBO", "WRAP"];
/// P_CONTAINER syllable 2.
pub const CONTAINERS_2: &[&str] = &["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// C_MKTSEGMENT values.
pub const SEGMENTS: &[&str] = &["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];

/// O_ORDERPRIORITY values.
pub const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// L_SHIPINSTRUCT values.
pub const INSTRUCTIONS: &[&str] = &["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];

/// L_SHIPMODE values.
pub const MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// The 25 nations with their region keys (spec fixed data).
pub const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("ROMANIA", 3),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
    ("VIETNAM", 2),
    ("CHINA", 2),
    ("SAUDI ARABIA", 4),
];

/// The 5 regions (spec fixed data).
pub const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

// --- pseudo-text grammar word lists (spec appendix) ---

const NOUNS: &[&str] = &[
    "foxes",
    "ideas",
    "theodolites",
    "pinto beans",
    "instructions",
    "dependencies",
    "excuses",
    "platelets",
    "asymptotes",
    "courts",
    "dolphins",
    "multipliers",
    "sauternes",
    "warthogs",
    "frets",
    "dinos",
    "attainments",
    "somas",
    "Tiresias'",
    "patterns",
    "forges",
    "braids",
    "hockey players",
    "frays",
    "warhorses",
    "dugouts",
    "notornis",
    "epitaphs",
    "pearls",
    "tithes",
    "waters",
    "orbits",
    "gifts",
    "sheaves",
    "depths",
    "sentiments",
    "decoys",
    "realms",
    "pains",
    "grouches",
    "escapades",
    "packages",
    "requests",
    "accounts",
    "deposits",
];

const VERBS: &[&str] = &[
    "sleep",
    "wake",
    "are",
    "cajole",
    "haggle",
    "nag",
    "use",
    "boost",
    "affix",
    "detect",
    "integrate",
    "maintain",
    "nod",
    "was",
    "lose",
    "sublate",
    "solve",
    "thrash",
    "promise",
    "engage",
    "hinder",
    "print",
    "x-ray",
    "breach",
    "eat",
    "grow",
    "impress",
    "mold",
    "poach",
    "serve",
    "run",
    "dazzle",
    "snooze",
    "doze",
    "unwind",
    "kindle",
    "play",
    "hang",
    "believe",
    "doubt",
];

const ADJECTIVES: &[&str] = &[
    "furious",
    "sly",
    "careful",
    "blithe",
    "quick",
    "fluffy",
    "slow",
    "quiet",
    "ruthless",
    "thin",
    "close",
    "dogged",
    "daring",
    "bold",
    "ironic",
    "final",
    "permanent",
    "pending",
    "silent",
    "idle",
    "busy",
    "regular",
    "special",
    "express",
    "even",
    "bold",
    "unusual",
];

const ADVERBS: &[&str] = &[
    "sometimes",
    "always",
    "never",
    "furiously",
    "slyly",
    "carefully",
    "blithely",
    "quickly",
    "fluffily",
    "slowly",
    "quietly",
    "ruthlessly",
    "thinly",
    "closely",
    "doggedly",
    "daringly",
    "boldly",
    "ironically",
    "finally",
    "permanently",
    "silently",
    "idly",
    "busily",
    "regularly",
    "specially",
    "expressly",
    "evenly",
    "unusually",
];

const PREPOSITIONS: &[&str] = &[
    "about",
    "above",
    "according to",
    "across",
    "after",
    "against",
    "along",
    "alongside of",
    "among",
    "around",
    "at",
    "atop",
    "before",
    "behind",
    "beneath",
    "beside",
    "besides",
    "between",
    "beyond",
    "by",
    "despite",
    "during",
    "except",
    "for",
    "from",
    "in place of",
    "inside",
    "instead of",
    "into",
    "near",
    "of",
    "on",
    "outside",
    "over",
    "past",
    "since",
    "through",
    "throughout",
    "to",
    "toward",
    "under",
    "until",
    "up",
    "upon",
    "without",
    "with",
    "within",
];

const AUXILIARIES: &[&str] = &[
    "do",
    "may",
    "might",
    "shall",
    "will",
    "would",
    "can",
    "could",
    "should",
    "ought to",
    "must",
    "will have to",
    "shall have to",
    "could have to",
    "should have to",
    "must have to",
    "need to",
    "try to",
];

const TERMINATORS: &[char] = &['.', ';', ':', '?', '!', '-'];

fn noun_phrase(rng: &mut RowRng, out: &mut String) {
    match rng.index(4) {
        0 => out.push_str(NOUNS[rng.index(NOUNS.len())]),
        1 => {
            out.push_str(ADJECTIVES[rng.index(ADJECTIVES.len())]);
            out.push(' ');
            out.push_str(NOUNS[rng.index(NOUNS.len())]);
        }
        2 => {
            out.push_str(ADJECTIVES[rng.index(ADJECTIVES.len())]);
            out.push_str(", ");
            out.push_str(ADJECTIVES[rng.index(ADJECTIVES.len())]);
            out.push(' ');
            out.push_str(NOUNS[rng.index(NOUNS.len())]);
        }
        _ => {
            out.push_str(ADVERBS[rng.index(ADVERBS.len())]);
            out.push(' ');
            out.push_str(ADJECTIVES[rng.index(ADJECTIVES.len())]);
            out.push(' ');
            out.push_str(NOUNS[rng.index(NOUNS.len())]);
        }
    }
}

fn verb_phrase(rng: &mut RowRng, out: &mut String) {
    match rng.index(4) {
        0 => out.push_str(VERBS[rng.index(VERBS.len())]),
        1 => {
            out.push_str(AUXILIARIES[rng.index(AUXILIARIES.len())]);
            out.push(' ');
            out.push_str(VERBS[rng.index(VERBS.len())]);
        }
        2 => {
            out.push_str(VERBS[rng.index(VERBS.len())]);
            out.push(' ');
            out.push_str(ADVERBS[rng.index(ADVERBS.len())]);
        }
        _ => {
            out.push_str(AUXILIARIES[rng.index(AUXILIARIES.len())]);
            out.push(' ');
            out.push_str(VERBS[rng.index(VERBS.len())]);
            out.push(' ');
            out.push_str(ADVERBS[rng.index(ADVERBS.len())]);
        }
    }
}

fn prepositional_phrase(rng: &mut RowRng, out: &mut String) {
    out.push_str(PREPOSITIONS[rng.index(PREPOSITIONS.len())]);
    out.push_str(" the ");
    noun_phrase(rng, out);
}

fn sentence(rng: &mut RowRng, out: &mut String) {
    match rng.index(5) {
        0 => {
            noun_phrase(rng, out);
            out.push(' ');
            verb_phrase(rng, out);
        }
        1 => {
            noun_phrase(rng, out);
            out.push(' ');
            verb_phrase(rng, out);
            out.push(' ');
            prepositional_phrase(rng, out);
        }
        2 => {
            noun_phrase(rng, out);
            out.push(' ');
            verb_phrase(rng, out);
            out.push(' ');
            noun_phrase(rng, out);
        }
        3 => {
            noun_phrase(rng, out);
            out.push(' ');
            prepositional_phrase(rng, out);
            out.push(' ');
            verb_phrase(rng, out);
            out.push(' ');
            noun_phrase(rng, out);
        }
        _ => {
            noun_phrase(rng, out);
            out.push(' ');
            prepositional_phrase(rng, out);
            out.push(' ');
            verb_phrase(rng, out);
            out.push(' ');
            prepositional_phrase(rng, out);
        }
    }
    out.push(TERMINATORS[rng.index(TERMINATORS.len())]);
    out.push(' ');
}

/// Generates pseudo-text whose length is uniform in `[min, max]` characters,
/// built from grammar sentences and truncated to the drawn length.
pub fn pseudo_text(rng: &mut RowRng, min: usize, max: usize) -> String {
    let target = rng.uniform_i64(min as i64, max as i64) as usize;
    let mut out = String::with_capacity(target + 32);
    while out.len() < target {
        sentence(rng, &mut out);
    }
    out.truncate(target);
    // Avoid trailing whitespace from mid-sentence truncation.
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RowRng;

    #[test]
    fn pseudo_text_length_bounds() {
        for row in 0..200 {
            let mut rng = RowRng::new(99, row);
            let t = pseudo_text(&mut rng, 19, 78);
            assert!(t.len() <= 78, "too long: {}", t.len());
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn grammar_words_appear() {
        // A large sample must contain the words Q13's pattern depends on.
        let mut all = String::new();
        for row in 0..20_000 {
            let mut rng = RowRng::new(98, row);
            all.push_str(&pseudo_text(&mut rng, 19, 78));
            all.push('\n');
        }
        assert!(all.contains("special"), "adjective list must include 'special'");
        assert!(all.contains("requests"), "noun list must include 'requests'");
    }

    #[test]
    fn fixed_lists_have_spec_cardinalities() {
        assert_eq!(NATIONS.len(), 25);
        assert_eq!(REGIONS.len(), 5);
        assert_eq!(SEGMENTS.len(), 5);
        assert_eq!(PRIORITIES.len(), 5);
        assert_eq!(INSTRUCTIONS.len(), 4);
        assert_eq!(MODES.len(), 7);
        assert_eq!(TYPES_1.len() * TYPES_2.len() * TYPES_3.len(), 150);
        assert_eq!(CONTAINERS_1.len() * CONTAINERS_2.len(), 40);
        assert!(COLORS.len() >= 90);
    }

    #[test]
    fn nation_region_keys_valid() {
        for &(_, r) in NATIONS {
            assert!((0..5).contains(&r));
        }
    }

    #[test]
    fn colors_include_query_parameters() {
        // Q9 uses '%green%', Q20 uses 'forest%'.
        assert!(COLORS.contains(&"green"));
        assert!(COLORS.contains(&"forest"));
    }

    #[test]
    fn deterministic_for_same_row() {
        let a = pseudo_text(&mut RowRng::new(5, 42), 29, 116);
        let b = pseudo_text(&mut RowRng::new(5, 42), 29, 116);
        assert_eq!(a, b);
    }
}
