//! The generator itself: dbgen re-implemented.
//!
//! Cardinalities, key structure (sparse order keys, the part→supplier
//! assignment formula), value distributions, and date arithmetic follow the
//! TPC-H specification §4.2. Two documented deviations (DESIGN.md §2):
//!
//! 1. The RNG is our own counter-based generator, so absolute values differ
//!    from the reference dbgen while every distribution and selectivity is
//!    preserved.
//! 2. Free-text comments are drawn from a per-table pool of up to 65,536
//!    distinct grammar-generated texts instead of one fresh text per row.
//!    Pattern selectivities (`%special%requests%`, `%Customer%Complaints%`)
//!    are unchanged because pool entries come from the same distribution;
//!    memory drops by an order of magnitude, which is what lets a laptop—or
//!    a simulated 1 GB Pi node—hold SF 10 partitions.

use crate::rng::{RowRng, Stream};
use crate::schema;
use crate::text;
use wimpi_storage::{Catalog, Column, Date32, Decimal64, DictBuilder, Result, Table};

/// TPC-H population constants (spec §4.2.3).
pub const CUSTOMERS_PER_SF: f64 = 150_000.0;
/// Suppliers per scale factor.
pub const SUPPLIERS_PER_SF: f64 = 10_000.0;
/// Parts per scale factor.
pub const PARTS_PER_SF: f64 = 200_000.0;
/// Orders per scale factor.
pub const ORDERS_PER_SF: f64 = 1_500_000.0;
/// Clerks per scale factor.
pub const CLERKS_PER_SF: f64 = 1_000.0;

/// The spec's CURRENTDATE used for return flags and line status.
pub fn current_date() -> Date32 {
    Date32::from_ymd(1995, 6, 17)
}

/// First populated order date.
pub fn start_date() -> Date32 {
    Date32::from_ymd(1992, 1, 1)
}

/// Last populated order date (ENDDATE − 151 days = 1998-08-02).
pub fn last_order_date() -> Date32 {
    Date32::from_ymd(1998, 8, 2)
}

/// Maximum distinct comments held per table (documented pool substitution).
const COMMENT_POOL_MAX: usize = 65_536;

/// A pool of pre-generated pseudo-text comments.
struct CommentPool {
    texts: Vec<String>,
}

impl CommentPool {
    fn new(stream: Stream, min: usize, max: usize, rows: u64) -> Self {
        let size = (rows as usize).clamp(1, COMMENT_POOL_MAX);
        let texts =
            (0..size).map(|j| text::pseudo_text(&mut stream.rng(j as u64), min, max)).collect();
        Self { texts }
    }

    /// Deterministically picks the comment for a row.
    fn get(&self, rng: &mut RowRng) -> &str {
        &self.texts[rng.index(self.texts.len())]
    }
}

/// The TPC-H data generator for one scale factor.
///
/// ```
/// use wimpi_tpch::Generator;
/// let g = Generator::new(0.001);
/// let customers = g.customer_table().unwrap();
/// assert_eq!(customers.num_rows(), 150);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Generator {
    sf: f64,
}

impl Generator {
    /// Creates a generator for scale factor `sf` (fractional SFs allowed for
    /// tests and examples).
    pub fn new(sf: f64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        Self { sf }
    }

    /// The scale factor.
    pub fn sf(&self) -> f64 {
        self.sf
    }

    /// Number of customers.
    pub fn num_customers(&self) -> u64 {
        scaled(self.sf, CUSTOMERS_PER_SF)
    }

    /// Number of suppliers.
    pub fn num_suppliers(&self) -> u64 {
        scaled(self.sf, SUPPLIERS_PER_SF)
    }

    /// Number of parts.
    pub fn num_parts(&self) -> u64 {
        scaled(self.sf, PARTS_PER_SF)
    }

    /// Number of orders.
    pub fn num_orders(&self) -> u64 {
        scaled(self.sf, ORDERS_PER_SF)
    }

    /// Number of clerks.
    pub fn num_clerks(&self) -> u64 {
        scaled(self.sf, CLERKS_PER_SF)
    }

    /// The fixed `region` table.
    pub fn region_table(&self) -> Result<Table> {
        let pool = CommentPool::new(Stream::RegionComment, 31, 115, 5);
        let mut name = DictBuilder::new();
        let mut comment = DictBuilder::new();
        let mut key = Vec::new();
        for (i, r) in text::REGIONS.iter().enumerate() {
            key.push(i as i64);
            name.push(r);
            comment.push(pool.get(&mut Stream::RegionComment.rng(1000 + i as u64)));
        }
        Table::new(
            schema::region(),
            vec![Column::Int64(key), Column::Str(name.finish()), Column::Str(comment.finish())],
        )
    }

    /// The fixed `nation` table.
    pub fn nation_table(&self) -> Result<Table> {
        let pool = CommentPool::new(Stream::NationComment, 31, 114, 25);
        let mut name = DictBuilder::new();
        let mut comment = DictBuilder::new();
        let (mut key, mut rkey) = (Vec::new(), Vec::new());
        for (i, &(n, r)) in text::NATIONS.iter().enumerate() {
            key.push(i as i64);
            name.push(n);
            rkey.push(r);
            comment.push(pool.get(&mut Stream::NationComment.rng(1000 + i as u64)));
        }
        Table::new(
            schema::nation(),
            vec![
                Column::Int64(key),
                Column::Str(name.finish()),
                Column::Int64(rkey),
                Column::Str(comment.finish()),
            ],
        )
    }

    /// The `supplier` table.
    pub fn supplier_table(&self) -> Result<Table> {
        let n = self.num_suppliers();
        let pool = CommentPool::new(Stream::SuppComment, 25, 100, n);
        let mut key = Vec::with_capacity(n as usize);
        let mut name = DictBuilder::with_capacity(n as usize);
        let mut address = DictBuilder::with_capacity(n as usize);
        let mut nation = Vec::with_capacity(n as usize);
        let mut phone = DictBuilder::with_capacity(n as usize);
        let mut acctbal = Vec::with_capacity(n as usize);
        let mut comment = DictBuilder::with_capacity(n as usize);
        for i in 0..n {
            let suppkey = i as i64 + 1;
            key.push(suppkey);
            name.push(&format!("Supplier#{suppkey:09}"));
            address.push(&Stream::SuppAddress.rng(i).v_string(10, 40));
            let nk = Stream::SuppNation.rng(i).uniform_i64(0, 24);
            nation.push(nk);
            phone.push(&phone_for(nk, &mut Stream::SuppPhone.rng(i)));
            acctbal.push(Stream::SuppAcctbal.rng(i).uniform_i64(-99_999, 999_999));
            // Spec §4.2.3: 5 per 10,000 suppliers complain, 5 recommend.
            let base = pool.get(&mut Stream::SuppComment.rng(i)).to_string();
            let text = match suppkey % 2000 {
                13 => splice(&base, "Customer Complaints"),
                1987 => splice(&base, "Customer Recommends"),
                _ => base,
            };
            comment.push(&text);
        }
        Table::new(
            schema::supplier(),
            vec![
                Column::Int64(key),
                Column::Str(name.finish()),
                Column::Str(address.finish()),
                Column::Int64(nation),
                Column::Str(phone.finish()),
                Column::Decimal(acctbal, 2),
                Column::Str(comment.finish()),
            ],
        )
    }

    /// The `customer` table.
    pub fn customer_table(&self) -> Result<Table> {
        let n = self.num_customers();
        let pool = CommentPool::new(Stream::CustComment, 29, 116, n);
        let mut key = Vec::with_capacity(n as usize);
        let mut name = DictBuilder::with_capacity(n as usize);
        let mut address = DictBuilder::with_capacity(n as usize);
        let mut nation = Vec::with_capacity(n as usize);
        let mut phone = DictBuilder::with_capacity(n as usize);
        let mut acctbal = Vec::with_capacity(n as usize);
        let mut segment = DictBuilder::with_capacity(n as usize);
        let mut comment = DictBuilder::with_capacity(n as usize);
        for i in 0..n {
            let custkey = i as i64 + 1;
            key.push(custkey);
            name.push(&format!("Customer#{custkey:09}"));
            address.push(&Stream::CustAddress.rng(i).v_string(10, 40));
            let nk = Stream::CustNation.rng(i).uniform_i64(0, 24);
            nation.push(nk);
            phone.push(&phone_for(nk, &mut Stream::CustPhone.rng(i)));
            acctbal.push(Stream::CustAcctbal.rng(i).uniform_i64(-99_999, 999_999));
            segment.push(text::SEGMENTS[Stream::CustSegment.rng(i).index(text::SEGMENTS.len())]);
            comment.push(pool.get(&mut Stream::CustComment.rng(i)));
        }
        Table::new(
            schema::customer(),
            vec![
                Column::Int64(key),
                Column::Str(name.finish()),
                Column::Str(address.finish()),
                Column::Int64(nation),
                Column::Str(phone.finish()),
                Column::Decimal(acctbal, 2),
                Column::Str(segment.finish()),
                Column::Str(comment.finish()),
            ],
        )
    }

    /// The `part` table.
    pub fn part_table(&self) -> Result<Table> {
        let n = self.num_parts();
        let pool = CommentPool::new(Stream::PartComment, 5, 22, n);
        let mut key = Vec::with_capacity(n as usize);
        let mut name = DictBuilder::with_capacity(n as usize);
        let mut mfgr = DictBuilder::with_capacity(n as usize);
        let mut brand = DictBuilder::with_capacity(n as usize);
        let mut ptype = DictBuilder::with_capacity(n as usize);
        let mut size = Vec::with_capacity(n as usize);
        let mut container = DictBuilder::with_capacity(n as usize);
        let mut retail = Vec::with_capacity(n as usize);
        let mut comment = DictBuilder::with_capacity(n as usize);
        for i in 0..n {
            let partkey = i as i64 + 1;
            key.push(partkey);
            name.push(&part_name(&mut Stream::PartName.rng(i)));
            let m = Stream::PartMfgr.rng(i).uniform_i64(1, 5);
            mfgr.push(&format!("Manufacturer#{m}"));
            let b = Stream::PartBrand.rng(i).uniform_i64(1, 5);
            brand.push(&format!("Brand#{m}{b}"));
            let mut trng = Stream::PartType.rng(i);
            ptype.push(&format!(
                "{} {} {}",
                text::TYPES_1[trng.index(text::TYPES_1.len())],
                text::TYPES_2[trng.index(text::TYPES_2.len())],
                text::TYPES_3[trng.index(text::TYPES_3.len())],
            ));
            size.push(Stream::PartSize.rng(i).uniform_i64(1, 50) as i32);
            let mut crng = Stream::PartContainer.rng(i);
            container.push(&format!(
                "{} {}",
                text::CONTAINERS_1[crng.index(text::CONTAINERS_1.len())],
                text::CONTAINERS_2[crng.index(text::CONTAINERS_2.len())],
            ));
            retail.push(retail_price_cents(partkey));
            comment.push(pool.get(&mut Stream::PartComment.rng(i)));
        }
        Table::new(
            schema::part(),
            vec![
                Column::Int64(key),
                Column::Str(name.finish()),
                Column::Str(mfgr.finish()),
                Column::Str(brand.finish()),
                Column::Str(ptype.finish()),
                Column::Int32(size),
                Column::Str(container.finish()),
                Column::Decimal(retail, 2),
                Column::Str(comment.finish()),
            ],
        )
    }

    /// The `partsupp` table (4 suppliers per part, spec assignment formula).
    pub fn partsupp_table(&self) -> Result<Table> {
        let parts = self.num_parts();
        let suppliers = self.num_suppliers() as i64;
        let rows = parts * 4;
        let pool = CommentPool::new(Stream::PsComment, 49, 198, rows);
        let mut pkey = Vec::with_capacity(rows as usize);
        let mut skey = Vec::with_capacity(rows as usize);
        let mut avail = Vec::with_capacity(rows as usize);
        let mut cost = Vec::with_capacity(rows as usize);
        let mut comment = DictBuilder::with_capacity(rows as usize);
        for i in 0..parts {
            let partkey = i as i64 + 1;
            for j in 0..4i64 {
                let row = i * 4 + j as u64;
                pkey.push(partkey);
                skey.push(supplier_for_part(partkey, j, suppliers));
                avail.push(Stream::PsAvailQty.rng(row).uniform_i64(1, 9999) as i32);
                cost.push(Stream::PsSupplyCost.rng(row).uniform_i64(100, 100_000));
                comment.push(pool.get(&mut Stream::PsComment.rng(row)));
            }
        }
        Table::new(
            schema::partsupp(),
            vec![
                Column::Int64(pkey),
                Column::Int64(skey),
                Column::Int32(avail),
                Column::Decimal(cost, 2),
                Column::Str(comment.finish()),
            ],
        )
    }

    /// Generates `orders` and `lineitem` together for the full database.
    pub fn orders_lineitem(&self) -> Result<(Table, Table)> {
        self.orders_lineitem_chunk(0, 1)
    }

    /// Generates chunk `chunk` of `nchunks` of `orders`/`lineitem`, split by
    /// contiguous order-index (and therefore order-key) ranges. This is the
    /// entry point the cluster partitioner uses: chunks are deterministic and
    /// independent of every other chunk.
    pub fn orders_lineitem_chunk(&self, chunk: u64, nchunks: u64) -> Result<(Table, Table)> {
        let total = self.num_orders();
        let o_pool = CommentPool::new(Stream::OrderComment, 19, 78, total);
        let l_pool = CommentPool::new(Stream::LineComment, 10, 43, total * 4);
        self.orders_lineitem_chunk_with_pools(chunk, nchunks, &o_pool, &l_pool)
    }

    /// [`Generator::orders_lineitem_chunk`] against caller-held comment
    /// pools. The pools depend only on the scale factor — never on the
    /// chunk grid — so the streaming path builds them once and reuses them
    /// for every chunk without changing a single generated byte.
    fn orders_lineitem_chunk_with_pools(
        &self,
        chunk: u64,
        nchunks: u64,
        o_pool: &CommentPool,
        l_pool: &CommentPool,
    ) -> Result<(Table, Table)> {
        assert!(nchunks > 0 && chunk < nchunks, "bad chunk {chunk}/{nchunks}");
        let total = self.num_orders();
        let (lo, hi) = chunk_range(total, chunk, nchunks);
        let n = (hi - lo) as usize;
        let customers = self.num_customers() as i64;
        let clerks = self.num_clerks() as i64;
        let parts = self.num_parts() as i64;
        let suppliers = self.num_suppliers() as i64;
        let date_span = (last_order_date().0 - start_date().0) as i64;
        let today = current_date();

        // orders columns
        let mut o_key = Vec::with_capacity(n);
        let mut o_cust = Vec::with_capacity(n);
        let mut o_status = DictBuilder::with_capacity(n);
        let mut o_total = Vec::with_capacity(n);
        let mut o_date = Vec::with_capacity(n);
        let mut o_prio = DictBuilder::with_capacity(n);
        let mut o_clerk = DictBuilder::with_capacity(n);
        let mut o_ship = Vec::with_capacity(n);
        let mut o_comment = DictBuilder::with_capacity(n);

        // lineitem columns (≈4 lines/order on average)
        let cap = n * 4;
        let mut l_okey = Vec::with_capacity(cap);
        let mut l_pkey = Vec::with_capacity(cap);
        let mut l_skey = Vec::with_capacity(cap);
        let mut l_num = Vec::with_capacity(cap);
        let mut l_qty = Vec::with_capacity(cap);
        let mut l_ext = Vec::with_capacity(cap);
        let mut l_disc = Vec::with_capacity(cap);
        let mut l_tax = Vec::with_capacity(cap);
        let mut l_rflag = DictBuilder::with_capacity(cap);
        let mut l_status = DictBuilder::with_capacity(cap);
        let mut l_sdate = Vec::with_capacity(cap);
        let mut l_cdate = Vec::with_capacity(cap);
        let mut l_rdate = Vec::with_capacity(cap);
        let mut l_instr = DictBuilder::with_capacity(cap);
        let mut l_mode = DictBuilder::with_capacity(cap);
        let mut l_comment = DictBuilder::with_capacity(cap);

        let one = Decimal64::one(2);
        for idx in lo..hi {
            let orderkey = order_key_for_index(idx);
            let custkey = draw_custkey(customers, idx);
            let odate =
                start_date().0 + Stream::OrderDate.rng(idx).uniform_i64(0, date_span) as i32;
            let nlines = Stream::LineCount.rng(idx).uniform_i64(1, 7);
            let mut total_price = Decimal64::zero(2);
            let mut f_lines = 0;
            for line in 0..nlines {
                let lrow = idx * 8 + line as u64;
                let partkey = Stream::LinePartkey.rng(lrow).uniform_i64(1, parts);
                let supp_idx = Stream::LineSuppIdx.rng(lrow).uniform_i64(0, 3);
                let suppkey = supplier_for_part(partkey, supp_idx, suppliers);
                let qty = Stream::LineQuantity.rng(lrow).uniform_i64(1, 50);
                let ext = qty * retail_price_cents(partkey); // qty(int) × price(cents)
                let disc = Stream::LineDiscount.rng(lrow).uniform_i64(0, 10); // 0.00–0.10
                let tax = Stream::LineTax.rng(lrow).uniform_i64(0, 8); // 0.00–0.08
                let sdate = odate + Stream::LineShipDelta.rng(lrow).uniform_i64(1, 121) as i32;
                let cdate = odate + Stream::LineCommitDelta.rng(lrow).uniform_i64(30, 90) as i32;
                let rdate = sdate + Stream::LineReceiptDelta.rng(lrow).uniform_i64(1, 30) as i32;

                l_okey.push(orderkey);
                l_pkey.push(partkey);
                l_skey.push(suppkey);
                l_num.push(line as i32 + 1);
                l_qty.push(qty * 100);
                l_ext.push(ext);
                l_disc.push(disc);
                l_tax.push(tax);
                if Date32(rdate) <= today {
                    l_rflag.push(if Stream::LineReturnFlag.rng(lrow).index(2) == 0 {
                        "R"
                    } else {
                        "A"
                    });
                } else {
                    l_rflag.push("N");
                }
                let shipped = Date32(sdate) <= today;
                l_status.push(if shipped { "F" } else { "O" });
                if shipped {
                    f_lines += 1;
                }
                l_sdate.push(sdate);
                l_cdate.push(cdate);
                l_rdate.push(rdate);
                l_instr.push(
                    text::INSTRUCTIONS
                        [Stream::LineInstruct.rng(lrow).index(text::INSTRUCTIONS.len())],
                );
                l_mode.push(text::MODES[Stream::LineMode.rng(lrow).index(text::MODES.len())]);
                l_comment.push(l_pool.get(&mut Stream::LineComment.rng(lrow)));

                // o_totalprice += ext * (1 - disc) * (1 + tax), exact decimals
                let ext_d = Decimal64::new(ext, 2);
                let disc_d = Decimal64::new(disc, 2);
                let tax_d = Decimal64::new(tax, 2);
                let discounted = ext_d.mul(one.sub(disc_d)?, 4)?;
                let charged = discounted.mul(one.add(tax_d)?, 2)?;
                total_price = total_price.add(charged)?;
            }
            o_key.push(orderkey);
            o_cust.push(custkey);
            o_status.push(if f_lines == nlines {
                "F"
            } else if f_lines == 0 {
                "O"
            } else {
                "P"
            });
            o_total.push(total_price.mantissa());
            o_date.push(odate);
            o_prio.push(
                text::PRIORITIES[Stream::OrderPriority.rng(idx).index(text::PRIORITIES.len())],
            );
            let clerk = Stream::OrderClerk.rng(idx).uniform_i64(1, clerks.max(1));
            o_clerk.push(&format!("Clerk#{clerk:09}"));
            o_ship.push(0);
            o_comment.push(o_pool.get(&mut Stream::OrderComment.rng(idx)));
        }

        let orders = Table::new(
            schema::orders(),
            vec![
                Column::Int64(o_key),
                Column::Int64(o_cust),
                Column::Str(o_status.finish()),
                Column::Decimal(o_total, 2),
                Column::Date(o_date),
                Column::Str(o_prio.finish()),
                Column::Str(o_clerk.finish()),
                Column::Int32(o_ship),
                Column::Str(o_comment.finish()),
            ],
        )?;
        let lineitem = Table::new(
            schema::lineitem(),
            vec![
                Column::Int64(l_okey),
                Column::Int64(l_pkey),
                Column::Int64(l_skey),
                Column::Int32(l_num),
                Column::Decimal(l_qty, 2),
                Column::Decimal(l_ext, 2),
                Column::Decimal(l_disc, 2),
                Column::Decimal(l_tax, 2),
                Column::Str(l_rflag.finish()),
                Column::Str(l_status.finish()),
                Column::Date(l_sdate),
                Column::Date(l_cdate),
                Column::Date(l_rdate),
                Column::Str(l_instr.finish()),
                Column::Str(l_mode.finish()),
                Column::Str(l_comment.finish()),
            ],
        )?;
        Ok((orders, lineitem))
    }

    /// Streams `orders`/`lineitem` in bounded-memory chunks of at most
    /// `orders_per_chunk` orders each (DESIGN.md §16).
    ///
    /// Every RNG stream is counter-based (seeded by absolute row index), so
    /// each chunk is generated independently of every other chunk and the
    /// concatenation of the streamed chunks is byte-identical to
    /// [`Generator::orders_lineitem`] at any chunk size. Peak memory is one
    /// chunk plus the shared comment pools — this is what lets SF 10
    /// lineitem come into existence on a node that could never hold it
    /// whole.
    pub fn stream_orders_lineitem(&self, orders_per_chunk: u64) -> OrdersLineitemStream {
        assert!(orders_per_chunk > 0, "orders_per_chunk must be positive");
        let total = self.num_orders();
        OrdersLineitemStream {
            gen: *self,
            nchunks: total.div_ceil(orders_per_chunk).max(1),
            next: 0,
            o_pool: CommentPool::new(Stream::OrderComment, 19, 78, total),
            l_pool: CommentPool::new(Stream::LineComment, 10, 43, total * 4),
        }
    }

    /// Generates the whole database into a catalog — the single-node setup.
    pub fn generate_catalog(&self) -> Result<Catalog> {
        let mut cat = Catalog::new();
        cat.register("region", self.region_table()?);
        cat.register("nation", self.nation_table()?);
        cat.register("supplier", self.supplier_table()?);
        cat.register("customer", self.customer_table()?);
        cat.register("part", self.part_table()?);
        cat.register("partsupp", self.partsupp_table()?);
        let (orders, lineitem) = self.orders_lineitem()?;
        cat.register("orders", orders);
        cat.register("lineitem", lineitem);
        Ok(cat)
    }
}

/// A bounded-memory iterator over `orders`/`lineitem` chunks, produced by
/// [`Generator::stream_orders_lineitem`]. The comment pools (the only
/// allocation whose size does not shrink with the chunk grid) are built once
/// and shared across all chunks; each `next()` materializes exactly one
/// chunk. Chunks can also be regenerated at random via
/// [`OrdersLineitemStream::chunk`] — the same index always yields the same
/// bytes, independent of what was generated before.
pub struct OrdersLineitemStream {
    gen: Generator,
    nchunks: u64,
    next: u64,
    o_pool: CommentPool,
    l_pool: CommentPool,
}

impl OrdersLineitemStream {
    /// Total number of chunks this stream will yield.
    pub fn num_chunks(&self) -> u64 {
        self.nchunks
    }

    /// Regenerates chunk `c` out of order (deterministic random access).
    pub fn chunk(&self, c: u64) -> Result<(Table, Table)> {
        self.gen.orders_lineitem_chunk_with_pools(c, self.nchunks, &self.o_pool, &self.l_pool)
    }
}

impl Iterator for OrdersLineitemStream {
    type Item = Result<(Table, Table)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.nchunks {
            return None;
        }
        let c = self.next;
        self.next += 1;
        Some(self.chunk(c))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.nchunks - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for OrdersLineitemStream {}

/// Rounds a scaled cardinality, keeping at least one row.
fn scaled(sf: f64, per_sf: f64) -> u64 {
    ((sf * per_sf).round() as u64).max(1)
}

/// Sparse order keys: 8 consecutive keys used out of every 32 (spec §4.2.3).
pub fn order_key_for_index(idx: u64) -> i64 {
    let group = idx / 8;
    let offset = idx % 8;
    (group * 32 + offset) as i64 + 1
}

/// Splits `total` rows into `nchunks` contiguous ranges; chunk sizes differ
/// by at most one.
pub fn chunk_range(total: u64, chunk: u64, nchunks: u64) -> (u64, u64) {
    let base = total / nchunks;
    let extra = total % nchunks;
    let lo = chunk * base + chunk.min(extra);
    let hi = lo + base + u64::from(chunk < extra);
    (lo, hi.min(total))
}

/// Customers whose key is divisible by 3 place no orders (spec §4.2.3).
fn draw_custkey(customers: i64, idx: u64) -> i64 {
    let mut rng = Stream::OrderCustkey.rng(idx);
    loop {
        let k = rng.uniform_i64(1, customers);
        if k % 3 != 0 || customers < 3 {
            return k;
        }
    }
}

/// The spec's part→supplier assignment: supplier `j` of part `p` among `s`
/// suppliers is `(p + j*(s/4 + (p-1)/s)) mod s + 1`. At the spec's supplier
/// counts (10,000 × SF) the four assignments are always distinct; at the tiny
/// fractional SFs used in tests they can collide, so collisions fall back to
/// linear probing. Both `partsupp` and `lineitem` go through
/// [`suppliers_of_part`], keeping the foreign key `(l_partkey, l_suppkey) →
/// partsupp` valid at every scale.
pub fn supplier_for_part(partkey: i64, j: i64, suppliers: i64) -> i64 {
    suppliers_of_part(partkey, suppliers)[j as usize]
}

/// The four suppliers stocking a part, distinct at any supplier count.
pub fn suppliers_of_part(partkey: i64, suppliers: i64) -> [i64; 4] {
    let mut out = [0i64; 4];
    for j in 0..4 {
        let mut s = (partkey + j * (suppliers / 4 + (partkey - 1) / suppliers)) % suppliers + 1;
        if suppliers >= 4 {
            while out[..j as usize].contains(&s) {
                s = s % suppliers + 1;
            }
        }
        out[j as usize] = s;
    }
    out
}

/// P_RETAILPRICE in cents: `(90000 + ((p/10) mod 20001) + 100*(p mod 1000))`.
pub fn retail_price_cents(partkey: i64) -> i64 {
    90_000 + ((partkey / 10) % 20_001) + 100 * (partkey % 1_000)
}

/// Part names are five distinct colors joined by spaces.
fn part_name(rng: &mut RowRng) -> String {
    let mut picks: [usize; 5] = [0; 5];
    let mut count = 0;
    while count < 5 {
        let c = rng.index(text::COLORS.len());
        if !picks[..count].contains(&c) {
            picks[count] = c;
            count += 1;
        }
    }
    picks.iter().map(|&c| text::COLORS[c]).collect::<Vec<_>>().join(" ")
}

/// Phone numbers: `CC-LLL-LLL-LLLL` with country code `10 + nationkey`.
fn phone_for(nationkey: i64, rng: &mut RowRng) -> String {
    format!(
        "{:02}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.uniform_i64(100, 999),
        rng.uniform_i64(100, 999),
        rng.uniform_i64(1000, 9999),
    )
}

/// Inserts `patch` into the middle of `base` (supplier complaint injection).
fn splice(base: &str, patch: &str) -> String {
    let mid = base.len() / 2;
    // Don't split a UTF-8 boundary; pseudo-text is ASCII, but stay safe.
    let mid = (0..=mid).rev().find(|&i| base.is_char_boundary(i)).unwrap_or(0);
    format!("{}{}{}", &base[..mid], patch, &base[mid..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale() {
        let g = Generator::new(0.01);
        assert_eq!(g.num_customers(), 1500);
        assert_eq!(g.num_suppliers(), 100);
        assert_eq!(g.num_parts(), 2000);
        assert_eq!(g.num_orders(), 15_000);
    }

    #[test]
    fn order_keys_are_sparse() {
        assert_eq!(order_key_for_index(0), 1);
        assert_eq!(order_key_for_index(7), 8);
        assert_eq!(order_key_for_index(8), 33);
        assert_eq!(order_key_for_index(15), 40);
        assert_eq!(order_key_for_index(16), 65);
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        let total = 1003;
        let mut seen = 0;
        for c in 0..7 {
            let (lo, hi) = chunk_range(total, c, 7);
            assert_eq!(lo, seen);
            seen = hi;
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn supplier_assignment_in_range() {
        for p in 1..=200 {
            for j in 0..4 {
                let s = supplier_for_part(p, j, 100);
                assert!((1..=100).contains(&s), "supplier {s} out of range");
            }
        }
    }

    #[test]
    fn retail_price_formula() {
        assert_eq!(retail_price_cents(1), 90_000 + 100);
        assert_eq!(retail_price_cents(10), 90_000 + 1 + 1000);
    }

    #[test]
    fn fixed_tables() {
        let g = Generator::new(1.0);
        let r = g.region_table().unwrap();
        assert_eq!(r.num_rows(), 5);
        let n = g.nation_table().unwrap();
        assert_eq!(n.num_rows(), 25);
        assert_eq!(n.column_by_name("n_name").unwrap().as_str().unwrap().get(6), "FRANCE");
    }

    #[test]
    fn supplier_table_shape() {
        let g = Generator::new(0.01);
        let s = g.supplier_table().unwrap();
        assert_eq!(s.num_rows(), 100);
        let bal = s.column_by_name("s_acctbal").unwrap();
        let (m, scale) = bal.as_decimal().unwrap();
        assert_eq!(scale, 2);
        assert!(m.iter().all(|&v| (-99_999..=999_999).contains(&v)));
    }

    #[test]
    fn customer_custkeys_dense() {
        let g = Generator::new(0.001);
        let c = g.customer_table().unwrap();
        let keys = c.column_by_name("c_custkey").unwrap();
        let keys = keys.as_i64().unwrap();
        assert_eq!(keys.first(), Some(&1));
        assert_eq!(keys.last(), Some(&(keys.len() as i64)));
    }

    #[test]
    fn orders_reference_valid_customers() {
        let g = Generator::new(0.001);
        let (orders, _) = g.orders_lineitem().unwrap();
        let customers = g.num_customers() as i64;
        let cust = orders.column_by_name("o_custkey").unwrap();
        for &k in cust.as_i64().unwrap() {
            assert!((1..=customers).contains(&k));
            assert_ne!(k % 3, 0, "customers divisible by 3 must have no orders");
        }
    }

    #[test]
    fn lineitem_dates_consistent() {
        let g = Generator::new(0.001);
        let (_, li) = g.orders_lineitem().unwrap();
        let ship = li.column_by_name("l_shipdate").unwrap();
        let ship = ship.as_date().unwrap();
        let receipt = li.column_by_name("l_receiptdate").unwrap();
        let receipt = receipt.as_date().unwrap();
        for (s, r) in ship.iter().zip(receipt) {
            assert!(r > s, "receipt must follow ship");
        }
    }

    #[test]
    fn lineitem_count_matches_order_lines() {
        let g = Generator::new(0.001);
        let (orders, li) = g.orders_lineitem().unwrap();
        // 1–7 lines per order, so the ratio must be within those bounds.
        let ratio = li.num_rows() as f64 / orders.num_rows() as f64;
        assert!((1.0..=7.0).contains(&ratio));
        // and close to the expected mean of 4
        assert!((3.5..=4.5).contains(&ratio), "mean lines/order {ratio}");
    }

    #[test]
    fn chunked_generation_matches_full() {
        let g = Generator::new(0.001);
        let (full_o, full_l) = g.orders_lineitem().unwrap();
        let mut okeys = Vec::new();
        let mut lkeys = Vec::new();
        for c in 0..4 {
            let (o, l) = g.orders_lineitem_chunk(c, 4).unwrap();
            okeys.extend_from_slice(o.column_by_name("o_orderkey").unwrap().as_i64().unwrap());
            lkeys.extend_from_slice(l.column_by_name("l_orderkey").unwrap().as_i64().unwrap());
        }
        assert_eq!(okeys, full_o.column_by_name("o_orderkey").unwrap().as_i64().unwrap());
        assert_eq!(lkeys, full_l.column_by_name("l_orderkey").unwrap().as_i64().unwrap());
    }

    #[test]
    fn streamed_chunks_concatenate_to_the_full_tables() {
        let g = Generator::new(0.001);
        let (full_o, full_l) = g.orders_lineitem().unwrap();
        let stream = g.stream_orders_lineitem(57);
        assert_eq!(stream.num_chunks(), 1500u64.div_ceil(57));
        let mut chunks_o = Vec::new();
        let mut chunks_l = Vec::new();
        for part in stream {
            let (o, l) = part.unwrap();
            assert!(o.num_rows() <= 57, "chunk exceeds orders_per_chunk");
            chunks_o.push(o);
            chunks_l.push(l);
        }
        for (full, parts) in [(&full_o, &chunks_o), (&full_l, &chunks_l)] {
            for ci in 0..full.num_columns() {
                let cols: Vec<&Column> = parts.iter().map(|t| t.column(ci).as_ref()).collect();
                let glued = Column::concat(&cols).unwrap();
                assert_eq!(
                    &glued,
                    full.column(ci).as_ref(),
                    "column {ci} differs between streamed and full generation"
                );
            }
        }
    }

    #[test]
    fn streamed_chunks_are_deterministic_under_random_access() {
        let g = Generator::new(0.001);
        let stream = g.stream_orders_lineitem(100);
        // Regenerate a middle chunk twice, plus out of order: identical bytes.
        let (o1, l1) = stream.chunk(7).unwrap();
        let (_, _) = stream.chunk(2).unwrap();
        let (o2, l2) = stream.chunk(7).unwrap();
        for ci in 0..o1.num_columns() {
            assert_eq!(o1.column(ci).as_ref(), o2.column(ci).as_ref());
        }
        for ci in 0..l1.num_columns() {
            assert_eq!(l1.column(ci).as_ref(), l2.column(ci).as_ref());
        }
    }

    #[test]
    fn streamed_chunk_memory_is_bounded() {
        let g = Generator::new(0.01);
        let (full_o, full_l) = g.orders_lineitem().unwrap();
        let full_bytes = full_o.heap_bytes() + full_l.heap_bytes();
        let mut max_chunk = 0usize;
        for part in g.stream_orders_lineitem(1000) {
            let (o, l) = part.unwrap();
            max_chunk = max_chunk.max(o.heap_bytes() + l.heap_bytes());
        }
        assert!(
            max_chunk * 4 < full_bytes,
            "peak chunk {max_chunk} B is not small vs full {full_bytes} B"
        );
    }

    #[test]
    fn status_derivation() {
        let g = Generator::new(0.001);
        let (orders, _) = g.orders_lineitem().unwrap();
        let status = orders.column_by_name("o_orderstatus").unwrap();
        let status = status.as_str().unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in status.iter() {
            seen.insert(s.to_string());
            assert!(matches!(s, "F" | "O" | "P"));
        }
        assert!(seen.len() >= 2, "expected a mix of order statuses");
    }

    #[test]
    fn totalprice_positive() {
        let g = Generator::new(0.001);
        let (orders, _) = g.orders_lineitem().unwrap();
        let (m, _) = orders.column_by_name("o_totalprice").unwrap().as_decimal().unwrap();
        assert!(m.iter().all(|&v| v > 0));
    }

    #[test]
    fn partsupp_is_four_per_part() {
        let g = Generator::new(0.001);
        let ps = g.partsupp_table().unwrap();
        assert_eq!(ps.num_rows() as u64, g.num_parts() * 4);
        // (partkey, suppkey) pairs are unique
        let pk = ps.column_by_name("ps_partkey").unwrap();
        let pk = pk.as_i64().unwrap();
        let sk = ps.column_by_name("ps_suppkey").unwrap();
        let sk = sk.as_i64().unwrap();
        let set: std::collections::HashSet<_> = pk.iter().zip(sk).collect();
        assert_eq!(set.len(), ps.num_rows());
    }

    #[test]
    fn complaint_injection_rate() {
        let g = Generator::new(1.0);
        let s = g.supplier_table().unwrap();
        let comments = s.column_by_name("s_comment").unwrap();
        let comments = comments.as_str().unwrap();
        let complainers = comments.iter().filter(|c| c.contains("Customer Complaints")).count();
        assert_eq!(complainers, 5, "5 per 10,000 suppliers at SF 1");
    }
}
