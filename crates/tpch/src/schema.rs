//! The eight TPC-H table schemas.

use wimpi_storage::{DataType, Field, Schema};

/// Money/rate columns are `decimal(_, 2)` per the spec.
pub const MONEY: DataType = DataType::Decimal(2);

/// Table names in generation order (referenced tables first).
pub const TABLE_NAMES: [&str; 8] =
    ["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"];

/// `region` schema.
pub fn region() -> Schema {
    Schema::new(vec![
        Field::new("r_regionkey", DataType::Int64),
        Field::new("r_name", DataType::Utf8),
        Field::new("r_comment", DataType::Utf8),
    ])
}

/// `nation` schema.
pub fn nation() -> Schema {
    Schema::new(vec![
        Field::new("n_nationkey", DataType::Int64),
        Field::new("n_name", DataType::Utf8),
        Field::new("n_regionkey", DataType::Int64),
        Field::new("n_comment", DataType::Utf8),
    ])
}

/// `supplier` schema.
pub fn supplier() -> Schema {
    Schema::new(vec![
        Field::new("s_suppkey", DataType::Int64),
        Field::new("s_name", DataType::Utf8),
        Field::new("s_address", DataType::Utf8),
        Field::new("s_nationkey", DataType::Int64),
        Field::new("s_phone", DataType::Utf8),
        Field::new("s_acctbal", MONEY),
        Field::new("s_comment", DataType::Utf8),
    ])
}

/// `customer` schema.
pub fn customer() -> Schema {
    Schema::new(vec![
        Field::new("c_custkey", DataType::Int64),
        Field::new("c_name", DataType::Utf8),
        Field::new("c_address", DataType::Utf8),
        Field::new("c_nationkey", DataType::Int64),
        Field::new("c_phone", DataType::Utf8),
        Field::new("c_acctbal", MONEY),
        Field::new("c_mktsegment", DataType::Utf8),
        Field::new("c_comment", DataType::Utf8),
    ])
}

/// `part` schema.
pub fn part() -> Schema {
    Schema::new(vec![
        Field::new("p_partkey", DataType::Int64),
        Field::new("p_name", DataType::Utf8),
        Field::new("p_mfgr", DataType::Utf8),
        Field::new("p_brand", DataType::Utf8),
        Field::new("p_type", DataType::Utf8),
        Field::new("p_size", DataType::Int32),
        Field::new("p_container", DataType::Utf8),
        Field::new("p_retailprice", MONEY),
        Field::new("p_comment", DataType::Utf8),
    ])
}

/// `partsupp` schema.
pub fn partsupp() -> Schema {
    Schema::new(vec![
        Field::new("ps_partkey", DataType::Int64),
        Field::new("ps_suppkey", DataType::Int64),
        Field::new("ps_availqty", DataType::Int32),
        Field::new("ps_supplycost", MONEY),
        Field::new("ps_comment", DataType::Utf8),
    ])
}

/// `orders` schema.
pub fn orders() -> Schema {
    Schema::new(vec![
        Field::new("o_orderkey", DataType::Int64),
        Field::new("o_custkey", DataType::Int64),
        Field::new("o_orderstatus", DataType::Utf8),
        Field::new("o_totalprice", MONEY),
        Field::new("o_orderdate", DataType::Date),
        Field::new("o_orderpriority", DataType::Utf8),
        Field::new("o_clerk", DataType::Utf8),
        Field::new("o_shippriority", DataType::Int32),
        Field::new("o_comment", DataType::Utf8),
    ])
}

/// `lineitem` schema.
pub fn lineitem() -> Schema {
    Schema::new(vec![
        Field::new("l_orderkey", DataType::Int64),
        Field::new("l_partkey", DataType::Int64),
        Field::new("l_suppkey", DataType::Int64),
        Field::new("l_linenumber", DataType::Int32),
        Field::new("l_quantity", MONEY),
        Field::new("l_extendedprice", MONEY),
        Field::new("l_discount", MONEY),
        Field::new("l_tax", MONEY),
        Field::new("l_returnflag", DataType::Utf8),
        Field::new("l_linestatus", DataType::Utf8),
        Field::new("l_shipdate", DataType::Date),
        Field::new("l_commitdate", DataType::Date),
        Field::new("l_receiptdate", DataType::Date),
        Field::new("l_shipinstruct", DataType::Utf8),
        Field::new("l_shipmode", DataType::Utf8),
        Field::new("l_comment", DataType::Utf8),
    ])
}

/// Schema for a table by name.
pub fn schema_for(table: &str) -> Option<Schema> {
    match table {
        "region" => Some(region()),
        "nation" => Some(nation()),
        "supplier" => Some(supplier()),
        "customer" => Some(customer()),
        "part" => Some(part()),
        "partsupp" => Some(partsupp()),
        "orders" => Some(orders()),
        "lineitem" => Some(lineitem()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_have_schemas() {
        for name in TABLE_NAMES {
            let s = schema_for(name).unwrap_or_else(|| panic!("missing schema for {name}"));
            assert!(!s.is_empty());
        }
        assert!(schema_for("bogus").is_none());
    }

    #[test]
    fn lineitem_has_sixteen_columns() {
        assert_eq!(lineitem().len(), 16);
        assert_eq!(orders().len(), 9);
        assert_eq!(partsupp().len(), 5);
    }

    #[test]
    fn key_columns_are_int64() {
        assert_eq!(lineitem().field("l_orderkey").unwrap().data_type, DataType::Int64);
        assert_eq!(orders().field("o_custkey").unwrap().data_type, DataType::Int64);
    }
}
