//! # wimpi-tpch
//!
//! A deterministic TPC-H data generator (dbgen replacement) plus the eight
//! table schemas. Chunked generation lets the cluster crate materialize one
//! node's lineitem partition at a time (see `Generator::orders_lineitem_chunk`).
//!
//! Documented deviations from the reference dbgen are listed in `DESIGN.md`
//! §2 and in the `gen` module docs.

pub mod cluster;
pub mod gen;
pub mod rng;
pub mod schema;
pub mod tbl;
pub mod text;

pub use cluster::{cluster_by, clustered_catalog};
pub use gen::{current_date, Generator};
