//! dbgen `.tbl` interop: write our tables in the reference generator's
//! pipe-delimited format and load `.tbl` files produced by the official
//! dbgen, so results can be validated against the real kit when it is
//! available.
//!
//! Format: one row per line, fields separated by `|`, with a trailing `|`
//! (`1|Customer#000000001|j5JsirBM9P|15|25-989-741-2988|711.56|BUILDING|…|`).

use std::io::{BufRead, Write};

use crate::schema;
use wimpi_storage::{
    Column, DataType, Date32, Decimal64, DictBuilder, Result, StorageError, Table,
};

/// Writes a table in dbgen's pipe-delimited format.
pub fn write_tbl<W: Write>(table: &Table, out: &mut W) -> std::io::Result<()> {
    for row in 0..table.num_rows() {
        for col in 0..table.num_columns() {
            write!(out, "{}|", table.column(col).value(row))?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Reads a `.tbl` stream into a table of the named TPC-H schema.
pub fn read_tbl<R: BufRead>(table_name: &str, input: R) -> Result<Table> {
    let sch = schema::schema_for(table_name)
        .ok_or_else(|| StorageError::TableNotFound(format!("{table_name} is not a TPC-H table")))?;
    let types: Vec<DataType> = sch.fields().iter().map(|f| f.data_type).collect();
    let mut builders: Vec<ColBuilder> = types.iter().map(|t| ColBuilder::new(*t)).collect();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.map_err(|e| StorageError::Parse(format!("io: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields: Vec<&str> = line.split('|').collect();
        // dbgen writes a trailing separator → one empty trailing field.
        if fields.last() == Some(&"") {
            fields.pop();
        }
        if fields.len() != builders.len() {
            return Err(StorageError::Parse(format!(
                "line {}: {} fields, schema has {}",
                lineno + 1,
                fields.len(),
                builders.len()
            )));
        }
        for (ci, (b, f)) in builders.iter_mut().zip(&fields).enumerate() {
            b.push(f).map_err(|e| {
                StorageError::Parse(format!(
                    "line {}: column {:?}: {}",
                    lineno + 1,
                    sch.fields()[ci].name,
                    parse_reason(&e)
                ))
            })?;
        }
    }
    let columns = builders.into_iter().map(ColBuilder::finish).collect();
    Table::new(sch, columns)
}

/// The inner reason of a field-level parse failure, unwrapped so the
/// line-level error doesn't nest "parse error: parse error: …".
fn parse_reason(e: &StorageError) -> String {
    match e {
        StorageError::Parse(msg) => msg.clone(),
        other => other.to_string(),
    }
}

/// Incremental, type-directed column builder for `.tbl` parsing.
enum ColBuilder {
    I64(Vec<i64>),
    I32(Vec<i32>),
    Dec(Vec<i64>, u8),
    Date(Vec<i32>),
    Str(DictBuilder),
}

impl ColBuilder {
    fn new(t: DataType) -> ColBuilder {
        match t {
            DataType::Int64 => ColBuilder::I64(Vec::new()),
            DataType::Int32 => ColBuilder::I32(Vec::new()),
            DataType::Decimal(s) => ColBuilder::Dec(Vec::new(), s),
            DataType::Date => ColBuilder::Date(Vec::new()),
            DataType::Utf8 => ColBuilder::Str(DictBuilder::new()),
            other => unreachable!("TPC-H schemas have no {other} columns"),
        }
    }

    fn push(&mut self, field: &str) -> Result<()> {
        match self {
            ColBuilder::I64(v) => v.push(
                field.parse().map_err(|_| StorageError::Parse(format!("bad int64 {field:?}")))?,
            ),
            ColBuilder::I32(v) => v.push(
                field.parse().map_err(|_| StorageError::Parse(format!("bad int32 {field:?}")))?,
            ),
            ColBuilder::Dec(v, s) => v.push(Decimal64::from_str_scale(field, *s)?.mantissa()),
            ColBuilder::Date(v) => v.push(Date32::parse(field)?.0),
            ColBuilder::Str(b) => b.push(field),
        }
        Ok(())
    }

    fn finish(self) -> Column {
        match self {
            ColBuilder::I64(v) => Column::Int64(v),
            ColBuilder::I32(v) => Column::Int32(v),
            ColBuilder::Dec(v, s) => Column::Decimal(v, s),
            ColBuilder::Date(v) => Column::Date(v),
            ColBuilder::Str(b) => Column::Str(b.finish()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Generator;

    #[test]
    fn round_trip_every_table() {
        let g = Generator::new(0.002);
        let cat = g.generate_catalog().expect("generates");
        for name in schema::TABLE_NAMES {
            let original = cat.table(name).expect("registered");
            let mut buf = Vec::new();
            write_tbl(original, &mut buf).expect("writes");
            let reloaded = read_tbl(name, buf.as_slice()).expect("reads");
            assert_eq!(reloaded.num_rows(), original.num_rows(), "{name} rows");
            for c in 0..original.num_columns() {
                assert_eq!(
                    reloaded.column(c).as_ref(),
                    original.column(c).as_ref(),
                    "{name} column {c}"
                );
            }
        }
    }

    #[test]
    fn reads_reference_dbgen_lines() {
        // A customer row in the official dbgen layout.
        let line = "1|Customer#000000001|IVhzIApeRb|15|25-989-741-2988|711.56|BUILDING|regular accounts|\n";
        let t = read_tbl("customer", line.as_bytes()).expect("parses");
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.column_by_name("c_custkey").unwrap().as_i64().unwrap(), &[1]);
        let (bal, s) = t.column_by_name("c_acctbal").unwrap().as_decimal().unwrap();
        assert_eq!((bal[0], s), (71_156, 2));
        assert_eq!(t.column_by_name("c_mktsegment").unwrap().as_str().unwrap().get(0), "BUILDING");
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(read_tbl("region", "1|AFRICA|\n".as_bytes()).is_err(), "missing field");
        assert!(read_tbl("region", "x|AFRICA|comment|\n".as_bytes()).is_err(), "bad key");
        assert!(read_tbl("nope", "".as_bytes()).is_err(), "unknown table");
    }

    #[test]
    fn rejects_trailing_garbage_in_decimal_fields() {
        // `Decimal64::from_str_scale` once accepted anything after the
        // fractional digits ("711.56x" parsed as 711.56); a loader must not
        // silently coerce such fields.
        // (Surrounding whitespace is trimmed by design, so it is not here.)
        for bad in ["711.56x", "711.56.7", "7-11.56", "71x.56"] {
            let line = format!("1|a|addr|15|phone|{bad}|BUILDING|c|\n");
            let err = read_tbl("customer", line.as_bytes()).unwrap_err().to_string();
            assert!(err.contains("c_acctbal"), "{bad:?} must fail on the decimal: {err}");
        }
    }

    #[test]
    fn malformed_fields_name_the_line_and_column() {
        // Row 2's account balance is not a decimal.
        let input = "1|a|addr|15|phone|711.56|BUILDING|c|\n\
                     2|b|addr|15|phone|not-money|BUILDING|c|\n";
        let err = read_tbl("customer", input.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("c_acctbal"), "{err}");
        // A malformed date names its line and column too.
        let good = "1|36901|7706|1|17|21168.23|0.04|0.02|N|O|1996-03-13|1996-02-12|\
                    1996-03-22|DELIVER IN PERSON|TRUCK|c|";
        let bad = good.replace("1996-03-13", "not-a-date");
        let err = read_tbl("lineitem", bad.as_bytes()).unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("l_shipdate"), "{err}");
        // Field-count mismatches already carried the line number.
        let err =
            read_tbl("region", "0|AFRICA|x|\n1|AMERICA|\n".as_bytes()).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn skips_blank_lines() {
        let input = "0|AFRICA|nice continent|\n\n1|AMERICA|also nice|\n";
        let t = read_tbl("region", input.as_bytes()).expect("parses");
        assert_eq!(t.num_rows(), 2);
    }
}
