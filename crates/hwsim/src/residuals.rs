//! Modeled-vs-measured residual tracking.
//!
//! Wherever the repo has both a hwsim prediction and a host measurement for
//! the same work (the `scaling` bench, the experiment runners), the delta is
//! worth keeping: a drifting residual distribution is the first sign the
//! roofline calibration no longer matches the engine. Residuals land in a
//! [`Registry`] as a relative-error histogram per machine plus a per-label
//! model/measured ratio gauge.

use wimpi_obs::Registry;

/// Histogram bucket bounds for `|modeled − measured| / measured`.
pub const RESIDUAL_BUCKETS: [f64; 6] = [0.05, 0.1, 0.25, 0.5, 1.0, 2.0];

/// Records one modeled-vs-measured pair into `reg`.
///
/// `machine` is the hardware profile name, `label` identifies the workload
/// (e.g. `"Q6/4T"`). Non-positive or non-finite measurements only bump the
/// sample counter — host timers on loaded CI machines do return zeros.
pub fn record_residuals(reg: &Registry, machine: &str, label: &str, modeled: f64, measured: f64) {
    reg.inc(&format!("hwsim_residual_samples{{machine=\"{machine}\"}}"), 1);
    if measured > 0.0 && modeled.is_finite() && measured.is_finite() {
        let rel = (modeled - measured).abs() / measured;
        reg.observe(
            &format!("hwsim_residual_relative{{machine=\"{machine}\"}}"),
            &RESIDUAL_BUCKETS,
            rel,
        );
        reg.set_gauge(
            &format!("hwsim_model_ratio{{machine=\"{machine}\",label=\"{label}\"}}"),
            modeled / measured,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_histogram_and_ratio() {
        let reg = Registry::new();
        record_residuals(&reg, "pi3b+", "Q6/4T", 2.0, 1.0);
        record_residuals(&reg, "pi3b+", "Q1/4T", 1.05, 1.0);
        assert_eq!(reg.counter("hwsim_residual_samples{machine=\"pi3b+\"}"), 2);
        assert_eq!(reg.gauge("hwsim_model_ratio{machine=\"pi3b+\",label=\"Q6/4T\"}"), Some(2.0));
        let rendered = reg.render();
        assert!(rendered.contains("hwsim_residual_relative"), "{rendered}");
    }

    #[test]
    fn zero_measurement_only_counts_the_sample() {
        let reg = Registry::new();
        record_residuals(&reg, "op-e5", "Q1/2T", 0.5, 0.0);
        assert_eq!(reg.counter("hwsim_residual_samples{machine=\"op-e5\"}"), 1);
        assert_eq!(reg.gauge("hwsim_model_ratio{machine=\"op-e5\",label=\"Q1/2T\"}"), None);
    }
}
