//! The roofline runtime model: one measured [`WorkProfile`] → predicted
//! seconds on any [`HwProfile`].
//!
//! `T = max(T_compute, T_memory) + overhead`, with
//!
//! * `T_compute = cpu_ops / (UNIT_RATE · olap_rate_1c · effective_cores)`
//! * `T_memory = seq_bytes / bandwidth + random-access latency term`
//!
//! The single global constant `UNIT_RATE` (work units per second per op-e5
//! core-equivalent) anchors the model to the paper's absolute runtimes; all
//! other inputs are per-profile ratios. Random accesses hit either LLC or
//! DRAM depending on the profile's cache size vs. the query's hash-table
//! footprint, and overlap with memory-level parallelism.

use crate::profiles::HwProfile;
use wimpi_engine::WorkProfile;

/// Work units one op-e5 core-equivalent retires per second. Calibrated so
/// predicted op-e5 Table II runtimes land in the paper's 0.01–0.2 s band
/// (see `wimpi-core`'s experiment comparisons).
pub const UNIT_RATE: f64 = 2.0e8;

/// Effective overlapped random accesses per thread. Out-of-order Xeons
/// resolve dependent hash-probe loads with modest overlap; the in-order A53
/// relies on software prefetch and its four threads, and its small
/// dimension tables enjoy better TLB/cache locality — net effect, the
/// per-probe gap between a Pi and a Xeon is a single small factor, not the
/// raw latency ratio (calibrated against the paper's join-query ratios).
const MLP_OOO: f64 = 2.0;
const MLP_INORDER: f64 = 5.0;

/// LLC hit latency, ns (same order on every tested part).
const LLC_LAT_NS: f64 = 15.0;

/// Amdahl serial fraction of query CPU work (plan setup, candidate-list
/// stitching, final result assembly). Small, but it is why a 36-thread
/// Xeon is nowhere near 36× a single Pi core on short TPC-H queries.
const SERIAL_FRAC: f64 = 0.22;

/// Predicted runtime breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Compute-bound component, seconds.
    pub compute_s: f64,
    /// Memory-bound component, seconds.
    pub memory_s: f64,
    /// Fixed per-query overhead, seconds.
    pub overhead_s: f64,
}

impl Prediction {
    /// Total predicted runtime: roofline max of compute and memory, plus
    /// overhead.
    pub fn total_s(&self) -> f64 {
        self.compute_s.max(self.memory_s) + self.overhead_s
    }

    /// True when the memory component dominates (Q1-on-Pi behaviour).
    pub fn memory_bound(&self) -> bool {
        self.memory_s > self.compute_s
    }
}

/// Predicts the runtime of `work` on `hw` using `threads` software threads.
pub fn predict(hw: &HwProfile, work: &WorkProfile, threads: u32) -> Prediction {
    let eff = hw.effective_cores(threads).max(1e-9);
    let rate_1c = UNIT_RATE * hw.olap_rate_1c();
    let w = work.cpu_ops as f64;
    // One effective core computes serially no matter how many software
    // threads are requested — the Amdahl split must collapse to the serial
    // formula exactly (not just to within float rounding) so a cores=1
    // profile reproduces serial predictions bit-for-bit.
    let compute_s = if threads <= 1 || eff <= 1.0 {
        w / rate_1c
    } else {
        SERIAL_FRAC * w / rate_1c + (1.0 - SERIAL_FRAC) * w / (rate_1c * eff)
    };

    let bw = hw.membw_gbs(threads) * hw.stream_efficiency * 1e9;
    let stream_s = work.seq_bytes() as f64 / bw;
    // Random accesses: LLC-resident hash tables are cheap; DRAM-resident
    // ones pay the full latency, amortized over MLP × threads in flight.
    let in_llc = work.hash_bytes <= hw.llc_bytes;
    let lat_ns = if in_llc { LLC_LAT_NS } else { hw.dram_lat_ns };
    let mlp = if hw.threads > hw.cores || hw.name != "pi3b+" { MLP_OOO } else { MLP_INORDER };
    let parallel_misses = (threads.min(hw.threads) as f64 * mlp).max(1.0);
    let rand_s = work.rand_accesses as f64 * lat_ns * 1e-9 / parallel_misses;

    Prediction { compute_s, memory_s: stream_s + rand_s, overhead_s: hw.query_overhead_s }
}

/// Modeled speedup of a `threads`-thread run over a serial run of the same
/// work on the same hardware — what the `scaling` bench reports next to the
/// measured numbers (indispensable on core-starved CI hosts, where wall-clock
/// speedup is physically unattainable). On a single-core profile whose
/// all-core bandwidth equals its single-core bandwidth this is exactly 1.0
/// at every thread count: extra software threads buy nothing the roofline
/// doesn't already account for.
pub fn modeled_speedup(hw: &HwProfile, work: &WorkProfile, threads: u32) -> f64 {
    predict(hw, work, 1).total_s() / predict(hw, work, threads).total_s()
}

/// Modeled speedup the fused executor buys over the materializing one on
/// `hw`, all cores: the ratio of predicted runtimes for the two measured
/// [`WorkProfile`]s of the *same query* (`materialize` from
/// `Executor::Materialize`, `fused` from `Executor::Fused`). Fusion mostly
/// erases `seq_write_bytes` — intermediate-column traffic — so the gain is
/// largest where the roofline is bandwidth-limited: a Pi 3B+ with one DDR2
/// channel sees a bigger ratio than a Xeon with six DDR4 channels, which is
/// how fusion shifts the paper's Pi-vs-Xeon comparison.
pub fn modeled_fused_gain(hw: &HwProfile, materialize: &WorkProfile, fused: &WorkProfile) -> f64 {
    predict_all_cores(hw, materialize).total_s() / predict_all_cores(hw, fused).total_s()
}

/// Modeled speedup zone-map pruning buys on `hw`, all cores: the pruned
/// run's own [`WorkProfile`] records the bytes it *didn't* stream in
/// `pruned_bytes` (DESIGN.md §14), so the unpruned baseline is
/// reconstructed by crediting those bytes back onto the sequential-read
/// roofline. Pruning, like fusion, removes pure bandwidth — the gain is
/// largest on the machines the paper calls wimpy: a one-channel Pi sees a
/// bigger ratio than a six-channel Xeon from the same skipped bytes.
pub fn modeled_prune_gain(hw: &HwProfile, pruned: &WorkProfile) -> f64 {
    let mut unpruned = *pruned;
    unpruned.seq_read_bytes = unpruned.seq_read_bytes.saturating_add(unpruned.pruned_bytes);
    unpruned.pruned_bytes = 0;
    unpruned.pruned_morsels = 0;
    predict_all_cores(hw, &unpruned).total_s() / predict_all_cores(hw, pruned).total_s()
}

/// Modeled slowdown the out-of-core spill rung costs on `hw`, all cores:
/// the ratio of the spilling run's predicted time (in-memory roofline plus
/// the spill traffic priced at microSD bandwidth, written once and read
/// back once) to the pure in-memory time. Always ≥ 1, exactly 1 when the
/// run spilled nothing — this is the §III-C2 cliff the `spill` bench walks
/// down: the operator keeps producing the same bytes, it just pays
/// [`crate::profiles::wimpi::SDCARD_MBPS`] for every spilled byte, twice.
pub fn modeled_spill_penalty(hw: &HwProfile, work: &WorkProfile) -> f64 {
    let base = predict_all_cores(hw, work).total_s();
    let sd_bw = crate::profiles::wimpi::SDCARD_MBPS * 1e6;
    let spill_s = 2.0 * work.spilled_bytes as f64 / sd_bw;
    (base + spill_s) / base
}

/// Predicts with every hardware thread in use — the TPC-H configuration
/// (the paper runs MonetDB with full parallelism).
pub fn predict_all_cores(hw: &HwProfile, work: &WorkProfile) -> Prediction {
    predict(hw, work, hw.threads)
}

/// Predicts a single-threaded run — the execution-strategy configuration
/// (paper §II-D3 runs the hand-coded strategies single-threaded).
pub fn predict_single_core(hw: &HwProfile, work: &WorkProfile) -> Prediction {
    predict(hw, work, 1)
}

/// Geometric-mean ratio between two runtime series — the fit metric
/// EXPERIMENTS.md reports when comparing model output against the paper's
/// published tables.
pub fn geomean_ratio(model: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(model.len(), reference.len());
    let logs: f64 = model
        .iter()
        .zip(reference)
        .filter(|(m, r)| **m > 0.0 && **r > 0.0)
        .map(|(m, r)| (m / r).ln())
        .sum();
    (logs / model.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{pi3b, profile};

    fn scan_heavy() -> WorkProfile {
        // Q1-like: 6M rows, several full-column streams.
        WorkProfile {
            cpu_ops: 120_000_000,
            seq_read_bytes: 1_200_000_000,
            seq_write_bytes: 200_000_000,
            rand_accesses: 6_000_000,
            hash_bytes: 1 << 10,
            ..Default::default()
        }
    }

    fn compute_heavy() -> WorkProfile {
        // Selective query: lots of ops, little data.
        WorkProfile {
            cpu_ops: 200_000_000,
            seq_read_bytes: 40_000_000,
            seq_write_bytes: 4_000_000,
            rand_accesses: 100_000,
            hash_bytes: 1 << 10,
            ..Default::default()
        }
    }

    #[test]
    fn scan_heavy_is_memory_bound_on_pi() {
        let pi = pi3b();
        let p = predict_all_cores(&pi, &scan_heavy());
        assert!(p.memory_bound(), "Q1-like work must be memory-bound on the Pi: {p:?}");
        let e5 = profile("op-e5").unwrap();
        let pe5 = predict_all_cores(&e5, &scan_heavy());
        // The Pi loses by far more on memory-bound work than its ~2.5×
        // single-core compute deficit alone would suggest — the paper's Q1
        // anomaly.
        assert!(p.total_s() / pe5.total_s() > 4.0);
    }

    #[test]
    fn compute_heavy_gap_is_smaller() {
        let pi = pi3b();
        let e5 = profile("op-e5").unwrap();
        let mem_gap = predict_all_cores(&pi, &scan_heavy()).total_s()
            / predict_all_cores(&e5, &scan_heavy()).total_s();
        let cpu_gap = predict_all_cores(&pi, &compute_heavy()).total_s()
            / predict_all_cores(&e5, &compute_heavy()).total_s();
        assert!(
            cpu_gap < mem_gap,
            "CPU-bound queries must be the Pi's best case: cpu {cpu_gap} vs mem {mem_gap}"
        );
    }

    #[test]
    fn single_core_slower_than_all_cores() {
        let e5 = profile("op-e5").unwrap();
        let w = compute_heavy();
        assert!(
            predict_single_core(&e5, &w).total_s() > predict_all_cores(&e5, &w).total_s() * 3.0
        );
    }

    #[test]
    fn overhead_floors_tiny_queries() {
        let e5 = profile("op-e5").unwrap();
        let tiny = WorkProfile { cpu_ops: 1000, ..Default::default() };
        let p = predict_all_cores(&e5, &tiny);
        assert!(p.total_s() >= e5.query_overhead_s);
    }

    #[test]
    fn llc_resident_hash_cheaper_than_dram() {
        let e5 = profile("op-e5").unwrap();
        let mut w = compute_heavy();
        w.rand_accesses = 50_000_000;
        w.hash_bytes = 1 << 10;
        let cached = predict_all_cores(&e5, &w).memory_s;
        w.hash_bytes = 1 << 30;
        let missed = predict_all_cores(&e5, &w).memory_s;
        assert!(missed > cached * 2.0);
    }

    #[test]
    fn geomean_ratio_identity() {
        let a = [1.0, 2.0, 4.0];
        assert!((geomean_ratio(&a, &a) - 1.0).abs() < 1e-12);
        let b = [2.0, 4.0, 8.0];
        assert!((geomean_ratio(&b, &a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn modeled_speedup_is_one_for_one_thread() {
        for hw in crate::profiles::all_profiles() {
            for w in [scan_heavy(), compute_heavy()] {
                assert!((modeled_speedup(&hw, &w, 1) - 1.0).abs() < 1e-12, "{}", hw.name);
            }
        }
    }

    #[test]
    fn single_core_profile_reproduces_serial_at_any_thread_count() {
        // A 1-core, 1-hardware-thread machine with a flat bandwidth curve
        // must price a "parallel" run exactly like a serial one — requesting
        // more software threads cannot conjure hardware.
        let mut hw = pi3b();
        hw.cores = 1;
        hw.threads = 1;
        hw.membw_all_gbs = hw.membw_1c_gbs;
        for w in [scan_heavy(), compute_heavy()] {
            let serial = predict(&hw, &w, 1);
            for t in [2, 4, 8, 64] {
                assert_eq!(predict(&hw, &w, t), serial, "threads={t}");
            }
        }
    }

    #[test]
    fn bandwidth_ceiling_caps_memory_bound_speedup() {
        // The Pi's single memory channel is saturated by one core, so
        // scan-heavy work barely scales while compute-heavy work gets most
        // of the Amdahl-limited gain — the paper's Q1-vs-Q6 asymmetry.
        let pi = pi3b();
        let scan = modeled_speedup(&pi, &scan_heavy(), 4);
        let compute = modeled_speedup(&pi, &compute_heavy(), 4);
        assert!(scan < 1.5, "memory-bound speedup must stay near 1: {scan}");
        assert!(compute > 2.0, "compute-bound speedup must approach Amdahl: {compute}");
        assert!(compute > scan);
    }

    #[test]
    fn fused_gain_is_larger_on_the_pi() {
        // A write-heavy materializing profile vs the same query fused: the
        // fused run streams the same inputs but writes almost nothing back.
        let mat = scan_heavy();
        let mut fused = mat;
        fused.seq_write_bytes = 0;
        fused.cpu_ops = mat.cpu_ops * 9 / 10; // no gather/scatter loops
        let pi = pi3b();
        let e5 = profile("op-e5").unwrap();
        let pi_gain = modeled_fused_gain(&pi, &mat, &fused);
        let e5_gain = modeled_fused_gain(&e5, &mat, &fused);
        assert!(pi_gain > 1.0, "fusion must help the Pi: {pi_gain}");
        assert!(
            pi_gain > e5_gain,
            "erased write traffic must matter more on one DDR2 channel: pi {pi_gain} vs e5 {e5_gain}"
        );
    }

    #[test]
    fn prune_gain_is_larger_on_the_pi() {
        // A pruned scan that skipped half its bytes: the reconstructed
        // unpruned baseline streams twice the reads, which hurts most where
        // bandwidth is the roofline.
        let mut pruned = scan_heavy();
        pruned.pruned_bytes = pruned.seq_read_bytes;
        pruned.pruned_morsels = 8;
        let pi = pi3b();
        let e5 = profile("op-e5").unwrap();
        let pi_gain = modeled_prune_gain(&pi, &pruned);
        let e5_gain = modeled_prune_gain(&e5, &pruned);
        assert!(pi_gain > 1.0, "pruning must help the Pi: {pi_gain}");
        assert!(
            pi_gain > e5_gain,
            "skipped bytes must matter more on one DDR2 channel: pi {pi_gain} vs e5 {e5_gain}"
        );
        // No skipped bytes → the reconstruction is the identity.
        let noop = scan_heavy();
        assert!((modeled_prune_gain(&pi, &noop) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spill_penalty_is_identity_without_spill_and_grows_with_it() {
        let pi = pi3b();
        let dry = scan_heavy();
        assert!((modeled_spill_penalty(&pi, &dry) - 1.0).abs() < 1e-12);
        let mut wet = dry;
        wet.spilled_bytes = 400_000_000;
        let small = modeled_spill_penalty(&pi, &wet);
        assert!(small > 1.0, "spilled bytes must cost time: {small}");
        wet.spilled_bytes *= 4;
        let big = modeled_spill_penalty(&pi, &wet);
        assert!(big > small, "more spill must cost more: {big} vs {small}");
        // The same spilled bytes hurt a fast machine *relatively* more: its
        // in-memory baseline is smaller while the microSD is just as slow.
        let e5 = profile("op-e5").unwrap();
        assert!(modeled_spill_penalty(&e5, &wet) > big);
    }

    #[test]
    fn faster_profile_predicts_lower_time() {
        let w = compute_heavy();
        let gold = profile("op-gold").unwrap();
        let e5 = profile("op-e5").unwrap();
        assert!(predict_all_cores(&gold, &w).total_s() < predict_all_cores(&e5, &w).total_s());
    }
}
