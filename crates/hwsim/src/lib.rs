//! # wimpi-hwsim
//!
//! Analytical hardware models for the paper's ten comparison points
//! (Table I). A query executes for real on the host via `wimpi-engine`,
//! producing a measured `WorkProfile`; this crate prices that profile under
//! each machine's roofline model ([`model::predict`]) and predicts the
//! Figure 2 microbenchmark scores ([`micro`]).
//!
//! The substitution rationale — why modelling replaces the physical Pi
//! cluster and Xeons we don't have — is documented in DESIGN.md §2, with
//! every calibration anchor traced to a sentence of the paper in
//! [`profiles`].

pub mod micro;
pub mod model;
pub mod profiles;
pub mod residuals;

pub use model::{
    modeled_fused_gain, modeled_prune_gain, modeled_speedup, modeled_spill_penalty, predict,
    predict_all_cores, predict_single_core, Prediction,
};
pub use profiles::{all_profiles, pi3b, profile, Category, HwProfile};
pub use residuals::{record_residuals, RESIDUAL_BUCKETS};
