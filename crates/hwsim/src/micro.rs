//! Microbenchmark score prediction (Figure 2 of the paper).
//!
//! The real kernels live in `wimpi-microbench`; this module turns a
//! [`HwProfile`] into the scores those kernels would report on that machine,
//! using the calibrated per-core rates.

use crate::profiles::HwProfile;

/// sysbench's default `cpu-max-prime` workload size (primality testing of
/// every integer up to 10,000) in op-e5 core-seconds — sets the absolute
/// scale of Figure 2c.
const PRIME_WORKLOAD_OPE5_SECONDS: f64 = 10.0;

/// Figure 2a: Whetstone MWIPS for `threads` threads (higher is better).
pub fn whetstone_mwips(hw: &HwProfile, threads: u32) -> f64 {
    hw.whet_mwips_1c * hw.effective_cores(threads)
}

/// Figure 2b: Dhrystone DMIPS (higher is better).
pub fn dhrystone_dmips(hw: &HwProfile, threads: u32) -> f64 {
    hw.dhry_dmips_1c * hw.effective_cores(threads)
}

/// Figure 2c: sysbench prime runtime in seconds (lower is better).
pub fn sysbench_prime_seconds(hw: &HwProfile, threads: u32) -> f64 {
    PRIME_WORKLOAD_OPE5_SECONDS / (hw.prime_rate_1c * hw.effective_cores(threads))
}

/// Figure 2d: sysbench sequential memory bandwidth in GB/s (higher is
/// better). Hyper-Threading does not help bandwidth (paper §II-C2), so the
/// thread count is clamped to physical cores.
pub fn memory_bandwidth_gbs(hw: &HwProfile, threads: u32) -> f64 {
    hw.membw_gbs(threads.min(hw.cores))
}

/// One Figure 2 row: scores for a single profile, single-core and all-core.
#[derive(Debug, Clone)]
pub struct MicroScores {
    /// Profile name.
    pub name: String,
    /// (1-core, all-core) Whetstone MWIPS.
    pub whetstone: (f64, f64),
    /// (1-core, all-core) Dhrystone DMIPS.
    pub dhrystone: (f64, f64),
    /// (1-core, all-core) sysbench prime seconds.
    pub prime_s: (f64, f64),
    /// (1-core, all-core) bandwidth GB/s.
    pub membw_gbs: (f64, f64),
}

/// Computes the whole Figure 2 row for a profile.
pub fn scores(hw: &HwProfile) -> MicroScores {
    MicroScores {
        name: hw.name.to_string(),
        whetstone: (whetstone_mwips(hw, 1), whetstone_mwips(hw, hw.threads)),
        dhrystone: (dhrystone_dmips(hw, 1), dhrystone_dmips(hw, hw.threads)),
        prime_s: (sysbench_prime_seconds(hw, 1), sysbench_prime_seconds(hw, hw.threads)),
        membw_gbs: (memory_bandwidth_gbs(hw, 1), memory_bandwidth_gbs(hw, hw.cores)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{all_profiles, pi3b, profile};

    #[test]
    fn pi_single_core_prime_matches_op_e5() {
        // The paper's §II-C1 surprise: the Pi ties the op-e5 on sysbench.
        let pi = sysbench_prime_seconds(&pi3b(), 1);
        let e5 = sysbench_prime_seconds(&profile("op-e5").unwrap(), 1);
        let ratio = pi / e5;
        assert!((0.9..=1.2).contains(&ratio), "pi/op-e5 prime ratio {ratio}");
    }

    #[test]
    fn all_core_prime_gap_is_4_to_14x_except_c6g() {
        let pi = sysbench_prime_seconds(&pi3b(), 4);
        for p in all_profiles() {
            if p.name == "pi3b+" || p.name == "c6g.metal" {
                continue;
            }
            let ratio = pi / sysbench_prime_seconds(&p, p.threads);
            assert!(
                (3.0..=16.0).contains(&ratio),
                "{} all-core prime speedup {ratio} outside the paper's band",
                p.name
            );
        }
        let c6g = profile("c6g.metal").unwrap();
        let ratio = pi / sysbench_prime_seconds(&c6g, c6g.threads);
        assert!(ratio > 16.0, "c6g is the paper's outlier: {ratio}");
    }

    #[test]
    fn bandwidth_ignores_smt() {
        let e5 = profile("op-e5").unwrap();
        assert_eq!(memory_bandwidth_gbs(&e5, 20), memory_bandwidth_gbs(&e5, 10));
    }

    #[test]
    fn pi_bandwidth_flat_across_cores() {
        let pi = pi3b();
        let one = memory_bandwidth_gbs(&pi, 1);
        let four = memory_bandwidth_gbs(&pi, 4);
        assert!(four / one < 1.2, "single memory channel saturates with one core");
    }

    #[test]
    fn scores_cover_both_configs() {
        let s = scores(&profile("m5.metal").unwrap());
        assert!(s.whetstone.1 > s.whetstone.0 * 20.0);
        assert!(s.prime_s.1 < s.prime_s.0);
        assert!(s.membw_gbs.1 > s.membw_gbs.0);
    }
}
