//! The ten hardware comparison points of Table I, plus calibrated
//! performance parameters.
//!
//! Columns published in the paper (MSRP, hourly price, TDP, cores,
//! frequency, LLC) are copied from Table I verbatim. The *performance*
//! parameters (per-core Whetstone/Dhrystone/branchy-integer rates, memory
//! bandwidths, latencies, per-query DBMS overhead) are not published as
//! numbers; they are calibrated so that the ratios the paper states in
//! prose hold — see each field's comment and `tests::paper_prose_ratios`.
//! The key anchors from §II-C:
//!
//! * Whetstone/Dhrystone single-core: Pi ≈ 2–3× slower than op-e5, ≈ 5–6×
//!   slower than op-gold/m5.metal; z1d.metal fastest.
//! * All-core compute: servers 10–90× the Pi, c6g.metal at the top.
//! * sysbench single-core: Pi ≈ op-e5; other servers only 1.2–3.9× faster.
//! * Memory bandwidth single-core: Pi 5–11× lower; all-core 20–99× lower,
//!   with the Pi's single channel saturated by one core (≈ 2 GB/s, so the
//!   24-node WIMPI aggregate is the ≈ 48 GB/s the paper states, equal to
//!   op-e5 and m4.10xlarge; op-gold and m5.metal are ≈ 3× that).

/// Hardware category from Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// The two on-premises Xeon servers.
    OnPremises,
    /// The seven EC2 instance types.
    Cloud,
    /// The Raspberry Pi 3B+.
    Sbc,
}

/// One comparison point.
#[derive(Debug, Clone)]
pub struct HwProfile {
    /// Short name used in tables (`op-e5`, `c6g.metal`, `pi3b+`, …).
    pub name: &'static str,
    /// Category.
    pub category: Category,
    /// CPU marketing name.
    pub cpu: &'static str,
    /// Base frequency in GHz (Table I).
    pub freq_ghz: f64,
    /// Physical cores (Table I).
    pub cores: u32,
    /// Hardware threads (2× cores on the Intel Xeons — the paper found
    /// Hyper-Threading helps compute microbenchmarks).
    pub threads: u32,
    /// Last-level cache in bytes (Table I).
    pub llc_bytes: u64,
    /// MSRP per socket in USD (Table I; only On-Premises CPUs are retail).
    pub msrp_usd: Option<f64>,
    /// Socket count (the paper's §III-A1 doubles MSRP for the dual-socket
    /// on-premises boxes).
    pub sockets: u32,
    /// EC2 hourly price (Table I; Pi's is the computed $0.0004 energy rate).
    pub hourly_usd: Option<f64>,
    /// TDP in watts (Table I; Pi's is the whole board's 5.1 W peak draw).
    pub tdp_watts: Option<f64>,
    /// Calibrated: single-core Whetstone MWIPS.
    pub whet_mwips_1c: f64,
    /// Calibrated: single-core Dhrystone DMIPS.
    pub dhry_dmips_1c: f64,
    /// Calibrated: branchy-integer (sysbench prime) rate relative to one
    /// op-e5 core = 1.0. Narrow cores lose far less here than on Whetstone.
    pub prime_rate_1c: f64,
    /// Calibrated: throughput gain from SMT when running threads > cores.
    pub smt_speedup: f64,
    /// Calibrated: single-core sequential memory bandwidth, GB/s.
    pub membw_1c_gbs: f64,
    /// Calibrated: all-core sequential memory bandwidth, GB/s.
    pub membw_all_gbs: f64,
    /// Calibrated: DRAM random-access latency, ns.
    pub dram_lat_ns: f64,
    /// Calibrated: fraction of the sysbench sequential bandwidth that
    /// column-at-a-time operators actually sustain (mixed element widths,
    /// interleaved read/write streams). ≈1 on deep-prefetch Xeons; ≈0.5 on
    /// the in-order A53, which is why MonetDB Q1 on the Pi takes ~1.8 s
    /// while the raw-bandwidth figure alone would predict half that.
    pub stream_efficiency: f64,
    /// Calibrated: per-query DBMS fixed overhead in seconds (parsing,
    /// plan setup, result delivery — visible as Table II's ~5–10 ms floor
    /// on servers and ~35 ms on the Pi).
    pub query_overhead_s: f64,
    /// Memory capacity in bytes (1 GB on the Pi; effectively unbounded on
    /// the servers for this workload).
    pub mem_bytes: u64,
}

impl HwProfile {
    /// Effective parallel compute capacity in core-equivalents when running
    /// `threads` software threads.
    pub fn effective_cores(&self, threads: u32) -> f64 {
        let t = threads.min(self.threads);
        if t <= self.cores {
            t as f64
        } else {
            self.cores as f64 * self.smt_speedup
        }
    }

    /// OLAP compute rate relative to a single op-e5 core, blending the
    /// Dhrystone-like (pointer/branch) and prime (tight-loop integer)
    /// characters of column-at-a-time execution.
    pub fn olap_rate_1c(&self) -> f64 {
        let dhry_rel = self.dhry_dmips_1c / OP_E5_DHRY;
        (dhry_rel * self.prime_rate_1c).sqrt()
    }

    /// Sequential bandwidth available to `threads` threads, GB/s.
    pub fn membw_gbs(&self, threads: u32) -> f64 {
        if threads <= 1 {
            self.membw_1c_gbs
        } else {
            let frac = threads.min(self.cores) as f64 / self.cores as f64;
            (self.membw_1c_gbs + (self.membw_all_gbs - self.membw_1c_gbs) * frac)
                .min(self.membw_all_gbs)
        }
    }
}

const OP_E5_DHRY: f64 = 8_000.0;
const GB: u64 = 1 << 30;
const MB: u64 = 1 << 20;
const KB: u64 = 1 << 10;

/// All ten comparison points, in Table I order.
pub fn all_profiles() -> Vec<HwProfile> {
    vec![
        HwProfile {
            name: "op-e5",
            category: Category::OnPremises,
            cpu: "Intel Xeon E5-2660 v2",
            freq_ghz: 2.2,
            cores: 10,
            threads: 20,
            llc_bytes: 25 * MB,
            msrp_usd: Some(1_389.0),
            sockets: 2,
            hourly_usd: None,
            tdp_watts: Some(95.0),
            whet_mwips_1c: 3_000.0,
            dhry_dmips_1c: 8_000.0,
            prime_rate_1c: 1.0,
            smt_speedup: 1.25,
            membw_1c_gbs: 12.0,
            membw_all_gbs: 48.0,
            dram_lat_ns: 90.0,
            stream_efficiency: 0.95,
            query_overhead_s: 0.006,
            mem_bytes: 256 * GB,
        },
        HwProfile {
            name: "op-gold",
            category: Category::OnPremises,
            cpu: "Intel Xeon Gold 6150",
            freq_ghz: 2.7,
            cores: 18,
            threads: 36,
            llc_bytes: 24_750 * KB,
            msrp_usd: Some(3_358.0),
            sockets: 2,
            hourly_usd: None,
            tdp_watts: Some(165.0),
            whet_mwips_1c: 6_200.0,
            dhry_dmips_1c: 15_500.0,
            prime_rate_1c: 2.2,
            smt_speedup: 1.25,
            membw_1c_gbs: 15.0,
            membw_all_gbs: 144.0,
            dram_lat_ns: 80.0,
            stream_efficiency: 0.95,
            query_overhead_s: 0.004,
            mem_bytes: 512 * GB,
        },
        HwProfile {
            name: "c4.8xlarge",
            category: Category::Cloud,
            cpu: "Intel Xeon E5-2666 v3",
            freq_ghz: 2.9,
            cores: 9,
            threads: 18,
            llc_bytes: 25 * MB,
            msrp_usd: None,
            sockets: 1,
            hourly_usd: Some(1.591),
            tdp_watts: None,
            whet_mwips_1c: 5_500.0,
            dhry_dmips_1c: 14_000.0,
            prime_rate_1c: 2.9,
            smt_speedup: 1.25,
            membw_1c_gbs: 14.0,
            membw_all_gbs: 60.0,
            dram_lat_ns: 85.0,
            stream_efficiency: 0.95,
            query_overhead_s: 0.004,
            mem_bytes: 60 * GB,
        },
        HwProfile {
            name: "m4.10xlarge",
            category: Category::Cloud,
            cpu: "Intel Xeon E5-2676 v3",
            freq_ghz: 2.4,
            cores: 10,
            threads: 20,
            llc_bytes: 30 * MB,
            msrp_usd: None,
            sockets: 1,
            hourly_usd: Some(2.00),
            tdp_watts: None,
            whet_mwips_1c: 4_600.0,
            dhry_dmips_1c: 11_800.0,
            prime_rate_1c: 1.9,
            smt_speedup: 1.25,
            membw_1c_gbs: 13.0,
            membw_all_gbs: 48.0,
            dram_lat_ns: 88.0,
            stream_efficiency: 0.95,
            query_overhead_s: 0.004,
            mem_bytes: 160 * GB,
        },
        HwProfile {
            name: "m4.16xlarge",
            category: Category::Cloud,
            cpu: "Intel Xeon E5-2686 v4",
            freq_ghz: 2.3,
            cores: 16,
            threads: 32,
            llc_bytes: 45 * MB,
            msrp_usd: None,
            sockets: 1,
            hourly_usd: Some(3.20),
            tdp_watts: None,
            whet_mwips_1c: 4_400.0,
            dhry_dmips_1c: 11_200.0,
            prime_rate_1c: 1.8,
            smt_speedup: 1.25,
            membw_1c_gbs: 13.0,
            membw_all_gbs: 70.0,
            dram_lat_ns: 88.0,
            stream_efficiency: 0.95,
            query_overhead_s: 0.004,
            mem_bytes: 256 * GB,
        },
        HwProfile {
            name: "z1d.metal",
            category: Category::Cloud,
            cpu: "Intel Xeon Platinum 8151",
            freq_ghz: 3.4,
            cores: 12,
            threads: 24,
            llc_bytes: 24_750 * KB,
            msrp_usd: None,
            sockets: 1,
            hourly_usd: Some(4.464),
            tdp_watts: None,
            whet_mwips_1c: 7_200.0,
            dhry_dmips_1c: 18_000.0,
            prime_rate_1c: 3.9,
            // z1d.metal's 3.4 GHz is a boost clock; under sustained
            // all-core OLAP load it throttles, which is why its published
            // Table II runtimes trail far behind its single-core
            // microbenchmarks. Modelled as sub-linear SMT scaling.
            smt_speedup: 0.85,
            membw_1c_gbs: 16.0,
            membw_all_gbs: 80.0,
            dram_lat_ns: 80.0,
            stream_efficiency: 0.95,
            query_overhead_s: 0.008,
            mem_bytes: 384 * GB,
        },
        HwProfile {
            name: "m5.metal",
            category: Category::Cloud,
            cpu: "Intel Xeon Platinum 8259CL",
            freq_ghz: 2.5,
            cores: 24,
            threads: 48,
            llc_bytes: 35_750 * KB,
            msrp_usd: None,
            sockets: 1,
            hourly_usd: Some(4.608),
            tdp_watts: None,
            whet_mwips_1c: 6_000.0,
            dhry_dmips_1c: 15_200.0,
            prime_rate_1c: 1.7,
            smt_speedup: 1.25,
            membw_1c_gbs: 14.0,
            membw_all_gbs: 144.0,
            dram_lat_ns: 82.0,
            stream_efficiency: 0.95,
            query_overhead_s: 0.004,
            mem_bytes: 384 * GB,
        },
        HwProfile {
            name: "a1.metal",
            category: Category::Cloud,
            cpu: "AWS Graviton (Cortex-A72)",
            freq_ghz: 2.3,
            cores: 16,
            threads: 16,
            llc_bytes: 8 * MB,
            msrp_usd: None,
            sockets: 1,
            hourly_usd: Some(0.408),
            tdp_watts: None,
            whet_mwips_1c: 2_900.0,
            dhry_dmips_1c: 7_600.0,
            prime_rate_1c: 1.2,
            smt_speedup: 1.0,
            membw_1c_gbs: 10.0,
            membw_all_gbs: 42.0,
            dram_lat_ns: 110.0,
            stream_efficiency: 0.8,
            query_overhead_s: 0.008,
            mem_bytes: 32 * GB,
        },
        HwProfile {
            name: "c6g.metal",
            category: Category::Cloud,
            cpu: "AWS Graviton2 (Neoverse N1)",
            freq_ghz: 2.5,
            cores: 64,
            threads: 64,
            llc_bytes: 32 * MB,
            msrp_usd: None,
            sockets: 1,
            hourly_usd: Some(2.176),
            tdp_watts: None,
            whet_mwips_1c: 5_200.0,
            dhry_dmips_1c: 13_000.0,
            prime_rate_1c: 2.4,
            smt_speedup: 1.0,
            membw_1c_gbs: 15.0,
            membw_all_gbs: 190.0,
            dram_lat_ns: 95.0,
            stream_efficiency: 0.9,
            query_overhead_s: 0.006,
            mem_bytes: 128 * GB,
        },
        HwProfile {
            name: "pi3b+",
            category: Category::Sbc,
            cpu: "ARM Cortex-A53",
            freq_ghz: 1.4,
            cores: 4,
            threads: 4,
            llc_bytes: 512 * KB,
            msrp_usd: Some(35.0),
            sockets: 1,
            hourly_usd: Some(0.0004),
            tdp_watts: Some(5.1),
            whet_mwips_1c: 1_150.0,
            dhry_dmips_1c: 3_100.0,
            prime_rate_1c: 0.95,
            smt_speedup: 1.0,
            membw_1c_gbs: 1.8,
            membw_all_gbs: 2.0,
            dram_lat_ns: 180.0,
            stream_efficiency: 0.6,
            query_overhead_s: 0.034,
            mem_bytes: GB,
        },
    ]
}

/// Looks up a profile by name.
pub fn profile(name: &str) -> Option<HwProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// The Raspberry Pi 3B+ profile (the paper's SBC).
pub fn pi3b() -> HwProfile {
    profile("pi3b+").expect("pi3b+ profile exists")
}

/// The 24-node WIMPI cluster constants (paper §II-B, §II-C3).
pub mod wimpi {
    /// Nodes in the prototype cluster.
    pub const MAX_NODES: u32 = 24;
    /// Effective per-node network bandwidth: the GbE port shares a USB 2.0
    /// bus, capping it at ≈ 220 Mbps (iperf-measured in the paper).
    pub const NODE_NET_MBPS: f64 = 220.0;
    /// Switch backplane: full gigabit, non-blocking for this node count.
    pub const SWITCH_GBPS: f64 = 1.0;
    /// Cost of one node's peripherals (microSD, cables; paper §II-B).
    pub const PERIPHERALS_USD: f64 = 12.5;
    /// microSD sustained read bandwidth, MB/s — the thrashing penalty when a
    /// node's working set exceeds memory (paper §III-C4).
    pub const SDCARD_MBPS: f64 = 80.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> HwProfile {
        profile(name).unwrap_or_else(|| panic!("missing profile {name}"))
    }

    #[test]
    fn table1_constants_match_paper() {
        let p = by_name("op-e5");
        assert_eq!(p.msrp_usd, Some(1389.0));
        assert_eq!(p.tdp_watts, Some(95.0));
        assert_eq!(p.cores, 10);
        let g = by_name("op-gold");
        assert_eq!(g.msrp_usd, Some(3358.0));
        assert_eq!(g.tdp_watts, Some(165.0));
        let pi = by_name("pi3b+");
        assert_eq!(pi.msrp_usd, Some(35.0));
        assert_eq!(pi.tdp_watts, Some(5.1));
        assert_eq!(pi.llc_bytes, 512 * 1024);
        let c6g = by_name("c6g.metal");
        assert_eq!(c6g.cores, 64);
        assert_eq!(c6g.hourly_usd, Some(2.176));
    }

    #[test]
    fn ten_profiles_in_three_categories() {
        let all = all_profiles();
        assert_eq!(all.len(), 10);
        assert_eq!(all.iter().filter(|p| p.category == Category::OnPremises).count(), 2);
        assert_eq!(all.iter().filter(|p| p.category == Category::Cloud).count(), 7);
        assert_eq!(all.iter().filter(|p| p.category == Category::Sbc).count(), 1);
    }

    #[test]
    fn paper_prose_ratios() {
        let pi = by_name("pi3b+");
        let e5 = by_name("op-e5");
        let gold = by_name("op-gold");
        let m5 = by_name("m5.metal");
        let z1d = by_name("z1d.metal");
        let c6g = by_name("c6g.metal");

        // §II-C1: Pi single-core Whetstone/Dhrystone 2–3× behind op-e5.
        for (a, b) in [(e5.whet_mwips_1c, pi.whet_mwips_1c), (e5.dhry_dmips_1c, pi.dhry_dmips_1c)] {
            let r = a / b;
            assert!((2.0..=3.0).contains(&r), "op-e5/pi single-core ratio {r}");
        }
        // …and 5–6× behind op-gold and m5.metal.
        for hp in [&gold, &m5] {
            let r = hp.whet_mwips_1c / pi.whet_mwips_1c;
            assert!((5.0..=6.0).contains(&r), "{}/pi whetstone ratio {r}", hp.name);
        }
        // z1d.metal has the best single-core numbers.
        for p in all_profiles() {
            assert!(p.whet_mwips_1c <= z1d.whet_mwips_1c, "{} beats z1d 1-core", p.name);
        }
        // §II-C1 all-core: servers 10–90× the Pi on Whetstone-style compute.
        let pi_all = pi.whet_mwips_1c * pi.effective_cores(pi.threads);
        for p in all_profiles().iter().filter(|p| p.category != Category::Sbc) {
            let r = p.whet_mwips_1c * p.effective_cores(p.threads) / pi_all;
            assert!((5.0..=95.0).contains(&r), "{} all-core ratio {r}", p.name);
        }
        // c6g.metal wins all-core by a wide margin.
        let c6g_all = c6g.whet_mwips_1c * c6g.effective_cores(c6g.threads);
        for p in all_profiles().iter().filter(|p| p.name != "c6g.metal") {
            assert!(
                c6g_all > 1.5 * p.whet_mwips_1c * p.effective_cores(p.threads),
                "c6g must dominate {}",
                p.name
            );
        }
        // §II-C1 sysbench: Pi ≈ op-e5 single-core; others 1.2–3.9× faster.
        assert!((pi.prime_rate_1c - 1.0).abs() < 0.1);
        for p in all_profiles().iter().filter(|p| p.category != Category::Sbc) {
            assert!(
                (1.0..=3.9).contains(&p.prime_rate_1c),
                "{} prime rate {}",
                p.name,
                p.prime_rate_1c
            );
        }
        // §II-C2: Pi single-core bandwidth 5–11× lower than servers.
        for p in all_profiles().iter().filter(|p| p.category != Category::Sbc) {
            let r = p.membw_1c_gbs / pi.membw_1c_gbs;
            assert!((5.0..=11.0).contains(&r), "{} 1-core bw ratio {r}", p.name);
        }
        // §II-C2: all-core 20–99× lower; Pi nearly flat across cores.
        for p in all_profiles().iter().filter(|p| p.category != Category::Sbc) {
            let r = p.membw_all_gbs / pi.membw_all_gbs;
            assert!((20.0..=99.0).contains(&r), "{} all-core bw ratio {r}", p.name);
        }
        assert!(pi.membw_all_gbs / pi.membw_1c_gbs < 1.2, "single channel saturates");
        // §III-C2: 24 Pi nodes ≈ op-e5 / m4.10xlarge aggregate bandwidth;
        // op-gold / m5.metal need ≈ 3× the nodes.
        let wimpi_bw = 24.0 * pi.membw_all_gbs;
        assert!((wimpi_bw - e5.membw_all_gbs).abs() < 2.0);
        assert!((gold.membw_all_gbs / wimpi_bw - 3.0).abs() < 0.2);
    }

    #[test]
    fn effective_cores_and_bandwidth_scaling() {
        let e5 = by_name("op-e5");
        assert_eq!(e5.effective_cores(1), 1.0);
        assert_eq!(e5.effective_cores(10), 10.0);
        assert_eq!(e5.effective_cores(20), 12.5);
        assert_eq!(e5.effective_cores(99), 12.5);
        assert!(e5.membw_gbs(1) < e5.membw_gbs(10));
        assert_eq!(e5.membw_gbs(10), e5.membw_all_gbs);
        let pi = by_name("pi3b+");
        assert_eq!(pi.effective_cores(8), 4.0);
    }

    #[test]
    fn olap_rate_sane() {
        let e5 = by_name("op-e5");
        assert!((e5.olap_rate_1c() - 1.0).abs() < 1e-9);
        let pi = by_name("pi3b+");
        assert!(pi.olap_rate_1c() < 1.0 && pi.olap_rate_1c() > 0.4);
    }
}
