//! TPC-H queries 12–17.

use crate::QueryPlan;
use wimpi_engine::exec::join::MATCHED_COL;
use wimpi_engine::expr::{col, date, dec2, lit};
use wimpi_engine::plan::{AggExpr, JoinType, PlanBuilder, SortKey};
use wimpi_storage::Value;

fn disc_price() -> wimpi_engine::Expr {
    col("l_extendedprice").mul(lit(1i64).sub(col("l_discount")))
}

/// Q12 — shipping mode and order priority.
pub fn q12() -> QueryPlan {
    let urgent = col("o_orderpriority").in_list(vec!["1-URGENT".into(), "2-HIGH".into()]);
    let plan = PlanBuilder::scan("lineitem")
        .filter(
            col("l_shipmode")
                .in_list(vec!["MAIL".into(), "SHIP".into()])
                .and(col("l_commitdate").lt(col("l_receiptdate")))
                .and(col("l_shipdate").lt(col("l_commitdate")))
                .and(col("l_receiptdate").gte(date("1994-01-01")))
                .and(col("l_receiptdate").lt(date("1995-01-01"))),
        )
        .inner_join(PlanBuilder::scan("orders"), vec![("l_orderkey", "o_orderkey")])
        .aggregate(
            vec![(col("l_shipmode"), "l_shipmode")],
            vec![
                AggExpr::count_if(urgent.clone(), "high_line_count"),
                AggExpr::count_if(urgent.negate(), "low_line_count"),
            ],
        )
        .sort(vec![SortKey::asc("l_shipmode")])
        .build();
    QueryPlan::Single(plan)
}

/// Q13 — customer distribution. The left outer join + `count(o_orderkey)`
/// is expressed with the engine's `__matched` marker (DESIGN.md §7). The
/// only choke-point query that never touches lineitem, which is why it runs
/// on a single node in the paper's WIMPI cluster.
pub fn q13() -> QueryPlan {
    let orders =
        PlanBuilder::scan("orders").filter(col("o_comment").not_like("%special%requests%"));
    let plan = PlanBuilder::scan("customer")
        .join(orders, vec![("c_custkey", "o_custkey")], JoinType::LeftOuter)
        .aggregate(
            vec![(col("c_custkey"), "c_custkey")],
            vec![AggExpr::count_if(col(MATCHED_COL), "c_count")],
        )
        .aggregate(vec![(col("c_count"), "c_count")], vec![AggExpr::count_star("custdist")])
        .sort(vec![SortKey::desc("custdist"), SortKey::desc("c_count")])
        .build();
    QueryPlan::Single(plan)
}

/// Q14 — promotion effect.
pub fn q14() -> QueryPlan {
    let plan = PlanBuilder::scan("lineitem")
        .filter(
            col("l_shipdate").gte(date("1995-09-01")).and(col("l_shipdate").lt(date("1995-10-01"))),
        )
        .inner_join(PlanBuilder::scan("part"), vec![("l_partkey", "p_partkey")])
        .aggregate(
            vec![],
            vec![
                AggExpr::sum(col("p_type").like("PROMO%").case(disc_price(), dec2("0")), "promo"),
                AggExpr::sum(disc_price(), "total"),
            ],
        )
        .project(vec![(lit(100i64).mul(col("promo")).div(col("total")), "promo_revenue")])
        .build();
    QueryPlan::Single(plan)
}

/// Q15 — top supplier (the revenue view + `= max(total_revenue)` scalar).
pub fn q15() -> QueryPlan {
    let revenue = || {
        PlanBuilder::scan("lineitem")
            .filter(
                col("l_shipdate")
                    .gte(date("1996-01-01"))
                    .and(col("l_shipdate").lt(date("1996-04-01"))),
            )
            .aggregate(
                vec![(col("l_suppkey"), "supplier_no")],
                vec![AggExpr::sum(disc_price(), "total_revenue")],
            )
    };
    let first =
        revenue().aggregate(vec![], vec![AggExpr::max(col("total_revenue"), "max_rev")]).build();
    QueryPlan::TwoPhase {
        first,
        scalar_col: "max_rev".to_string(),
        second: Box::new(move |max_rev: Value| {
            PlanBuilder::scan("supplier")
                .inner_join(revenue(), vec![("s_suppkey", "supplier_no")])
                .filter(col("total_revenue").eq(wimpi_engine::Expr::Lit(max_rev.clone())))
                .project(vec![
                    (col("s_suppkey"), "s_suppkey"),
                    (col("s_name"), "s_name"),
                    (col("s_address"), "s_address"),
                    (col("s_phone"), "s_phone"),
                    (col("total_revenue"), "total_revenue"),
                ])
                .sort(vec![SortKey::asc("s_suppkey")])
                .build()
        }),
    }
}

/// Q16 — parts/supplier relationship (NOT IN → anti join,
/// `count(distinct)`).
pub fn q16() -> QueryPlan {
    let complainers = PlanBuilder::scan("supplier")
        .filter(col("s_comment").like("%Customer%Complaints%"))
        .project(vec![(col("s_suppkey"), "bad_suppkey")]);
    let sizes: Vec<Value> =
        [49i64, 14, 23, 45, 19, 3, 36, 9].iter().map(|&v| Value::I64(v)).collect();
    let plan = PlanBuilder::scan("partsupp")
        .inner_join(
            PlanBuilder::scan("part").filter(
                col("p_brand")
                    .neq(lit("Brand#45"))
                    .and(col("p_type").not_like("MEDIUM POLISHED%"))
                    .and(col("p_size").in_list(sizes)),
            ),
            vec![("ps_partkey", "p_partkey")],
        )
        .join(complainers, vec![("ps_suppkey", "bad_suppkey")], JoinType::Anti)
        .aggregate(
            vec![(col("p_brand"), "p_brand"), (col("p_type"), "p_type"), (col("p_size"), "p_size")],
            vec![AggExpr::count_distinct(col("ps_suppkey"), "supplier_cnt")],
        )
        .sort(vec![
            SortKey::desc("supplier_cnt"),
            SortKey::asc("p_brand"),
            SortKey::asc("p_type"),
            SortKey::asc("p_size"),
        ])
        .build();
    QueryPlan::Single(plan)
}

/// Q17 — small-quantity-order revenue. The correlated `0.2 * avg(quantity)`
/// subquery becomes a per-part aggregate joined back on partkey.
pub fn q17() -> QueryPlan {
    let filtered_part = || {
        PlanBuilder::scan("part")
            .filter(col("p_brand").eq(lit("Brand#23")).and(col("p_container").eq(lit("MED BOX"))))
            .project(vec![(col("p_partkey"), "p_partkey")])
    };
    let avg_sub = PlanBuilder::scan("lineitem")
        .inner_join(filtered_part(), vec![("l_partkey", "p_partkey")])
        .aggregate(
            vec![(col("l_partkey"), "agg_partkey")],
            vec![AggExpr::avg(col("l_quantity"), "avg_qty")],
        );
    let plan = PlanBuilder::scan("lineitem")
        .inner_join(filtered_part(), vec![("l_partkey", "p_partkey")])
        .inner_join(avg_sub, vec![("l_partkey", "agg_partkey")])
        .filter(col("l_quantity").lt(lit(0.2).mul(col("avg_qty"))))
        .aggregate(vec![], vec![AggExpr::sum(col("l_extendedprice"), "s")])
        .project(vec![(col("s").div(lit(7.0)), "avg_yearly")])
        .build();
    QueryPlan::Single(plan)
}
