//! # wimpi-queries
//!
//! All 22 TPC-H queries expressed against the engine's plan-builder API with
//! the specification's validation substitution parameters. Correlated
//! subqueries are decorrelated into joins/aggregations the standard way;
//! scalar subqueries become [`QueryPlan::TwoPhase`] (run the inner plan,
//! extract one value, instantiate the outer plan with it).
//!
//! `CHOKEPOINT_QUERIES` is the 8-query subset the paper uses for its
//! distributed (SF 10) and execution-strategy experiments: Q1, Q3, Q4, Q5,
//! Q6, Q13, Q14, Q19 (paper §II-D2, citing Boncz et al.'s choke-point
//! analysis).

mod q01_06;
mod q07_11;
mod q12_17;
mod q18_22;

use wimpi_engine::{
    execute_query_governed, execute_query_traced_governed, EngineConfig, LogicalPlan, QueryContext,
    Relation, Result, Span, WorkProfile,
};
use wimpi_storage::{Catalog, Value};

/// A TPC-H query, possibly needing a scalar pre-pass.
pub enum QueryPlan {
    /// One plan.
    Single(LogicalPlan),
    /// Run `first`, read `scalar_col` of row 0, feed it to `second`.
    TwoPhase {
        /// The scalar-producing inner plan.
        first: LogicalPlan,
        /// Column holding the scalar in the first result.
        scalar_col: String,
        /// Builds the outer plan from the scalar.
        second: Box<dyn Fn(Value) -> LogicalPlan + Send + Sync>,
    },
}

impl QueryPlan {
    /// Every base table the query touches (both phases).
    pub fn tables(&self) -> Vec<String> {
        match self {
            QueryPlan::Single(p) => p.tables(),
            QueryPlan::TwoPhase { first, second, .. } => {
                let mut t = first.tables();
                // Probe the builder with a placeholder to enumerate tables.
                for extra in second(Value::F64(0.0)).tables() {
                    if !t.contains(&extra) {
                        t.push(extra);
                    }
                }
                t
            }
        }
    }
}

/// Executes a query (all phases) serially, summing work profiles.
pub fn run(q: &QueryPlan, catalog: &Catalog) -> Result<(Relation, WorkProfile)> {
    run_with(q, catalog, &EngineConfig::serial())
}

/// Executes a query (all phases) under an execution configuration. The
/// morsel-driven engine keeps results bit-identical at any thread count.
pub fn run_with(
    q: &QueryPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<(Relation, WorkProfile)> {
    run_governed(q, catalog, cfg, &QueryContext::default())
}

/// Executes a query (all phases) under a resource governor. Both phases of a
/// two-phase query share the one context: the budget, cancellation token,
/// and deadline span the whole query, and the context's high-water mark is
/// the true measured peak. Note that the summed profile's `peak_bytes`
/// *overcounts* for two-phase queries (phase 2's ratchet starts from phase
/// 1's peak, and the phase profiles are added) — read
/// [`QueryContext::high_water`] when the exact peak matters.
pub fn run_governed(
    q: &QueryPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile)> {
    match q {
        QueryPlan::Single(p) => execute_query_governed(p, catalog, cfg, ctx),
        QueryPlan::TwoPhase { first, scalar_col, second } => {
            let (r1, p1) = execute_query_governed(first, catalog, cfg, ctx)?;
            let scalar =
                if r1.num_rows() == 0 { Value::F64(0.0) } else { r1.value(0, scalar_col)? };
            let (r2, p2) = execute_query_governed(&second(scalar), catalog, cfg, ctx)?;
            Ok((r2, p1 + p2))
        }
    }
}

/// Executes a query (all phases) with operator-level tracing, returning the
/// span tree alongside the result. Single-phase queries return the engine's
/// root span directly; two-phase queries nest each phase's tree under a
/// synthetic root whose counters are the summed work profile, preserving the
/// invariant that the root's totals equal the returned [`WorkProfile`].
pub fn run_traced(
    q: &QueryPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<(Relation, WorkProfile, Span)> {
    run_traced_governed(q, catalog, cfg, &QueryContext::default())
}

/// [`run_traced`] under a resource governor (see [`run_governed`] — the
/// two-phase `peak_bytes` overcount applies to the synthetic root's totals
/// too, which is what keeps the trace checker's additive invariant intact).
pub fn run_traced_governed(
    q: &QueryPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile, Span)> {
    match q {
        QueryPlan::Single(p) => execute_query_traced_governed(p, catalog, cfg, ctx),
        QueryPlan::TwoPhase { first, scalar_col, second } => {
            let (r1, p1, mut s1) = execute_query_traced_governed(first, catalog, cfg, ctx)?;
            let scalar =
                if r1.num_rows() == 0 { Value::F64(0.0) } else { r1.value(0, scalar_col)? };
            let (r2, p2, mut s2) =
                execute_query_traced_governed(&second(scalar), catalog, cfg, ctx)?;
            let prof = p1 + p2;
            s1.op = "phase".to_string();
            s1.label = "1 (scalar)".to_string();
            s2.op = "phase".to_string();
            s2.label = "2 (outer)".to_string();
            let mut root = Span::leaf("query", "two-phase");
            root.rows_in = prof.rows_in;
            root.rows_out = prof.rows_out;
            root.wall_ns = s1.wall_ns + s2.wall_ns;
            root.counters = prof.counter_pairs();
            root.children = vec![s1, s2];
            Ok((r2, prof, root))
        }
    }
}

/// The query numbers evaluated in the paper's distributed and
/// execution-strategy experiments.
pub const CHOKEPOINT_QUERIES: [usize; 8] = [1, 3, 4, 5, 6, 13, 14, 19];

/// Builds query `n` (1–22) with its spec default parameters.
pub fn query(n: usize) -> QueryPlan {
    match n {
        1 => q01_06::q1(),
        2 => q01_06::q2(),
        3 => q01_06::q3(),
        4 => q01_06::q4(),
        5 => q01_06::q5(),
        6 => q01_06::q6(),
        7 => q07_11::q7(),
        8 => q07_11::q8(),
        9 => q07_11::q9(),
        10 => q07_11::q10(),
        11 => q07_11::q11(),
        12 => q12_17::q12(),
        13 => q12_17::q13(),
        14 => q12_17::q14(),
        15 => q12_17::q15(),
        16 => q12_17::q16(),
        17 => q12_17::q17(),
        18 => q18_22::q18(),
        19 => q18_22::q19(),
        20 => q18_22::q20(),
        21 => q18_22::q21(),
        22 => q18_22::q22(),
        _ => panic!("TPC-H has queries 1–22, got {n}"),
    }
}

pub use q01_06::{q1, q2, q3, q4, q5, q6};
pub use q07_11::{q10, q11, q7, q8, q9};
pub use q12_17::{q12, q13, q14, q15, q16, q17};
pub use q18_22::{q18, q19, q20, q21, q22};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_construct() {
        for n in 1..=22 {
            let q = query(n);
            assert!(!q.tables().is_empty(), "Q{n} references no tables");
        }
    }

    #[test]
    fn chokepoint_queries_touch_expected_tables() {
        // Q13 must NOT touch lineitem — the paper's single-node anomaly
        // depends on it.
        assert!(!query(13).tables().contains(&"lineitem".to_string()));
        for n in [1, 3, 4, 5, 6, 14, 19] {
            assert!(
                query(n).tables().contains(&"lineitem".to_string()),
                "Q{n} should touch lineitem"
            );
        }
    }

    #[test]
    #[should_panic(expected = "queries 1–22")]
    fn out_of_range_panics() {
        query(23);
    }
}
