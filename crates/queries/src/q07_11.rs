//! TPC-H queries 7–11.

use crate::QueryPlan;
use wimpi_engine::expr::{col, date, dec2, lit};
use wimpi_engine::plan::{AggExpr, PlanBuilder, SortKey};
use wimpi_storage::Value;

fn disc_price() -> wimpi_engine::Expr {
    col("l_extendedprice").mul(lit(1i64).sub(col("l_discount")))
}

/// Q7 — volume shipping between FRANCE and GERMANY. Nation appears twice,
/// renamed through projections.
pub fn q7() -> QueryPlan {
    // Restricting both nation scans to the two nations first shrinks every
    // join below the cross-pair filter — the reduction MonetDB also applies.
    let two_nations = || {
        PlanBuilder::scan("nation")
            .filter(col("n_name").eq(lit("FRANCE")).or(col("n_name").eq(lit("GERMANY"))))
    };
    let n1 =
        two_nations().project(vec![(col("n_nationkey"), "n1_key"), (col("n_name"), "supp_nation")]);
    let n2 =
        two_nations().project(vec![(col("n_nationkey"), "n2_key"), (col("n_name"), "cust_nation")]);
    let cross = col("supp_nation")
        .eq(lit("FRANCE"))
        .and(col("cust_nation").eq(lit("GERMANY")))
        .or(col("supp_nation").eq(lit("GERMANY")).and(col("cust_nation").eq(lit("FRANCE"))));
    let plan = PlanBuilder::scan("lineitem")
        .filter(
            col("l_shipdate")
                .gte(date("1995-01-01"))
                .and(col("l_shipdate").lte(date("1996-12-31"))),
        )
        .inner_join(PlanBuilder::scan("orders"), vec![("l_orderkey", "o_orderkey")])
        .inner_join(PlanBuilder::scan("customer"), vec![("o_custkey", "c_custkey")])
        .inner_join(PlanBuilder::scan("supplier"), vec![("l_suppkey", "s_suppkey")])
        .inner_join(n1, vec![("s_nationkey", "n1_key")])
        .inner_join(n2, vec![("c_nationkey", "n2_key")])
        .filter(cross)
        .aggregate(
            vec![
                (col("supp_nation"), "supp_nation"),
                (col("cust_nation"), "cust_nation"),
                (col("l_shipdate").year(), "l_year"),
            ],
            vec![AggExpr::sum(disc_price(), "revenue")],
        )
        .sort(vec![
            SortKey::asc("supp_nation"),
            SortKey::asc("cust_nation"),
            SortKey::asc("l_year"),
        ])
        .build();
    QueryPlan::Single(plan)
}

/// Q8 — national market share of BRAZIL in AMERICA for one part type.
pub fn q8() -> QueryPlan {
    let america = PlanBuilder::scan("nation")
        .inner_join(
            PlanBuilder::scan("region").filter(col("r_name").eq(lit("AMERICA"))),
            vec![("n_regionkey", "r_regionkey")],
        )
        .project(vec![(col("n_nationkey"), "n1_key")]);
    let supp_nation = PlanBuilder::scan("nation")
        .project(vec![(col("n_nationkey"), "n2_key"), (col("n_name"), "nation_name")]);
    let plan = PlanBuilder::scan("lineitem")
        .inner_join(
            PlanBuilder::scan("part").filter(col("p_type").eq(lit("ECONOMY ANODIZED STEEL"))),
            vec![("l_partkey", "p_partkey")],
        )
        .inner_join(
            PlanBuilder::scan("orders").filter(
                col("o_orderdate")
                    .gte(date("1995-01-01"))
                    .and(col("o_orderdate").lte(date("1996-12-31"))),
            ),
            vec![("l_orderkey", "o_orderkey")],
        )
        .inner_join(PlanBuilder::scan("customer"), vec![("o_custkey", "c_custkey")])
        .inner_join(america, vec![("c_nationkey", "n1_key")])
        .inner_join(PlanBuilder::scan("supplier"), vec![("l_suppkey", "s_suppkey")])
        .inner_join(supp_nation, vec![("s_nationkey", "n2_key")])
        .aggregate(
            vec![(col("o_orderdate").year(), "o_year")],
            vec![
                AggExpr::sum(
                    col("nation_name").eq(lit("BRAZIL")).case(disc_price(), dec2("0")),
                    "brazil_volume",
                ),
                AggExpr::sum(disc_price(), "total_volume"),
            ],
        )
        .project(vec![
            (col("o_year"), "o_year"),
            (col("brazil_volume").div(col("total_volume")), "mkt_share"),
        ])
        .sort(vec![SortKey::asc("o_year")])
        .build();
    QueryPlan::Single(plan)
}

/// Q9 — product-type profit measure over `%green%` parts.
pub fn q9() -> QueryPlan {
    let amount = disc_price().sub(col("ps_supplycost").mul(col("l_quantity")));
    let plan = PlanBuilder::scan("lineitem")
        .inner_join(
            PlanBuilder::scan("part").filter(col("p_name").like("%green%")),
            vec![("l_partkey", "p_partkey")],
        )
        .inner_join(PlanBuilder::scan("supplier"), vec![("l_suppkey", "s_suppkey")])
        .inner_join(
            PlanBuilder::scan("partsupp"),
            vec![("l_suppkey", "ps_suppkey"), ("l_partkey", "ps_partkey")],
        )
        .inner_join(PlanBuilder::scan("orders"), vec![("l_orderkey", "o_orderkey")])
        .inner_join(PlanBuilder::scan("nation"), vec![("s_nationkey", "n_nationkey")])
        .aggregate(
            vec![(col("n_name"), "nation"), (col("o_orderdate").year(), "o_year")],
            vec![AggExpr::sum(amount, "sum_profit")],
        )
        .sort(vec![SortKey::asc("nation"), SortKey::desc("o_year")])
        .build();
    QueryPlan::Single(plan)
}

/// Q10 — returned-item reporting (top 20 customers by lost revenue).
pub fn q10() -> QueryPlan {
    let plan = PlanBuilder::scan("lineitem")
        .filter(col("l_returnflag").eq(lit("R")))
        .inner_join(
            PlanBuilder::scan("orders").filter(
                col("o_orderdate")
                    .gte(date("1993-10-01"))
                    .and(col("o_orderdate").lt(date("1994-01-01"))),
            ),
            vec![("l_orderkey", "o_orderkey")],
        )
        .inner_join(PlanBuilder::scan("customer"), vec![("o_custkey", "c_custkey")])
        .inner_join(PlanBuilder::scan("nation"), vec![("c_nationkey", "n_nationkey")])
        .aggregate(
            vec![
                (col("c_custkey"), "c_custkey"),
                (col("c_name"), "c_name"),
                (col("c_acctbal"), "c_acctbal"),
                (col("c_phone"), "c_phone"),
                (col("n_name"), "n_name"),
                (col("c_address"), "c_address"),
                (col("c_comment"), "c_comment"),
            ],
            vec![AggExpr::sum(disc_price(), "revenue")],
        )
        .sort(vec![SortKey::desc("revenue")])
        .limit(20)
        .build();
    QueryPlan::Single(plan)
}

/// Q11 — important stock identification. The `having sum > fraction of the
/// national total` scalar subquery is the two-phase pattern; the fraction is
/// the spec's 0.0001 (defined for SF 1; DESIGN.md notes it stays fixed here).
pub fn q11() -> QueryPlan {
    let german_ps = || {
        PlanBuilder::scan("partsupp").inner_join(
            PlanBuilder::scan("supplier").inner_join(
                PlanBuilder::scan("nation").filter(col("n_name").eq(lit("GERMANY"))),
                vec![("s_nationkey", "n_nationkey")],
            ),
            vec![("ps_suppkey", "s_suppkey")],
        )
    };
    let stock_value = || col("ps_supplycost").mul(col("ps_availqty"));
    let first = german_ps().aggregate(vec![], vec![AggExpr::sum(stock_value(), "total")]).build();
    QueryPlan::TwoPhase {
        first,
        scalar_col: "total".to_string(),
        second: Box::new(move |total: Value| {
            let threshold = total.as_f64().unwrap_or(0.0) * 0.0001;
            german_ps()
                .aggregate(
                    vec![(col("ps_partkey"), "ps_partkey")],
                    vec![AggExpr::sum(stock_value(), "value")],
                )
                .filter(col("value").gt(lit(threshold)))
                .sort(vec![SortKey::desc("value")])
                .build()
        }),
    }
}
