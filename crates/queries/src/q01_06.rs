//! TPC-H queries 1–6.

use crate::QueryPlan;
use wimpi_engine::expr::{col, date, dec2, lit};
use wimpi_engine::plan::{AggExpr, JoinType, PlanBuilder, SortKey};

/// `l_extendedprice * (1 - l_discount)` — the workload's hottest expression.
fn disc_price() -> wimpi_engine::Expr {
    col("l_extendedprice").mul(lit(1i64).sub(col("l_discount")))
}

/// Q1 — pricing summary report. Scans ~98% of lineitem; the paper's
/// memory-bandwidth stress test (worst Pi 3B+ query at SF 1).
pub fn q1() -> QueryPlan {
    let charge = disc_price().mul(lit(1i64).add(col("l_tax")));
    QueryPlan::Single(
        PlanBuilder::scan("lineitem")
            .filter(col("l_shipdate").lte(date("1998-09-02")))
            .aggregate(
                vec![(col("l_returnflag"), "l_returnflag"), (col("l_linestatus"), "l_linestatus")],
                vec![
                    AggExpr::sum(col("l_quantity"), "sum_qty"),
                    AggExpr::sum(col("l_extendedprice"), "sum_base_price"),
                    AggExpr::sum(disc_price(), "sum_disc_price"),
                    AggExpr::sum(charge, "sum_charge"),
                    AggExpr::avg(col("l_quantity"), "avg_qty"),
                    AggExpr::avg(col("l_extendedprice"), "avg_price"),
                    AggExpr::avg(col("l_discount"), "avg_disc"),
                    AggExpr::count_star("count_order"),
                ],
            )
            .sort(vec![SortKey::asc("l_returnflag"), SortKey::asc("l_linestatus")])
            .build(),
    )
}

/// Q2 — minimum-cost supplier. The correlated min subquery is decorrelated
/// into a per-part aggregate over the EUROPE supplier slice.
pub fn q2() -> QueryPlan {
    let europe = || {
        PlanBuilder::scan("nation").inner_join(
            PlanBuilder::scan("region").filter(col("r_name").eq(lit("EUROPE"))),
            vec![("n_regionkey", "r_regionkey")],
        )
    };
    let eu_suppliers =
        || PlanBuilder::scan("supplier").inner_join(europe(), vec![("s_nationkey", "n_nationkey")]);
    let min_cost = PlanBuilder::scan("partsupp")
        .inner_join(eu_suppliers(), vec![("ps_suppkey", "s_suppkey")])
        .aggregate(
            vec![(col("ps_partkey"), "min_partkey")],
            vec![AggExpr::min(col("ps_supplycost"), "min_cost")],
        );
    let plan = PlanBuilder::scan("part")
        .filter(col("p_size").eq(lit(15i64)).and(col("p_type").like("%BRASS")))
        .inner_join(PlanBuilder::scan("partsupp"), vec![("p_partkey", "ps_partkey")])
        .inner_join(eu_suppliers(), vec![("ps_suppkey", "s_suppkey")])
        .inner_join(min_cost, vec![("ps_partkey", "min_partkey")])
        .filter(col("ps_supplycost").eq(col("min_cost")))
        .project(vec![
            (col("s_acctbal"), "s_acctbal"),
            (col("s_name"), "s_name"),
            (col("n_name"), "n_name"),
            (col("p_partkey"), "p_partkey"),
            (col("p_mfgr"), "p_mfgr"),
            (col("s_address"), "s_address"),
            (col("s_phone"), "s_phone"),
            (col("s_comment"), "s_comment"),
        ])
        .sort(vec![
            SortKey::desc("s_acctbal"),
            SortKey::asc("n_name"),
            SortKey::asc("s_name"),
            SortKey::asc("p_partkey"),
        ])
        .limit(100)
        .build();
    QueryPlan::Single(plan)
}

/// Q3 — shipping priority (top unshipped orders by revenue).
pub fn q3() -> QueryPlan {
    let cutoff = date("1995-03-15");
    let cust_orders =
        PlanBuilder::scan("orders").filter(col("o_orderdate").lt(cutoff.clone())).inner_join(
            PlanBuilder::scan("customer").filter(col("c_mktsegment").eq(lit("BUILDING"))),
            vec![("o_custkey", "c_custkey")],
        );
    let plan = PlanBuilder::scan("lineitem")
        .filter(col("l_shipdate").gt(cutoff))
        .inner_join(cust_orders, vec![("l_orderkey", "o_orderkey")])
        .aggregate(
            vec![
                (col("l_orderkey"), "l_orderkey"),
                (col("o_orderdate"), "o_orderdate"),
                (col("o_shippriority"), "o_shippriority"),
            ],
            vec![AggExpr::sum(disc_price(), "revenue")],
        )
        .sort(vec![SortKey::desc("revenue"), SortKey::asc("o_orderdate")])
        .limit(10)
        .build();
    QueryPlan::Single(plan)
}

/// Q4 — order priority checking (EXISTS → semi join).
pub fn q4() -> QueryPlan {
    let lo = date("1993-07-01");
    let hi = date("1993-10-01");
    let late_lines =
        PlanBuilder::scan("lineitem").filter(col("l_commitdate").lt(col("l_receiptdate")));
    let plan = PlanBuilder::scan("orders")
        .filter(col("o_orderdate").gte(lo).and(col("o_orderdate").lt(hi)))
        .join(late_lines, vec![("o_orderkey", "l_orderkey")], JoinType::Semi)
        .aggregate(
            vec![(col("o_orderpriority"), "o_orderpriority")],
            vec![AggExpr::count_star("order_count")],
        )
        .sort(vec![SortKey::asc("o_orderpriority")])
        .build();
    QueryPlan::Single(plan)
}

/// Q5 — local supplier volume. Note the two-key join: the supplier must be
/// in the same nation as the customer.
pub fn q5() -> QueryPlan {
    let lo = date("1994-01-01");
    let hi = date("1995-01-01");
    let asia = PlanBuilder::scan("nation").inner_join(
        PlanBuilder::scan("region").filter(col("r_name").eq(lit("ASIA"))),
        vec![("n_regionkey", "r_regionkey")],
    );
    let asia_suppliers =
        PlanBuilder::scan("supplier").inner_join(asia, vec![("s_nationkey", "n_nationkey")]);
    let cust_orders = PlanBuilder::scan("orders")
        .filter(col("o_orderdate").gte(lo).and(col("o_orderdate").lt(hi)))
        .inner_join(PlanBuilder::scan("customer"), vec![("o_custkey", "c_custkey")]);
    let plan = PlanBuilder::scan("lineitem")
        .inner_join(cust_orders, vec![("l_orderkey", "o_orderkey")])
        .inner_join(
            asia_suppliers,
            vec![("l_suppkey", "s_suppkey"), ("c_nationkey", "s_nationkey")],
        )
        .aggregate(vec![(col("n_name"), "n_name")], vec![AggExpr::sum(disc_price(), "revenue")])
        .sort(vec![SortKey::desc("revenue")])
        .build();
    QueryPlan::Single(plan)
}

/// Q6 — forecasting revenue change. The paper's CPU-friendliest choke-point
/// query: one highly selective scan, no joins.
pub fn q6() -> QueryPlan {
    let plan = PlanBuilder::scan("lineitem")
        .filter(
            col("l_shipdate")
                .gte(date("1994-01-01"))
                .and(col("l_shipdate").lt(date("1995-01-01")))
                .and(col("l_discount").between(
                    wimpi_storage::Value::Dec(
                        wimpi_storage::Decimal64::from_str_scale("0.05", 2).expect("const"),
                    ),
                    wimpi_storage::Value::Dec(
                        wimpi_storage::Decimal64::from_str_scale("0.07", 2).expect("const"),
                    ),
                ))
                .and(col("l_quantity").lt(dec2("24"))),
        )
        .aggregate(
            vec![],
            vec![AggExpr::sum(col("l_extendedprice").mul(col("l_discount")), "revenue")],
        )
        .build();
    QueryPlan::Single(plan)
}
