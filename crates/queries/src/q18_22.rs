//! TPC-H queries 18–22.

use crate::QueryPlan;
use wimpi_engine::expr::{col, date, dec2, lit};
use wimpi_engine::plan::{AggExpr, JoinType, PlanBuilder, SortKey};
use wimpi_storage::Value;

fn disc_price() -> wimpi_engine::Expr {
    col("l_extendedprice").mul(lit(1i64).sub(col("l_discount")))
}

/// Q18 — large-volume customers (`having sum(l_quantity) > 300` → filtered
/// aggregate semi-joined back to orders).
pub fn q18() -> QueryPlan {
    let big_orders = PlanBuilder::scan("lineitem")
        .aggregate(
            vec![(col("l_orderkey"), "big_okey")],
            vec![AggExpr::sum(col("l_quantity"), "sum_qty")],
        )
        .filter(col("sum_qty").gt(lit(300i64)))
        .project(vec![(col("big_okey"), "big_okey")]);
    let plan = PlanBuilder::scan("orders")
        .join(big_orders, vec![("o_orderkey", "big_okey")], JoinType::Semi)
        .inner_join(PlanBuilder::scan("customer"), vec![("o_custkey", "c_custkey")])
        .inner_join(PlanBuilder::scan("lineitem"), vec![("o_orderkey", "l_orderkey")])
        .aggregate(
            vec![
                (col("c_name"), "c_name"),
                (col("c_custkey"), "c_custkey"),
                (col("o_orderkey"), "o_orderkey"),
                (col("o_orderdate"), "o_orderdate"),
                (col("o_totalprice"), "o_totalprice"),
            ],
            vec![AggExpr::sum(col("l_quantity"), "total_qty")],
        )
        .sort(vec![SortKey::desc("o_totalprice"), SortKey::asc("o_orderdate")])
        .limit(100)
        .build();
    QueryPlan::Single(plan)
}

/// Q19 — discounted revenue over three brand/container/quantity classes
/// (the big disjunctive predicate).
pub fn q19() -> QueryPlan {
    let class = |brand: &str, containers: [&str; 4], qlo: &str, qhi: &str, smax: i64| {
        col("p_brand")
            .eq(lit(brand))
            .and(col("p_container").in_list(containers.iter().map(|&c| Value::from(c)).collect()))
            .and(col("l_quantity").between(
                Value::Dec(wimpi_storage::Decimal64::from_str_scale(qlo, 2).expect("const")),
                Value::Dec(wimpi_storage::Decimal64::from_str_scale(qhi, 2).expect("const")),
            ))
            .and(col("p_size").between(Value::I64(1), Value::I64(smax)))
    };
    let plan = PlanBuilder::scan("lineitem")
        .filter(
            col("l_shipmode")
                .in_list(vec!["AIR".into(), "REG AIR".into()])
                .and(col("l_shipinstruct").eq(lit("DELIVER IN PERSON"))),
        )
        .inner_join(PlanBuilder::scan("part"), vec![("l_partkey", "p_partkey")])
        .filter(
            class("Brand#12", ["SM CASE", "SM BOX", "SM PACK", "SM PKG"], "1", "11", 5)
                .or(class(
                    "Brand#23",
                    ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                    "10",
                    "20",
                    10,
                ))
                .or(class("Brand#34", ["LG CASE", "LG BOX", "LG PACK", "LG PKG"], "20", "30", 15)),
        )
        .aggregate(vec![], vec![AggExpr::sum(disc_price(), "revenue")])
        .build();
    QueryPlan::Single(plan)
}

/// Q20 — potential part promotion (nested IN chain decorrelated into a
/// semi-join pipeline; CANADA suppliers of overstocked `forest%` parts).
pub fn q20() -> QueryPlan {
    let forest_parts = PlanBuilder::scan("part")
        .filter(col("p_name").like("forest%"))
        .project(vec![(col("p_partkey"), "p_partkey")]);
    let shipped = PlanBuilder::scan("lineitem")
        .filter(
            col("l_shipdate").gte(date("1994-01-01")).and(col("l_shipdate").lt(date("1995-01-01"))),
        )
        .aggregate(
            vec![(col("l_partkey"), "lp"), (col("l_suppkey"), "ls")],
            vec![AggExpr::sum(col("l_quantity"), "sum_qty")],
        );
    let overstocked = PlanBuilder::scan("partsupp")
        .join(forest_parts, vec![("ps_partkey", "p_partkey")], JoinType::Semi)
        .inner_join(shipped, vec![("ps_partkey", "lp"), ("ps_suppkey", "ls")])
        .filter(col("ps_availqty").gt(lit(0.5).mul(col("sum_qty"))))
        .project(vec![(col("ps_suppkey"), "good_suppkey")]);
    let plan = PlanBuilder::scan("supplier")
        .inner_join(
            PlanBuilder::scan("nation").filter(col("n_name").eq(lit("CANADA"))),
            vec![("s_nationkey", "n_nationkey")],
        )
        .join(overstocked, vec![("s_suppkey", "good_suppkey")], JoinType::Semi)
        .project(vec![(col("s_name"), "s_name"), (col("s_address"), "s_address")])
        .sort(vec![SortKey::asc("s_name")])
        .build();
    QueryPlan::Single(plan)
}

/// Q21 — suppliers who kept orders waiting. The EXISTS/NOT EXISTS pair is
/// decorrelated into per-order distinct-supplier counts: another supplier
/// exists ⇔ `nsupp ≥ 2`; no *other* failing supplier ⇔ `nfail = 1` (the
/// failing row itself is one of them).
pub fn q21() -> QueryPlan {
    let late =
        || PlanBuilder::scan("lineitem").filter(col("l_receiptdate").gt(col("l_commitdate")));
    let nall = PlanBuilder::scan("lineitem").aggregate(
        vec![(col("l_orderkey"), "all_okey")],
        vec![AggExpr::count_distinct(col("l_suppkey"), "nsupp")],
    );
    let nfail = late().aggregate(
        vec![(col("l_orderkey"), "fail_okey")],
        vec![AggExpr::count_distinct(col("l_suppkey"), "nfail")],
    );
    let plan = late()
        .inner_join(
            PlanBuilder::scan("orders").filter(col("o_orderstatus").eq(lit("F"))),
            vec![("l_orderkey", "o_orderkey")],
        )
        .inner_join(PlanBuilder::scan("supplier"), vec![("l_suppkey", "s_suppkey")])
        .inner_join(
            PlanBuilder::scan("nation").filter(col("n_name").eq(lit("SAUDI ARABIA"))),
            vec![("s_nationkey", "n_nationkey")],
        )
        .inner_join(nall, vec![("l_orderkey", "all_okey")])
        .inner_join(nfail, vec![("l_orderkey", "fail_okey")])
        .filter(col("nsupp").gte(lit(2i64)).and(col("nfail").eq(lit(1i64))))
        .aggregate(vec![(col("s_name"), "s_name")], vec![AggExpr::count_star("numwait")])
        .sort(vec![SortKey::desc("numwait"), SortKey::asc("s_name")])
        .limit(100)
        .build();
    QueryPlan::Single(plan)
}

/// Q22 — global sales opportunity (phone country codes, `> avg(acctbal)`
/// scalar, NOT EXISTS → anti join).
pub fn q22() -> QueryPlan {
    let codes: Vec<Value> =
        ["13", "31", "23", "29", "30", "18", "17"].iter().map(|&c| Value::from(c)).collect();
    let cntrycode = || col("c_phone").substr(1, 2);
    let in_codes = move || cntrycode().in_list(codes.clone());
    let first = PlanBuilder::scan("customer")
        .filter(in_codes().and(col("c_acctbal").gt(dec2("0.00"))))
        .aggregate(vec![], vec![AggExpr::avg(col("c_acctbal"), "avg_bal")])
        .build();
    QueryPlan::TwoPhase {
        first,
        scalar_col: "avg_bal".to_string(),
        second: Box::new(move |avg_bal: Value| {
            let threshold = avg_bal.as_f64().unwrap_or(0.0);
            PlanBuilder::scan("customer")
                .filter(in_codes().and(col("c_acctbal").gt(lit(threshold))))
                .join(PlanBuilder::scan("orders"), vec![("c_custkey", "o_custkey")], JoinType::Anti)
                .aggregate(
                    vec![(cntrycode(), "cntrycode")],
                    vec![
                        AggExpr::count_star("numcust"),
                        AggExpr::sum(col("c_acctbal"), "totacctbal"),
                    ],
                )
                .sort(vec![SortKey::asc("cntrycode")])
                .build()
        }),
    }
}
