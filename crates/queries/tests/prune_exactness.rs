//! Zone-map pruning must be invisible in every answer.
//!
//! Two catalogs, every executor, threads 1/2/4:
//!
//! * an *unsealed* catalog (no zone maps) — `prune_scans` finds nothing to
//!   consult and must behave as a strict no-op;
//! * a *clustered, sealed* catalog (lineitem by `l_shipdate`, orders by
//!   `o_orderdate`) where pruning actively skips morsels — results must
//!   still be bit-identical to the pruning-off run, and the profile's
//!   `rows_in`/`rows_out` untouched (DESIGN.md §14).
//!
//! The choke-point subset runs in every build; the full 22-query sweep is
//! release-only (debug-build TPC-H generation plus 22 × 2 × 3 runs is too
//! slow for the tier-1 loop).

use wimpi_engine::{EngineConfig, Executor};
use wimpi_queries::{query, run_with, CHOKEPOINT_QUERIES};
use wimpi_storage::Catalog;
use wimpi_tpch::{clustered_catalog, Generator};

const SF: f64 = 0.01;

fn assert_prune_invisible(
    cat: &Catalog,
    queries: &[usize],
    morsel_rows: usize,
    expect_skips_somewhere: bool,
) {
    let mut any_skipped = 0u64;
    for &qn in queries {
        let plan = query(qn);
        for executor in [Executor::Materialize, Executor::Fused] {
            // Baseline shares the morsel grid: float reduction boundaries
            // (and thus bit-exactness) depend on it.
            let base = EngineConfig::serial().with_executor(executor).with_morsel_rows(morsel_rows);
            let (reference, ref_prof) =
                run_with(&plan, cat, &base).unwrap_or_else(|e| panic!("Q{qn} baseline: {e}"));
            for threads in [1, 2, 4] {
                let cfg = EngineConfig::with_threads(threads)
                    .with_executor(executor)
                    .with_morsel_rows(morsel_rows)
                    .with_prune_scans(true);
                let (rel, prof) =
                    run_with(&plan, cat, &cfg).unwrap_or_else(|e| panic!("Q{qn} pruned: {e}"));
                assert_eq!(
                    rel, reference,
                    "Q{qn}: pruned {executor:?} at {threads} threads diverged"
                );
                assert_eq!(
                    (prof.rows_in, prof.rows_out),
                    (ref_prof.rows_in, ref_prof.rows_out),
                    "Q{qn}: pruning changed operator row counts"
                );
                any_skipped += prof.pruned_morsels;
                if cat.table("lineitem").unwrap().zones().is_none() {
                    assert_eq!(
                        (prof.pruned_morsels, prof.pruned_bytes),
                        (0, 0),
                        "Q{qn}: no zone maps sealed, yet the profile claims pruning"
                    );
                }
            }
        }
    }
    if expect_skips_somewhere {
        assert!(any_skipped > 0, "clustered+sealed catalog never skipped a morsel");
    }
}

#[test]
fn pruning_is_a_noop_without_zone_maps() {
    let cat = Generator::new(SF).generate_catalog().expect("generates");
    assert_prune_invisible(&cat, &CHOKEPOINT_QUERIES, 65_536, false);
}

#[test]
fn active_pruning_keeps_chokepoint_answers_bit_exact() {
    // SF 0.01 lineitem is a single default-grid chunk; reseal zone maps on
    // a fine grid and shrink the engine's morsels so pruning really fires
    // (the bench covers the default grid at SF 0.1, where Q6 must skip
    // whole 64Ki-row morsels). Morsels of 4× the chunk grid also exercise
    // the union path in `range_over`/`presence_over`.
    let mut cat = clustered_catalog(SF).expect("clustered catalog generates");
    reseal_fine(&mut cat);
    assert_prune_invisible(&cat, &CHOKEPOINT_QUERIES, 4096, true);
}

#[test]
fn active_pruning_keeps_all_22_answers_bit_exact() {
    if cfg!(debug_assertions) {
        return; // release-only: the full sweep is ~20x the chokepoint cost
    }
    let mut cat = clustered_catalog(SF).expect("clustered catalog generates");
    reseal_fine(&mut cat);
    let all: Vec<usize> = (1..=22).collect();
    assert_prune_invisible(&cat, &all, 4096, true);
}

/// Re-seals every table's zone map on a grid small enough that SF 0.01
/// tables span many chunks.
fn reseal_fine(cat: &mut Catalog) {
    let names: Vec<String> = cat.names().map(String::from).collect();
    for name in names {
        let fine = cat.table(&name).unwrap().as_ref().clone().with_zone_maps_at(1024);
        cat.register(&name, fine);
    }
}
